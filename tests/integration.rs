//! Cross-crate integration tests: end-to-end flows spanning the DMG model,
//! the elastic core, the netlist compiler and the model checker.

use elastic_circuits::core::sim::{BehavSim, DataGen, EnvConfig, RandomEnv, SinkCfg, SourceCfg};
use elastic_circuits::core::systems::{linear_pipeline, paper_example, Config};
use elastic_circuits::core::verify::{cosim_check, Schedule};

#[test]
fn fig8a_cosim_smoke_linear_pipeline() {
    // Fast, fully deterministic gate-level vs behavioural equivalence check
    // on linear_pipeline(2, 0): one fixed seed, every rail of every channel
    // compared on every cycle. The randomized fuzz test below covers
    // breadth; this pins the fig. 8 equivalence claim in tier-1 even if the
    // fuzz seeds ever change.
    let (net, _, _) = linear_pipeline(2, 0).unwrap();
    let cfg = EnvConfig {
        default_source: SourceCfg {
            rate: 0.7,
            data: DataGen::Counter,
        },
        default_sink: SinkCfg {
            stop_prob: 0.3,
            kill_prob: 0.2,
        },
        ..Default::default()
    };
    let sched = Schedule::random(&net, &cfg, 2007, 500);
    cosim_check(&net, &sched, 2).expect("gate-level and behavioural sims must agree");
}

#[test]
fn fig8b_data_correctness_alternating_stream() {
    // Producers alternate 0/1; consumers nondeterministically stop or kill.
    // Whatever survives must still alternate (each kill removes exactly one
    // element of the stream and the stream is 0,1,0,1,... so any *suffix
    // after removals* is still strictly alternating only if removals are
    // FIFO-consistent — which they are: anti-tokens always annihilate the
    // oldest in-flight token on their path).
    let (net, _, _) = linear_pipeline(4, 0).unwrap();
    let snk = net.component_by_name("snk").unwrap();
    let mut cfg = EnvConfig::default();
    cfg.sources.insert(
        "src".into(),
        SourceCfg {
            rate: 0.8,
            data: DataGen::Counter,
        },
    );
    cfg.sinks.insert(
        "snk".into(),
        SinkCfg {
            stop_prob: 0.3,
            kill_prob: 0.25,
        },
    );
    for seed in 0..10 {
        let mut sim = BehavSim::new(&net).unwrap();
        let mut env = RandomEnv::new(seed, cfg.clone());
        sim.run(&mut env, 3000).unwrap();
        let got = sim.sink_received(snk);
        assert!(!got.is_empty());
        for w in got.windows(2) {
            assert!(w[0] < w[1], "seed {seed}: order violated: {w:?}");
        }
    }
}

#[test]
fn paper_table1_ordering_end_to_end() {
    let mut th = Vec::new();
    for config in Config::all() {
        let sys = paper_example(config).unwrap();
        let mut sim = BehavSim::new(&sys.network).unwrap();
        let mut env = RandomEnv::new(3, sys.env_config.clone());
        sim.run(&mut env, 8000).unwrap();
        th.push(sim.report().positive_rate(sys.output_channel));
    }
    // Active > PassiveF3W > NoBuffer > PassiveM2W >= lazy-ish ordering.
    assert!(th[0] > th[2], "active {} > passiveF3 {}", th[0], th[2]);
    assert!(th[2] > th[1], "passiveF3 {} > nobuffer {}", th[2], th[1]);
    assert!(th[1] > th[3], "nobuffer {} > passiveM {}", th[1], th[3]);
    assert!(
        th[3] > th[4] * 0.95,
        "passiveM {} ~>= lazy {}",
        th[3],
        th[4]
    );
}

#[test]
fn gate_level_agrees_with_reference_on_random_networks() {
    // Randomized topology fuzzing: chains with random joins/forks, random
    // environments, gate-level vs behavioural equivalence.
    use elastic_circuits::core::network::ElasticNetwork;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = ElasticNetwork::new(format!("fuzz{seed}"));
        let s1 = net.add_source("s1").unwrap();
        let s2 = net.add_source("s2").unwrap();
        let b1 = net.add_eb("b1", rng.gen_bool(0.5)).unwrap();
        let b2 = net.add_eb("b2", rng.gen_bool(0.5)).unwrap();
        let j = net.add_join("j", 2).unwrap();
        let b3 = net.add_eb("b3", false).unwrap();
        let f = net.add_fork("f", 2).unwrap();
        let k1 = net.add_sink("k1").unwrap();
        let k2 = net.add_sink("k2").unwrap();
        net.connect(s1, 0, b1, 0, "c1").unwrap();
        net.connect(s2, 0, b2, 0, "c2").unwrap();
        net.connect(b1, 0, j, 0, "j1").unwrap();
        net.connect(b2, 0, j, 1, "j2").unwrap();
        net.connect(j, 0, b3, 0, "jo").unwrap();
        net.connect(b3, 0, f, 0, "fi").unwrap();
        let o1 = net.connect(f, 0, k1, 0, "o1").unwrap();
        net.connect(f, 1, k2, 0, "o2").unwrap();
        if rng.gen_bool(0.3) {
            net.set_passive(o1).unwrap();
        }
        let cfg = EnvConfig {
            default_source: SourceCfg {
                rate: rng.gen_range(0.3..1.0),
                data: DataGen::Counter,
            },
            default_sink: SinkCfg {
                stop_prob: rng.gen_range(0.0..0.5),
                kill_prob: rng.gen_range(0.0..0.4),
            },
            ..Default::default()
        };
        let sched = Schedule::random(&net, &cfg, seed.wrapping_mul(97), 700);
        cosim_check(&net, &sched, 2).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn verilog_blif_smv_export_of_paper_example() {
    use elastic_circuits::core::compile::{compile, CompileOptions};
    use elastic_circuits::netlist::export::{to_blif, to_smv, to_verilog};
    let sys = paper_example(Config::ActiveAntiTokens).unwrap();
    let compiled = compile(
        &sys.network,
        &CompileOptions {
            lint: false,
            data_width: 2,
            nondet_merge: false,
            optimize: false,
            fault: None,
            faults: vec![],
        },
    )
    .unwrap();
    let v = to_verilog(&compiled.netlist).unwrap();
    assert!(v.contains("module") && v.contains("endmodule"));
    assert!(v.len() > 5000, "full controller netlist");
    let b = to_blif(&compiled.netlist).unwrap();
    assert!(b.contains(".model") && b.contains(".latch"));
    let s = to_smv(&compiled.netlist).unwrap();
    assert!(s.contains("MODULE main") && s.contains("next("));
}

#[test]
fn throughput_equalization_is_a_dmg_theorem() {
    // The repetitive-behaviour property of SCDMGs (Sect. 2.2) predicts that
    // Th = (+) + (-) + (x) is identical on every channel. Check it on the
    // counterflow-heavy active configuration.
    let sys = paper_example(Config::ActiveAntiTokens).unwrap();
    let mut sim = BehavSim::new(&sys.network).unwrap();
    let mut env = RandomEnv::new(17, sys.env_config.clone());
    sim.run(&mut env, 12_000).unwrap();
    let r = sim.report();
    let reference = r.throughput(sys.channels.dout);
    for c in sys.network.channels() {
        let name = &sys.network.channel(c).name;
        // Channels entirely inside the M/F branches see the same Th; the
        // only systematic deviation is bounded occupancy drift.
        let th = r.throughput(c);
        assert!(
            (th - reference).abs() < 0.03,
            "{name}: Th {th} vs reference {reference}"
        );
    }
}

#[test]
fn fig9_rebuilt_through_the_elasticization_flow() {
    // Build the paper's datapath as a *synchronous* description and run it
    // through the Sect. 6 elasticization; the result must carry the same
    // early-evaluation behaviour as the hand-built systems::paper_example.
    use elastic_circuits::core::elasticize::{elasticize, SyncDatapath};
    use elastic_circuits::core::systems::w_early_eval;

    let mut dp = SyncDatapath::new("fig9_sync");
    let din = dp.input("Din").unwrap();
    let dout = dp.output("Dout").unwrap();
    let s = dp.block("S", 2).unwrap();
    let eb_i = dp.register("EBi", false).unwrap();
    let f1 = dp.register("F1", false).unwrap();
    let f2 = dp.register("F2", false).unwrap();
    let f3 = dp.register("F3", false).unwrap();
    let eb_sm = dp.register("EBsm", false).unwrap();
    let m1 = dp.var_latency_block("M1").unwrap();
    let m2 = dp.var_latency_block("M2").unwrap();
    let eb_mo = dp.register("EBmo", false).unwrap();
    let c = dp.register("C", false).unwrap();
    let w = dp.early_block("W", 4, w_early_eval()).unwrap();
    let w1 = dp.register("W1", true).unwrap();
    let w2 = dp.register("W2", true).unwrap();
    let w3 = dp.register("W3", true).unwrap();
    dp.wire(din, s, 0);
    dp.wire(s, eb_i, 0);
    dp.wire(s, f1, 0);
    dp.wire(s, eb_sm, 0);
    dp.wire(s, c, 0);
    dp.wire(f1, f2, 0);
    dp.wire(f2, f3, 0);
    dp.wire(eb_sm, m1, 0);
    dp.wire(m1, m2, 0);
    dp.wire(m2, eb_mo, 0);
    dp.wire(c, w, 0);
    dp.wire(eb_i, w, 1);
    dp.wire(f3, w, 2);
    dp.wire(eb_mo, w, 3);
    dp.wire(w, w1, 0);
    dp.wire(w1, w2, 0);
    dp.wire(w2, w3, 0);
    dp.wire(w3, dout, 0);
    dp.wire(w3, s, 1);

    let net = elasticize(&dp).unwrap();
    let sys = paper_example(Config::ActiveAntiTokens).unwrap();
    let mut env_cfg = sys.env_config.clone();
    // The elasticized VL controllers are named "<block>.vl".
    let m1d = env_cfg.vls.remove("M1").unwrap();
    let m2d = env_cfg.vls.remove("M2").unwrap();
    env_cfg.vls.insert("M1.vl".into(), m1d);
    env_cfg.vls.insert("M2.vl".into(), m2d);

    let mut sim = BehavSim::new(&net).unwrap();
    let mut env = RandomEnv::new(3, env_cfg);
    sim.run(&mut env, 8000).unwrap();
    let out = net.channel_by_name("W3->Dout").unwrap();
    let th = sim.report().positive_rate(out);

    // Same topology, same environment: throughput in the same band as the
    // hand-built active configuration.
    let mut ref_sim = BehavSim::new(&sys.network).unwrap();
    let mut ref_env = RandomEnv::new(3, sys.env_config.clone());
    ref_sim.run(&mut ref_env, 8000).unwrap();
    let ref_th = ref_sim.report().positive_rate(sys.output_channel);
    assert!(
        (th - ref_th).abs() < 0.06,
        "elasticized {th} vs hand-built {ref_th}"
    );
}

#[test]
fn vcd_capture_of_compiled_controllers() {
    use elastic_circuits::core::compile::{compile, CompileOptions};
    use elastic_circuits::netlist::sim::Simulator;
    use elastic_circuits::netlist::vcd::VcdRecorder;
    let (net, _, _) = linear_pipeline(2, 1).unwrap();
    let compiled = compile(&net, &CompileOptions::default()).unwrap();
    let nl = &compiled.netlist;
    let mut sim = Simulator::new(nl).unwrap();
    let mut vcd = VcdRecorder::with_nets(nl, &["out.vp", "out.sp"]).unwrap();
    let offer = nl.find("src.offer").unwrap();
    for _ in 0..10 {
        sim.cycle(&[(offer, true)]).unwrap();
        vcd.sample(&sim);
    }
    let text = vcd.render();
    assert!(text.contains("$enddefinitions"));
    assert!(text.contains("out_vp"));
}
