//! Property-based tests over the core invariants, using proptest.

use elastic_circuits::core::dsl::isomorphic;
use elastic_circuits::core::protocol::is_self_language;
use elastic_circuits::core::sim::{BehavSim, DataGen, EnvConfig, RandomEnv, SinkCfg, SourceCfg};
use elastic_circuits::core::systems::{
    linear_pipeline, linear_pipeline_imperative, paper_example, paper_example_imperative, Config,
};
use elastic_circuits::dmg::analysis::simple_cycles;
use elastic_circuits::dmg::examples::{fig1_dmg, pipeline_ring};
use elastic_circuits::dmg::exec::{RandomExecutor, SchedulingPolicy};
use elastic_circuits::netlist::levelize::Program;
use elastic_circuits::netlist::sim::Simulator;
use elastic_circuits::netlist::wide::{WideSim, WideSimulator, LANES};
use elastic_circuits::netlist::{LatchPhase, NetId, Netlist};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random netlist: a DAG of combinational gates and latches over a
/// few primary inputs, plus flip-flops bound to arbitrary nets (feedback
/// allowed — flip-flops cut every cycle). Latch data inputs only reference
/// earlier nets, so no within-phase loop can form and the netlist is valid
/// by construction.
fn random_netlist(rng: &mut StdRng) -> Netlist {
    let mut n = Netlist::new("random");
    let mut nets: Vec<NetId> = (0..rng.gen_range(1usize..4))
        .map(|i| n.input(format!("in{i}")))
        .collect();
    let ffs: Vec<NetId> = (0..rng.gen_range(0usize..4))
        .map(|_| n.dff(rng.gen_bool(0.5)))
        .collect();
    nets.extend(&ffs);
    // A few late-bound wires usable as latch enables/data before their
    // driver exists in index order (bound to an *input* at the end, so no
    // combinational cycle forms but index order crosses the settle order —
    // the glitch-capture regression shape).
    let wires: Vec<NetId> = (0..rng.gen_range(0usize..3)).map(|_| n.wire()).collect();
    nets.extend(&wires);
    for _ in 0..rng.gen_range(5usize..40) {
        let pick = |rng: &mut StdRng, nets: &[NetId]| nets[rng.gen_range(0..nets.len())];
        let id = match rng.gen_range(0u32..10) {
            0 => {
                let a = pick(rng, &nets);
                n.not(a)
            }
            1 => {
                let (a, b) = (pick(rng, &nets), pick(rng, &nets));
                n.and2(a, b)
            }
            2 => {
                let (a, b) = (pick(rng, &nets), pick(rng, &nets));
                n.or2(a, b)
            }
            3 => {
                let (a, b) = (pick(rng, &nets), pick(rng, &nets));
                n.xor(a, b)
            }
            4 => {
                let (s, a, b) = (pick(rng, &nets), pick(rng, &nets), pick(rng, &nets));
                n.mux(s, a, b)
            }
            5 => {
                let ins: Vec<NetId> = (0..rng.gen_range(0usize..5))
                    .map(|_| pick(rng, &nets))
                    .collect();
                n.and(ins)
            }
            6 => {
                let ins: Vec<NetId> = (0..rng.gen_range(0usize..5))
                    .map(|_| pick(rng, &nets))
                    .collect();
                n.or(ins)
            }
            7 => n.constant(rng.gen_bool(0.5)),
            8 => {
                let phase = if rng.gen_bool(0.5) {
                    LatchPhase::High
                } else {
                    LatchPhase::Low
                };
                let l = n.latch(phase, rng.gen_bool(0.5));
                let d = pick(rng, &nets);
                n.bind_latch(l, d).unwrap();
                l
            }
            _ => {
                let phase = if rng.gen_bool(0.5) {
                    LatchPhase::High
                } else {
                    LatchPhase::Low
                };
                let en = pick(rng, &nets);
                let l = n.latch_en(phase, en, rng.gen_bool(0.5));
                let d = pick(rng, &nets);
                n.bind_latch(l, d).unwrap();
                l
            }
        };
        nets.push(id);
    }
    for &q in &ffs {
        let d = nets[rng.gen_range(0..nets.len())];
        n.bind_dff(q, d).unwrap();
    }
    let inputs = n.inputs().to_vec();
    for &w in &wires {
        let src = inputs[rng.gen_range(0..inputs.len())];
        n.bind_wire(w, src).unwrap();
    }
    n
}

/// The checked-in corpus (`proptest-regressions/proptests.txt`) must be
/// found and parsed, otherwise the `cc <seed>` replay guarantee is silently
/// lost (e.g. after a move of the file or a format change).
#[test]
fn regression_corpus_is_loaded() {
    let seeds = proptest::corpus_seeds("proptests");
    assert!(
        seeds.len() >= 4,
        "expected the checked-in regression corpus, got {seeds:?}"
    );
    assert!(seeds.contains(&2007), "bootstrap seed missing: {seeds:?}");
}

proptest! {
    /// Token preservation: any interleaving of P/N/E firings keeps every
    /// cycle's token sum constant (the fundamental SCDMG invariant).
    #[test]
    fn dmg_cycles_preserve_tokens(seed in 0u64..500, steps in 1usize..200) {
        let g = fig1_dmg();
        let (cycles, _) = simple_cycles(&g, 100);
        let init = g.initial_marking();
        let sums: Vec<i64> = cycles.iter().map(|c| c.tokens(&init)).collect();
        let mut m = g.initial_marking();
        let mut exec = RandomExecutor::new(seed, SchedulingPolicy::UniformEnabled);
        exec.run(&g, &mut m, steps).unwrap();
        for (c, &expect) in cycles.iter().zip(&sums) {
            prop_assert_eq!(c.tokens(&m), expect);
        }
    }

    /// Ring pipelines with any legal token count stay live and their
    /// min-cycle-ratio bound is tokens/length (capped by bubbles).
    #[test]
    fn ring_throughput_bound(stages in 2usize..8, tokens in 1usize..8) {
        prop_assume!(tokens < stages * 2);
        let g = pipeline_ring(stages, tokens, 2);
        let r = elastic_circuits::dmg::analysis::min_cycle_ratio(&g, &vec![1; stages]).unwrap();
        let expect = (tokens as f64 / stages as f64)
            .min((stages as f64 * 2.0 - tokens as f64) / stages as f64);
        prop_assert!((r.ratio - expect).abs() < 1e-6,
            "stages {} tokens {}: got {} expect {}", stages, tokens, r.ratio, expect);
    }

    /// The SELF protocol language (I*R*T)* holds on every channel of a
    /// pipeline under arbitrary environment probabilities, and tokens are
    /// never lost, duplicated or reordered.
    #[test]
    fn pipeline_protocol_and_fifo(
        seed in 0u64..200,
        rate in 0.1f64..1.0,
        stop in 0.0f64..0.9,
        stages in 1usize..5,
    ) {
        let (net, _, cout) = linear_pipeline(stages, 0).unwrap();
        let snk = net.component_by_name("snk").unwrap();
        let mut cfg = EnvConfig::default();
        cfg.sources.insert("src".into(), SourceCfg { rate, data: DataGen::Counter });
        cfg.sinks.insert("snk".into(), SinkCfg { stop_prob: stop, kill_prob: 0.0 });
        let mut sim = BehavSim::new(&net).unwrap();
        let mut env = RandomEnv::new(seed, cfg);
        let mut trace = String::new();
        for _ in 0..400 {
            sim.step(&mut env).unwrap(); // protocol monitor armed inside
            trace.push(match sim.signals(cout).event() {
                elastic_circuits::core::channel::ChannelEvent::PositiveTransfer => 'T',
                elastic_circuits::core::channel::ChannelEvent::Retry => 'R',
                elastic_circuits::core::channel::ChannelEvent::Kill => 'K',
                _ => 'I',
            });
        }
        prop_assert!(is_self_language(&trace), "trace {}", trace);
        let got = sim.sink_received(snk);
        for (i, w) in got.windows(2).enumerate() {
            prop_assert_eq!(w[0] + 1, w[1], "gap at {}", i);
        }
    }

    /// The bit-parallel compiled backend is indistinguishable from the
    /// scalar gate-level interpreter: for random netlists and random
    /// per-lane input streams, every net of `WideSimulator` lane k matches
    /// a scalar `Simulator` run driven with lane k's inputs, on every one
    /// of 32 cycles.
    #[test]
    fn wide_lane_matches_scalar_simulator(seed in 0u64..10_000, lane_pick in 0u64..64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = random_netlist(&mut rng);
        let lane = lane_pick as usize % LANES;
        let inputs = net.inputs().to_vec();
        let mut wide = WideSimulator::new(&net).unwrap();
        let mut scalar = Simulator::new(&net).unwrap();
        for cycle in 0..32 {
            let masks: Vec<(NetId, u64)> = inputs
                .iter()
                .map(|&i| (i, rng.gen_range(0..u64::MAX)))
                .collect();
            wide.cycle(&masks).unwrap();
            let drive: Vec<(NetId, bool)> = masks
                .iter()
                .map(|&(i, m)| (i, m >> lane & 1 == 1))
                .collect();
            scalar.cycle(&drive).unwrap();
            for id in net.nets() {
                prop_assert_eq!(
                    wide.value_lane(id, lane),
                    scalar.value(id),
                    "cycle {} lane {} net {}",
                    cycle,
                    lane,
                    net.net_name(id)
                );
            }
        }
    }

    /// The peephole-optimized tape (copy collapse, inverter fusion,
    /// constant folding, phase-aware dead-code elimination) is cycle-by-
    /// cycle lane-identical to the scalar gate-level interpreter on the
    /// preserved observation set — outputs and state elements — of random
    /// netlists under random 64-lane stimulus.
    #[test]
    fn peephole_tape_matches_scalar_simulator(seed in 0u64..10_000, lane_pick in 0u64..64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = random_netlist(&mut rng);
        // Observe a random non-empty subset of nets; everything else may
        // legally go stale under the peephole contract.
        let all: Vec<NetId> = net.nets().collect();
        for _ in 0..rng.gen_range(1usize..5) {
            let pick = all[rng.gen_range(0..all.len())];
            net.mark_output(pick).unwrap();
        }
        let lane = lane_pick as usize % LANES;
        let inputs = net.inputs().to_vec();
        let (prog, stats) = Program::compile_optimized(&net).unwrap();
        prop_assert!(stats.instrs_after <= stats.instrs_before);
        let mut probes: Vec<NetId> = net.outputs().to_vec();
        probes.extend(net.state_elements());
        let mut wide = WideSimulator::from_program(prog);
        let mut scalar = Simulator::new(&net).unwrap();
        for cycle in 0..24 {
            let masks: Vec<(NetId, u64)> = inputs
                .iter()
                .map(|&i| (i, rng.gen_range(0..u64::MAX)))
                .collect();
            wide.cycle(&masks).unwrap();
            let drive: Vec<(NetId, bool)> = masks
                .iter()
                .map(|&(i, m)| (i, m >> lane & 1 == 1))
                .collect();
            scalar.cycle(&drive).unwrap();
            for &id in &probes {
                prop_assert_eq!(
                    wide.value_lane(id, lane),
                    scalar.value(id),
                    "cycle {} lane {} net {}",
                    cycle,
                    lane,
                    net.net_name(id)
                );
            }
        }
    }

    /// The multi-word backend: lane k of a `WideSim<4>` (256 trials per
    /// pass) matches a scalar `Simulator` run driven with lane k's inputs,
    /// on every net of random netlists — trial k lives in word k/64,
    /// bit k%64.
    #[test]
    fn multi_word_lane_matches_scalar_trial(seed in 0u64..10_000, lane_pick in 0u64..256) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(3).wrapping_add(1));
        let net = random_netlist(&mut rng);
        let lane = lane_pick as usize % WideSim::<4>::num_lanes();
        let inputs = net.inputs().to_vec();
        let mut wide = WideSim::<4>::new(&net).unwrap();
        let mut scalar = Simulator::new(&net).unwrap();
        for cycle in 0..16 {
            let words: Vec<(NetId, [u64; 4])> = inputs
                .iter()
                .map(|&i| {
                    (i, [
                        rng.gen_range(0..u64::MAX),
                        rng.gen_range(0..u64::MAX),
                        rng.gen_range(0..u64::MAX),
                        rng.gen_range(0..u64::MAX),
                    ])
                })
                .collect();
            wide.cycle_wide(&words).unwrap();
            let drive: Vec<(NetId, bool)> = words
                .iter()
                .map(|&(i, w)| (i, w[lane / 64] >> (lane % 64) & 1 == 1))
                .collect();
            scalar.cycle(&drive).unwrap();
            for id in net.nets() {
                prop_assert_eq!(
                    wide.lane(id, lane),
                    scalar.value(id),
                    "cycle {} lane {} net {}",
                    cycle,
                    lane,
                    net.net_name(id)
                );
            }
        }
    }

    /// The tri-backend differential over generated topologies: for any
    /// sampled `TopoParams`, the behavioural reference, its DMG-replayed
    /// transfer trace, the compiled execution pipeline and the analytic
    /// min-cycle-ratio bound must all agree (`elastic_circuits::core::gen`).
    /// On failure the counterexample is shrunk to a minimal failing
    /// parameter set before being reported.
    #[test]
    fn generated_topology_differential(seed in 0u64..100_000) {
        use elastic_circuits::core::gen::{
            check_seed, shrink_params, DiffOptions, TopoParams,
        };
        let opts = DiffOptions { cycles: 160, lanes: 2, ..Default::default() };
        if let Err(e) = check_seed(seed, &opts) {
            let minimal = shrink_params(&TopoParams::sample(seed), &opts);
            prop_assert!(false, "differential failed: {e}\nminimal failing params: {minimal:?}");
        }
    }

    /// Generated topologies compile and round-trip through all three
    /// exporters (and the VCD renderer) without panicking — a typed
    /// `NetlistError` is the only acceptable failure mode, and compiled
    /// controllers (flip-flop based, pre-sanitized names) must in fact
    /// export cleanly.
    #[test]
    fn generated_topologies_export_cleanly(seed in 0u64..100_000) {
        use elastic_circuits::core::compile::{compile, CompileOptions};
        use elastic_circuits::core::gen::{generate, TopoParams};
        use elastic_circuits::netlist::export::{to_blif, to_smv, to_verilog};
        use elastic_circuits::netlist::vcd::VcdRecorder;
        let sys = generate(&TopoParams::sample(seed)).unwrap();
        // Early-evaluation guard masks need at least one data bit.
        let opts = CompileOptions {
            lint: false,
            data_width: 2,
            ..CompileOptions::default()
        };
        let compiled = compile(&sys.network, &opts).unwrap();
        let v = to_verilog(&compiled.netlist);
        prop_assert!(v.is_ok(), "verilog export failed: {:?}", v.unwrap_err());
        let b = to_blif(&compiled.netlist);
        prop_assert!(b.is_ok(), "blif export failed: {:?}", b.unwrap_err());
        let s = to_smv(&compiled.netlist);
        prop_assert!(s.is_ok(), "smv export failed: {:?}", s.unwrap_err());
        let vcd = VcdRecorder::new(&compiled.netlist).render();
        prop_assert!(vcd.contains("$enddefinitions"));
    }

    /// With kills enabled, received data is still strictly increasing
    /// (no duplication, no reordering — kills only delete).
    #[test]
    fn kills_only_delete(seed in 0u64..200, kill in 0.05f64..0.5) {
        let (net, _, _) = linear_pipeline(3, 0).unwrap();
        let snk = net.component_by_name("snk").unwrap();
        let mut cfg = EnvConfig::default();
        cfg.sources.insert("src".into(), SourceCfg { rate: 0.8, data: DataGen::Counter });
        cfg.sinks.insert("snk".into(), SinkCfg { stop_prob: 0.2, kill_prob: kill });
        let mut sim = BehavSim::new(&net).unwrap();
        let mut env = RandomEnv::new(seed, cfg);
        sim.run(&mut env, 600).unwrap();
        let got = sim.sink_received(snk);
        for w in got.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// The DSL-built Fig. 9 system is component- and channel-identical to
    /// the seed's imperative construction, in every Table 1 configuration.
    #[test]
    fn dsl_paper_example_isomorphic_to_seed(cfg_idx in 0usize..5) {
        let config = Config::all()[cfg_idx];
        let dsl = paper_example(config).unwrap();
        let imp = paper_example_imperative(config).unwrap();
        if let Err(diff) = isomorphic(&dsl.network, &imp) {
            prop_assert!(false, "{config:?}: {diff}");
        }
    }

    /// Same for the linear pipeline family, over all sensible shapes.
    #[test]
    fn dsl_linear_pipeline_isomorphic_to_seed(stages in 0usize..8, tokens in 0usize..8) {
        let tokens = tokens.min(stages);
        let (net, _, _) = linear_pipeline(stages, tokens).unwrap();
        let imp = linear_pipeline_imperative(stages, tokens).unwrap();
        if let Err(diff) = isomorphic(&net, &imp) {
            prop_assert!(false, "stages={stages} tokens={tokens}: {diff}");
        }
    }
}
