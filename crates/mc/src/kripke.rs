use std::collections::HashMap;

use crate::bitset::StateSet;
use crate::error::McError;

/// Index of a state in a [`Kripke`] model.
pub type StateId = usize;

/// A finite transition system with labelled states, the input to the CTL
/// checker.
///
/// The only graph operation the fixpoint algorithms need is the existential
/// pre-image [`Kripke::pre_exists`]; implementations are free to realize it
/// from explicit edge lists ([`ExplicitKripke`]) or from a transition
/// function (the netlist bridge).
pub trait Kripke {
    /// Number of states.
    fn num_states(&self) -> usize;

    /// The set of initial states.
    fn initial_states(&self) -> StateSet;

    /// `{ s | ∃ t ∈ post(s) : t ∈ target }`.
    fn pre_exists(&self, target: &StateSet) -> StateSet;

    /// Successors of `s`, appended to `out` (used for witness traces).
    fn post(&self, s: StateId, out: &mut Vec<StateId>);

    /// The set of states where the named atomic proposition holds.
    fn atom_set(&self, name: &str) -> Option<StateSet>;

    /// Fairness constraints: each set must be visited infinitely often along
    /// fair paths. Empty means plain CTL semantics.
    fn fairness_sets(&self) -> Vec<StateSet>;

    /// Human-readable rendering of a state, for witnesses. The default just
    /// prints the index.
    fn describe_state(&self, s: StateId) -> String {
        format!("s{s}")
    }
}

/// A Kripke structure stored as explicit adjacency lists.
///
/// # Example
///
/// ```
/// use elastic_mc::ExplicitKripke;
///
/// # fn main() -> Result<(), elastic_mc::McError> {
/// let mut k = ExplicitKripke::new(3);
/// k.add_edge(0, 1);
/// k.add_edge(1, 2);
/// k.add_edge(2, 2);
/// k.set_initial(0);
/// k.set_atom("done", [2])?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ExplicitKripke {
    n: usize,
    initial: Vec<StateId>,
    succ: Vec<Vec<StateId>>,
    atoms: HashMap<String, StateSet>,
    fairness: Vec<StateSet>,
}

impl ExplicitKripke {
    /// Creates a structure with `n` states and no edges.
    pub fn new(n: usize) -> Self {
        ExplicitKripke {
            n,
            initial: Vec::new(),
            succ: vec![Vec::new(); n],
            atoms: HashMap::new(),
            fairness: Vec::new(),
        }
    }

    /// Adds a transition.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: StateId, to: StateId) {
        assert!(from < self.n && to < self.n, "edge endpoint out of range");
        self.succ[from].push(to);
    }

    /// Marks a state initial.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn set_initial(&mut self, s: StateId) {
        assert!(s < self.n, "initial state out of range");
        if !self.initial.contains(&s) {
            self.initial.push(s);
        }
    }

    /// Defines (or redefines) an atom as the set of given states.
    ///
    /// # Errors
    ///
    /// Reserved for future validation; currently always succeeds (kept
    /// fallible so call sites read the same as the netlist-backed bridge).
    ///
    /// # Panics
    ///
    /// Panics if any state index is out of range.
    pub fn set_atom<I: IntoIterator<Item = StateId>>(
        &mut self,
        name: &str,
        states: I,
    ) -> Result<(), McError> {
        let mut set = StateSet::empty(self.n);
        for s in states {
            set.insert(s);
        }
        self.atoms.insert(name.to_string(), set);
        Ok(())
    }

    /// Adds a fairness constraint (a set of states to be visited infinitely
    /// often on fair paths).
    ///
    /// # Panics
    ///
    /// Panics if any state index is out of range.
    pub fn add_fairness<I: IntoIterator<Item = StateId>>(&mut self, states: I) {
        let mut set = StateSet::empty(self.n);
        for s in states {
            set.insert(s);
        }
        self.fairness.push(set);
    }
}

impl Kripke for ExplicitKripke {
    fn num_states(&self) -> usize {
        self.n
    }

    fn initial_states(&self) -> StateSet {
        let mut s = StateSet::empty(self.n);
        for &i in &self.initial {
            s.insert(i);
        }
        s
    }

    fn pre_exists(&self, target: &StateSet) -> StateSet {
        let mut out = StateSet::empty(self.n);
        for s in 0..self.n {
            if self.succ[s].iter().any(|&t| target.contains(t)) {
                out.insert(s);
            }
        }
        out
    }

    fn post(&self, s: StateId, out: &mut Vec<StateId>) {
        out.extend_from_slice(&self.succ[s]);
    }

    fn atom_set(&self, name: &str) -> Option<StateSet> {
        self.atoms.get(name).cloned()
    }

    fn fairness_sets(&self) -> Vec<StateSet> {
        self.fairness.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> ExplicitKripke {
        let mut k = ExplicitKripke::new(3);
        k.add_edge(0, 1);
        k.add_edge(1, 2);
        k.add_edge(2, 2);
        k.set_initial(0);
        k
    }

    #[test]
    fn pre_image() {
        let k = chain();
        let mut t = StateSet::empty(3);
        t.insert(2);
        let pre = k.pre_exists(&t);
        assert!(pre.contains(1) && pre.contains(2) && !pre.contains(0));
    }

    #[test]
    fn initial_and_atoms() {
        let mut k = chain();
        k.set_atom("p", [0, 2]).unwrap();
        assert!(k.initial_states().contains(0));
        let p = k.atom_set("p").unwrap();
        assert_eq!(p.iter().collect::<Vec<_>>(), vec![0, 2]);
        assert!(k.atom_set("q").is_none());
    }

    #[test]
    fn post_lists_successors() {
        let k = chain();
        let mut out = Vec::new();
        k.post(1, &mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        let mut k = ExplicitKripke::new(1);
        k.add_edge(0, 5);
    }
}
