use std::fmt;

/// Errors from parsing or checking CTL properties.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum McError {
    /// The formula references an atom the model does not define.
    UnknownAtom(String),
    /// Formula text failed to parse; carries position and message.
    Parse {
        /// Byte offset of the offending token.
        at: usize,
        /// Human-readable description.
        message: String,
    },
    /// The model has no states or no initial states.
    EmptyModel,
    /// The netlist bridge hit its state or input budget.
    Budget {
        /// What was exhausted ("states" or "inputs").
        what: &'static str,
        /// The configured limit.
        limit: usize,
    },
    /// Underlying netlist error (bridge only).
    Netlist(String),
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::UnknownAtom(a) => write!(f, "unknown atom {a:?}"),
            McError::Parse { at, message } => write!(f, "parse error at byte {at}: {message}"),
            McError::EmptyModel => write!(f, "model has no (initial) states"),
            McError::Budget { what, limit } => {
                write!(f, "exploration exceeded {what} budget of {limit}")
            }
            McError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for McError {}

impl From<elastic_netlist::NetlistError> for McError {
    fn from(e: elastic_netlist::NetlistError) -> Self {
        McError::Netlist(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(McError::UnknownAtom("vp".into()).to_string().contains("vp"));
        let e = McError::Parse {
            at: 3,
            message: "expected ')'".into(),
        };
        assert!(e.to_string().contains("byte 3"));
    }
}
