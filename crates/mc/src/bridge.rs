//! Bridge from gate-level netlists to Kripke structures.
//!
//! Primary inputs of the netlist are treated as free (nondeterministic)
//! environment variables, exactly like `VAR`s in an SMV model: a Kripke
//! state is a pair *(flip-flop state, input valuation)* and every state has
//! one successor per input valuation of the next cycle. Every *named* net
//! becomes an atomic proposition, evaluated on the settled combinational
//! valuation of the pair.
//!
//! Fairness constraints are given as net names: the set of pairs where the
//! net is true must recur on fair paths (used for "the environment offers
//! data / accepts data infinitely often" when checking liveness).

use std::collections::HashMap;

use elastic_netlist::sim::Simulator;
use elastic_netlist::Netlist;

use crate::bitset::StateSet;
use crate::error::McError;
use crate::kripke::{Kripke, StateId};

/// Budgets for the exhaustive exploration.
#[derive(Debug, Clone, Copy)]
pub struct BridgeOptions {
    /// Maximum number of distinct flip-flop states.
    pub max_ff_states: usize,
    /// Maximum number of primary inputs (the input alphabet is `2^inputs`).
    pub max_inputs: usize,
}

impl Default for BridgeOptions {
    fn default() -> Self {
        BridgeOptions {
            max_ff_states: 1 << 20,
            max_inputs: 14,
        }
    }
}

/// A Kripke structure backed by the reachable state space of a netlist.
#[derive(Debug, Clone)]
pub struct NetlistKripke {
    /// Number of input valuations (`2^k`).
    combos: usize,
    /// Successor flip-flop state per pair, indexed `ff_idx * combos + i`.
    delta: Vec<u32>,
    /// Atom sets over pairs, one per named net.
    atoms: HashMap<String, StateSet>,
    /// Fairness sets over pairs.
    fairness: Vec<StateSet>,
    /// Stored flip-flop states (for state descriptions in witnesses).
    ff_states: Vec<Vec<bool>>,
    /// Names of the state nets and input nets, for descriptions.
    state_names: Vec<String>,
    input_names: Vec<String>,
}

impl NetlistKripke {
    /// Number of distinct flip-flop states discovered.
    pub fn num_ff_states(&self) -> usize {
        self.ff_states.len()
    }

    /// Decomposes a pair id into (flip-flop state index, input index).
    fn split(&self, s: StateId) -> (usize, usize) {
        (s / self.combos, s % self.combos)
    }

    /// Self-stabilization convergence analysis for a netlist carrying
    /// fault-arm inputs (primary inputs named `fault.*`, as spliced by
    /// `elastic_core::compile` for each corruption site).
    ///
    /// The structure's flip-flop states were explored under *all* input
    /// valuations, arms included, so they are exactly the fault-reachable
    /// states. The **legal** set is re-derived as the states reachable
    /// from reset with every arm held low. Convergence then asks: from
    /// every fault-reachable state, does *every* fault-free run (arms low,
    /// environment still adversarial) re-enter the legal set? A state
    /// diverges iff it can start an infinite arm-low run that avoids the
    /// legal set forever — the greatest fixpoint of "outside the legal set
    /// with some arm-low successor still inside the fixpoint". When no
    /// state diverges, the protocol is self-stabilizing in the closure
    /// sense (the legal set is closed under arm-low transitions by
    /// construction) and [`ConvergenceReport::convergence_bound`] is the
    /// worst-case number of fault-free cycles back to legality.
    ///
    /// A netlist without `fault.*` inputs is trivially converging: every
    /// reachable state is legal.
    pub fn convergence_report(&self) -> ConvergenceReport {
        let fault_bits: Vec<usize> = self
            .input_names
            .iter()
            .enumerate()
            .filter(|(_, n)| n.starts_with("fault."))
            .map(|(i, _)| i)
            .collect();
        let arm_mask: usize = fault_bits.iter().map(|&b| 1usize << b).sum();
        let clean: Vec<usize> = (0..self.combos).filter(|c| c & arm_mask == 0).collect();
        let nff = self.ff_states.len();

        // Legal set: BFS from reset over arm-low transitions only.
        let mut legal = vec![false; nff];
        let mut queue = vec![0usize];
        legal[0] = true;
        while let Some(s) = queue.pop() {
            for &c in &clean {
                let t = self.delta[s * self.combos + c] as usize;
                if !legal[t] {
                    legal[t] = true;
                    queue.push(t);
                }
            }
        }
        let legal_count = legal.iter().filter(|&&l| l).count();

        // Backward closure: level[s] = worst-case arm-low cycles until the
        // run is inside the legal set, for every environment choice. A
        // state joins level k+1 once all its arm-low successors sit at
        // level <= k; states that never join can sustain an infinite
        // illegal arm-low run — they diverge.
        let mut level = vec![None::<usize>; nff];
        for (s, &l) in legal.iter().enumerate() {
            if l {
                level[s] = Some(0);
            }
        }
        let mut bound = 0usize;
        loop {
            let mut changed = false;
            for s in 0..nff {
                if level[s].is_some() {
                    continue;
                }
                let worst = clean
                    .iter()
                    .map(|&c| level[self.delta[s * self.combos + c] as usize])
                    .try_fold(0usize, |acc, l| l.map(|l| acc.max(l)));
                if let Some(w) = worst {
                    level[s] = Some(w + 1);
                    bound = bound.max(w + 1);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let diverging = level.iter().filter(|l| l.is_none()).count();
        ConvergenceReport {
            ff_states: nff,
            legal: legal_count,
            diverging,
            converging: diverging == 0,
            convergence_bound: bound,
            fault_inputs: fault_bits.len(),
        }
    }
}

/// Verdict of [`NetlistKripke::convergence_report`]: does the protocol
/// re-enter its legal `(I*R*T)*` state set from every fault-reachable
/// state once the fault arms go quiet?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// Fault-reachable flip-flop states (explored under all arm values).
    pub ff_states: usize,
    /// States reachable from reset with every arm held low.
    pub legal: usize,
    /// States from which some fault-free run avoids the legal set forever.
    pub diverging: usize,
    /// `diverging == 0`: the network is self-stabilizing under this fault
    /// set.
    pub converging: bool,
    /// Worst-case fault-free cycles from any fault-reachable state back
    /// into the legal set (0 when every reachable state is legal).
    pub convergence_bound: usize,
    /// Number of `fault.*` arm inputs found.
    pub fault_inputs: usize,
}

/// Explores the reachable states of `netlist` under all input sequences and
/// builds the Kripke structure.
///
/// Every named net becomes an atom; `fairness_nets` lists net names whose
/// truth must recur along fair paths.
///
/// # Errors
///
/// * [`McError::Budget`] when the input count or state budget is exceeded;
/// * [`McError::UnknownAtom`] when a fairness net name does not exist;
/// * [`McError::Netlist`] for netlist construction errors (unbound state,
///   combinational cycles, oscillation).
pub fn netlist_kripke(
    netlist: &Netlist,
    fairness_nets: &[&str],
    opts: BridgeOptions,
) -> Result<NetlistKripke, McError> {
    let num_inputs = netlist.inputs().len();
    if num_inputs > opts.max_inputs {
        return Err(McError::Budget {
            what: "inputs",
            limit: opts.max_inputs,
        });
    }
    // The alphabet is 2^inputs; a raised `max_inputs` must not turn into a
    // shift-overflow panic once the input count reaches the word width
    // (`1usize << 64` aborts in debug builds). Anything wide enough to
    // overflow the shift is unexplorable anyway, so it is the same typed
    // budget violation.
    let combos = if num_inputs < usize::BITS as usize {
        1usize << num_inputs
    } else {
        return Err(McError::Budget {
            what: "inputs",
            limit: opts.max_inputs.min(usize::BITS as usize - 1),
        });
    };
    let mut sim = Simulator::new(netlist)?;
    let inputs: Vec<_> = netlist.inputs().to_vec();
    let named: Vec<(String, _)> = netlist
        .named_nets()
        .into_iter()
        .map(|(s, n)| (s.to_string(), n))
        .collect();
    for f in fairness_nets {
        if !named.iter().any(|(n, _)| n == f) {
            return Err(McError::UnknownAtom((*f).to_string()));
        }
    }

    // Pass 1: BFS over flip-flop states; record successor and atom bits per
    // (state, input) pair.
    let initial = sim.state();
    let mut index: HashMap<Vec<bool>, usize> = HashMap::new();
    let mut ff_states = vec![initial.clone()];
    index.insert(initial, 0);
    // labels[pair] -> bitmask over named nets is too wide; store per-atom
    // pair lists instead.
    let mut atom_pairs: Vec<Vec<usize>> = vec![Vec::new(); named.len()];
    let mut delta: Vec<u32> = Vec::new();
    let mut frontier = 0usize;
    while frontier < ff_states.len() {
        let state = ff_states[frontier].clone();
        for combo in 0..combos {
            sim.load_state(&state)?;
            for (bit, &inp) in inputs.iter().enumerate() {
                sim.set_input(inp, combo >> bit & 1 == 1)?;
            }
            sim.settle()?;
            let pair = frontier * combos + combo;
            debug_assert_eq!(delta.len(), pair);
            for (ai, (_, net)) in named.iter().enumerate() {
                if sim.value(*net) {
                    atom_pairs[ai].push(pair);
                }
            }
            let next = sim.next_state();
            let ni = match index.get(&next) {
                Some(&i) => i,
                None => {
                    let i = ff_states.len();
                    if i >= opts.max_ff_states {
                        return Err(McError::Budget {
                            what: "states",
                            limit: opts.max_ff_states,
                        });
                    }
                    index.insert(next.clone(), i);
                    ff_states.push(next);
                    i
                }
            };
            delta.push(ni as u32);
        }
        frontier += 1;
    }

    let n_pairs = ff_states.len() * combos;
    let mut atoms = HashMap::new();
    for (ai, (name, _)) in named.iter().enumerate() {
        let mut set = StateSet::empty(n_pairs);
        for &p in &atom_pairs[ai] {
            set.insert(p);
        }
        atoms.insert(name.clone(), set);
    }
    let fairness = fairness_nets
        .iter()
        .map(|f| atoms.get(*f).expect("validated above").clone())
        .collect();
    let state_names = sim
        .state_nets()
        .iter()
        .map(|&n| netlist.net_name(n))
        .collect();
    let input_names = inputs.iter().map(|&n| netlist.net_name(n)).collect();
    Ok(NetlistKripke {
        combos,
        delta,
        atoms,
        fairness,
        ff_states,
        state_names,
        input_names,
    })
}

impl Kripke for NetlistKripke {
    fn num_states(&self) -> usize {
        self.delta.len()
    }

    fn initial_states(&self) -> StateSet {
        let mut s = StateSet::empty(self.num_states());
        for i in 0..self.combos {
            s.insert(i); // pairs (ff-state 0, every input valuation)
        }
        s
    }

    fn pre_exists(&self, target: &StateSet) -> StateSet {
        // g[s'] = some pair (s', *) is in target.
        let nff = self.ff_states.len();
        let mut g = vec![false; nff];
        for p in target.iter() {
            g[p / self.combos] = true;
        }
        let mut out = StateSet::empty(self.num_states());
        for (p, &succ) in self.delta.iter().enumerate() {
            if g[succ as usize] {
                out.insert(p);
            }
        }
        out
    }

    fn post(&self, s: StateId, out: &mut Vec<StateId>) {
        let succ = self.delta[s] as usize;
        out.extend((0..self.combos).map(|i| succ * self.combos + i));
    }

    fn atom_set(&self, name: &str) -> Option<StateSet> {
        self.atoms.get(name).cloned()
    }

    fn fairness_sets(&self) -> Vec<StateSet> {
        self.fairness.clone()
    }

    fn describe_state(&self, s: StateId) -> String {
        let (ff, combo) = self.split(s);
        let bits = &self.ff_states[ff];
        let regs: Vec<String> = self
            .state_names
            .iter()
            .zip(bits)
            .map(|(n, &b)| format!("{n}={}", u8::from(b)))
            .collect();
        let ins: Vec<String> = self
            .input_names
            .iter()
            .enumerate()
            .map(|(i, n)| format!("{n}={}", u8::from(combo >> i & 1 == 1)))
            .collect();
        format!("[{} | {}]", regs.join(" "), ins.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check, check_fair};
    use crate::parse;
    use elastic_netlist::Netlist;

    /// One-bit handshake: req input; grant FF follows req one cycle later.
    fn follower() -> Netlist {
        let mut n = Netlist::new("follower");
        let req = n.input("req");
        let grant = n.dff_bound(req, false);
        n.set_name(grant, "grant").unwrap();
        n
    }

    #[test]
    fn follower_properties() {
        let k = netlist_kripke(&follower(), &[], BridgeOptions::default()).unwrap();
        assert_eq!(k.num_ff_states(), 2);
        assert_eq!(k.num_states(), 4);
        let f = parse("AG (req -> AX grant)").unwrap();
        assert!(check(&k, &f).unwrap().holds());
        // The input valuation is part of the state (SMV-style), so
        // grant & !req deterministically loses the grant next cycle...
        let g = parse("AG ((grant & req) -> AX grant)").unwrap();
        assert!(check(&k, &g).unwrap().holds());
        // ...and `EX grant` fails from (grant, req=0) pairs.
        let ng = parse("AG (grant -> EX grant)").unwrap();
        assert!(!check(&k, &ng).unwrap().holds());
        let h = parse("AG grant").unwrap();
        assert!(!check(&k, &h).unwrap().holds());
    }

    #[test]
    fn liveness_needs_fairness() {
        let n = follower();
        let free = netlist_kripke(&n, &[], BridgeOptions::default()).unwrap();
        let live = parse("AG AF grant").unwrap();
        assert!(
            !check(&free, &live).unwrap().holds(),
            "env may never request"
        );
        let fair = netlist_kripke(&n, &["req"], BridgeOptions::default()).unwrap();
        assert!(check_fair(&fair, &live).unwrap().holds());
    }

    #[test]
    fn unknown_fairness_net() {
        let e = netlist_kripke(&follower(), &["nope"], BridgeOptions::default()).unwrap_err();
        assert_eq!(e, McError::UnknownAtom("nope".into()));
    }

    #[test]
    fn input_budget_enforced() {
        let mut n = Netlist::new("wide");
        for i in 0..4 {
            n.input(format!("i{i}"));
        }
        let e = netlist_kripke(
            &n,
            &[],
            BridgeOptions {
                max_ff_states: 10,
                max_inputs: 3,
            },
        )
        .unwrap_err();
        assert!(matches!(e, McError::Budget { what: "inputs", .. }));
    }

    #[test]
    fn word_width_inputs_are_a_typed_budget_error_not_a_shift_panic() {
        // Regression: raising `max_inputs` past the word width used to hit
        // `1usize << 64` and abort. The wide netlist is rejected with a
        // typed budget error before any exploration is attempted.
        let mut n = Netlist::new("very_wide");
        for i in 0..usize::BITS as usize {
            n.input(format!("i{i}"));
        }
        let e = netlist_kripke(
            &n,
            &[],
            BridgeOptions {
                max_ff_states: 4,
                max_inputs: usize::MAX,
            },
        )
        .unwrap_err();
        assert!(matches!(e, McError::Budget { what: "inputs", .. }), "{e:?}");
    }

    #[test]
    fn state_descriptions_mention_nets() {
        let n = follower();
        let k = netlist_kripke(&n, &[], BridgeOptions::default()).unwrap();
        let d = k.describe_state(1);
        assert!(d.contains("grant=0"), "{d}");
        assert!(d.contains("req=1"), "{d}");
    }

    #[test]
    fn convergence_trivial_without_fault_arms() {
        let k = netlist_kripke(&follower(), &[], BridgeOptions::default()).unwrap();
        let r = k.convergence_report();
        assert_eq!(r.fault_inputs, 0);
        assert!(r.converging);
        assert_eq!(r.diverging, 0);
        assert_eq!(r.legal, r.ff_states);
        assert_eq!(r.convergence_bound, 0);
    }

    #[test]
    fn convergence_of_a_self_draining_corruption() {
        // A 2-bit shift chain fed by the fault arm: while armed the chain
        // fills with illegal state, once the arm drops the ones drain out
        // in two cycles — self-stabilizing with convergence bound 2.
        let mut n = Netlist::new("drain");
        let arm = n.input("fault.c.vp");
        let b0 = n.dff_bound(arm, false);
        let b1 = n.dff_bound(b0, false);
        n.set_name(b0, "b0").unwrap();
        n.set_name(b1, "b1").unwrap();
        let k = netlist_kripke(&n, &[], BridgeOptions::default()).unwrap();
        let r = k.convergence_report();
        assert_eq!(r.fault_inputs, 1);
        assert_eq!(r.ff_states, 4, "arm reaches all four chain states");
        assert_eq!(r.legal, 1, "arm-low from reset stays at 00");
        assert!(r.converging, "{r:?}");
        assert_eq!(r.convergence_bound, 2, "two cycles to flush the chain");
    }

    #[test]
    fn convergence_detects_a_latching_fault() {
        // A sticky bit: once the arm has set it, it feeds itself and never
        // clears — the corrupted state survives arbitrarily long fault-free
        // operation, so the netlist is NOT self-stabilizing.
        let mut n = Netlist::new("sticky");
        let arm = n.input("fault.c.vp");
        let bit = n.dff(false);
        let d = n.or([bit, arm]);
        n.bind_dff(bit, d).unwrap();
        n.set_name(bit, "stuck").unwrap();
        let k = netlist_kripke(&n, &[], BridgeOptions::default()).unwrap();
        let r = k.convergence_report();
        assert_eq!(r.ff_states, 2);
        assert_eq!(r.legal, 1);
        assert_eq!(r.diverging, 1, "the latched state never re-legalizes");
        assert!(!r.converging);
    }

    #[test]
    fn counter_reaches_all_states() {
        // 2-bit counter: 4 ff states, no inputs.
        let mut n = Netlist::new("counter");
        let b0 = n.dff(false);
        let b1 = n.dff(false);
        let nb0 = n.not(b0);
        let carry = b0;
        let d1 = n.xor(b1, carry);
        n.bind_dff(b0, nb0).unwrap();
        n.bind_dff(b1, d1).unwrap();
        n.set_name(b0, "b0").unwrap();
        n.set_name(b1, "b1").unwrap();
        let k = netlist_kripke(&n, &[], BridgeOptions::default()).unwrap();
        assert_eq!(k.num_ff_states(), 4);
        let f = parse("AG AF (b1 & b0)").unwrap();
        assert!(check(&k, &f).unwrap().holds());
    }
}
