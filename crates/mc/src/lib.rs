//! Explicit-state CTL model checking with fairness.
//!
//! The paper verifies its elastic controllers with NuSMV: protocol
//! persistence, channel invariants and liveness as CTL formulae, plus a
//! data-correctness harness (Sect. 5). This crate is the stand-in checker:
//!
//! * [`StateSet`] — a dense bit-set over state indices,
//! * [`Kripke`] — the transition-system interface, with an explicit
//!   implementation ([`ExplicitKripke`]) and a bridge from gate-level
//!   netlists ([`netlist_kripke`]) that treats primary inputs as
//!   nondeterministic environment variables (NuSMV-style),
//! * [`Ctl`] — formula AST with a text [`parser`],
//! * [`check`] / [`check_fair`] — fixpoint evaluation, with Emerson–Lei
//!   fair-CTL semantics for liveness under fairness constraints,
//! * witness extraction for failed universal properties.
//!
//! # Example
//!
//! ```
//! use elastic_mc::{check, parse, ExplicitKripke};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two states toggling forever; atom "p" holds in state 0 only.
//! let mut k = ExplicitKripke::new(2);
//! k.add_edge(0, 1);
//! k.add_edge(1, 0);
//! k.set_initial(0);
//! k.set_atom("p", [0])?;
//!
//! let f = parse("AG (p -> AX !p)")?;
//! assert!(check(&k, &f)?.holds());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod bitset;
mod bridge;
mod checker;
mod ctl;
mod error;
mod kripke;

pub mod parser;

pub use bitset::StateSet;
pub use bridge::{netlist_kripke, BridgeOptions, ConvergenceReport, NetlistKripke};
pub use checker::{check, check_fair, witness_to, CheckResult};
pub use ctl::Ctl;
pub use error::McError;
pub use kripke::{ExplicitKripke, Kripke, StateId};
pub use parser::parse;
