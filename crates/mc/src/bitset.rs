use std::fmt;

/// A dense bit-set over state indices `0..len`.
///
/// The work-horse of the fixpoint algorithms: all CTL operators reduce to
/// unions, intersections, complements and pre-image computations over these
/// sets.
#[derive(Clone, PartialEq, Eq)]
pub struct StateSet {
    blocks: Vec<u64>,
    len: usize,
}

impl StateSet {
    /// Empty set over a universe of `len` states.
    pub fn empty(len: usize) -> Self {
        StateSet {
            blocks: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Full set over a universe of `len` states.
    pub fn full(len: usize) -> Self {
        let mut s = StateSet {
            blocks: vec![!0u64; len.div_ceil(64)],
            len,
        };
        s.trim();
        s
    }

    fn trim(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Inserts state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= universe()`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "state {i} outside universe {}", self.len);
        self.blocks[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= universe()`.
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "state {i} outside universe {}", self.len);
        self.blocks[i / 64] &= !(1u64 << (i % 64));
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.blocks[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of states in the set.
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch.
    pub fn union_with(&mut self, other: &StateSet) {
        assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// In-place intersection.
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch.
    pub fn intersect_with(&mut self, other: &StateSet) {
        assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch.
    pub fn subtract(&mut self, other: &StateSet) {
        assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
    }

    /// Complement within the universe.
    pub fn complement(&self) -> StateSet {
        let mut out = self.clone();
        for b in &mut out.blocks {
            *b = !*b;
        }
        out.trim();
        out
    }

    /// Whether `self ⊆ other`.
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch.
    pub fn is_subset(&self, other: &StateSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over member state indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(move |(bi, &block)| {
                let mut b = block;
                std::iter::from_fn(move || {
                    if b == 0 {
                        None
                    } else {
                        let t = b.trailing_zeros() as usize;
                        b &= b - 1;
                        Some(bi * 64 + t)
                    }
                })
            })
    }
}

impl FromIterator<usize> for StateSet {
    /// Collects indices into a set whose universe is `max + 1`.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |m| m + 1);
        let mut s = StateSet::empty(len);
        for i in items {
            s.insert(i);
        }
        s
    }
}

impl fmt::Debug for StateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StateSet{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
            if k > 20 {
                write!(f, ",…")?;
                break;
            }
        }
        write!(f, "}}/{}", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = StateSet::empty(100);
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(99);
        assert!(s.contains(63) && s.contains(64));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 4);
        s.remove(63);
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn full_and_complement_respect_universe() {
        let f = StateSet::full(70);
        assert_eq!(f.count(), 70);
        let e = f.complement();
        assert!(e.is_empty());
        assert_eq!(e.complement().count(), 70);
    }

    #[test]
    fn set_algebra() {
        let a: StateSet = [1usize, 2, 3].into_iter().collect();
        let mut b = StateSet::empty(a.universe());
        b.insert(3);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 3);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3]);
        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 2]);
        assert!(b.is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn iteration_order() {
        let s: StateSet = [65usize, 2, 130].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 65, 130]);
    }

    #[test]
    #[should_panic(expected = "universe")]
    fn universe_mismatch_panics() {
        let mut a = StateSet::empty(10);
        let b = StateSet::empty(20);
        a.union_with(&b);
    }
}
