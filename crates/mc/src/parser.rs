//! Text syntax for CTL formulae.
//!
//! Grammar (lowest precedence first):
//!
//! ```text
//! imp    := or ( "->" imp )?
//! or     := and ( "|" and )*
//! and    := unary ( "&" unary )*
//! unary  := "!" unary
//!         | ("AG"|"AF"|"AX"|"EG"|"EF"|"EX") unary
//!         | "A[" imp "U" imp "]" | "E[" imp "U" imp "]"
//!         | "(" imp ")" | "true" | "false" | atom
//! atom   := [A-Za-z_][A-Za-z0-9_.+-]*
//! ```
//!
//! Atom names may contain `.`, `+` and `-` after the first character so the
//! controller nets (`c0.v+`, `F3->W.kill`) can be referenced directly;
//! `->` only acts as implication when surrounded by whitespace or when the
//! left side is a complete formula — in practice, quote-free channel names
//! use `_` in generated netlists, so the overlap does not arise.

use crate::ctl::Ctl;
use crate::error::McError;

/// Parses a CTL formula from text.
///
/// # Errors
///
/// [`McError::Parse`] with a byte offset and message on malformed input.
///
/// # Example
///
/// ```
/// let f = elastic_mc::parse("AG AF ((vp & !sp) | (vn & !sn))")?;
/// assert_eq!(f.atoms(), vec!["sn", "sp", "vn", "vp"]);
/// # Ok::<(), elastic_mc::McError>(())
/// ```
pub fn parse(text: &str) -> Result<Ctl, McError> {
    let mut p = Parser {
        text: text.as_bytes(),
        pos: 0,
    };
    let f = p.imp()?;
    p.skip_ws();
    if p.pos != p.text.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(f)
}

struct Parser<'a> {
    text: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> McError {
        McError::Parse {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.text.len() && self.text[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.text.get(self.pos).copied()
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.text[self.pos..].starts_with(tok.as_bytes()) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn imp(&mut self) -> Result<Ctl, McError> {
        let lhs = self.or()?;
        if self.eat("->") {
            let rhs = self.imp()?;
            return Ok(Ctl::imp(lhs, rhs));
        }
        Ok(lhs)
    }

    fn or(&mut self) -> Result<Ctl, McError> {
        let mut lhs = self.and()?;
        loop {
            self.skip_ws();
            // Don't confuse `|` with nothing else; single char.
            if self.peek() == Some(b'|') {
                self.pos += 1;
                let rhs = self.and()?;
                lhs = Ctl::or(lhs, rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn and(&mut self) -> Result<Ctl, McError> {
        let mut lhs = self.unary()?;
        loop {
            self.skip_ws();
            if self.peek() == Some(b'&') {
                self.pos += 1;
                let rhs = self.unary()?;
                lhs = Ctl::and(lhs, rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary(&mut self) -> Result<Ctl, McError> {
        self.skip_ws();
        if self.eat("!") {
            return Ok(Ctl::not(self.unary()?));
        }
        // Temporal operators: letter pairs followed by a non-ident char.
        for (tok, ctor) in [
            ("AG", Ctl::ag as fn(Ctl) -> Ctl),
            ("AF", Ctl::af),
            ("AX", Ctl::ax),
            ("EG", Ctl::eg),
            ("EF", Ctl::ef),
            ("EX", Ctl::ex),
        ] {
            if self.text[self.pos..].starts_with(tok.as_bytes()) {
                let after = self.text.get(self.pos + 2).copied();
                if !after.is_some_and(is_ident_char) {
                    self.pos += 2;
                    return Ok(ctor(self.unary()?));
                }
            }
        }
        // Until forms.
        for (tok, all) in [("A[", true), ("E[", false)] {
            if self.text[self.pos..].starts_with(tok.as_bytes()) {
                self.pos += 2;
                let a = self.imp()?;
                self.skip_ws();
                if !self.eat("U") {
                    return Err(self.err("expected 'U' in until formula"));
                }
                let b = self.imp()?;
                self.skip_ws();
                if !self.eat("]") {
                    return Err(self.err("expected ']' closing until formula"));
                }
                return Ok(if all { Ctl::au(a, b) } else { Ctl::eu(a, b) });
            }
        }
        if self.eat("(") {
            let f = self.imp()?;
            self.skip_ws();
            if !self.eat(")") {
                return Err(self.err("expected ')'"));
            }
            return Ok(f);
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Ctl, McError> {
        self.skip_ws();
        let start = self.pos;
        if self.pos >= self.text.len() {
            return Err(self.err("expected a formula"));
        }
        let first = self.text[self.pos];
        if !(first.is_ascii_alphabetic() || first == b'_') {
            return Err(self.err("expected an atom, '(', '!', or a temporal operator"));
        }
        self.pos += 1;
        while self.pos < self.text.len() && is_ident_char(self.text[self.pos]) {
            // stop before "->" so implication still parses
            if self.text[self.pos] == b'-' && self.text.get(self.pos + 1) == Some(&b'>') {
                break;
            }
            self.pos += 1;
        }
        let name = std::str::from_utf8(&self.text[start..self.pos])
            .map_err(|_| self.err("atom is not valid utf-8"))?;
        Ok(match name {
            "true" => Ctl::Const(true),
            "false" => Ctl::Const(false),
            _ => Ctl::atom(name),
        })
    }
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, b'_' | b'.' | b'+' | b'-')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_properties() {
        // The four channel properties of Sect. 5.
        let retry_plus = parse("AG ((vp & sp) -> AX vp)").unwrap();
        assert_eq!(retry_plus.to_string(), "AG (vp & sp -> AX vp)");
        parse("AG ((vn & sn) -> AX vn)").unwrap();
        parse("AG ((!vn | !sp) & (!vp | !sn))").unwrap();
        parse("AG AF ((vp & !sp) | (vn & !sn))").unwrap();
    }

    #[test]
    fn operator_precedence() {
        let f = parse("a & b | c -> d").unwrap();
        assert_eq!(f.to_string(), "a & b | c -> d");
        // -> is right-associative
        let g = parse("a -> b -> c").unwrap();
        assert_eq!(g.to_string(), "a -> b -> c");
    }

    #[test]
    fn until_forms() {
        let f = parse("E[a U b] & A[c U d]").unwrap();
        assert_eq!(f.to_string(), "E[a U b] & A[c U d]");
    }

    #[test]
    fn constants() {
        assert_eq!(parse("true").unwrap(), Ctl::Const(true));
        assert_eq!(parse("false").unwrap(), Ctl::Const(false));
    }

    #[test]
    fn atom_with_dots_and_plus() {
        let f = parse("c0.v+").unwrap();
        assert_eq!(f, Ctl::atom("c0.v+"));
    }

    #[test]
    fn atom_stops_before_arrow() {
        let f = parse("a->b").unwrap();
        assert_eq!(f.to_string(), "a -> b");
    }

    #[test]
    fn errors_carry_position() {
        let e = parse("AG (").unwrap_err();
        match e {
            McError::Parse { at, .. } => assert!(at >= 4),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("").is_err());
        assert!(parse("a b").is_err());
        assert!(parse("E[a b]").is_err());
    }

    #[test]
    fn temporal_prefix_of_identifier_is_an_atom() {
        // "AGx" is an atom, not AG applied to x.
        let f = parse("AGx").unwrap();
        assert_eq!(f, Ctl::atom("AGx"));
    }
}
