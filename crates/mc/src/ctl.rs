use std::fmt;
use std::sync::Arc;

/// A CTL formula.
///
/// Build formulae either programmatically with the constructor methods or
/// from text with [`crate::parse`]. Sub-formulae are shared via [`Arc`] so
/// large properties stay cheap to clone.
///
/// # Example
///
/// ```
/// use elastic_mc::Ctl;
///
/// let retry = Ctl::ag(Ctl::imp(
///     Ctl::and(Ctl::atom("v"), Ctl::atom("s")),
///     Ctl::ax(Ctl::atom("v")),
/// ));
/// assert_eq!(retry.to_string(), "AG (v & s -> AX v)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ctl {
    /// Constant truth value.
    Const(bool),
    /// Atomic proposition, named after a model label (a net name for
    /// netlist-backed models).
    Atom(String),
    /// Negation.
    Not(Arc<Ctl>),
    /// Conjunction.
    And(Arc<Ctl>, Arc<Ctl>),
    /// Disjunction.
    Or(Arc<Ctl>, Arc<Ctl>),
    /// Implication.
    Imp(Arc<Ctl>, Arc<Ctl>),
    /// There is a successor where the operand holds.
    Ex(Arc<Ctl>),
    /// The operand holds in every successor.
    Ax(Arc<Ctl>),
    /// Some path eventually satisfies the operand.
    Ef(Arc<Ctl>),
    /// Every path eventually satisfies the operand.
    Af(Arc<Ctl>),
    /// Some path globally satisfies the operand.
    Eg(Arc<Ctl>),
    /// Every path globally satisfies the operand.
    Ag(Arc<Ctl>),
    /// Exists a path where the first operand holds until the second does.
    Eu(Arc<Ctl>, Arc<Ctl>),
    /// On all paths the first operand holds until the second does.
    Au(Arc<Ctl>, Arc<Ctl>),
}

impl Ctl {
    /// Atomic proposition.
    pub fn atom(name: impl Into<String>) -> Ctl {
        Ctl::Atom(name.into())
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Ctl) -> Ctl {
        Ctl::Not(Arc::new(f))
    }

    /// Conjunction.
    pub fn and(a: Ctl, b: Ctl) -> Ctl {
        Ctl::And(Arc::new(a), Arc::new(b))
    }

    /// Disjunction.
    pub fn or(a: Ctl, b: Ctl) -> Ctl {
        Ctl::Or(Arc::new(a), Arc::new(b))
    }

    /// Implication.
    pub fn imp(a: Ctl, b: Ctl) -> Ctl {
        Ctl::Imp(Arc::new(a), Arc::new(b))
    }

    /// `EX f`.
    pub fn ex(f: Ctl) -> Ctl {
        Ctl::Ex(Arc::new(f))
    }

    /// `AX f`.
    pub fn ax(f: Ctl) -> Ctl {
        Ctl::Ax(Arc::new(f))
    }

    /// `EF f`.
    pub fn ef(f: Ctl) -> Ctl {
        Ctl::Ef(Arc::new(f))
    }

    /// `AF f`.
    pub fn af(f: Ctl) -> Ctl {
        Ctl::Af(Arc::new(f))
    }

    /// `EG f`.
    pub fn eg(f: Ctl) -> Ctl {
        Ctl::Eg(Arc::new(f))
    }

    /// `AG f`.
    pub fn ag(f: Ctl) -> Ctl {
        Ctl::Ag(Arc::new(f))
    }

    /// `E[a U b]`.
    pub fn eu(a: Ctl, b: Ctl) -> Ctl {
        Ctl::Eu(Arc::new(a), Arc::new(b))
    }

    /// `A[a U b]`.
    pub fn au(a: Ctl, b: Ctl) -> Ctl {
        Ctl::Au(Arc::new(a), Arc::new(b))
    }

    /// All atom names referenced by the formula.
    pub fn atoms(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk_atoms(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn walk_atoms<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Ctl::Const(_) => {}
            Ctl::Atom(a) => out.push(a),
            Ctl::Not(f)
            | Ctl::Ex(f)
            | Ctl::Ax(f)
            | Ctl::Ef(f)
            | Ctl::Af(f)
            | Ctl::Eg(f)
            | Ctl::Ag(f) => f.walk_atoms(out),
            Ctl::And(a, b) | Ctl::Or(a, b) | Ctl::Imp(a, b) | Ctl::Eu(a, b) | Ctl::Au(a, b) => {
                a.walk_atoms(out);
                b.walk_atoms(out);
            }
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
        // precedence: atoms/unary 3, & 2, | 1, -> 0
        let prec = match self {
            Ctl::Const(_)
            | Ctl::Atom(_)
            | Ctl::Not(_)
            | Ctl::Ex(_)
            | Ctl::Ax(_)
            | Ctl::Ef(_)
            | Ctl::Af(_)
            | Ctl::Eg(_)
            | Ctl::Ag(_)
            | Ctl::Eu(_, _)
            | Ctl::Au(_, _) => 3,
            Ctl::And(_, _) => 2,
            Ctl::Or(_, _) => 1,
            Ctl::Imp(_, _) => 0,
        };
        let need_parens = prec < parent;
        if need_parens {
            write!(f, "(")?;
        }
        match self {
            Ctl::Const(true) => write!(f, "true")?,
            Ctl::Const(false) => write!(f, "false")?,
            Ctl::Atom(a) => write!(f, "{a}")?,
            Ctl::Not(x) => {
                write!(f, "!")?;
                x.fmt_prec(f, 3)?;
            }
            Ctl::And(a, b) => {
                a.fmt_prec(f, 2)?;
                write!(f, " & ")?;
                b.fmt_prec(f, 3)?;
            }
            Ctl::Or(a, b) => {
                a.fmt_prec(f, 1)?;
                write!(f, " | ")?;
                b.fmt_prec(f, 2)?;
            }
            Ctl::Imp(a, b) => {
                a.fmt_prec(f, 1)?;
                write!(f, " -> ")?;
                b.fmt_prec(f, 0)?;
            }
            Ctl::Ex(x) => {
                write!(f, "EX ")?;
                x.fmt_prec(f, 3)?;
            }
            Ctl::Ax(x) => {
                write!(f, "AX ")?;
                x.fmt_prec(f, 3)?;
            }
            Ctl::Ef(x) => {
                write!(f, "EF ")?;
                x.fmt_prec(f, 3)?;
            }
            Ctl::Af(x) => {
                write!(f, "AF ")?;
                x.fmt_prec(f, 3)?;
            }
            Ctl::Eg(x) => {
                write!(f, "EG ")?;
                x.fmt_prec(f, 3)?;
            }
            Ctl::Ag(x) => {
                write!(f, "AG ")?;
                x.fmt_prec(f, 3)?;
            }
            Ctl::Eu(a, b) => {
                write!(f, "E[")?;
                a.fmt_prec(f, 0)?;
                write!(f, " U ")?;
                b.fmt_prec(f, 0)?;
                write!(f, "]")?;
            }
            Ctl::Au(a, b) => {
                write!(f, "A[")?;
                a.fmt_prec(f, 0)?;
                write!(f, " U ")?;
                b.fmt_prec(f, 0)?;
                write!(f, "]")?;
            }
        }
        if need_parens {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Ctl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_through_parser() {
        let f = Ctl::ag(Ctl::imp(
            Ctl::and(Ctl::atom("vp"), Ctl::atom("sp")),
            Ctl::ax(Ctl::atom("vp")),
        ));
        let text = f.to_string();
        let parsed = crate::parse(&text).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn atoms_deduplicated_and_sorted() {
        let f = Ctl::or(Ctl::and(Ctl::atom("b"), Ctl::atom("a")), Ctl::atom("a"));
        assert_eq!(f.atoms(), vec!["a", "b"]);
    }

    #[test]
    fn until_display() {
        let f = Ctl::eu(Ctl::atom("x"), Ctl::atom("y"));
        assert_eq!(f.to_string(), "E[x U y]");
    }

    #[test]
    fn precedence_in_display() {
        let f = Ctl::imp(Ctl::or(Ctl::atom("a"), Ctl::atom("b")), Ctl::atom("c"));
        assert_eq!(f.to_string(), "a | b -> c");
        let g = Ctl::and(Ctl::or(Ctl::atom("a"), Ctl::atom("b")), Ctl::atom("c"));
        assert_eq!(g.to_string(), "(a | b) & c");
    }
}
