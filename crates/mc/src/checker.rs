//! Fixpoint evaluation of CTL formulae over [`Kripke`] models, with
//! optional Emerson–Lei fairness.
//!
//! Universal operators are evaluated through their existential duals, which
//! remains sound under fairness (`A_f X φ = ¬E_f X ¬φ`, etc.). Fair
//! existential operators restrict to states with at least one fair path:
//!
//! * `E_f X φ = EX (φ ∧ fair)`
//! * `E_f [φ U ψ] = E[φ U (ψ ∧ fair)]`
//! * `E_f G φ` — the Emerson–Lei greatest fixpoint,
//!
//! where `fair = E_f G true`.

use crate::bitset::StateSet;
use crate::ctl::Ctl;
use crate::error::McError;
use crate::kripke::{Kripke, StateId};

/// Result of checking one formula: the satisfying set plus the verdict on
/// the initial states.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// States satisfying the formula.
    pub sat: StateSet,
    /// Initial states of the model.
    pub initial: StateSet,
}

impl CheckResult {
    /// Whether every initial state satisfies the formula (the usual
    /// `M ⊨ φ` verdict).
    pub fn holds(&self) -> bool {
        self.initial.is_subset(&self.sat)
    }

    /// Initial states violating the formula (empty iff [`holds`]).
    ///
    /// [`holds`]: CheckResult::holds
    pub fn failing_initial(&self) -> StateSet {
        let mut f = self.initial.clone();
        f.subtract(&self.sat);
        f
    }
}

/// Checks `f` over `k` with plain CTL semantics (fairness ignored).
///
/// # Errors
///
/// [`McError::UnknownAtom`] if the formula references an undefined atom;
/// [`McError::EmptyModel`] if the model has no states.
pub fn check<K: Kripke + ?Sized>(k: &K, f: &Ctl) -> Result<CheckResult, McError> {
    run(k, f, &[])
}

/// Checks `f` over `k` under the model's fairness constraints:
/// path quantifiers range over paths that visit every fairness set
/// infinitely often.
///
/// # Errors
///
/// Same as [`check`].
pub fn check_fair<K: Kripke + ?Sized>(k: &K, f: &Ctl) -> Result<CheckResult, McError> {
    let fairness = k.fairness_sets();
    run(k, f, &fairness)
}

fn run<K: Kripke + ?Sized>(k: &K, f: &Ctl, fairness: &[StateSet]) -> Result<CheckResult, McError> {
    if k.num_states() == 0 {
        return Err(McError::EmptyModel);
    }
    let mut ev = Eval {
        k,
        fairness,
        fair: None,
    };
    let sat = ev.eval(f)?;
    Ok(CheckResult {
        sat,
        initial: k.initial_states(),
    })
}

struct Eval<'a, K: Kripke + ?Sized> {
    k: &'a K,
    fairness: &'a [StateSet],
    /// Cache of `E_f G true` (all states with some fair path).
    fair: Option<StateSet>,
}

impl<'a, K: Kripke + ?Sized> Eval<'a, K> {
    fn n(&self) -> usize {
        self.k.num_states()
    }

    fn fair_states(&mut self) -> StateSet {
        if self.fairness.is_empty() {
            return StateSet::full(self.n());
        }
        if let Some(f) = &self.fair {
            return f.clone();
        }
        let f = self.eg_fair(&StateSet::full(self.n()));
        self.fair = Some(f.clone());
        f
    }

    fn eval(&mut self, f: &Ctl) -> Result<StateSet, McError> {
        Ok(match f {
            Ctl::Const(true) => StateSet::full(self.n()),
            Ctl::Const(false) => StateSet::empty(self.n()),
            Ctl::Atom(a) => self
                .k
                .atom_set(a)
                .ok_or_else(|| McError::UnknownAtom(a.clone()))?,
            Ctl::Not(x) => self.eval(x)?.complement(),
            Ctl::And(a, b) => {
                let mut s = self.eval(a)?;
                s.intersect_with(&self.eval(b)?);
                s
            }
            Ctl::Or(a, b) => {
                let mut s = self.eval(a)?;
                s.union_with(&self.eval(b)?);
                s
            }
            Ctl::Imp(a, b) => {
                let mut s = self.eval(a)?.complement();
                s.union_with(&self.eval(b)?);
                s
            }
            Ctl::Ex(x) => {
                let mut t = self.eval(x)?;
                t.intersect_with(&self.fair_states());
                self.k.pre_exists(&t)
            }
            Ctl::Ax(x) => {
                // AX φ = ¬EX ¬φ
                let mut t = self.eval(x)?.complement();
                t.intersect_with(&self.fair_states());
                self.k.pre_exists(&t).complement()
            }
            Ctl::Ef(x) => {
                let phi = self.eval(x)?;
                self.eu(&StateSet::full(self.n()), &phi)
            }
            Ctl::Af(x) => {
                // AF φ = ¬EG ¬φ
                let phi = self.eval(x)?.complement();
                self.eg(&phi).complement()
            }
            Ctl::Eg(x) => {
                let phi = self.eval(x)?;
                self.eg(&phi)
            }
            Ctl::Ag(x) => {
                // AG φ = ¬EF ¬φ
                let phi = self.eval(x)?.complement();
                self.eu(&StateSet::full(self.n()), &phi).complement()
            }
            Ctl::Eu(a, b) => {
                let pa = self.eval(a)?;
                let pb = self.eval(b)?;
                self.eu(&pa, &pb)
            }
            Ctl::Au(a, b) => {
                // A[a U b] = ¬( E[¬b U (¬a ∧ ¬b)] ∨ EG ¬b )
                let pa = self.eval(a)?;
                let pb = self.eval(b)?;
                let nb = pb.complement();
                let mut nanb = pa.complement();
                nanb.intersect_with(&nb);
                let mut bad = self.eu(&nb, &nanb);
                bad.union_with(&self.eg(&nb));
                bad.complement()
            }
        })
    }

    /// `E[φ U ψ]` restricted to fair paths: ψ-states must have a fair path.
    fn eu(&mut self, phi: &StateSet, psi: &StateSet) -> StateSet {
        let mut target = psi.clone();
        target.intersect_with(&self.fair_states());
        // Least fixpoint: Z = target ∪ (φ ∩ pre∃ Z).
        let mut z = target;
        loop {
            let mut step = self.k.pre_exists(&z);
            step.intersect_with(phi);
            step.subtract(&z);
            if step.is_empty() {
                return z;
            }
            z.union_with(&step);
        }
    }

    /// `EG φ` under fairness (plain greatest fixpoint when no constraints).
    fn eg(&mut self, phi: &StateSet) -> StateSet {
        if self.fairness.is_empty() {
            // Greatest fixpoint: Z = φ ∩ pre∃ Z.
            let mut z = phi.clone();
            loop {
                let mut next = self.k.pre_exists(&z);
                next.intersect_with(phi);
                if next == z {
                    return z;
                }
                z = next;
            }
        } else {
            self.eg_fair(phi)
        }
    }

    /// Emerson–Lei `E_f G φ`: the largest `Z ⊆ φ` such that from every
    /// `s ∈ Z` and for every fairness set `F_i` there is a non-empty path
    /// through φ-states to some state of `Z ∩ F_i`.
    fn eg_fair(&mut self, phi: &StateSet) -> StateSet {
        let mut z = phi.clone();
        loop {
            let mut next = z.clone();
            for fi in self.fairness {
                let mut target = next.clone();
                target.intersect_with(fi);
                // E[φ U target] computed without fairness gating.
                let mut reach = target;
                loop {
                    let mut step = self.k.pre_exists(&reach);
                    step.intersect_with(phi);
                    step.subtract(&reach);
                    if step.is_empty() {
                        break;
                    }
                    reach.union_with(&step);
                }
                let mut keep = self.k.pre_exists(&reach);
                keep.intersect_with(phi);
                next.intersect_with(&keep);
            }
            if next == z {
                return z;
            }
            z = next;
        }
    }
}

/// Breadth-first witness: a shortest path from an initial state into
/// `target`, or `None` when unreachable. Used to print counterexamples to
/// failed `AG` properties (the reachable bad state).
pub fn witness_to<K: Kripke + ?Sized>(k: &K, target: &StateSet) -> Option<Vec<StateId>> {
    use std::collections::VecDeque;
    let n = k.num_states();
    let mut pred: Vec<Option<StateId>> = vec![None; n];
    let mut seen = StateSet::empty(n);
    let mut queue = VecDeque::new();
    for s in k.initial_states().iter() {
        if target.contains(s) {
            return Some(vec![s]);
        }
        seen.insert(s);
        queue.push_back(s);
    }
    let mut out = Vec::new();
    while let Some(s) = queue.pop_front() {
        out.clear();
        k.post(s, &mut out);
        for &t in &out {
            if seen.contains(t) {
                continue;
            }
            seen.insert(t);
            pred[t] = Some(s);
            if target.contains(t) {
                let mut path = vec![t];
                let mut cur = t;
                while let Some(p) = pred[cur] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kripke::ExplicitKripke;
    use crate::parse;

    /// 0 -> 1 -> 2 -> 2, with a side loop 1 -> 0.
    fn model() -> ExplicitKripke {
        let mut k = ExplicitKripke::new(3);
        k.add_edge(0, 1);
        k.add_edge(1, 2);
        k.add_edge(1, 0);
        k.add_edge(2, 2);
        k.set_initial(0);
        k.set_atom("a", [0]).unwrap();
        k.set_atom("b", [1]).unwrap();
        k.set_atom("c", [2]).unwrap();
        k
    }

    fn holds(k: &ExplicitKripke, f: &str) -> bool {
        check(k, &parse(f).unwrap()).unwrap().holds()
    }

    fn holds_fair(k: &ExplicitKripke, f: &str) -> bool {
        check_fair(k, &parse(f).unwrap()).unwrap().holds()
    }

    #[test]
    fn basic_operators() {
        let k = model();
        assert!(holds(&k, "a"));
        assert!(!holds(&k, "b"));
        assert!(holds(&k, "EX b"));
        assert!(holds(&k, "AX b"));
        assert!(holds(&k, "EF c"));
        assert!(!holds(&k, "AF c"), "the 0<->1 loop avoids c forever");
        assert!(holds(&k, "AG (c -> AG c)"), "c is a sink");
        assert!(holds(&k, "EG !c"));
        assert!(holds(&k, "E[!c U c]"));
        assert!(!holds(&k, "A[!c U c]"));
        assert!(holds(&k, "AG (a | b | c)"));
    }

    #[test]
    fn fairness_forces_progress() {
        let k0 = model();
        // Unfair: AF c fails. With fairness "infinitely often c-predecessors
        // leave the loop", i.e. fairness set {2}: all fair paths end in 2.
        assert!(!holds(&k0, "AF c"));
        let mut k = model();
        k.add_fairness([2]);
        assert!(holds_fair(&k, "AF c"));
        // EG !c becomes false under that fairness.
        assert!(!holds_fair(&k, "EG !c"));
    }

    #[test]
    fn fairness_with_multiple_constraints() {
        // Two-state toggle; fairness on each state individually.
        let mut k = ExplicitKripke::new(2);
        k.add_edge(0, 1);
        k.add_edge(1, 0);
        k.add_edge(0, 0); // self-loop that unfair paths could abuse
        k.set_initial(0);
        k.set_atom("one", [1]).unwrap();
        k.add_fairness([0]);
        k.add_fairness([1]);
        assert!(holds_fair(&k, "AG AF one"));
        assert!(!holds(&k, "AG AF one"), "unfairly, stay in 0 forever");
    }

    #[test]
    fn unknown_atom_reported() {
        let k = model();
        let e = check(&k, &parse("AG nosuch").unwrap()).unwrap_err();
        assert_eq!(e, McError::UnknownAtom("nosuch".into()));
    }

    #[test]
    fn au_duality() {
        let k = model();
        let r = check(&k, &parse("A[true U c]").unwrap()).unwrap();
        assert!(r.sat.contains(2));
        // From both 0 and 1 a path can loop 0<->1 forever, avoiding c.
        assert!(!r.sat.contains(0));
        assert!(!r.sat.contains(1));
    }

    #[test]
    fn witness_paths() {
        let k = model();
        let c = k.atom_set("c").unwrap();
        let w = witness_to(&k, &c).unwrap();
        assert_eq!(w, vec![0, 1, 2]);
        let nowhere = StateSet::empty(3);
        assert!(witness_to(&k, &nowhere).is_none());
    }

    #[test]
    fn failing_initial_reported() {
        let k = model();
        let r = check(&k, &parse("AF c").unwrap()).unwrap();
        assert!(!r.holds());
        assert!(r.failing_initial().contains(0));
    }

    #[test]
    fn empty_model_is_an_error() {
        let k = ExplicitKripke::new(0);
        assert_eq!(
            check(&k, &Ctl::Const(true)).unwrap_err(),
            McError::EmptyModel
        );
    }
}
