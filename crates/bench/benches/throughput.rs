//! Criterion benches: simulation speed of the Table 1 configurations, the
//! linear pipeline, and the DMG analyses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elastic_core::sim::{BehavSim, EnvConfig, RandomEnv};
use elastic_core::systems::{linear_pipeline, paper_example, Config};

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_sim");
    g.sample_size(10);
    for config in Config::all() {
        g.bench_with_input(
            BenchmarkId::from_parameter(config.label()),
            &config,
            |b, &config| {
                b.iter(|| elastic_bench::run_table1_row(config, 2000, 7));
            },
        );
    }
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_sim");
    for stages in [4usize, 16, 64] {
        g.bench_with_input(
            BenchmarkId::from_parameter(stages),
            &stages,
            |b, &stages| {
                let (net, _, _) = linear_pipeline(stages, stages / 2).expect("builds");
                b.iter(|| {
                    let mut sim = BehavSim::new(&net).expect("valid");
                    sim.set_check_protocol(false);
                    let mut env = RandomEnv::new(1, EnvConfig::default());
                    sim.run(&mut env, 1000).expect("runs");
                    sim.report().cycles
                });
            },
        );
    }
    g.finish();
}

fn bench_dmg(c: &mut Criterion) {
    c.bench_function("min_cycle_ratio_fig9", |b| {
        let sys = paper_example(Config::NoEarlyEval).expect("builds");
        b.iter(|| {
            elastic_core::dmg_bridge::lazy_throughput_bound(&sys.network, &sys.env_config)
                .expect("bound")
                .bound
        });
    });
    c.bench_function("dmg_reachability_fig1", |b| {
        let g = elastic_dmg::examples::fig1_dmg();
        b.iter(|| {
            elastic_dmg::analysis::explore(&g, elastic_dmg::analysis::ReachOptions::default())
                .expect("explores")
                .num_states()
        });
    });
}

/// 64 Monte-Carlo schedules through the bit-parallel backend vs one-by-one
/// through the scalar gate-level interpreter — the per-trial speedup that
/// makes the Fig. 5–9 sweeps cheap.
fn bench_wide_mc(c: &mut Criterion) {
    use elastic_bench::WideHarness;
    use elastic_netlist::wide::LANES;
    let sys = paper_example(Config::ActiveAntiTokens).expect("builds");
    let harness = WideHarness::new(&sys.network, sys.output_channel);
    let scheds = WideHarness::schedules(&sys.network, &sys.env_config, 3, 500, LANES);
    let mut g = c.benchmark_group("mc_64_trials_500_cycles");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::from_parameter("wide_backend"), &(), |b, ()| {
        b.iter(|| harness.run(&scheds).mean());
    });
    g.bench_with_input(
        BenchmarkId::from_parameter("scalar_backend"),
        &(),
        |b, ()| {
            b.iter(|| harness.run_scalar(&scheds).mean());
        },
    );
    g.finish();
}

/// Per-layer attribution of the PR-4 execution pipeline on one 512-trial
/// batch: the unpacked single-word path (peephole only), the packed
/// single-word path, and the packed multi-word paths. Schedule generation
/// is excluded (pre-built once), so the group isolates simulation cost.
fn bench_mc_backends(c: &mut Criterion) {
    use elastic_bench::{Backend, WideHarness, MAX_TRIALS_PER_RUN};
    use elastic_netlist::wide::LANES;
    let sys = paper_example(Config::ActiveAntiTokens).expect("builds");
    let harness = WideHarness::new(&sys.network, sys.output_channel);
    let scheds = WideHarness::schedules(&sys.network, &sys.env_config, 3, 500, MAX_TRIALS_PER_RUN);
    let mut g = c.benchmark_group("mc_512_trials_500_cycles");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::from_parameter("unpacked_w1"), &(), |b, ()| {
        b.iter(|| {
            scheds
                .chunks(LANES)
                .map(|s| harness.run_unpacked(s).mean())
                .sum::<f64>()
        });
    });
    for backend in [
        Backend::Wide1,
        Backend::Wide2,
        Backend::Wide4,
        Backend::Wide8,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(backend.label()),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    scheds
                        .chunks(backend.lanes())
                        .map(|s| harness.try_run_backend(s, backend).expect("runs").mean())
                        .sum::<f64>()
                });
            },
        );
    }
    g.finish();
}

fn bench_gate_sim(c: &mut Criterion) {
    c.bench_function("gate_level_fig9_1k_cycles", |b| {
        use elastic_core::compile::{compile, CompileOptions};
        use elastic_netlist::sim::Simulator;
        let sys = paper_example(Config::ActiveAntiTokens).expect("builds");
        let compiled = compile(
            &sys.network,
            &CompileOptions {
                lint: false,
                data_width: 2,
                nondet_merge: false,
                optimize: false,
                fault: None,
                faults: vec![],
            },
        )
        .expect("compiles");
        let inputs: Vec<_> = compiled.netlist.inputs().to_vec();
        b.iter(|| {
            let mut sim = Simulator::new(&compiled.netlist).expect("valid");
            let drive: Vec<_> = inputs.iter().map(|&i| (i, true)).collect();
            for _ in 0..1000 {
                sim.cycle(&drive).expect("runs");
            }
            sim.time()
        });
    });
}

criterion_group!(
    benches,
    bench_table1,
    bench_pipeline,
    bench_dmg,
    bench_gate_sim,
    bench_wide_mc,
    bench_mc_backends
);
criterion_main!(benches);
