//! Bounded-queue streaming producer/consumer pipeline for Monte-Carlo
//! shards.
//!
//! The PR4 engine ran each shard as `generate schedules → pack → execute`
//! sequentially inside one worker, so the stimulus for shard *k+1* only
//! started once shard *k* had fully executed. This module overlaps the
//! stages instead:
//!
//! ```text
//!             ┌──────────── bounded queue (≤ depth in flight) ───────────┐
//!   pack(k+1) │ [stim k] [stim k+1] …                                    │
//!  ───────────┤                                                          │
//!   workers   │  pop → execute(k) → (k, McStats) ──mpsc──▶ reducer       │
//!             └──────────────────────────────────────────────────────────┘
//! ```
//!
//! Every worker is a *hybrid* pack-or-execute loop: it prefers popping a
//! packed stimulus and executing it (draining the queue keeps latency to
//! first result low); if the queue has nothing to execute it claims the
//! next shard to pack, provided fewer than `depth` stimuli are packed or
//! in flight — the backpressure that bounds memory to
//! `depth × stimulus_bytes`. With one worker the loop degenerates to
//! pack/execute alternation, which is exactly the batch engine's order.
//!
//! The reducer runs on the calling thread: it receives `(shard index,
//! stats)` pairs over an mpsc channel and emits partial results in
//! shard-index order through the `on_partial` callback as soon as each
//! prefix completes. Because shard seeds (not worker identity) determine
//! every RNG stream and the reduction is by shard index, the final
//! per-lane vector is bit-identical for every worker count and queue
//! depth — asserted by the proptests in `tests/exp.rs`.
//!
//! The pipeline itself ([`run_pipeline`]) is generic over the produced
//! payload and the consumed result: the throughput engine instantiates it
//! with `PackedStimulus → McStats` ([`run_shards_streaming`]) and the
//! fault-campaign engine with per-job harness builds → recovery records
//! (`crate::fault`), sharing the queueing, backpressure and in-order
//! reduction.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};

use elastic_core::network::ElasticNetwork;
use elastic_core::sim::EnvConfig;
use elastic_core::verify::PackedStimulus;
use elastic_core::CoreError;
use elastic_netlist::levelize::BlockPlan;

use crate::exp::Shard;
use crate::{McStats, WideHarness};

/// Shared pipeline state behind one mutex; workers sleep on the paired
/// condvar whenever they can neither execute nor pack.
struct PipeState<S> {
    /// Next item index to claim for producing.
    next_pack: usize,
    /// Produced payloads awaiting consumption, in claim order.
    queue: VecDeque<(usize, S)>,
    /// Items currently being produced (claimed, not yet queued).
    packing: usize,
    /// First error any stage hit; set once, aborts the pipeline.
    error: Option<CoreError>,
}

impl<S> PipeState<S> {
    /// Nothing left to produce, nothing mid-production, nothing queued:
    /// any remaining consumptions are already owned by other workers.
    fn drained(&self, total: usize) -> bool {
        self.next_pack >= total && self.packing == 0 && self.queue.is_empty()
    }
}

/// Runs `total` items through the streaming pipeline on `workers` hybrid
/// threads with a `depth`-bounded payload queue, returning the per-item
/// results in item-index order. `produce(i)` builds item `i`'s payload
/// (the expensive, parallelizable stage: stimulus packing, per-job
/// compilation); `consume(i, payload)` turns it into the item's result
/// (tape execution, measurement). `on_partial(index, result)` fires on
/// the calling thread, in index order, as soon as every item up to
/// `index` has completed.
///
/// Determinism: results are keyed by item index, never by worker
/// identity, so as long as `produce`/`consume` are deterministic
/// functions of the index the output vector is bit-identical for every
/// worker count and queue depth.
///
/// # Errors
///
/// The first stage error (production or consumption), after the pipeline
/// has drained.
pub(crate) fn run_pipeline<S, R>(
    total: usize,
    workers: usize,
    depth: usize,
    produce: impl Fn(usize) -> Result<S, CoreError> + Sync,
    consume: impl Fn(usize, S) -> Result<R, CoreError> + Sync,
    mut on_partial: impl FnMut(usize, &R),
) -> Result<Vec<R>, CoreError>
where
    S: Send,
    R: Send,
{
    assert!(workers >= 1, "pipeline needs a worker");
    let depth = depth.max(1);
    let state = Mutex::new(PipeState::<S> {
        next_pack: 0,
        queue: VecDeque::with_capacity(depth),
        packing: 0,
        error: None,
    });
    let cvar = Condvar::new();
    let (tx, rx) = mpsc::channel::<(usize, R)>();

    let mut results: Vec<Option<R>> = (0..total).map(|_| None).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (state, cvar) = (&state, &cvar);
            let (produce, consume) = (&produce, &consume);
            s.spawn(move || {
                let fail = |e: CoreError| {
                    let mut g = state.lock().expect("pipeline lock");
                    g.error.get_or_insert(e);
                    cvar.notify_all();
                };
                let mut guard = state.lock().expect("pipeline lock");
                loop {
                    if guard.error.is_some() {
                        break;
                    }
                    if let Some((idx, payload)) = guard.queue.pop_front() {
                        drop(guard);
                        // A queue slot freed: producers blocked on depth
                        // can proceed while this worker consumes.
                        cvar.notify_all();
                        match consume(idx, payload) {
                            Ok(res) => {
                                let _ = tx.send((idx, res));
                            }
                            Err(e) => {
                                fail(e);
                                break;
                            }
                        }
                        guard = state.lock().expect("pipeline lock");
                    } else if guard.next_pack < total && guard.queue.len() + guard.packing < depth {
                        let idx = guard.next_pack;
                        guard.next_pack += 1;
                        guard.packing += 1;
                        drop(guard);
                        match produce(idx) {
                            Ok(payload) => {
                                guard = state.lock().expect("pipeline lock");
                                guard.packing -= 1;
                                guard.queue.push_back((idx, payload));
                                cvar.notify_all();
                            }
                            Err(e) => {
                                fail(e);
                                break;
                            }
                        }
                    } else if guard.drained(total) {
                        break;
                    } else {
                        guard = cvar.wait(guard).expect("pipeline lock");
                    }
                }
            });
        }
        // The reducer: this thread owns the original `tx`; dropping it
        // leaves the workers' clones, so `rx` ends once they all exit.
        drop(tx);
        let mut emitted = 0usize;
        for (idx, res) in rx {
            results[idx] = Some(res);
            while emitted < results.len() && results[emitted].is_some() {
                on_partial(emitted, results[emitted].as_ref().expect("just checked"));
                emitted += 1;
            }
        }
    });

    if let Some(e) = state.into_inner().expect("pipeline lock").error {
        return Err(e);
    }
    Ok(results
        .into_iter()
        .map(|r| r.expect("drained pipeline completed every item"))
        .collect())
}

/// Runs `shards` through the streaming pipeline on `workers` hybrid
/// threads with a `depth`-bounded stimulus queue, returning the per-shard
/// statistics in shard-index order. `on_partial(index, stats)` fires on
/// the calling thread, in index order, as soon as every shard up to
/// `index` has completed.
///
/// Thin instantiation of [`run_pipeline`]: produce = fused stimulus
/// generation for shard *i*, consume = blocked tape execution.
///
/// # Errors
///
/// The first stage error (stimulus generation or execution), after the
/// pipeline has drained.
#[allow(clippy::too_many_arguments)] // one call site; a builder would obscure the stage wiring
pub(crate) fn run_shards_streaming(
    harness: &WideHarness,
    network: &ElasticNetwork,
    env: &EnvConfig,
    cycles: usize,
    shards: &[Shard],
    width: usize,
    plan: &BlockPlan,
    workers: usize,
    depth: usize,
    on_partial: impl FnMut(usize, &McStats),
) -> Result<Vec<McStats>, CoreError> {
    run_pipeline::<PackedStimulus, McStats>(
        shards.len(),
        workers,
        depth,
        |i| {
            let shard = shards[i];
            harness.generate_stimulus(network, env, shard.seed, cycles, shard.lanes, width)
        },
        |i, stim| harness.try_run_stim(&stim, shards[i].lanes, plan),
        on_partial,
    )
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};

    use super::*;

    /// Loom-style deterministic stress of the `Mutex<PipeState>`+Condvar
    /// hand-off: many iterations per (workers, depth) combo, with
    /// `yield_now` jostling inside both stages to shake out interleavings,
    /// asserting the three pipeline invariants the batch engines rely on:
    ///
    /// 1. backpressure — at most `depth` payloads are claimed-or-queued
    ///    plus one popped payload in each worker's hands at any instant,
    ///    i.e. live payloads never exceed `depth + workers` (the memory
    ///    bound; the pop happens under the lock, so claimed-or-queued
    ///    alone is not observable from outside the mutex),
    /// 2. exactly-once — every index is produced once and consumed once,
    /// 3. ordered reduction — `on_partial` fires for 0..total in strict
    ///    index order and the result vector is index-keyed.
    #[test]
    fn pipeline_handoff_invariants_hold_under_stress() {
        const TOTAL: usize = 24;
        for &(workers, depth) in &[(1, 1), (2, 1), (2, 2), (4, 2), (4, 8), (8, 3)] {
            for round in 0..8 {
                let in_system = AtomicIsize::new(0);
                let peak = AtomicIsize::new(0);
                let produced = AtomicUsize::new(0);
                let consumed = AtomicUsize::new(0);
                let mut partial_next = 0usize;
                let out = run_pipeline::<usize, usize>(
                    TOTAL,
                    workers,
                    depth,
                    |i| {
                        let now = in_system.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        produced.fetch_add(1, Ordering::SeqCst);
                        // Jostle the scheduler so claim/queue/pop orders vary.
                        for _ in 0..(i + round) % 3 {
                            std::thread::yield_now();
                        }
                        Ok(i * 10)
                    },
                    |i, payload| {
                        in_system.fetch_sub(1, Ordering::SeqCst);
                        consumed.fetch_add(1, Ordering::SeqCst);
                        for _ in 0..(i + round) % 2 {
                            std::thread::yield_now();
                        }
                        Ok(payload + 1)
                    },
                    |idx, res| {
                        assert_eq!(idx, partial_next, "on_partial out of order");
                        assert_eq!(*res, idx * 10 + 1);
                        partial_next += 1;
                    },
                )
                .expect("clean pipeline");
                assert_eq!(partial_next, TOTAL);
                assert_eq!(produced.load(Ordering::SeqCst), TOTAL);
                assert_eq!(consumed.load(Ordering::SeqCst), TOTAL);
                let peak = peak.load(Ordering::SeqCst);
                assert!(
                    peak <= (depth + workers) as isize,
                    "backpressure violated: {peak} payloads live > depth {depth} \
                     + workers {workers} (round {round})"
                );
                assert_eq!(out, (0..TOTAL).map(|i| i * 10 + 1).collect::<Vec<_>>());
            }
        }
    }

    /// A producer error aborts the pipeline (first error wins, workers
    /// wake from the condvar and exit) without deadlock, and no item
    /// claimed after the failure leaks a permanent `packing` slot.
    #[test]
    fn pipeline_aborts_on_produce_error_without_deadlock() {
        for &(workers, depth) in &[(1, 1), (3, 2), (4, 4)] {
            let err = run_pipeline::<usize, usize>(
                50,
                workers,
                depth,
                |i| {
                    if i == 7 {
                        Err(CoreError::ScheduleBatch(format!("boom at {i}")))
                    } else {
                        Ok(i)
                    }
                },
                |_, payload| Ok(payload),
                |_, _| {},
            )
            .expect_err("pipeline must surface the stage error");
            assert!(err.to_string().contains("boom at 7"), "{err}");
        }
    }

    /// A consumer error likewise aborts; results already reduced before
    /// the failure are discarded (the call returns `Err`, not a prefix).
    #[test]
    fn pipeline_aborts_on_consume_error_without_deadlock() {
        for &(workers, depth) in &[(2, 1), (4, 3)] {
            let err = run_pipeline::<usize, usize>(
                40,
                workers,
                depth,
                Ok,
                |i, payload| {
                    if i == 11 {
                        Err(CoreError::ScheduleBatch("consume failed".into()))
                    } else {
                        Ok(payload)
                    }
                },
                |_, _| {},
            )
            .expect_err("pipeline must surface the stage error");
            assert!(err.to_string().contains("consume failed"), "{err}");
        }
    }
}
