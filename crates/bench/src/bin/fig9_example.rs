//! Regenerates **Fig. 9**: the example datapath and its elastic control
//! layer — structure dump, simulation, and the DMG throughput bound that
//! early evaluation beats.

use elastic_core::dmg_bridge::lazy_throughput_bound;
use elastic_core::sim::{BehavSim, RandomEnv};
use elastic_core::systems::{paper_example, Config};

fn main() {
    let sys = paper_example(Config::ActiveAntiTokens).expect("builds");
    let net = &sys.network;
    println!(
        "Fig. 9 — example elastic system ({} components, {} channels)\n",
        net.num_components(),
        net.num_channels()
    );
    for c in net.channels() {
        let ch = net.channel(c);
        println!(
            "  {:<12} {} -> {}{}",
            ch.name,
            net.component(ch.from.0).name,
            net.component(ch.to.0).name,
            if ch.passive { "   [passive]" } else { "" }
        );
    }
    let bound = lazy_throughput_bound(net, &sys.env_config).expect("bound");
    println!("\nlazy (marked-graph) throughput bound: {:.3}", bound.bound);
    println!("critical cycle: {:?}", bound.critical);
    let mut sim = BehavSim::new(net).expect("valid");
    let mut env = RandomEnv::new(2007, sys.env_config.clone());
    sim.run(&mut env, 10_000).expect("runs");
    let th = sim.report().positive_rate(sys.output_channel);
    println!("measured throughput with early evaluation: {th:.3}");
    println!(
        "early evaluation beats the lazy bound: {}",
        th > bound.bound
    );
}
