//! Regenerates **Fig. 9**: the example datapath and its elastic control
//! layer — structure dump, simulation, and the DMG throughput bound that
//! early evaluation beats.
//!
//! `--channel NAME` additionally reports the positive/negative/kill rates
//! of any named channel (e.g. `--channel "M1->M2"`); an unknown name is a
//! proper error, not a panic.

use elastic_bench::{rate_or_exit, try_rates};
use elastic_core::dmg_bridge::lazy_throughput_bound;
use elastic_core::sim::{BehavSim, RandomEnv};
use elastic_core::systems::{paper_example, Config};

fn main() {
    let sys = paper_example(Config::ActiveAntiTokens).expect("builds");
    let net = &sys.network;
    println!(
        "Fig. 9 — example elastic system ({} components, {} channels)\n",
        net.num_components(),
        net.num_channels()
    );
    for c in net.channels() {
        let ch = net.channel(c);
        println!(
            "  {:<12} {} -> {}{}",
            ch.name,
            net.component(ch.from.0).name,
            net.component(ch.to.0).name,
            if ch.passive { "   [passive]" } else { "" }
        );
    }
    let bound = lazy_throughput_bound(net, &sys.env_config).expect("bound");
    println!("\nlazy (marked-graph) throughput bound: {:.3}", bound.bound);
    println!("critical cycle: {:?}", bound.critical);
    let mut sim = BehavSim::new(net).expect("valid");
    let mut env = RandomEnv::new(2007, sys.env_config.clone());
    sim.run(&mut env, 10_000).expect("runs");
    let report = sim.report();
    let th = rate_or_exit(report.try_positive_rate(sys.output_channel), "W->Dout");
    println!("measured throughput with early evaluation: {th:.3}");
    println!(
        "early evaluation beats the lazy bound: {}",
        th > bound.bound
    );

    // Optional probe of a user-named channel — resolved and reported
    // through the checked accessors so a typo is an error, not a panic.
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--channel") {
        let name = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("error: --channel requires a channel name");
            std::process::exit(2);
        });
        let Some(chan) = net.channel_by_name(name) else {
            eprintln!(
                "error: no channel named {name:?} in the Fig. 9 example; \
                 see the structure dump above for valid names"
            );
            std::process::exit(1);
        };
        let (p, n, k) = try_rates(&report, chan).unwrap_or_else(|| {
            eprintln!("error: channel {name:?} missing from the report");
            std::process::exit(1);
        });
        println!("channel {name}: +{p:.3} -{n:.3} x{k:.3}");
    }
}
