//! Differential fuzz campaign over randomly generated elastic topologies.
//!
//! Samples `--count` seeded topologies (`elastic_core::gen`) — random
//! fork/join graphs with early-evaluation joins, anti-token counterflow,
//! buffer chains, variable-latency units and ring back edges, live by
//! construction — and cross-checks each of them three ways:
//!
//! 1. the behavioural reference simulator, whose per-channel transfer
//!    trace is replayed onto an independently lowered dual marked graph
//!    with per-arc token capacity windows (`elastic_dmg::exec::Replayer`);
//! 2. the PR-4 compiled execution pipeline (optimizing compile →
//!    peephole tape → packed-stimulus wide simulation), compared
//!    rail-for-rail per cycle per lane;
//! 3. the analytic `min_cycle_ratio` throughput bound, which lazy samples
//!    must respect.
//!
//! Any mismatch is shrunk to a minimal failing `TopoParams` and reported;
//! the process exits non-zero. `--inject` flips the campaign into its
//! sensitivity self-test: each seed compiles one fault from the full
//! family — dropped anti-token, rail flip, stuck-at-0/1 valids and stops,
//! duplicated token, lost token — into a probed-effective site, and every
//! injected fault must be caught by the differential; a silently accepted
//! fault is shrunk to minimal `TopoParams` and reported.
//!
//! Usage: `fuzz_topo [--seed N] [--count N] [--cycles N] [--lanes N]
//! [--threads N] [--json PATH] [--inject]`

use elastic_bench::exp::default_threads;
use elastic_bench::fuzz::{run_fuzz, FuzzOpts};

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, dflt: T) -> T {
    match args.iter().position(|a| a == flag) {
        None => dflt,
        Some(i) => {
            let raw = args.get(i + 1).unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            });
            raw.parse().unwrap_or_else(|_| {
                eprintln!("error: invalid value for {flag}: {raw:?}");
                std::process::exit(2);
            })
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let opts = FuzzOpts {
        seed: parse_flag(&args, "--seed", 1),
        count: parse_flag(&args, "--count", 200usize).max(1),
        cycles: parse_flag(&args, "--cycles", 256usize).max(1),
        lanes: parse_flag(&args, "--lanes", 4usize).max(1),
        threads: parse_flag(&args, "--threads", default_threads()),
        inject: args.iter().any(|a| a == "--inject"),
    };
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned());

    println!(
        "fuzz_topo: {} topologies from seed {}, {} cycles x {} lanes, {} threads{}",
        opts.count,
        opts.seed,
        opts.cycles,
        opts.lanes,
        opts.threads,
        if opts.inject {
            " [inject: fault-family sensitivity self-test]"
        } else {
            ""
        }
    );

    let summary = run_fuzz(&opts);

    let passed = summary.outcomes.iter().filter(|o| o.report.is_ok()).count();
    let ee: usize = summary
        .outcomes
        .iter()
        .filter_map(|o| o.report.as_ref().ok())
        .map(|r| r.ee_joins)
        .sum();
    let bound_checked = summary
        .outcomes
        .iter()
        .filter_map(|o| o.report.as_ref().ok())
        .filter(|r| r.bound.is_some())
        .count();
    println!(
        "  {passed}/{} differentials clean ({ee} early joins exercised, \
         {bound_checked} bound checks) in {:.2}s",
        summary.outcomes.len(),
        summary.wall_secs
    );

    for o in summary.mismatches() {
        eprintln!("MISMATCH at seed {}:", o.seed);
        if let Err(e) = &o.report {
            eprintln!("  {e}");
        }
        eprintln!(
            "  minimal failing params: {:?}",
            o.minimal.as_ref().unwrap_or(&o.params)
        );
    }
    for o in summary.lint_violations() {
        eprintln!(
            "LINT VIOLATION at seed {}: {}\n  minimal failing params: {:?}",
            o.seed,
            o.lint.as_deref().unwrap_or("?"),
            o.minimal.as_ref().unwrap_or(&o.params)
        );
    }
    if opts.inject {
        let (lint_eligible, lint_caught) = summary.lint_sabotage_counts();
        println!("  lint token-drop sabotage: {lint_caught}/{lint_eligible} caught as E101");
        let (eligible, caught) = summary.injection_counts();
        println!("  injected faults: {caught}/{eligible} caught");
        for (class, e, c) in summary.injections_by_class() {
            if e > 0 {
                println!("    {class:<16} {c}/{e} caught");
            }
        }
        for m in summary.missed() {
            eprintln!(
                "MISSED INJECTION at seed {} (class {}): minimal params {:?}",
                m.seed,
                m.fault.unwrap_or("?"),
                m.minimal.as_ref().unwrap_or(&m.params)
            );
        }
        if eligible == 0 {
            eprintln!(
                "error: no topology in this band had an effective site for any fault \
                 class — the sensitivity self-test proved nothing (widen --count or \
                 move --seed)"
            );
        }
    }

    if let Some(path) = json_path {
        let name = format!(
            "fuzz_topo seed={} count={} cycles={} lanes={}{}",
            opts.seed,
            opts.count,
            opts.cycles,
            opts.lanes,
            if opts.inject { " inject" } else { "" }
        );
        summary.write_json(&name, &path).expect("write json");
        println!("wrote {path}");
    }

    if !summary.ok() {
        eprintln!("fuzz_topo: FAILED");
        std::process::exit(1);
    }
    println!("fuzz_topo: ok");
}
