//! Fault-injection recovery-time Monte-Carlo campaign — the binary behind
//! `BENCH_pr7.json` and the CI fault smoke.
//!
//! Sweeps fault classes × injection sites × generated topologies: every
//! topology × class job compiles the network with a corruption gate
//! spliced into a probed-effective rail, arms an independent single-shot
//! injection window per packed lane, and scores each lane's trace with a
//! streaming SELF recovery detector on the faulted channel — did the
//! trace re-enter the legal `(I*R*T)*` language, after how many cycles,
//! and at what throughput cost? Per class the report carries the
//! recovery-time distribution (p50/p99), the non-recovery rate and the
//! mean throughput dip versus the fault-free run of the same stimulus.
//!
//! The whole report is bit-identical for every thread count and queue
//! depth (seeds derive from job indices, reduction is in job order);
//! `--check` re-runs the campaign at a different worker count and asserts
//! exactly that before writing the JSON.
//!
//! Usage: `fault_campaign [--topologies N] [--trials N] [--cycles N]
//! [--seed N] [--threads N] [--queue N] [--window N] [--tail N]
//! [--classes a,b,...|all] [--check] [--json PATH]`
//! (JSON defaults to `BENCH_pr7.json`; `--trials` is lanes per job).

use elastic_bench::exp::default_threads;
use elastic_bench::fault::{run_fault_campaign, FaultCampaignOpts, FAULT_CLASSES};

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, dflt: T) -> T {
    match args.iter().position(|a| a == flag) {
        None => dflt,
        Some(i) => {
            let raw = args.get(i + 1).unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            });
            raw.parse().unwrap_or_else(|_| {
                eprintln!("error: invalid value for {flag}: {raw:?}");
                std::process::exit(2);
            })
        }
    }
}

fn parse_classes(args: &[String]) -> Vec<String> {
    let Some(i) = args.iter().position(|a| a == "--classes") else {
        return FAULT_CLASSES.iter().map(|&c| c.to_string()).collect();
    };
    let raw = args.get(i + 1).unwrap_or_else(|| {
        eprintln!("error: --classes requires a value");
        std::process::exit(2);
    });
    if raw == "all" {
        return FAULT_CLASSES.iter().map(|&c| c.to_string()).collect();
    }
    raw.split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let opts = FaultCampaignOpts {
        topologies: parse_flag(&args, "--topologies", 100usize).max(1),
        seed: parse_flag(&args, "--seed", 1),
        cycles: parse_flag(&args, "--cycles", 256usize),
        lanes: parse_flag(&args, "--trials", 64usize),
        window_len: parse_flag(&args, "--window", 1usize),
        recovery_tail: parse_flag(&args, "--tail", 16usize),
        threads: parse_flag(&args, "--threads", default_threads()),
        queue: parse_flag(&args, "--queue", 2usize),
        classes: parse_classes(&args),
    };
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_pr7.json".into());

    println!(
        "fault_campaign: {} topologies x {} classes, {} trials x {} cycles each, \
         window {}, tail {}, {} threads",
        opts.topologies,
        opts.classes.len(),
        opts.lanes,
        opts.cycles,
        opts.window_len.max(1),
        opts.recovery_tail,
        opts.threads
    );

    let report = run_fault_campaign(&opts).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });

    println!(
        "  {:<16} {:>5} {:>7} {:>9} {:>9} {:>8} {:>8} {:>8} {:>9}",
        "class", "sites", "trials", "disturbed", "recovered", "p50", "p99", "nonrec", "mean dip"
    );
    for c in &report.classes {
        println!(
            "  {:<16} {:>5} {:>7} {:>9} {:>9} {:>8.1} {:>8.1} {:>7.1}% {:>9.4}",
            c.class,
            c.sites,
            c.trials,
            c.disturbed,
            c.recovered,
            c.recovery_p50,
            c.recovery_p99,
            c.non_recovery_rate * 100.0,
            c.mean_dip
        );
    }
    println!(
        "  {} jobs in {:.2}s on {} worker(s)",
        report.jobs.len(),
        report.wall_secs,
        report.threads
    );

    // Sensitivity gate: a campaign in which no class disturbed anything
    // measured nothing — fail loudly instead of archiving empty
    // distributions (mirrors the fuzz campaign's eligible > 0 rule).
    let disturbed: usize = report.classes.iter().map(|c| c.disturbed).sum();
    if !report.classes.is_empty() && disturbed == 0 {
        eprintln!(
            "error: no injected fault disturbed any lane — widen --topologies or move --seed"
        );
        std::process::exit(1);
    }

    if args.iter().any(|a| a == "--check") {
        let alt = FaultCampaignOpts {
            threads: if report.threads == 1 { 2 } else { 1 },
            queue: if opts.queue == 1 { 4 } else { 1 },
            ..opts.clone()
        };
        let reference = run_fault_campaign(&alt).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
        for (a, b) in report.jobs.iter().zip(&reference.jobs) {
            assert_eq!(a.site, b.site, "job sites diverged between thread counts");
            assert_eq!(
                a.lanes, b.lanes,
                "lane outcomes diverged between thread counts"
            );
        }
        println!(
            "determinism: {} worker(s)/queue {} == {} worker(s)/queue {} on {} jobs (bit-identical)",
            report.threads,
            opts.queue,
            reference.threads,
            alt.queue,
            report.jobs.len()
        );
    }

    report.write_json(&json_path).expect("write json");
    println!("wrote {json_path}");
}
