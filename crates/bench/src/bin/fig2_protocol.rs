//! Regenerates **Fig. 2**: the SELF protocol states (Transfer / Idle /
//! Retry) observed on a live channel, and the (I*R*T)* language check.

use elastic_core::protocol::{is_self_language, trace_string};
use elastic_core::sim::{BehavSim, EnvConfig, RandomEnv, SinkCfg, SourceCfg};
use elastic_core::systems::linear_pipeline;

fn main() {
    let (net, _, cout) = linear_pipeline(2, 1).expect("builds");
    let mut sim = BehavSim::new(&net).expect("valid");
    let mut cfg = EnvConfig::default();
    cfg.sources.insert(
        "src".into(),
        SourceCfg {
            rate: 0.6,
            data: elastic_core::sim::DataGen::Counter,
        },
    );
    cfg.sinks.insert(
        "snk".into(),
        SinkCfg {
            stop_prob: 0.35,
            kill_prob: 0.0,
        },
    );
    let mut env = RandomEnv::new(42, cfg);
    let mut sigs = Vec::new();
    for _ in 0..60 {
        sim.step(&mut env).expect("protocol holds");
        sigs.push(sim.signals(cout));
    }
    let trace = trace_string(sigs);
    println!("Fig. 2 — SELF protocol states on the output channel:");
    println!("  {trace}");
    println!("  member of (I*R*T)*: {}", is_self_language(&trace));
    assert!(is_self_language(&trace), "protocol violated");
}
