//! Regenerates **Fig. 8**: (a) controller netlists with feedback, model
//! checked for protocol conformance and liveness under fairness;
//! (b) producer/consumer data-correctness co-simulation with killing
//! consumers.

use elastic_core::sim::{EnvConfig, SinkCfg, SourceCfg};
use elastic_core::systems::linear_pipeline;
use elastic_core::verify::{check_network_properties, cosim_check_wide, Schedule};
use elastic_mc::BridgeOptions;

fn main() {
    println!("Fig. 8(a) — exhaustive CTL checking of controller netlists\n");
    for (stages, tokens) in [(1usize, 0usize), (2, 1)] {
        let (net, _, _) = linear_pipeline(stages, tokens).expect("builds");
        let (results, states) =
            check_network_properties(&net, BridgeOptions::default()).expect("checks");
        let holding = results.iter().filter(|r| r.holds).count();
        println!("  {stages}-buffer pipeline ({tokens} tokens): {holding}/{} properties hold ({states} states)",
            results.len());
        assert_eq!(holding, results.len());
    }

    println!("\nFig. 8(b) — gate-level vs behavioural co-simulation under a");
    println!("nondeterministic killing environment (alternating-data producers):\n");
    let (net, _, _) = linear_pipeline(3, 1).expect("builds");
    let cfg = EnvConfig {
        default_source: SourceCfg {
            rate: 0.7,
            data: elastic_core::sim::DataGen::Alternate,
        },
        default_sink: SinkCfg {
            stop_prob: 0.3,
            kill_prob: 0.2,
        },
        ..Default::default()
    };
    // All eight schedules run simultaneously as lanes of the bit-parallel
    // backend, each cross-checked against its behavioural reference (and
    // lane 0 against the scalar gate-level interpreter).
    let scheds: Vec<Schedule> = (0..8)
        .map(|s| Schedule::random(&net, &cfg, s, 1500))
        .collect();
    cosim_check_wide(&net, &scheds, 1).expect("back-ends agree");
    println!(
        "  {} schedules x 1500 cycles: every lane agrees with its behavioural \
         reference, lane 0 also with the scalar gate-level simulator",
        scheds.len()
    );
    println!("\nall checks passed");
}
