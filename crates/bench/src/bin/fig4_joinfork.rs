//! Regenerates **Fig. 4**: the lazy join and eager fork controllers —
//! gate-level compilation, area, and behavioural demonstration of the
//! eager fork letting a fast branch run ahead.

use elastic_core::compile::{compile, CompileOptions};
use elastic_core::dsl::Dsl;
use elastic_core::sim::{BehavSim, EnvConfig, RandomEnv, SinkCfg};
use elastic_netlist::area::AreaReport;
use elastic_netlist::export::to_verilog;

fn main() {
    let mut d = Dsl::new("fig4");
    let s1 = d.source("s1").unwrap();
    let s2 = d.source("s2").unwrap();
    let j = d
        .join::<2>("join", [s1.label("a1"), s2.label("a2")])
        .unwrap();
    let b = d.eb("eb", false, j.label("jb")).unwrap();
    let [f0, f1] = d.fork::<2>("fork", b.label("bf")).unwrap();
    let cf = d.sink("fast", f0.label("cf")).unwrap();
    let cs = d.sink("slow", f1.label("cs")).unwrap();
    let net = d.finish().unwrap();

    let compiled = compile(&net, &CompileOptions::default()).expect("compiles");
    println!("Fig. 4 — join + eager fork controllers");
    println!("gate-level area: {}", AreaReport::of(&compiled.netlist));
    println!("\nVerilog (excerpt):");
    let verilog = to_verilog(&compiled.netlist).expect("exportable netlist");
    for line in verilog.lines().take(12) {
        println!("  {line}");
    }

    let mut sim = BehavSim::new(&net).expect("valid");
    let mut cfg = EnvConfig::default();
    cfg.sinks.insert(
        "slow".into(),
        SinkCfg {
            stop_prob: 0.8,
            kill_prob: 0.0,
        },
    );
    let mut env = RandomEnv::new(3, cfg);
    sim.run(&mut env, 2000).expect("runs");
    let r = sim.report();
    println!("\neager fork with a stalling branch (stop 80%):");
    println!(
        "  fast branch rate: {:.3}",
        elastic_bench::rate_or_exit(r.try_positive_rate(cf), "cf")
    );
    println!(
        "  slow branch rate: {:.3}",
        elastic_bench::rate_or_exit(r.try_positive_rate(cs), "cs")
    );
    println!("  (equal in steady state; the fork decouples per-cycle timing)");
}
