//! Regenerates **Fig. 4**: the lazy join and eager fork controllers —
//! gate-level compilation, area, and behavioural demonstration of the
//! eager fork letting a fast branch run ahead.

use elastic_core::compile::{compile, CompileOptions};
use elastic_core::network::ElasticNetwork;
use elastic_core::sim::{BehavSim, EnvConfig, RandomEnv, SinkCfg};
use elastic_netlist::area::AreaReport;
use elastic_netlist::export::to_verilog;

fn main() {
    let mut net = ElasticNetwork::new("fig4");
    let s1 = net.add_source("s1");
    let s2 = net.add_source("s2");
    let j = net.add_join("join", 2);
    let b = net.add_eb("eb", false);
    let f = net.add_fork("fork", 2);
    let fast = net.add_sink("fast");
    let slow = net.add_sink("slow");
    net.connect(s1, 0, j, 0, "a1").unwrap();
    net.connect(s2, 0, j, 1, "a2").unwrap();
    net.connect(j, 0, b, 0, "jb").unwrap();
    net.connect(b, 0, f, 0, "bf").unwrap();
    let cf = net.connect(f, 0, fast, 0, "cf").unwrap();
    let cs = net.connect(f, 1, slow, 0, "cs").unwrap();

    let compiled = compile(&net, &CompileOptions::default()).expect("compiles");
    println!("Fig. 4 — join + eager fork controllers");
    println!("gate-level area: {}", AreaReport::of(&compiled.netlist));
    println!("\nVerilog (excerpt):");
    let verilog = to_verilog(&compiled.netlist).expect("exportable netlist");
    for line in verilog.lines().take(12) {
        println!("  {line}");
    }

    let mut sim = BehavSim::new(&net).expect("valid");
    let mut cfg = EnvConfig::default();
    cfg.sinks.insert(
        "slow".into(),
        SinkCfg {
            stop_prob: 0.8,
            kill_prob: 0.0,
        },
    );
    let mut env = RandomEnv::new(3, cfg);
    sim.run(&mut env, 2000).expect("runs");
    let r = sim.report();
    println!("\neager fork with a stalling branch (stop 80%):");
    println!(
        "  fast branch rate: {:.3}",
        elastic_bench::rate_or_exit(r.try_positive_rate(cf), "cf")
    );
    println!(
        "  slow branch rate: {:.3}",
        elastic_bench::rate_or_exit(r.try_positive_rate(cs), "cs")
    );
    println!("  (equal in steady state; the fork decouples per-cycle timing)");
}
