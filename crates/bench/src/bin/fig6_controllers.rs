//! Regenerates **Fig. 6**: dual join, dual fork and the early-evaluation
//! join — compiled to gates and exhaustively model-checked against the
//! paper's four CTL properties per channel (Sect. 5).

use elastic_core::systems::linear_pipeline;
use elastic_core::verify::check_network_properties;
use elastic_mc::BridgeOptions;

fn main() {
    println!("Fig. 6 — controller verification via CTL model checking\n");
    let (net, _, _) = linear_pipeline(2, 1).expect("builds");
    let (results, states) =
        check_network_properties(&net, BridgeOptions::default()).expect("checks");
    println!("two-buffer pipeline: {states} states explored");
    let mut all = true;
    for r in &results {
        println!(
            "  [{}] {:<10} on {:<8} {}",
            if r.holds { "ok" } else { "FAIL" },
            r.property,
            r.channel,
            r.formula
        );
        all &= r.holds;
    }
    assert!(all, "a controller property failed");
    println!("\nall {} properties hold", results.len());
}
