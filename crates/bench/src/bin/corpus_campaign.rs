//! Benchmark campaign over the real-design corpus — the binary behind
//! `BENCH_pr10.json`.
//!
//! Sweeps every corpus design (`elastic_core::corpus`) under all five
//! Table-1-style control configurations across an early-evaluation
//! probability × slow-latency knob grid, through the streaming Monte-Carlo
//! engine. For each (design, knob) cell the lazy configuration is the
//! baseline; every other configuration's mean throughput is reported as a
//! gain over it. On top of the sweep:
//!
//! 1. **Export round-trip** — every (design, configuration) network is
//!    compiled to gates and pushed through
//!    [`elastic_netlist::export::round_trip_check`]: all three renderers
//!    must be deterministic and the BLIF `.latch` count must equal the
//!    netlist's state-element count. Any failure exits non-zero.
//! 2. **Analytic cross-check** — each lazy point's measured mean must
//!    respect the marked-graph `min_cycle_ratio` bound where the
//!    abstraction applies; designs that are not strongly connected after
//!    abstraction (the feed-forward ones) are reported as skipped.
//! 3. **Gain gate** — at the most favourable knob cell (high cheap-branch
//!    probability, high slow latency) the active-anti-token configuration
//!    must beat lazy on every design, or the run exits non-zero.
//!
//! Usage: `corpus_campaign [--trials N] [--threads N] [--cycles N]
//! [--seed N] [--queue N] [--backend {auto,scalar,wide,wide1,wide2,wide4,
//! wide8}] [--json PATH]` (JSON defaults to `BENCH_pr10.json`).

use elastic_bench::exp::{
    lazy_bound_check, run_prepared, CampaignReport, CliOpts, Experiment, SystemSpec,
};
use elastic_bench::WideHarness;
use elastic_core::compile::{compile, CompileOptions};
use elastic_core::corpus::{build, CorpusConfig, Knobs, DESIGNS};
use elastic_core::network::ElasticNetwork;
use elastic_netlist::export::round_trip_check;
use elastic_netlist::wide::LANES;

/// Cheap-branch probabilities swept per design cell.
const EE_PROBS: [f64; 2] = [0.3, 0.8];
/// Slow latencies of the variable-latency units swept per design cell.
const LATENCIES: [u32; 2] = [4, 12];

/// One configuration's throughput relative to the lazy baseline of the
/// same (design, knobs) cell.
struct Gain {
    design: &'static str,
    config: CorpusConfig,
    ee_prob: f64,
    latency: u32,
    mean: f64,
    lazy_mean: f64,
}

impl Gain {
    fn ratio(&self) -> f64 {
        if self.lazy_mean > 0.0 {
            self.mean / self.lazy_mean
        } else {
            f64::NAN
        }
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let opts = CliOpts::parse(LANES, 2000);
    let engine = opts.engine();
    let json_path = opts
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_pr10.json".into());
    let mut report = CampaignReport {
        name: format!(
            "pr10_corpus trials={} cycles={} threads={} queue={} backend={}",
            opts.trials,
            opts.cycles,
            opts.threads,
            opts.queue,
            opts.backend.label()
        ),
        ..Default::default()
    };
    println!(
        "corpus campaign: {} designs x 5 configs x {} knob cells, {} trials x {} cycles per point",
        DESIGNS.len(),
        EE_PROBS.len() * LATENCIES.len(),
        opts.trials,
        opts.cycles
    );

    // Compile each (design, configuration) once. The knobs only shape the
    // environment (guard distribution, latency draws), never the network,
    // so one harness serves every knob cell; the round-trip export check
    // rides along on the same gate-level compile.
    let configs = CorpusConfig::all();
    let mut prepared: Vec<(&'static str, CorpusConfig, ElasticNetwork, WideHarness)> = Vec::new();
    for design in DESIGNS {
        for config in configs {
            let sys = build(design, config, &Knobs::default()).expect("corpus design builds");
            let copts = CompileOptions {
                lint: false,
                data_width: sys.data_width,
                ..CompileOptions::default()
            };
            let compiled = compile(&sys.network, &copts).unwrap_or_else(|e| {
                eprintln!("{design}/{}: gate-level compile failed: {e}", config.tag());
                std::process::exit(1);
            });
            if let Err(e) = round_trip_check(&compiled.netlist) {
                eprintln!("{design}/{}: export round-trip failed: {e}", config.tag());
                std::process::exit(1);
            }
            let harness =
                WideHarness::try_new(&sys.network, sys.output_channel).expect("harness compiles");
            prepared.push((design, config, sys.network, harness));
        }
    }
    println!(
        "export round-trip: {} netlists x 3 formats deterministic, .latch counts match",
        prepared.len()
    );

    let for_cell = |design: &str, config: CorpusConfig| {
        let (_, _, network, harness) = prepared
            .iter()
            .find(|(d, c, _, _)| *d == design && *c == config)
            .expect("prepared above");
        (network, harness)
    };

    // Sweep. Lazy runs first in each cell so the other configurations can
    // report their gain over it immediately.
    let ordered = [
        CorpusConfig::Lazy,
        CorpusConfig::Active,
        CorpusConfig::NoBypass,
        CorpusConfig::PassiveA,
        CorpusConfig::PassiveB,
    ];
    let mut gains: Vec<Gain> = Vec::new();
    let mut skipped_bounds: Vec<String> = Vec::new();
    for &ee_prob in &EE_PROBS {
        for &latency in &LATENCIES {
            let knobs = Knobs { ee_prob, latency };
            for design in DESIGNS {
                let mut lazy_mean = 0.0f64;
                for config in ordered {
                    let sys = build(design, config, &knobs).expect("corpus design builds");
                    let label = format!("{design}/{}/p{ee_prob:.1}/l{latency}", config.tag());
                    let exp = Experiment {
                        label: label.clone(),
                        system: SystemSpec::Custom {
                            network: sys.network.clone(),
                            output: sys.output_channel,
                        },
                        env: sys.env.clone(),
                        cycles: opts.cycles,
                        trials: opts.trials,
                        seed: opts.seed,
                    };
                    let (network, harness) = for_cell(design, config);
                    let res = run_prepared(harness, network, &exp, &engine).expect("point runs");
                    let mean = res.stats.mean();
                    if config == CorpusConfig::Lazy {
                        lazy_mean = mean;
                        let tol = 3.0 * res.stats.ci95() + 1.0 / opts.cycles as f64;
                        match lazy_bound_check(network, &exp.env, mean, tol) {
                            Ok(check) => {
                                println!(
                                    "  {label:<34} {:.4}  [bound {:.4}: {}]",
                                    mean,
                                    check.bound,
                                    if check.ok { "ok" } else { "VIOLATED" }
                                );
                                assert!(
                                    check.ok,
                                    "{label}: lazy mean exceeded its min-cycle-ratio bound"
                                );
                                report.bound_checks.push((label.clone(), check));
                            }
                            Err(e) => {
                                println!("  {label:<34} {mean:.4}  [bound skipped: {e}]");
                                skipped_bounds.push(label.clone());
                            }
                        }
                    } else {
                        let g = Gain {
                            design,
                            config,
                            ee_prob,
                            latency,
                            mean,
                            lazy_mean,
                        };
                        println!("  {label:<34} {mean:.4}  [x{:.3} vs lazy]", g.ratio());
                        gains.push(g);
                    }
                    report.points.push(res);
                }
            }
        }
    }

    // Gain gate: the paper's headline effect must reproduce on every
    // design at the favourable corner of the knob grid.
    let best_p = EE_PROBS[EE_PROBS.len() - 1];
    let best_l = LATENCIES[LATENCIES.len() - 1];
    for design in DESIGNS {
        let g = gains
            .iter()
            .find(|g| {
                g.design == design
                    && g.config == CorpusConfig::Active
                    && g.ee_prob == best_p
                    && g.latency == best_l
            })
            .expect("swept above");
        assert!(
            g.mean > g.lazy_mean,
            "{design}: active ({:.4}) does not beat lazy ({:.4}) at p={best_p} l={best_l}",
            g.mean,
            g.lazy_mean
        );
    }
    println!(
        "gain gate: active beats lazy on all {} designs at p={best_p:.1} l={best_l}",
        DESIGNS.len()
    );
    if !skipped_bounds.is_empty() {
        println!(
            "bound checks skipped (not strongly connected after abstraction): {}",
            skipped_bounds.join(", ")
        );
    }

    // Splice the gains table into the standard campaign JSON.
    let mut json = report.to_json();
    let tail = "\n}\n";
    assert!(json.ends_with(tail), "campaign JSON shape changed");
    json.truncate(json.len() - tail.len());
    json.push_str(",\n  \"gains\": [\n");
    for (i, g) in gains.iter().enumerate() {
        let sep = if i + 1 == gains.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"design\": \"{}\", \"config\": \"{}\", \"ee_prob\": {}, \
             \"latency\": {}, \"mean\": {}, \"lazy_mean\": {}, \"gain\": {}}}{sep}\n",
            g.design,
            g.config.tag(),
            json_f64(g.ee_prob),
            g.latency,
            json_f64(g.mean),
            json_f64(g.lazy_mean),
            json_f64(g.ratio()),
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&json_path, json).expect("write json");
    println!("wrote {json_path}");
}
