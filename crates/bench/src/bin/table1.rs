//! Regenerates **Table 1** of the paper: throughput, per-channel transfer
//! statistics and control-layer area for the five configurations of the
//! Fig. 9 example.
//!
//! Two layers of results:
//!
//! 1. the paper's single 10k-cycle behavioural simulation per row
//!    (per-channel `+ - x` rates and optimized area), and
//! 2. a sharded multi-threaded Monte-Carlo `Th` estimate per row from the
//!    experiment engine — `--trials` independent gate-level schedules with
//!    a 95% confidence interval, which is what single-run numbers lack.
//!
//! Usage: `table1 [cycles] [--trials N] [--threads N] [--seed N]
//! [--json PATH]`

use elastic_bench::exp::{run_experiment, CampaignReport, CliOpts, Experiment, SystemSpec};
use elastic_core::systems::{paper_example, Config};
use elastic_netlist::wide::LANES;

fn main() {
    // A positional horizon must parse; silently running the 10k default
    // after a typo would print a table for a simulation that never ran.
    let cycles: usize = match std::env::args().nth(1) {
        Some(raw) if !raw.starts_with("--") => raw.parse().unwrap_or_else(|_| {
            eprintln!("error: invalid cycle count {raw:?}");
            std::process::exit(2);
        }),
        _ => 10_000,
    };
    // The positional horizon also seeds the Monte-Carlo default, so both
    // halves of the output share one horizon unless --cycles overrides it.
    let opts = CliOpts::parse(LANES, cycles);
    let rows = elastic_bench::run_table1(cycles as u64, 2007);
    println!("Table 1 — {cycles}-cycle simulations, seed 2007\n");
    println!("{}", elastic_bench::format_table1(&rows));

    // Monte-Carlo Th per configuration: the sharded campaign quantifies the
    // spread the paper's single runs cannot.
    let mut report = CampaignReport {
        name: "table1".into(),
        ..Default::default()
    };
    println!(
        "Monte-Carlo Th ({} trials x {} cycles, {} threads):",
        opts.trials, opts.cycles, opts.threads
    );
    for config in Config::all() {
        let sys = paper_example(config).expect("builds");
        let exp = Experiment {
            label: config.label().to_string(),
            system: SystemSpec::Paper(config),
            env: sys.env_config,
            cycles: opts.cycles,
            trials: opts.trials,
            seed: opts.seed.wrapping_add(2007),
        };
        let res = run_experiment(&exp, opts.threads).expect("campaign point");
        println!("  {:<22} {}", res.label, res.summary());
        report.points.push(res);
    }
    if let Some(path) = &opts.json {
        report.write_json(path).expect("write json");
        println!("wrote {path}");
    }
}
