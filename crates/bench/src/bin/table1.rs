//! Regenerates **Table 1** of the paper: throughput, per-channel transfer
//! statistics and control-layer area for the five configurations of the
//! Fig. 9 example, from 10k-cycle simulations (as in the paper).

fn main() {
    let cycles = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let rows = elastic_bench::run_table1(cycles, 2007);
    println!("Table 1 — {cycles}-cycle simulations, seed 2007\n");
    println!("{}", elastic_bench::format_table1(&rows));
}
