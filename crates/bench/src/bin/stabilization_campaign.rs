//! Self-stabilization Monte-Carlo campaign — the binary behind
//! `BENCH_pr9.json` and the CI stabilization smoke.
//!
//! Sweeps fault-*process* classes × intensities × generated topologies:
//! where `fault_campaign` injects one window per trial, each job here
//! drives a whole deterministic fault process — `periodic` re-injection,
//! `sustained` stuck-at intervals, `correlated` multi-site bursts, a
//! `byzantine` channel adversary lying to producer and consumer on
//! phase-shifted windows — with one corruption gate per site and an
//! independent seeded process instance per packed lane. Each lane's
//! stabilization tracker retimes at every disturbance start, so the
//! report's per-class distributions measure the time from the *last*
//! fault event to sustained `(I*R*T)*` conformance, the rate of lanes
//! that never stabilize, the steady-state violation rate of those that
//! don't, and the throughput-dip-versus-intensity curve.
//!
//! The report closes with explicit-state convergence verdicts on the
//! small named systems and the leading generated topologies: does every
//! fault-free run from any fault-reachable state re-enter the legal
//! state set? Systems over the exploration budget record a typed skip.
//!
//! The whole report is bit-identical for every thread count and queue
//! depth (seeds derive from job indices, reduction is in job order);
//! `--check` re-runs the campaign at a different worker count and asserts
//! exactly that before writing the JSON.
//!
//! Usage: `stabilization_campaign [--topologies N] [--trials N]
//! [--cycles N] [--period N] [--intensities a,b,...] [--tail N]
//! [--seed N] [--threads N] [--queue N] [--classes a,b,...|all]
//! [--mc-topologies N] [--check] [--json PATH]`
//! (JSON defaults to `BENCH_pr9.json`; `--trials` is lanes per job).

use elastic_bench::exp::default_threads;
use elastic_bench::stabilize::{run_stabilization_campaign, StabilizationOpts, PROCESS_CLASSES};

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, dflt: T) -> T {
    match args.iter().position(|a| a == flag) {
        None => dflt,
        Some(i) => {
            let raw = args.get(i + 1).unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            });
            raw.parse().unwrap_or_else(|_| {
                eprintln!("error: invalid value for {flag}: {raw:?}");
                std::process::exit(2);
            })
        }
    }
}

fn parse_list(args: &[String], flag: &str, dflt: &[usize]) -> Vec<usize> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return dflt.to_vec();
    };
    let raw = args.get(i + 1).unwrap_or_else(|| {
        eprintln!("error: {flag} requires a value");
        std::process::exit(2);
    });
    raw.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("error: invalid value in {flag}: {s:?}");
                std::process::exit(2);
            })
        })
        .collect()
}

fn parse_classes(args: &[String]) -> Vec<String> {
    let Some(i) = args.iter().position(|a| a == "--classes") else {
        return PROCESS_CLASSES.iter().map(|&c| c.to_string()).collect();
    };
    let raw = args.get(i + 1).unwrap_or_else(|| {
        eprintln!("error: --classes requires a value");
        std::process::exit(2);
    });
    if raw == "all" {
        return PROCESS_CLASSES.iter().map(|&c| c.to_string()).collect();
    }
    raw.split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let opts = StabilizationOpts {
        topologies: parse_flag(&args, "--topologies", 100usize).max(1),
        seed: parse_flag(&args, "--seed", 1),
        cycles: parse_flag(&args, "--cycles", 256usize),
        lanes: parse_flag(&args, "--trials", 64usize),
        period: parse_flag(&args, "--period", 32usize),
        intensities: parse_list(&args, "--intensities", &[1, 2, 4]),
        recovery_tail: parse_flag(&args, "--tail", 16usize),
        threads: parse_flag(&args, "--threads", default_threads()),
        queue: parse_flag(&args, "--queue", 2usize),
        classes: parse_classes(&args),
        mc_topologies: parse_flag(&args, "--mc-topologies", 4usize),
    };
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_pr9.json".into());

    println!(
        "stabilization_campaign: {} topologies x {} classes x {} intensities, \
         {} trials x {} cycles each, period {}, tail {}, {} threads",
        opts.topologies,
        opts.classes.len(),
        opts.intensities.len(),
        opts.lanes,
        opts.cycles,
        opts.period,
        opts.recovery_tail,
        opts.threads
    );

    let report = run_stabilization_campaign(&opts).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });

    println!(
        "  {:<12} {:>4} {:>7} {:>9} {:>10} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "class",
        "int",
        "trials",
        "disturbed",
        "stabilized",
        "p50",
        "p99",
        "nonstab",
        "viol rate",
        "mean dip"
    );
    for c in &report.classes {
        for p in &c.points {
            println!(
                "  {:<12} {:>4} {:>7} {:>9} {:>10} {:>8.1} {:>8.1} {:>7.1}% {:>9.4} {:>9.4}",
                c.class,
                p.intensity,
                p.trials,
                p.disturbed,
                p.stabilized,
                p.stab_p50,
                p.stab_p99,
                p.non_stabilization_rate * 100.0,
                p.mean_violation_rate,
                p.mean_dip
            );
        }
        println!(
            "  {:<12} {:>4} p50 {:.1} p99 {:.1} nonstab {:.1}% viol {:.4}",
            c.class,
            "all",
            c.stab_p50,
            c.stab_p99,
            c.non_stabilization_rate * 100.0,
            c.mean_violation_rate
        );
    }
    for v in &report.mc {
        match (&v.report, &v.error) {
            (Some(r), _) => println!(
                "  mc {:<28} {} (ff {}, legal {}, diverging {}, bound {})",
                v.system,
                if r.converging {
                    "converging"
                } else {
                    "NOT converging"
                },
                r.ff_states,
                r.legal,
                r.diverging,
                r.convergence_bound
            ),
            (None, err) => println!(
                "  mc {:<28} skipped: {}",
                v.system,
                err.as_deref().unwrap_or("unknown")
            ),
        }
    }
    println!(
        "  {} jobs in {:.2}s on {} worker(s)",
        report.jobs.len(),
        report.wall_secs,
        report.threads
    );

    // Sensitivity gate: a campaign in which no process disturbed anything
    // measured nothing — fail loudly instead of archiving empty
    // distributions (mirrors the recovery campaign's rule).
    let disturbed: usize = report
        .classes
        .iter()
        .flat_map(|c| c.points.iter())
        .map(|p| p.disturbed)
        .sum();
    if !report.classes.is_empty() && disturbed == 0 {
        eprintln!("error: no fault process disturbed any lane — widen --topologies or move --seed");
        std::process::exit(1);
    }

    if args.iter().any(|a| a == "--check") {
        let alt = StabilizationOpts {
            threads: if report.threads == 1 { 2 } else { 1 },
            queue: if opts.queue == 1 { 4 } else { 1 },
            ..opts.clone()
        };
        let reference = run_stabilization_campaign(&alt).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
        for (a, b) in report.jobs.iter().zip(&reference.jobs) {
            assert_eq!(a.site, b.site, "job sites diverged between thread counts");
            assert_eq!(
                a.lanes, b.lanes,
                "lane outcomes diverged between thread counts"
            );
        }
        println!(
            "determinism: {} worker(s)/queue {} == {} worker(s)/queue {} on {} jobs (bit-identical)",
            report.threads,
            opts.queue,
            reference.threads,
            alt.queue,
            report.jobs.len()
        );
    }

    report.write_json(&json_path).expect("write json");
    println!("wrote {json_path}");
}
