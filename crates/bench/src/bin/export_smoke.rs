//! Export smoke test: pushes a batch of randomly generated elastic
//! topologies through all three textual exporters (Verilog, BLIF, SMV)
//! and the VCD renderer, exercising the typed-error export path end to
//! end — any panic or export error fails the run. CI runs this next to
//! the campaign determinism checks.
//!
//! Usage: `export_smoke [count] [--seed N]` (default 8 topologies).

use elastic_core::compile::{compile, CompileOptions};
use elastic_core::gen::{generate, TopoParams};
use elastic_netlist::export::{to_blif, to_smv, to_verilog};
use elastic_netlist::vcd::VcdRecorder;

fn main() {
    let mut count = 8u64;
    let mut seed = 2007u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let raw = args.next().unwrap_or_default();
                seed = raw.parse().unwrap_or_else(|_| {
                    eprintln!("error: invalid --seed {raw:?}");
                    std::process::exit(2);
                });
            }
            raw if !raw.starts_with("--") => {
                count = raw.parse().unwrap_or_else(|_| {
                    eprintln!("error: invalid topology count {raw:?}");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("error: unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }

    println!("export smoke: {count} generated topologies x 3 exporters (seed {seed})");
    let opts = CompileOptions {
        lint: false,
        data_width: 2,
        ..CompileOptions::default()
    };
    for i in 0..count {
        let params = TopoParams::sample(seed.wrapping_add(i));
        let sys = generate(&params).unwrap_or_else(|e| {
            eprintln!("topology {i}: generation failed: {e}");
            std::process::exit(1);
        });
        let compiled = compile(&sys.network, &opts).unwrap_or_else(|e| {
            eprintln!("topology {i}: compile failed: {e}");
            std::process::exit(1);
        });
        let mut sizes = [0usize; 3];
        for (k, render) in [
            to_verilog(&compiled.netlist),
            to_blif(&compiled.netlist),
            to_smv(&compiled.netlist),
        ]
        .into_iter()
        .enumerate()
        {
            match render {
                Ok(text) => sizes[k] = text.len(),
                Err(e) => {
                    eprintln!(
                        "topology {i} ({}): exporter {k} failed: {e}",
                        sys.network.name()
                    );
                    std::process::exit(1);
                }
            }
        }
        let vcd = VcdRecorder::new(&compiled.netlist).render();
        assert!(vcd.contains("$enddefinitions"), "vcd header missing");
        println!(
            "  {i}: {} nets -> verilog {}B, blif {}B, smv {}B",
            compiled.netlist.nets().len(),
            sizes[0],
            sizes[1],
            sizes[2]
        );
    }
    println!("ok: all {count} topologies exported cleanly");
}
