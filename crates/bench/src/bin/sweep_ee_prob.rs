//! Ablation: throughput of the example system as the fast-branch (I)
//! selection probability sweeps from 0 to 1, early vs lazy control.

use elastic_core::sim::{BehavSim, DataGen, RandomEnv, SourceCfg};
use elastic_core::systems::{paper_example, Config};

fn main() {
    println!("{:>6} {:>9} {:>9}", "p(I)", "early", "lazy");
    for step in 0..=10 {
        let p_i = f64::from(step) / 10.0;
        let rest = 1.0 - p_i;
        let dist = DataGen::Weighted(vec![(0b00, p_i), (0b10, rest * 0.75), (0b01, rest * 0.25)]);
        let mut th = [0.0f64; 2];
        for (k, config) in [Config::ActiveAntiTokens, Config::NoEarlyEval]
            .iter()
            .enumerate()
        {
            let sys = paper_example(*config).expect("builds");
            let mut env_cfg = sys.env_config.clone();
            env_cfg.sources.insert(
                "Din".into(),
                SourceCfg {
                    rate: 1.0,
                    data: dist.clone(),
                },
            );
            let mut sim = BehavSim::new(&sys.network).expect("valid");
            let mut env = RandomEnv::new(13, env_cfg);
            sim.run(&mut env, 5000).expect("runs");
            th[k] = sim.report().positive_rate(sys.output_channel);
        }
        println!("{p_i:>6.1} {:>9.3} {:>9.3}", th[0], th[1]);
    }
}
