//! Ablation: throughput of the example system as the fast-branch (I)
//! selection probability sweeps from 0 to 1, early vs lazy control.
//!
//! Every point is a 64-trial Monte-Carlo estimate: the control layer is
//! compiled to gates once per configuration and all 64 random schedules run
//! simultaneously through the bit-parallel `WideSimulator` (one `u64` lane
//! per trial). Variable-latency completions follow the schedule convention
//! (open-loop Bernoulli at rate `1/mean`, see `Schedule::random`), so M1/M2
//! delays are geometric with the configured means. The binary ends with a
//! wide-vs-scalar speedup measurement on the same schedule set — the
//! per-trial cost drops by well over an order of magnitude.

use elastic_bench::{measure_speedup, WideHarness};
use elastic_core::sim::{DataGen, SourceCfg};
use elastic_core::systems::{paper_example, Config};
use elastic_netlist::wide::LANES;

const CYCLES: usize = 2000;

fn main() {
    println!(
        "{:>6} {:>9} {:>8} {:>9} {:>8}   ({} trials x {CYCLES} cycles per point)",
        "p(I)", "early", "+/-sd", "lazy", "+/-sd", LANES
    );
    for step in 0..=10 {
        let p_i = f64::from(step) / 10.0;
        let rest = 1.0 - p_i;
        let dist = DataGen::Weighted(vec![(0b00, p_i), (0b10, rest * 0.75), (0b01, rest * 0.25)]);
        let mut cells = [(0.0f64, 0.0f64); 2];
        for (k, config) in [Config::ActiveAntiTokens, Config::NoEarlyEval]
            .iter()
            .enumerate()
        {
            let sys = paper_example(*config).expect("builds");
            let mut env_cfg = sys.env_config.clone();
            env_cfg.sources.insert(
                "Din".into(),
                SourceCfg {
                    rate: 1.0,
                    data: dist.clone(),
                },
            );
            let harness = WideHarness::new(&sys.network, sys.output_channel);
            let scheds = WideHarness::schedules(&sys.network, &env_cfg, 13, CYCLES, LANES);
            let stats = harness.run(&scheds);
            cells[k] = (stats.mean(), stats.stddev());
        }
        println!(
            "{p_i:>6.1} {:>9.3} {:>8.3} {:>9.3} {:>8.3}",
            cells[0].0, cells[0].1, cells[1].0, cells[1].1
        );
    }

    // Speedup of the bit-parallel backend over the scalar gate-level
    // interpreter, on the same 64 schedules of the active configuration.
    let sys = paper_example(Config::ActiveAntiTokens).expect("builds");
    let harness = WideHarness::new(&sys.network, sys.output_channel);
    let scheds = WideHarness::schedules(&sys.network, &sys.env_config, 13, CYCLES, LANES);
    let report = measure_speedup(&harness, &scheds);
    assert!(report.rates_match, "wide and scalar paths diverged");
    println!(
        "\nwide backend: {} trials x {} cycles in {:.3}s; scalar path {:.3}s \
         -> {:.1}x per-trial speedup (rates bit-identical)",
        report.lanes,
        report.cycles,
        report.wide_secs,
        report.scalar_secs,
        report.speedup()
    );
}
