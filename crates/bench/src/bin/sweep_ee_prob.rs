//! Ablation: throughput of the example system as the fast-branch (I)
//! selection probability sweeps from 0 to 1, early vs lazy control.
//!
//! Every point is a Monte-Carlo campaign run by the sharded experiment
//! engine (`elastic_bench::exp`): the control layer is compiled to gates
//! once per configuration, `--trials` independent random schedules are
//! split into 64-lane shards and executed by a `--threads`-wide worker
//! pool on the bit-parallel `WideSimulator`. Variable-latency completions
//! follow the schedule convention (open-loop Bernoulli at rate `1/mean`,
//! see `Schedule::random`), so M1/M2 delays are geometric with the
//! configured means. The binary ends with a wide-vs-scalar speedup
//! measurement — the per-trial cost drops by well over an order of
//! magnitude.
//!
//! Usage: `sweep_ee_prob [--trials N] [--threads N] [--cycles N]
//! [--seed N] [--json PATH] [--queue N]
//! [--backend {auto,scalar,wide,wide1,wide2,wide4,wide8}]` (backend
//! defaults to runtime width dispatch over the streaming pipeline).

use elastic_bench::exp::{
    ee_prob_experiment, run_experiment_opts, CampaignReport, CliOpts, EE_CONFIGS,
};
use elastic_bench::{measure_speedup, WideHarness};
use elastic_core::systems::{paper_example, Config};
use elastic_netlist::wide::LANES;

fn main() {
    let opts = CliOpts::parse(LANES, 2000);
    let mut report = CampaignReport {
        name: "sweep_ee_prob".into(),
        ..Default::default()
    };
    println!(
        "{:>6} {:>9} {:>8} {:>9} {:>8}   ({} trials x {} cycles per point, {} threads)",
        "p(I)", "early", "+/-ci95", "lazy", "+/-ci95", opts.trials, opts.cycles, opts.threads
    );
    for step in 0..=10 {
        let p_i = f64::from(step) / 10.0;
        let mut cells = [(0.0f64, 0.0f64); 2];
        for (k, (config, tag)) in EE_CONFIGS.into_iter().enumerate() {
            let exp = ee_prob_experiment(p_i, config, tag, opts.cycles, opts.trials, opts.seed)
                .expect("builds");
            let res = run_experiment_opts(&exp, &opts.engine()).expect("campaign point");
            cells[k] = (res.stats.mean(), res.stats.ci95());
            report.points.push(res);
        }
        println!(
            "{p_i:>6.1} {:>9.3} {:>8.3} {:>9.3} {:>8.3}",
            cells[0].0, cells[0].1, cells[1].0, cells[1].1
        );
    }

    // Speedup of the bit-parallel backend over the scalar gate-level
    // interpreter, on one 64-schedule word of the active configuration.
    let sys = paper_example(Config::ActiveAntiTokens).expect("builds");
    let harness = WideHarness::new(&sys.network, sys.output_channel);
    let scheds = WideHarness::schedules(&sys.network, &sys.env_config, 13, opts.cycles, LANES);
    let speed = measure_speedup(&harness, &scheds);
    assert!(speed.rates_match, "wide and scalar paths diverged");
    println!(
        "\nwide backend: {} trials x {} cycles in {:.3}s; scalar path {:.3}s \
         -> {:.1}x per-trial speedup (rates bit-identical)",
        speed.lanes,
        speed.cycles,
        speed.wide_secs,
        speed.scalar_secs,
        speed.speedup()
    );
    if let Some(path) = &opts.json {
        report.write_json(path).expect("write json");
        println!("wrote {path}");
    }
}
