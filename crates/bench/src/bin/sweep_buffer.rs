//! Ablation: depth of the opcode bypass buffer `C` on `S -> W`
//! (generalizing Table 1's "No buffer" row): 0 = row 2, 1 = row 1,
//! deeper buffers show diminishing returns.
//!
//! Each depth is rebuilt as a custom Fig. 9 topology and measured as a
//! sharded Monte-Carlo campaign (`SystemSpec::Custom` through the
//! experiment engine), replacing the old single-seed behavioural run with
//! a `--trials`-schedule gate-level estimate plus confidence interval.
//!
//! Usage: `sweep_buffer [--trials N] [--threads N] [--cycles N]
//! [--seed N] [--json PATH] [--queue N]
//! [--backend {auto,scalar,wide,wide1,wide2,wide4,wide8}]` (backend
//! defaults to runtime width dispatch over the streaming pipeline).

use elastic_bench::exp::{run_experiment_opts, CampaignReport, CliOpts, Experiment, SystemSpec};
use elastic_core::systems::{paper_example, paper_example_with_c_depth, Config};
use elastic_netlist::wide::LANES;

fn main() {
    let opts = CliOpts::parse(LANES, 2000);
    let base = paper_example(Config::ActiveAntiTokens).expect("builds");
    let mut report = CampaignReport {
        name: "sweep_buffer".into(),
        ..Default::default()
    };
    println!(
        "{:>8} {:>11} {:>8}   ({} trials x {} cycles per point, {} threads)",
        "C depth", "throughput", "+/-ci95", opts.trials, opts.cycles, opts.threads
    );
    for depth in 0..=4usize {
        let sys = paper_example_with_c_depth(Config::ActiveAntiTokens, depth).expect("builds");
        let (network, output) = (sys.network, sys.output_channel);
        let exp = Experiment {
            label: format!("c_depth={depth}"),
            system: SystemSpec::Custom { network, output },
            env: base.env_config.clone(),
            cycles: opts.cycles,
            trials: opts.trials,
            seed: opts.seed.wrapping_add(19),
        };
        let res = run_experiment_opts(&exp, &opts.engine()).expect("campaign point");
        println!(
            "{depth:>8} {:>11.3} {:>8.3}",
            res.stats.mean(),
            res.stats.ci95()
        );
        report.points.push(res);
    }
    println!("\ndepth 0 is Table 1 row 2 (no buffer); depth 1 is row 1;");
    println!("beyond depth 1 the bypass is no longer the bottleneck, and each");
    println!("extra stage only adds forward latency on the S->W path.");
    if let Some(path) = &opts.json {
        report.write_json(path).expect("write json");
        println!("wrote {path}");
    }
}
