//! Ablation: depth of the opcode bypass buffer `C` on `S -> W`
//! (generalizing Table 1's "No buffer" row): 0 = row 2, 1 = row 1,
//! deeper buffers show diminishing returns.
//!
//! Each depth is rebuilt as a custom Fig. 9 topology and measured as a
//! sharded Monte-Carlo campaign (`SystemSpec::Custom` through the
//! experiment engine), replacing the old single-seed behavioural run with
//! a `--trials`-schedule gate-level estimate plus confidence interval.
//!
//! Usage: `sweep_buffer [--trials N] [--threads N] [--cycles N]
//! [--seed N] [--json PATH] [--queue N]
//! [--backend {auto,scalar,wide,wide1,wide2,wide4,wide8}]` (backend
//! defaults to runtime width dispatch over the streaming pipeline).

use elastic_bench::exp::{run_experiment_opts, CampaignReport, CliOpts, Experiment, SystemSpec};
use elastic_core::network::ElasticNetwork;
use elastic_core::systems::{paper_example, w_early_eval, Config};
use elastic_netlist::wide::LANES;

fn build_with_c_depth(depth: usize) -> (ElasticNetwork, elastic_core::channel::ChanId) {
    // Rebuild the Fig. 9 topology with a parameterized C chain.
    let mut net = ElasticNetwork::new(format!("fig9_c{depth}"));
    let din = net.add_source("Din");
    let dout = net.add_sink("Dout");
    let s_join = net.add_join("S", 2);
    let s_fork = net.add_fork("Sfork", 4);
    net.connect(din, 0, s_join, 0, "Din->S").unwrap();
    net.connect(s_join, 0, s_fork, 0, "S->Sfork").unwrap();
    let eb_i = net.add_buffer("EBi", 1, 0);
    net.connect(s_fork, 0, eb_i, 0, "S->I").unwrap();
    let f1 = net.add_buffer("F1", 1, 0);
    let f2 = net.add_buffer("F2", 1, 0);
    let f3 = net.add_buffer("F3", 1, 0);
    net.connect(s_fork, 1, f1, 0, "S->F1").unwrap();
    net.connect(f1, 0, f2, 0, "F1->F2").unwrap();
    net.connect(f2, 0, f3, 0, "F2->F3").unwrap();
    let eb_sm = net.add_buffer("EBsm", 1, 0);
    let m1 = net.add_var_latency("M1");
    let m2 = net.add_var_latency("M2");
    let eb_mo = net.add_buffer("EBmo", 1, 0);
    net.connect(s_fork, 2, eb_sm, 0, "S->EBsm").unwrap();
    net.connect(eb_sm, 0, m1, 0, "S->M1").unwrap();
    net.connect(m1, 0, m2, 0, "M1->M2").unwrap();
    net.connect(m2, 0, eb_mo, 0, "M2->W").unwrap();
    let w = net.add_early_join("W", 4, w_early_eval()).unwrap();
    if depth == 0 {
        net.connect(s_fork, 3, w, 0, "S->W").unwrap();
    } else {
        let c = net.add_buffer("C", depth, 0);
        net.connect(s_fork, 3, c, 0, "S->C").unwrap();
        net.connect(c, 0, w, 0, "C->W").unwrap();
    }
    net.connect(eb_i, 0, w, 1, "I->W").unwrap();
    net.connect(f3, 0, w, 2, "F3->W").unwrap();
    net.connect(eb_mo, 0, w, 3, "Mo->W").unwrap();
    let w1 = net.add_buffer("W1", 1, 1);
    let w2 = net.add_buffer("W2", 1, 1);
    let w3 = net.add_buffer("W3", 1, 1);
    let wf = net.add_fork("Wfork", 2);
    net.connect(w, 0, w1, 0, "W->W1").unwrap();
    net.connect(w1, 0, w2, 0, "W1->W2").unwrap();
    net.connect(w2, 0, w3, 0, "W2->W3").unwrap();
    net.connect(w3, 0, wf, 0, "W3->Wfork").unwrap();
    let out = net.connect(wf, 0, dout, 0, "W->Dout").unwrap();
    net.connect(wf, 1, s_join, 1, "W->S").unwrap();
    net.check().unwrap();
    (net, out)
}

fn main() {
    let opts = CliOpts::parse(LANES, 2000);
    let base = paper_example(Config::ActiveAntiTokens).expect("builds");
    let mut report = CampaignReport {
        name: "sweep_buffer".into(),
        ..Default::default()
    };
    println!(
        "{:>8} {:>11} {:>8}   ({} trials x {} cycles per point, {} threads)",
        "C depth", "throughput", "+/-ci95", opts.trials, opts.cycles, opts.threads
    );
    for depth in 0..=4usize {
        let (network, output) = build_with_c_depth(depth);
        let exp = Experiment {
            label: format!("c_depth={depth}"),
            system: SystemSpec::Custom { network, output },
            env: base.env_config.clone(),
            cycles: opts.cycles,
            trials: opts.trials,
            seed: opts.seed.wrapping_add(19),
        };
        let res = run_experiment_opts(&exp, &opts.engine()).expect("campaign point");
        println!(
            "{depth:>8} {:>11.3} {:>8.3}",
            res.stats.mean(),
            res.stats.ci95()
        );
        report.points.push(res);
    }
    println!("\ndepth 0 is Table 1 row 2 (no buffer); depth 1 is row 1;");
    println!("beyond depth 1 the bypass is no longer the bottleneck, and each");
    println!("extra stage only adds forward latency on the S->W path.");
    if let Some(path) = &opts.json {
        report.write_json(path).expect("write json");
        println!("wrote {path}");
    }
}
