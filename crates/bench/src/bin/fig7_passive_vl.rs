//! Regenerates **Fig. 7**: (a) the passive anti-token interface — active
//! vs passive comparison on the paper example; (b) the variable-latency
//! controller's go/done/ack handshake.

use elastic_core::sim::{BehavSim, RandomEnv};
use elastic_core::systems::{paper_example, Config};

fn main() {
    println!("Fig. 7(a) — active vs passive anti-token interfaces\n");
    for config in [
        Config::ActiveAntiTokens,
        Config::PassiveF3W,
        Config::PassiveM2W,
    ] {
        let sys = paper_example(config).expect("builds");
        let mut sim = BehavSim::new(&sys.network).expect("valid");
        let mut env = RandomEnv::new(7, sys.env_config.clone());
        sim.run(&mut env, 10_000).expect("runs");
        let r = sim.report();
        println!(
            "  {:<22} Th {:.3}   F3->W neg {:.3}   Mo->W neg {:.3}",
            sys.config.label(),
            elastic_bench::rate_or_exit(r.try_positive_rate(sys.output_channel), "W->Dout"),
            elastic_bench::rate_or_exit(r.try_negative_rate(sys.channels.f3_w), "F3->W"),
            elastic_bench::rate_or_exit(r.try_negative_rate(sys.channels.mo_w), "Mo->W"),
        );
    }
    println!("\nFig. 7(b) — variable-latency units use a go/done/ack handshake;");
    println!("their gate-level controller exposes `<name>.go` and samples the");
    println!("nondeterministic `<name>.finish` input (see compile.rs).");
}
