//! End-to-end Monte-Carlo campaign runner for the sharded experiment
//! engine — the binary behind `BENCH_pr4.json` and the CI cross-check.
//!
//! Runs a `sweep_ee_prob`-equivalent campaign (early vs lazy at three
//! fast-branch probabilities) at arbitrary trial counts on the selected
//! backend (default: the full throughput pipeline — optimized netlist,
//! observed-cone DCE, peephole tape, packed stimulus, 8-word `WideSim`),
//! then:
//!
//! 1. **Determinism check** — re-runs one point at a *different* thread
//!    count and asserts the per-lane vector is bit-identical (the engine's
//!    shard/seed/reduce contract).
//! 2. **Backend equivalence** — the same point re-run on the single-word
//!    backend must be bit-identical lane by lane (chunk size cannot change
//!    results), and a 64-trial sub-batch re-run through the **scalar
//!    interpreter on the unoptimized netlist** must match too — the
//!    end-to-end cross-check of the optimize → levelize → peephole → pack
//!    pipeline. Either divergence exits non-zero.
//! 3. **Analytic cross-check** — the lazy configuration's measured mean
//!    must respect the marked-graph `min_cycle_ratio` bound
//!    (`elastic_core::dmg_bridge`); early evaluation is expected to beat
//!    it. A violation exits non-zero.
//! 4. **Thread scaling** — one reference point at 1/2/4/8 threads, wall
//!    times recorded in the JSON report.
//!
//! Every JSON point carries `cycles_per_sec` (trials × cycles / wall), the
//! per-core metric the PR-4 acceptance gate compares against
//! `BENCH_pr3.json`.
//!
//! Usage: `campaign [--trials N] [--threads N] [--cycles N] [--seed N]
//! [--backend {scalar,wide,wide1,wide2,wide4,wide8}] [--json PATH]`
//! (JSON defaults to `BENCH_pr4.json`).

use elastic_bench::exp::{
    ee_prob_experiment, lazy_bound_check, run_experiment_backend, CampaignReport, CliOpts,
    Experiment, EE_CONFIGS,
};
use elastic_bench::{Backend, WideHarness};
use elastic_core::systems::Config;

/// Fast-branch probabilities swept per configuration cell.
const CELLS_P: [f64; 3] = [0.0, 0.5, 1.0];

/// Builds the point spec for one (probability, config) cell — the shared
/// `sweep_ee_prob` construction, so campaign points stay equivalent to the
/// sweep's.
fn point(p_i: f64, config: Config, tag: &str, opts: &CliOpts) -> Experiment {
    ee_prob_experiment(p_i, config, tag, opts.cycles, opts.trials, opts.seed).expect("builds")
}

fn main() {
    let opts = CliOpts::parse(256, 200);
    let json_path = opts.json.clone().unwrap_or_else(|| "BENCH_pr4.json".into());
    let mut report = CampaignReport {
        name: format!(
            "pr4_campaign trials={} cycles={} threads={} backend={}",
            opts.trials,
            opts.cycles,
            opts.threads,
            opts.backend.label()
        ),
        ..Default::default()
    };
    println!(
        "campaign: {} trials x {} cycles per point, {} threads, backend {}",
        opts.trials,
        opts.cycles,
        opts.threads,
        opts.backend.label()
    );

    let cells: Vec<(f64, Config, &str)> = CELLS_P
        .iter()
        .flat_map(|&p| EE_CONFIGS.map(|(config, tag)| (p, config, tag)))
        .collect();
    for &(p_i, config, tag) in &cells {
        let exp = point(p_i, config, tag, &opts);
        let res = run_experiment_backend(&exp, opts.threads, opts.backend).expect("campaign point");
        println!(
            "  {:<18} {}  [{} shards, {:.3}s, {:.2}M cycles/s]",
            res.label,
            res.summary(),
            res.shards,
            res.wall_secs,
            res.cycles_per_sec() / 1e6
        );
        report.points.push(res);
    }

    // 1. Determinism: multi-threaded == single-threaded, bit for bit.
    let probe = point(0.5, Config::ActiveAntiTokens, "early", &opts);
    let multi = report
        .points
        .iter()
        .find(|r| r.label == probe.label)
        .expect("probe point ran in the sweep above")
        .clone();
    // Compare against a *different* thread count, so the check exercises
    // the shard/cursor/reduce contract even when the campaign itself ran
    // single-threaded (the default on a 1-core host). With a single shard
    // both runs clamp to 1 thread and the comparison is only a
    // reproducibility check — the printed counts say which one ran.
    let reference =
        run_experiment_backend(&probe, if multi.threads == 1 { 2 } else { 1 }, opts.backend)
            .expect("probe reference");
    assert_eq!(
        multi.stats.per_lane, reference.stats.per_lane,
        "campaign diverged between thread counts"
    );
    println!(
        "determinism: {} thread(s) == {} thread(s) on {} lanes (bit-identical)",
        multi.threads,
        reference.threads,
        multi.stats.trials()
    );

    // 2. Backend equivalence. (a) The single-word backend re-chunks the
    //    same seeds into 64-lane shards — the per-lane vector must not
    //    move. (b) A 64-trial sub-batch through the scalar interpreter on
    //    the *unoptimized* netlist anchors the whole optimized pipeline to
    //    the reference semantics (full-size scalar replays would take
    //    minutes; 64 trials exercise every moving part).
    if opts.backend != Backend::Wide1 {
        let narrow = run_experiment_backend(&probe, opts.threads, Backend::Wide1)
            .expect("single-word replay");
        assert_eq!(
            multi.stats.per_lane, narrow.stats.per_lane,
            "re-chunking for the single-word backend changed the results"
        );
        println!(
            "backend equivalence: {} == wide1 on {} lanes (bit-identical)",
            multi.backend,
            multi.stats.trials()
        );
    }
    {
        let (network, out) = probe.system.build().expect("builds");
        let h = WideHarness::try_new(&network, out).expect("compiles");
        let sub = 64.min(opts.trials);
        let scheds = WideHarness::schedules(&network, &probe.env, probe.seed, probe.cycles, sub);
        let scalar = h.run_scalar(&scheds);
        assert_eq!(
            &multi.stats.per_lane[..sub],
            &scalar.per_lane[..],
            "optimized pipeline diverged from the scalar interpreter"
        );
        println!("scalar anchor: first {sub} lanes == unoptimized gate-level interpreter");
    }

    // 3. Analytic cross-check: lazy throughput respects its marked-graph
    //    bound. The tolerance covers finite-horizon noise only: three
    //    CI-half-widths plus one token's worth of horizon truncation.
    for &(p_i, config, tag) in &cells {
        if config != Config::NoEarlyEval {
            continue;
        }
        let exp = point(p_i, config, tag, &opts);
        let (network, _) = exp.system.build().expect("builds");
        let res = report
            .points
            .iter()
            .find(|r| r.label == exp.label)
            .expect("point ran");
        let tol = 3.0 * res.stats.ci95() + 1.0 / opts.cycles as f64;
        let check =
            lazy_bound_check(&network, &exp.env, res.stats.mean(), tol).expect("bound analysis");
        println!(
            "bound check {:<14} measured {:.4} <= bound {:.4} (+{:.4}): {} [critical: {}]",
            exp.label,
            check.measured,
            check.bound,
            check.tolerance,
            if check.ok { "ok" } else { "VIOLATED" },
            check.critical.join(" -> ")
        );
        assert!(
            check.ok,
            "lazy configuration exceeded its min-cycle-ratio bound"
        );
        report.bound_checks.push((exp.label.clone(), check));
    }

    // 4. Thread scaling on one reference point. The determinism run above
    //    doubles as one sample, and requested counts that the engine would
    //    clamp to an already-measured shard-limited count are skipped so
    //    every emitted row is a distinct, truthful measurement.
    let num_shards = opts.trials.div_ceil(opts.backend.lanes());
    println!("scaling (p_i=0.50/early point, {num_shards} shards):");
    for threads in [1usize, 2, 4, 8] {
        let actual = threads.min(num_shards);
        if report.scaling.iter().any(|&(t, _)| t == actual) {
            continue;
        }
        let res = if actual == reference.threads {
            reference.clone()
        } else {
            run_experiment_backend(&probe, actual, opts.backend).expect("scaling point")
        };
        println!("  {actual} thread(s): {:.3}s", res.wall_secs);
        report.scaling.push((actual, res.wall_secs));
    }

    report.write_json(&json_path).expect("write json");
    println!("wrote {json_path}");
}
