//! End-to-end Monte-Carlo campaign runner for the sharded experiment
//! engine — the binary behind `BENCH_pr3.json` and the CI cross-check.
//!
//! Runs a `sweep_ee_prob`-equivalent campaign (early vs lazy at three
//! fast-branch probabilities) at arbitrary trial counts, then:
//!
//! 1. **Determinism check** — re-runs one point at a *different* thread
//!    count and asserts the per-lane vector is bit-identical (the engine's
//!    shard/seed/reduce contract).
//! 2. **Analytic cross-check** — the lazy configuration's measured mean
//!    must respect the marked-graph `min_cycle_ratio` bound
//!    (`elastic_core::dmg_bridge`); early evaluation is expected to beat
//!    it. A violation exits non-zero.
//! 3. **Thread scaling** — one reference point at 1/2/4/8 threads, wall
//!    times recorded in the JSON report.
//!
//! Usage: `campaign [--trials N] [--threads N] [--cycles N] [--seed N]
//! [--json PATH]` (JSON defaults to `BENCH_pr3.json`).

use elastic_bench::exp::{
    ee_prob_experiment, lazy_bound_check, run_experiment, CampaignReport, CliOpts, Experiment,
    EE_CONFIGS,
};
use elastic_core::systems::Config;
use elastic_netlist::wide::LANES;

/// Builds the point spec for one (probability, config) cell — the shared
/// `sweep_ee_prob` construction, so campaign points stay equivalent to the
/// sweep's.
fn point(p_i: f64, config: Config, tag: &str, opts: &CliOpts) -> Experiment {
    ee_prob_experiment(p_i, config, tag, opts.cycles, opts.trials, opts.seed).expect("builds")
}

fn main() {
    let opts = CliOpts::parse(256, 200);
    let json_path = opts.json.clone().unwrap_or_else(|| "BENCH_pr3.json".into());
    let mut report = CampaignReport {
        name: format!(
            "pr3_campaign trials={} cycles={} threads={}",
            opts.trials, opts.cycles, opts.threads
        ),
        ..Default::default()
    };
    println!(
        "campaign: {} trials x {} cycles per point, {} threads",
        opts.trials, opts.cycles, opts.threads
    );

    let cells: Vec<(f64, Config, &str)> = [0.0, 0.5, 1.0]
        .iter()
        .flat_map(|&p| EE_CONFIGS.map(|(config, tag)| (p, config, tag)))
        .collect();
    for &(p_i, config, tag) in &cells {
        let exp = point(p_i, config, tag, &opts);
        let res = run_experiment(&exp, opts.threads).expect("campaign point");
        println!(
            "  {:<18} {}  [{} shards, {:.3}s]",
            res.label,
            res.summary(),
            res.shards,
            res.wall_secs
        );
        report.points.push(res);
    }

    // 1. Determinism: multi-threaded == single-threaded, bit for bit.
    let probe = point(0.5, Config::ActiveAntiTokens, "early", &opts);
    let multi = report
        .points
        .iter()
        .find(|r| r.label == probe.label)
        .expect("probe point ran in the sweep above");
    // Compare against a *different* thread count, so the check exercises
    // the shard/cursor/reduce contract even when the campaign itself ran
    // single-threaded (the default on a 1-core host). With a single shard
    // both runs clamp to 1 thread and the comparison is only a
    // reproducibility check — the printed counts say which one ran.
    let reference =
        run_experiment(&probe, if multi.threads == 1 { 2 } else { 1 }).expect("probe reference");
    assert_eq!(
        multi.stats.per_lane, reference.stats.per_lane,
        "campaign diverged between thread counts"
    );
    println!(
        "determinism: {} thread(s) == {} thread(s) on {} lanes (bit-identical)",
        multi.threads,
        reference.threads,
        multi.stats.trials()
    );

    // 2. Analytic cross-check: lazy throughput respects its marked-graph
    //    bound. The tolerance covers finite-horizon noise only: three
    //    CI-half-widths plus one token's worth of horizon truncation.
    for &(p_i, config, tag) in &cells {
        if config != Config::NoEarlyEval {
            continue;
        }
        let exp = point(p_i, config, tag, &opts);
        let (network, _) = exp.system.build().expect("builds");
        let res = report
            .points
            .iter()
            .find(|r| r.label == exp.label)
            .expect("point ran");
        let tol = 3.0 * res.stats.ci95() + 1.0 / opts.cycles as f64;
        let check =
            lazy_bound_check(&network, &exp.env, res.stats.mean(), tol).expect("bound analysis");
        println!(
            "bound check {:<14} measured {:.4} <= bound {:.4} (+{:.4}): {} [critical: {}]",
            exp.label,
            check.measured,
            check.bound,
            check.tolerance,
            if check.ok { "ok" } else { "VIOLATED" },
            check.critical.join(" -> ")
        );
        assert!(
            check.ok,
            "lazy configuration exceeded its min-cycle-ratio bound"
        );
        report.bound_checks.push((exp.label.clone(), check));
    }

    // 3. Thread scaling on one reference point. The determinism run above
    //    doubles as one sample, and requested counts that the engine would
    //    clamp to an already-measured shard-limited count are skipped so
    //    every emitted row is a distinct, truthful measurement.
    let num_shards = opts.trials.div_ceil(LANES);
    println!("scaling (p_i=0.50/early point, {num_shards} shards):");
    for threads in [1usize, 2, 4, 8] {
        let actual = threads.min(num_shards);
        if report.scaling.iter().any(|&(t, _)| t == actual) {
            continue;
        }
        let res = if actual == reference.threads {
            reference.clone()
        } else {
            run_experiment(&probe, actual).expect("scaling point")
        };
        println!("  {actual} thread(s): {:.3}s", res.wall_secs);
        report.scaling.push((actual, res.wall_secs));
    }

    report.write_json(&json_path).expect("write json");
    println!("wrote {json_path}");
}
