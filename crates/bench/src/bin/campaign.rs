//! End-to-end Monte-Carlo campaign runner for the streaming experiment
//! engine — the binary behind `BENCH_pr6.json` and the CI cross-check.
//!
//! Runs a `sweep_ee_prob`-equivalent campaign (early vs lazy at three
//! fast-branch probabilities) at arbitrary trial counts through the
//! streaming producer/consumer pipeline (runtime-dispatched word width,
//! cache-blocked tapes, bounded stimulus queue; the harness is compiled
//! once per configuration and amortized across its points), then:
//!
//! 1. **Determinism check** — re-runs one point at a *different* thread
//!    count **and queue depth** and asserts the per-lane vector is
//!    bit-identical (the engine's shard/seed/reduce contract).
//! 2. **Backend equivalence** — the same point re-run on the forced
//!    single-word backend must be bit-identical lane by lane (neither
//!    runtime dispatch nor chunk size can change results), and a 64-trial
//!    sub-batch re-run through the **scalar interpreter on the unoptimized
//!    netlist** must match too — the end-to-end cross-check of the
//!    optimize → levelize → peephole → generate pipeline. Either
//!    divergence exits non-zero.
//! 3. **Analytic cross-check** — the lazy configuration's measured mean
//!    must respect the marked-graph `min_cycle_ratio` bound
//!    (`elastic_core::dmg_bridge`); early evaluation is expected to beat
//!    it. A violation exits non-zero.
//! 4. **Thread scaling** — one reference point at requested 1/2/4/8
//!    threads; each row records the requested *and* the effective
//!    (clamped) worker count, so an oversubscribed request measures the
//!    clamp working rather than timeslicing overhead (the BENCH_pr4.json
//!    scaling bug).
//!
//! Every JSON point carries `cycles_per_sec` (trials × cycles / wall), the
//! per-core metric the PR-6 acceptance gate compares against
//! `BENCH_pr4.json`, plus the `dispatch`/`backend` pair recording the
//! runtime width choice.
//!
//! Usage: `campaign [--trials N] [--threads N] [--cycles N] [--seed N]
//! [--queue N] [--backend {auto,scalar,wide,wide1,wide2,wide4,wide8}]
//! [--json PATH]` (JSON defaults to `BENCH_pr6.json`).

use elastic_bench::exp::{
    ee_prob_experiment, lazy_bound_check, run_prepared, CampaignReport, CliOpts, EngineOpts,
    Experiment, ScalingRow, EE_CONFIGS,
};
use elastic_bench::{Backend, BackendSel, WideHarness};
use elastic_core::network::ElasticNetwork;
use elastic_core::systems::Config;

/// Fast-branch probabilities swept per configuration cell.
const CELLS_P: [f64; 3] = [0.0, 0.5, 1.0];

/// Builds the point spec for one (probability, config) cell — the shared
/// `sweep_ee_prob` construction, so campaign points stay equivalent to the
/// sweep's.
fn point(p_i: f64, config: Config, tag: &str, opts: &CliOpts) -> Experiment {
    ee_prob_experiment(p_i, config, tag, opts.cycles, opts.trials, opts.seed).expect("builds")
}

fn main() {
    // Defaults match the BENCH_pr4.json campaign (1024 trials x 2000
    // cycles) so `cycles_per_sec` is comparable point by point.
    let opts = CliOpts::parse(1024, 2000);
    let engine = opts.engine();
    let json_path = opts.json.clone().unwrap_or_else(|| "BENCH_pr6.json".into());
    let mut report = CampaignReport {
        name: format!(
            "pr6_campaign trials={} cycles={} threads={} queue={} backend={}",
            opts.trials,
            opts.cycles,
            opts.threads,
            opts.queue,
            opts.backend.label()
        ),
        ..Default::default()
    };
    println!(
        "campaign: {} trials x {} cycles per point, {} threads, queue {}, backend {}",
        opts.trials,
        opts.cycles,
        opts.threads,
        opts.queue,
        opts.backend.label()
    );

    // Compile each configuration once; every point of that configuration
    // (and every probe/replay below) reuses the same harness, so per-point
    // wall time measures the streaming pipeline, not recompilation.
    let prepared: Vec<(Config, ElasticNetwork, WideHarness)> = EE_CONFIGS
        .iter()
        .map(|&(config, _)| {
            let exp = point(0.0, config, "x", &opts);
            let (network, out) = exp.system.build().expect("builds");
            let harness = WideHarness::try_new(&network, out).expect("compiles");
            (config, network, harness)
        })
        .collect();
    let for_config = |config: Config| {
        let (_, network, harness) = prepared
            .iter()
            .find(|&&(c, _, _)| c == config)
            .expect("prepared above");
        (network, harness)
    };

    // Untimed warm-up: fault in the binary, allocator arenas, and branch
    // predictors before the measured sweep — the first point otherwise
    // pays the process's cold start, which per-point BENCH comparisons
    // would misread as engine throughput.
    for _ in 0..2 {
        for &(config, tag) in &EE_CONFIGS {
            let exp = point(0.5, config, tag, &opts);
            let (network, harness) = for_config(config);
            run_prepared(harness, network, &exp, &engine).expect("warm-up point");
        }
    }

    let cells: Vec<(f64, Config, &str)> = CELLS_P
        .iter()
        .flat_map(|&p| EE_CONFIGS.map(|(config, tag)| (p, config, tag)))
        .collect();
    for &(p_i, config, tag) in &cells {
        let exp = point(p_i, config, tag, &opts);
        let (network, harness) = for_config(config);
        let res = run_prepared(harness, network, &exp, &engine).expect("campaign point");
        println!(
            "  {:<18} {}  [{} shards, {} thread(s), {}/{}, {:.3}s, {:.2}M cycles/s]",
            res.label,
            res.summary(),
            res.shards,
            res.threads,
            res.dispatch,
            res.backend,
            res.wall_secs,
            res.cycles_per_sec() / 1e6
        );
        report.points.push(res);
    }

    // 1. Determinism: a different thread count and queue depth must be bit
    //    identical. With a single shard both runs clamp to 1 worker and the
    //    comparison is only a reproducibility check — the printed counts
    //    say which one ran.
    let probe = point(0.5, Config::ActiveAntiTokens, "early", &opts);
    let (probe_net, probe_harness) = for_config(Config::ActiveAntiTokens);
    let multi = report
        .points
        .iter()
        .find(|r| r.label == probe.label)
        .expect("probe point ran in the sweep above")
        .clone();
    let reference = run_prepared(
        probe_harness,
        probe_net,
        &probe,
        &EngineOpts {
            threads: if multi.threads == 1 { 2 } else { 1 },
            queue: if engine.queue == 1 { 8 } else { 1 },
            ..engine
        },
    )
    .expect("probe reference");
    assert_eq!(
        multi.stats.per_lane, reference.stats.per_lane,
        "campaign diverged between thread counts / queue depths"
    );
    println!(
        "determinism: {} thread(s)/queue {} == {} thread(s)/queue {} on {} lanes (bit-identical)",
        multi.threads,
        multi.queue,
        reference.threads,
        reference.queue,
        multi.stats.trials()
    );

    // 2. Backend equivalence. (a) The forced single-word backend re-chunks
    //    the same seeds into 64-lane shards — the per-lane vector must not
    //    move. (b) A 64-trial sub-batch through the scalar interpreter on
    //    the *unoptimized* netlist anchors the whole optimized pipeline to
    //    the reference semantics (full-size scalar replays would take
    //    minutes; 64 trials exercise every moving part).
    if multi.backend != Backend::Wide1.label() {
        let narrow = run_prepared(
            probe_harness,
            probe_net,
            &probe,
            &EngineOpts {
                backend: BackendSel::Fixed(Backend::Wide1),
                ..engine
            },
        )
        .expect("single-word replay");
        assert_eq!(
            multi.stats.per_lane, narrow.stats.per_lane,
            "re-chunking for the single-word backend changed the results"
        );
        println!(
            "backend equivalence: {} == wide1 on {} lanes (bit-identical)",
            multi.backend,
            multi.stats.trials()
        );
    }
    {
        let sub = 64.min(opts.trials);
        let scheds = WideHarness::schedules(probe_net, &probe.env, probe.seed, probe.cycles, sub);
        let scalar = probe_harness.run_scalar(&scheds);
        assert_eq!(
            &multi.stats.per_lane[..sub],
            &scalar.per_lane[..],
            "optimized pipeline diverged from the scalar interpreter"
        );
        println!("scalar anchor: first {sub} lanes == unoptimized gate-level interpreter");
    }

    // 3. Analytic cross-check: lazy throughput respects its marked-graph
    //    bound. The tolerance covers finite-horizon noise only: three
    //    CI-half-widths plus one token's worth of horizon truncation.
    for &(p_i, config, tag) in &cells {
        if config != Config::NoEarlyEval {
            continue;
        }
        let exp = point(p_i, config, tag, &opts);
        let (network, _) = for_config(config);
        let res = report
            .points
            .iter()
            .find(|r| r.label == exp.label)
            .expect("point ran");
        let tol = 3.0 * res.stats.ci95() + 1.0 / opts.cycles as f64;
        let check =
            lazy_bound_check(network, &exp.env, res.stats.mean(), tol).expect("bound analysis");
        println!(
            "bound check {:<14} measured {:.4} <= bound {:.4} (+{:.4}): {} [critical: {}]",
            exp.label,
            check.measured,
            check.bound,
            check.tolerance,
            if check.ok { "ok" } else { "VIOLATED" },
            check.critical.join(" -> ")
        );
        assert!(
            check.ok,
            "lazy configuration exceeded its min-cycle-ratio bound"
        );
        report.bound_checks.push((exp.label.clone(), check));
    }

    // 4. Thread scaling on one reference point. Every requested rung is
    //    measured and recorded with the worker count the engine actually
    //    spawned — on an oversubscribed host the wall times should be flat
    //    (the clamp at work), never *worse* than one thread.
    println!("scaling (p_i=0.50/early point, {} shards):", multi.shards);
    for threads in [1usize, 2, 4, 8] {
        let res = run_prepared(
            probe_harness,
            probe_net,
            &probe,
            &EngineOpts { threads, ..engine },
        )
        .expect("scaling point");
        println!(
            "  requested {threads} -> {} worker(s): {:.3}s",
            res.threads, res.wall_secs
        );
        report.scaling.push(ScalingRow {
            requested: threads,
            effective: res.threads,
            wall_secs: res.wall_secs,
        });
    }

    report.write_json(&json_path).expect("write json");
    println!("wrote {json_path}");
}
