//! Regenerates **Fig. 1**: the dual marked graph with one early-enabling
//! node, its initial marking, and the reachable marking with anti-tokens
//! after firing n2 (P), n1 (E) and n7 (N).

use elastic_dmg::analysis::{check_liveness, simple_cycles};
use elastic_dmg::examples::{fig1_dmg, fig1_firing_sequence};

fn main() {
    let g = fig1_dmg();
    println!(
        "Fig. 1 dual marked graph: {} nodes, {} arcs",
        g.num_nodes(),
        g.num_arcs()
    );
    println!(
        "initial marking: {}",
        g.format_marking(&g.initial_marking())
    );
    let (cycles, _) = simple_cycles(&g, 100);
    for (i, c) in cycles.iter().enumerate() {
        println!(
            "  cycle C{} ({} arcs): tokens = {}",
            i + 1,
            c.len(),
            c.tokens(&g.initial_marking())
        );
    }
    println!(
        "liveness: {:?}",
        check_liveness(&g).expect("strongly connected")
    );
    let (g, rules, m) = fig1_firing_sequence();
    let tags: String = rules.iter().map(|r| r.tag()).collect();
    println!("\nfiring n2, n1, n7 with rules [{tags}]");
    println!("reached marking (Fig. 1b): {}", g.format_marking(&m));
    let (cycles, _) = simple_cycles(&g, 100);
    for (i, c) in cycles.iter().enumerate() {
        println!("  cycle C{}: tokens = {} (preserved)", i + 1, c.tokens(&m));
    }
}
