//! Ablation: throughput vs the slow-path latency of M1 (mean latency
//! sweep), early vs lazy — early evaluation decouples the system from the
//! slow unit, the lazy join tracks 1/latency.
//!
//! Each point is a sharded multi-threaded Monte-Carlo campaign
//! (`elastic_bench::exp`, `--trials` schedules in 64-lane words on the
//! bit-parallel backend). Pre-generated schedules model variable-latency
//! completions as an open-loop Bernoulli stream with rate `1/mean` (see
//! `Schedule::random`), so the configured value is the *mean* completion
//! time (geometric latency), not an exact per-token latency — the
//! decoupling-vs-1/latency contrast is unchanged.
//!
//! Usage: `sweep_latency [--trials N] [--threads N] [--cycles N]
//! [--seed N] [--json PATH] [--queue N]
//! [--backend {auto,scalar,wide,wide1,wide2,wide4,wide8}]` (backend
//! defaults to runtime width dispatch over the streaming pipeline).

use elastic_bench::exp::{run_experiment_opts, CampaignReport, CliOpts, Experiment, SystemSpec};
use elastic_core::sim::LatencyDist;
use elastic_core::systems::{paper_example, Config};
use elastic_netlist::wide::LANES;

fn main() {
    let opts = CliOpts::parse(LANES, 2000);
    let mut report = CampaignReport {
        name: "sweep_latency".into(),
        ..Default::default()
    };
    println!(
        "{:>9} {:>9} {:>8} {:>9} {:>8}   ({} trials x {} cycles per point, {} threads)",
        "M1 mean*", "early", "+/-ci95", "lazy", "+/-ci95", opts.trials, opts.cycles, opts.threads
    );
    for lat in [1u32, 2, 4, 8, 16] {
        let mut cells = [(0.0f64, 0.0f64); 2];
        for (k, (config, tag)) in [
            (Config::ActiveAntiTokens, "early"),
            (Config::NoEarlyEval, "lazy"),
        ]
        .into_iter()
        .enumerate()
        {
            let sys = paper_example(config).expect("builds");
            let mut env = sys.env_config.clone();
            env.vls.insert("M1".into(), LatencyDist::fixed(lat));
            let exp = Experiment {
                label: format!("m1={lat}/{tag}"),
                system: SystemSpec::Paper(config),
                env,
                cycles: opts.cycles,
                trials: opts.trials,
                seed: opts.seed.wrapping_add(16),
            };
            let res = run_experiment_opts(&exp, &opts.engine()).expect("campaign point");
            cells[k] = (res.stats.mean(), res.stats.ci95());
            report.points.push(res);
        }
        println!(
            "{lat:>9} {:>9.3} {:>8.3} {:>9.3} {:>8.3}",
            cells[0].0, cells[0].1, cells[1].0, cells[1].1
        );
    }
    println!("\n* mean of the geometric completion stream (Bernoulli at 1/mean);");
    println!("  schedules are open-loop, so exact fixed latencies are not expressible.");
    if let Some(path) = &opts.json {
        report.write_json(path).expect("write json");
        println!("wrote {path}");
    }
}
