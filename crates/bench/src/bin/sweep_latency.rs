//! Ablation: throughput vs the slow-path latency of M1 (mean latency
//! sweep), early vs lazy — early evaluation decouples the system from the
//! slow unit, the lazy join tracks 1/latency.
//!
//! Each point averages 64 Monte-Carlo schedules evaluated in one pass by
//! the bit-parallel `WideSimulator` backend. Pre-generated schedules model
//! variable-latency completions as an open-loop Bernoulli stream with rate
//! `1/mean` (see `Schedule::random`), so the configured value is the *mean*
//! completion time (geometric latency), not an exact per-token latency —
//! the decoupling-vs-1/latency contrast is unchanged.

use elastic_bench::WideHarness;
use elastic_core::sim::LatencyDist;
use elastic_core::systems::{paper_example, Config};
use elastic_netlist::wide::LANES;

const CYCLES: usize = 2000;

fn main() {
    println!(
        "{:>9} {:>9} {:>8} {:>9} {:>8}   ({} trials x {CYCLES} cycles per point)",
        "M1 mean*", "early", "+/-sd", "lazy", "+/-sd", LANES
    );
    for lat in [1u32, 2, 4, 8, 16] {
        let mut cells = [(0.0f64, 0.0f64); 2];
        for (k, config) in [Config::ActiveAntiTokens, Config::NoEarlyEval]
            .iter()
            .enumerate()
        {
            let sys = paper_example(*config).expect("builds");
            let mut env_cfg = sys.env_config.clone();
            env_cfg.vls.insert("M1".into(), LatencyDist::fixed(lat));
            let harness = WideHarness::new(&sys.network, sys.output_channel);
            let scheds = WideHarness::schedules(&sys.network, &env_cfg, 17, CYCLES, LANES);
            let stats = harness.run(&scheds);
            cells[k] = (stats.mean(), stats.stddev());
        }
        println!(
            "{lat:>9} {:>9.3} {:>8.3} {:>9.3} {:>8.3}",
            cells[0].0, cells[0].1, cells[1].0, cells[1].1
        );
    }
    println!("\n* mean of the geometric completion stream (Bernoulli at 1/mean);");
    println!("  schedules are open-loop, so exact fixed latencies are not expressible.");
}
