//! Ablation: throughput vs the slow-path latency of M1 (mean latency
//! sweep), early vs lazy — early evaluation decouples the system from the
//! slow unit, the lazy join tracks 1/latency.

use elastic_core::sim::{BehavSim, LatencyDist, RandomEnv};
use elastic_core::systems::{paper_example, Config};

fn main() {
    println!("{:>9} {:>9} {:>9}", "M1 mean", "early", "lazy");
    for lat in [1u32, 2, 4, 8, 16] {
        let mut th = [0.0f64; 2];
        for (k, config) in [Config::ActiveAntiTokens, Config::NoEarlyEval]
            .iter()
            .enumerate()
        {
            let sys = paper_example(*config).expect("builds");
            let mut env_cfg = sys.env_config.clone();
            env_cfg.vls.insert("M1".into(), LatencyDist::fixed(lat));
            let mut sim = BehavSim::new(&sys.network).expect("valid");
            let mut env = RandomEnv::new(17, env_cfg);
            sim.run(&mut env, 5000).expect("runs");
            th[k] = sim.report().positive_rate(sys.output_channel);
        }
        println!("{lat:>9} {:>9.3} {:>9.3}", th[0], th[1]);
    }
}
