//! Regenerates **Fig. 3**: the linear elastic pipeline, characterized by
//! its throughput as a function of initial token count (the classic
//! occupancy curve of elastic buffers).

use elastic_bench::rate_or_exit;
use elastic_core::sim::{BehavSim, EnvConfig, RandomEnv, SourceCfg};
use elastic_core::systems::linear_pipeline;

fn main() {
    println!("Fig. 3 — linear pipeline of elastic buffers (capacity 2, latency 1)");
    println!("{:>7} {:>7} {:>11}", "stages", "tokens", "throughput");
    for stages in [2usize, 4, 8] {
        for tokens in 0..=stages {
            let (net, _, cout) = linear_pipeline(stages, tokens).expect("builds");
            let mut sim = BehavSim::new(&net).expect("valid");
            let mut cfg = EnvConfig::default();
            cfg.sources.insert(
                "src".into(),
                SourceCfg {
                    rate: 1.0,
                    data: elastic_core::sim::DataGen::Const(0),
                },
            );
            let mut env = RandomEnv::new(1, cfg);
            sim.run(&mut env, 3000).expect("runs");
            println!(
                "{stages:>7} {tokens:>7} {:>11.3}",
                rate_or_exit(sim.report().try_positive_rate(cout), "out")
            );
        }
    }
}
