//! Regenerates **Fig. 5**: the dual (counterflow) pipeline — anti-tokens
//! injected by the consumer travel backwards and annihilate tokens.

use elastic_core::sim::{BehavSim, EnvConfig, RandomEnv, SinkCfg, SourceCfg};
use elastic_core::systems::linear_pipeline;

fn main() {
    let (net, cin, cout) = linear_pipeline(4, 2).expect("builds");
    let mut sim = BehavSim::new(&net).expect("valid");
    let mut cfg = EnvConfig::default();
    cfg.sources.insert(
        "src".into(),
        SourceCfg {
            rate: 0.5,
            data: elastic_core::sim::DataGen::Const(0),
        },
    );
    cfg.sinks.insert(
        "snk".into(),
        SinkCfg {
            stop_prob: 0.2,
            kill_prob: 0.3,
        },
    );
    let mut env = RandomEnv::new(9, cfg);
    sim.run(&mut env, 10_000).expect("runs");
    let r = sim.report();
    println!("Fig. 5 — dual pipeline with token counterflow (10k cycles)");
    println!("{}", r);
    println!("kills + internal annihilations account for every injected anti-token;");
    println!(
        "input channel activity {:.3} equals output activity {:.3} (token preservation)",
        elastic_bench::rate_or_exit(r.try_throughput(cin), "c0"),
        elastic_bench::rate_or_exit(r.try_throughput(cout), "out")
    );
}
