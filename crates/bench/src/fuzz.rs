//! Multi-threaded differential fuzz campaign over generated elastic
//! topologies — the `fuzz_topo` binary's engine.
//!
//! The campaign sweeps a band of master seeds; each seed samples a
//! [`TopoParams`] knob set, generates a network (`elastic_core::gen`),
//! lints it with the `elastic_lint` static analyzer (the fourth oracle:
//! live-by-construction generation must produce zero error diagnostics)
//! and runs the tri-backend differential (DMG replay ↔ compiled-pipeline
//! cosim ↔ min-cycle-ratio bound). Seeds are claimed from an atomic cursor by a
//! scoped worker pool, exactly like the Monte-Carlo engine's shards, and
//! outcomes are reduced in seed order so reports are deterministic for any
//! thread count.
//!
//! Failures are shrunk to a minimal failing parameter set before being
//! reported. In `--inject` mode the campaign instead *sabotages* each
//! eligible topology with one fault from the full [`FaultInjection`]
//! family — the class rotates with the master seed over
//! [`INJECT_CLASSES`]: the PR-5 dropped-anti-token lowering bug plus
//! every transient rail class (flip, stuck-at-0/1, duplicated and lost
//! tokens, armed for a single *effective* cycle probed by
//! [`injectable_site`]) — and asserts the harness flags every one. A
//! silently accepted fault is shrunk ([`shrink_params_by`]) to a minimal
//! `TopoParams` that still accepts the same class, and reported with its
//! fault spec.

use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use elastic_core::compile::FaultInjection;
use elastic_core::gen::{
    differential_check, generate, injectable_join, injectable_site, shrink_params,
    shrink_params_by, DiffOptions, DiffReport, GeneratedSystem, TopoParams,
};
use elastic_core::network::{ComponentKind, ElasticNetwork};
use elastic_lint::lint_network;

use crate::exp::{json_f64, json_str};

/// Fault classes the inject mode rotates through, keyed on the master
/// seed: the lowering sabotage plus every transient rail class of
/// [`crate::fault::FAULT_CLASSES`].
pub const INJECT_CLASSES: [&str; 6] = [
    "drop_anti_token",
    "rail_flip",
    "stuck_at_0",
    "stuck_at_1",
    "duplicate_token",
    "lose_token",
];

/// Campaign options (the `fuzz_topo` CLI surface).
#[derive(Debug, Clone)]
pub struct FuzzOpts {
    /// First master seed; the campaign covers `seed..seed + count`.
    pub seed: u64,
    /// Topologies to sample.
    pub count: usize,
    /// Simulated cycles per lane per topology.
    pub cycles: usize,
    /// Schedule lanes per topology.
    pub lanes: usize,
    /// Worker threads.
    pub threads: usize,
    /// Negative mode: inject a dropped-anti-token fault into one eligible
    /// early join per topology and require the harness to catch it.
    pub inject: bool,
}

impl Default for FuzzOpts {
    fn default() -> Self {
        FuzzOpts {
            seed: 1,
            count: 200,
            cycles: 256,
            lanes: 4,
            threads: 1,
            inject: false,
        }
    }
}

/// Outcome of one sampled topology.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Master seed of the sample.
    pub seed: u64,
    /// The sampled parameters.
    pub params: TopoParams,
    /// The differential result (clean mode), or the failure message.
    pub report: Result<DiffReport, String>,
    /// Minimal failing parameter set (only on failure).
    pub minimal: Option<TopoParams>,
    /// Inject mode: `Some(caught)` when a fault was injected; `None` when
    /// the topology had no effective site for the seed's fault class.
    pub injected: Option<bool>,
    /// Inject mode: the fault class injected (label from
    /// [`INJECT_CLASSES`]), when a site was found.
    pub fault: Option<&'static str>,
    /// First error diagnostic of the static lint over the *clean*
    /// topology — the fourth oracle. Generation is live-by-construction,
    /// so any value here is a bug in the generator or the analyzer.
    pub lint: Option<String>,
    /// Inject mode: `Some(caught)` when the token-drop lint sabotage was
    /// applicable (the network has a cycle) — the analyzer must flag the
    /// de-tokenized variant with `E101`. `None` for acyclic topologies.
    pub lint_sabotage: Option<bool>,
}

/// Aggregate campaign result.
#[derive(Debug, Clone)]
pub struct FuzzSummary {
    /// Per-seed outcomes, in seed order.
    pub outcomes: Vec<FuzzOutcome>,
    /// Wall-clock seconds for the whole campaign.
    pub wall_secs: f64,
    /// Worker threads used.
    pub threads: usize,
    /// Whether the campaign ran in inject (sensitivity self-test) mode.
    pub inject: bool,
}

impl FuzzSummary {
    /// Seeds whose differential failed (clean mode).
    pub fn mismatches(&self) -> Vec<&FuzzOutcome> {
        self.outcomes.iter().filter(|o| o.report.is_err()).collect()
    }

    /// Seeds whose injected fault was silently accepted (inject mode) —
    /// each carries the shrunk minimal topology in
    /// [`FuzzOutcome::minimal`].
    pub fn missed(&self) -> Vec<&FuzzOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.injected == Some(false))
            .collect()
    }

    /// Per-class `(class, eligible, caught)` counts of the inject mode,
    /// in [`INJECT_CLASSES`] order.
    pub fn injections_by_class(&self) -> Vec<(&'static str, usize, usize)> {
        INJECT_CLASSES
            .iter()
            .map(|&class| {
                let eligible = self
                    .outcomes
                    .iter()
                    .filter(|o| o.fault == Some(class))
                    .count();
                let caught = self
                    .outcomes
                    .iter()
                    .filter(|o| o.fault == Some(class) && o.injected == Some(true))
                    .count();
                (class, eligible, caught)
            })
            .collect()
    }

    /// Topologies whose clean-network lint reported an error — static
    /// false positives (or generator liveness bugs); acceptance requires
    /// zero.
    pub fn lint_violations(&self) -> Vec<&FuzzOutcome> {
        self.outcomes.iter().filter(|o| o.lint.is_some()).collect()
    }

    /// `(eligible, caught)` counts of the token-drop lint sabotage
    /// (inject mode).
    pub fn lint_sabotage_counts(&self) -> (usize, usize) {
        let eligible = self
            .outcomes
            .iter()
            .filter(|o| o.lint_sabotage.is_some())
            .count();
        let caught = self
            .outcomes
            .iter()
            .filter(|o| o.lint_sabotage == Some(true))
            .count();
        (eligible, caught)
    }

    /// `(eligible, caught)` counts of the inject mode.
    pub fn injection_counts(&self) -> (usize, usize) {
        let eligible = self
            .outcomes
            .iter()
            .filter(|o| o.injected.is_some())
            .count();
        let caught = self
            .outcomes
            .iter()
            .filter(|o| o.injected == Some(true))
            .count();
        (eligible, caught)
    }

    /// Whether the campaign met its acceptance criteria: zero differential
    /// mismatches, zero clean-lint violations, and in inject mode every
    /// injected fault caught, every token-drop lint sabotage caught, *and*
    /// at least one topology eligible for each — a sensitivity self-test
    /// that found nothing to sabotage proved nothing, and must not pass
    /// silently (e.g. after generator drift empties the seed band of
    /// active early joins or of rings).
    pub fn ok(&self) -> bool {
        let (eligible, caught) = self.injection_counts();
        let (lint_eligible, lint_caught) = self.lint_sabotage_counts();
        self.mismatches().is_empty()
            && self.lint_violations().is_empty()
            && caught == eligible
            && lint_caught == lint_eligible
            && (!self.inject || (eligible > 0 && lint_eligible > 0))
    }

    /// Renders the campaign as a JSON object (hand-rolled like the
    /// Monte-Carlo engine's reports; the workspace vendors no serde).
    pub fn to_json(&self, name: &str) -> String {
        let (eligible, caught) = self.injection_counts();
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"campaign\": {},\n", json_str(name)));
        s.push_str(&format!("  \"topologies\": {},\n", self.outcomes.len()));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"wall_secs\": {},\n", json_f64(self.wall_secs)));
        s.push_str(&format!(
            "  \"ee_joins\": {},\n",
            self.outcomes
                .iter()
                .filter_map(|o| o.report.as_ref().ok())
                .map(|r| r.ee_joins)
                .sum::<usize>()
        ));
        s.push_str(&format!(
            "  \"bound_checked\": {},\n",
            self.outcomes
                .iter()
                .filter_map(|o| o.report.as_ref().ok())
                .filter(|r| r.bound.is_some())
                .count()
        ));
        s.push_str(&format!("  \"injected\": {eligible},\n"));
        s.push_str(&format!("  \"injected_caught\": {caught},\n"));
        let (lint_eligible, lint_caught) = self.lint_sabotage_counts();
        s.push_str(&format!(
            "  \"lint_sabotage\": {{\"eligible\": {lint_eligible}, \"caught\": {lint_caught}}},\n"
        ));
        s.push_str("  \"lint_violations\": [\n");
        let lint_violations = self.lint_violations();
        for (i, o) in lint_violations.iter().enumerate() {
            let sep = if i + 1 == lint_violations.len() {
                ""
            } else {
                ","
            };
            s.push_str(&format!(
                "    {{\"seed\": {}, \"error\": {}, \"minimal\": {}}}{sep}\n",
                o.seed,
                json_str(o.lint.as_deref().unwrap_or("?")),
                json_str(&format!("{:?}", o.minimal.as_ref().unwrap_or(&o.params))),
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"injected_by_class\": {\n");
        let by_class = self.injections_by_class();
        for (i, (class, eligible, caught)) in by_class.iter().enumerate() {
            let sep = if i + 1 == by_class.len() { "" } else { "," };
            s.push_str(&format!(
                "    {}: {{\"eligible\": {eligible}, \"caught\": {caught}}}{sep}\n",
                json_str(class)
            ));
        }
        s.push_str("  },\n");
        s.push_str("  \"missed_injections\": [\n");
        let missed = self.missed();
        for (i, o) in missed.iter().enumerate() {
            let sep = if i + 1 == missed.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"seed\": {}, \"class\": {}, \"minimal\": {}}}{sep}\n",
                o.seed,
                json_str(o.fault.unwrap_or("?")),
                json_str(&format!("{:?}", o.minimal.as_ref().unwrap_or(&o.params))),
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"mismatches\": [\n");
        let mismatches = self.mismatches();
        for (i, o) in mismatches.iter().enumerate() {
            let sep = if i + 1 == mismatches.len() { "" } else { "," };
            let msg = o.report.as_ref().err().map(String::as_str).unwrap_or("");
            s.push_str(&format!(
                "    {{\"seed\": {}, \"error\": {}, \"minimal\": {}}}{sep}\n",
                o.seed,
                json_str(msg),
                json_str(&format!("{:?}", o.minimal.as_ref().unwrap_or(&o.params))),
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"ok\": {}\n}}\n", self.ok()));
        s
    }

    /// Writes the JSON rendering to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, name: &str, path: &str) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json(name).as_bytes())
    }
}

/// Probes one topology for an injectable fault of `class`, returning the
/// fault plus the single-cycle injection window (`None` window for the
/// always-on lowering sabotage). Probing uses the differential's own seed
/// so the eligibility check observes lane 0 of the very run the fault is
/// injected into.
fn probe_site(
    sys: &GeneratedSystem,
    class: &'static str,
    seed: u64,
    cycles: usize,
) -> Option<(FaultInjection, Option<(usize, usize)>)> {
    if class == "drop_anti_token" {
        injectable_join(sys, seed, cycles)
            .map(|join| (FaultInjection::DropAntiToken { join }, None))
    } else {
        injectable_site(sys, class, seed, cycles).map(|(fault, t)| (fault, Some((t, 1))))
    }
}

/// Whether the network contains any directed cycle, tokens ignored.
/// Written as Kahn-style indegree elimination — deliberately a different
/// algorithm from the lint crate's DFS walk, so the sabotage expectation
/// ("dropping all tokens from a cyclic network must trip E101") does not
/// share code with the oracle under test.
fn has_cycle(net: &ElasticNetwork) -> bool {
    let n = net.num_components();
    let mut indeg = vec![0usize; n];
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    for ch in net.channels() {
        let c = net.channel(ch);
        out[c.from.0.index()].push(c.to.0.index());
        indeg[c.to.0.index()] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut removed = 0usize;
    while let Some(v) = queue.pop() {
        removed += 1;
        for &w in &out[v] {
            indeg[w] -= 1;
            if indeg[w] == 0 {
                queue.push(w);
            }
        }
    }
    removed < n
}

/// Clears every initial token in `net`.
fn drop_all_tokens(net: &mut ElasticNetwork) {
    let buffers: Vec<_> = net
        .components()
        .filter(|&c| {
            matches!(
                net.component(c).kind,
                ComponentKind::Eb {
                    init_token: true,
                    ..
                }
            )
        })
        .collect();
    for c in buffers {
        net.set_init_token(c, false).expect("known buffer id");
    }
}

/// The token-drop lint sabotage: de-tokenize the network and require the
/// analyzer to flag the starved cycle. Only applicable to cyclic
/// topologies (a DAG stays live with zero tokens). A miss shrinks to a
/// minimal parameter set that still misses.
fn lint_token_drop_sabotage(
    sys: &GeneratedSystem,
    params: &TopoParams,
) -> (Option<bool>, Option<TopoParams>) {
    if !has_cycle(&sys.network) {
        return (None, None);
    }
    let mut sick = sys.network.clone();
    drop_all_tokens(&mut sick);
    let caught = lint_network(&sick).has_code("E101");
    let minimal = (!caught).then(|| {
        shrink_params_by(params, |p| {
            let Ok(sys) = generate(p) else { return false };
            if !has_cycle(&sys.network) {
                return false;
            }
            let mut sick = sys.network.clone();
            drop_all_tokens(&mut sick);
            !lint_network(&sick).has_code("E101")
        })
    });
    (Some(caught), minimal)
}

/// Runs one seed of the campaign.
fn run_seed(seed: u64, opts: &FuzzOpts) -> FuzzOutcome {
    let params = TopoParams::sample(seed);
    let diff = DiffOptions {
        cycles: opts.cycles,
        lanes: opts.lanes,
        seed: seed.wrapping_add(0x5eed),
        fault: None,
        fault_window: None,
        check_bound: true,
    };
    let sys = match generate(&params) {
        Ok(sys) => sys,
        Err(e) => {
            return FuzzOutcome {
                seed,
                params,
                report: Err(format!("generation failed: {e}")),
                minimal: None,
                injected: None,
                fault: None,
                lint: None,
                lint_sabotage: None,
            }
        }
    };
    // Fourth oracle: the clean topology must pass the static analyzer —
    // generation is live-by-construction, so an error diagnostic here is
    // a generator or analyzer bug. A violation shrinks like a mismatch.
    let lint = lint_network(&sys.network)
        .errors()
        .next()
        .map(ToString::to_string);
    let lint_minimal = lint.is_some().then(|| {
        shrink_params_by(&params, |p| {
            generate(p).is_ok_and(|sys| !lint_network(&sys.network).is_clean())
        })
    });
    if opts.inject {
        let class = INJECT_CLASSES[(seed % INJECT_CLASSES.len() as u64) as usize];
        let (injected, fault, missed_minimal) =
            match probe_site(&sys, class, diff.seed, opts.cycles) {
                None => (None, None, None),
                Some((fault, fault_window)) => {
                    let faulty = DiffOptions {
                        fault: Some(fault),
                        fault_window,
                        ..diff.clone()
                    };
                    let caught = differential_check(&sys, &faulty).is_err();
                    // A silently accepted fault shrinks to a minimal
                    // topology that still accepts the same class —
                    // regenerate, re-probe, and require the differential
                    // to stay quiet.
                    let minimal = (!caught).then(|| {
                        shrink_params_by(&params, |p| {
                            let Ok(sys) = generate(p) else { return false };
                            let Some((fault, fault_window)) =
                                probe_site(&sys, class, diff.seed, opts.cycles)
                            else {
                                return false;
                            };
                            let faulty = DiffOptions {
                                fault: Some(fault),
                                fault_window,
                                ..diff.clone()
                            };
                            differential_check(&sys, &faulty).is_ok()
                        })
                    });
                    (Some(caught), Some(class), minimal)
                }
            };
        // Negative lint oracle: dropping every token from a cyclic
        // topology must trip the liveness code.
        let (lint_sabotage, lint_sabotage_minimal) = lint_token_drop_sabotage(&sys, &params);
        // Inject mode still runs the clean differential: a harness that
        // flags faults but also flags clean systems is useless.
        let report = differential_check(&sys, &diff).map_err(|e| e.to_string());
        let minimal = report
            .is_err()
            .then(|| shrink_params(&params, &diff))
            .or(missed_minimal)
            .or(lint_minimal)
            .or(lint_sabotage_minimal);
        return FuzzOutcome {
            seed,
            params,
            report,
            minimal,
            injected,
            fault,
            lint,
            lint_sabotage,
        };
    }
    match differential_check(&sys, &diff) {
        Ok(report) => FuzzOutcome {
            seed,
            params,
            report: Ok(report),
            minimal: lint_minimal,
            injected: None,
            fault: None,
            lint,
            lint_sabotage: None,
        },
        Err(e) => FuzzOutcome {
            seed,
            params: params.clone(),
            report: Err(e.to_string()),
            minimal: Some(shrink_params(&params, &diff)),
            injected: None,
            fault: None,
            lint,
            lint_sabotage: None,
        },
    }
}

/// Runs the campaign: `count` seeded topologies claimed by `threads`
/// workers from an atomic cursor, outcomes reduced in seed order.
pub fn run_fuzz(opts: &FuzzOpts) -> FuzzSummary {
    let t0 = Instant::now();
    let count = opts.count.max(1);
    let threads = opts.threads.clamp(1, count);
    let cursor = AtomicUsize::new(0);
    let mut outcomes: Vec<(u64, FuzzOutcome)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        let seed = opts.seed.wrapping_add(i as u64);
                        local.push((seed, run_seed(seed, opts)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("fuzz worker panicked (library bug)"))
            .collect()
    });
    outcomes.sort_unstable_by_key(|&(s, _)| s);
    FuzzSummary {
        outcomes: outcomes.into_iter().map(|(_, o)| o).collect(),
        wall_secs: t0.elapsed().as_secs_f64(),
        threads,
        inject: opts.inject,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let opts = FuzzOpts {
            seed: 1,
            count: 6,
            cycles: 120,
            lanes: 2,
            threads: 2,
            inject: false,
        };
        let a = run_fuzz(&opts);
        assert!(a.ok(), "mismatches: {:?}", a.mismatches());
        assert_eq!(a.outcomes.len(), 6);
        // Outcomes are seed-ordered and thread-count independent.
        let b = run_fuzz(&FuzzOpts { threads: 1, ..opts });
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.report.is_ok(), y.report.is_ok());
        }
        let json = a.to_json("unit");
        assert!(json.contains("\"ok\": true"), "{json}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
    }

    #[test]
    fn inject_mode_catches_every_fault_class() {
        // 18 seeds rotate three times through the 6-class family; several
        // distinct classes must find an effective site, and every injected
        // fault must be flagged.
        let opts = FuzzOpts {
            seed: 1,
            count: 18,
            cycles: 200,
            lanes: 2,
            threads: 2,
            inject: true,
        };
        let summary = run_fuzz(&opts);
        let (eligible, caught) = summary.injection_counts();
        assert!(eligible >= 4, "only {eligible} injectable topologies");
        assert_eq!(
            caught,
            eligible,
            "missed injections: {:?}",
            summary.missed()
        );
        let by_class = summary.injections_by_class();
        let classes_hit = by_class.iter().filter(|&&(_, e, _)| e > 0).count();
        assert!(
            classes_hit >= 3,
            "only {classes_hit} classes found a site: {by_class:?}"
        );
        for (class, e, c) in by_class {
            assert_eq!(e, c, "class {class} was silently accepted");
        }
        // Lint oracle: at least one cyclic topology was token-drop
        // sabotaged, and the analyzer flagged every such drop as E101.
        let (lint_eligible, lint_caught) = summary.lint_sabotage_counts();
        assert!(lint_eligible > 0, "no cyclic topology to sabotage");
        assert_eq!(
            lint_caught, lint_eligible,
            "lint missed a token-drop sabotage"
        );
        assert!(summary.missed().is_empty());
        assert!(summary.ok());
        let json = summary.to_json("unit");
        assert!(json.contains("\"injected_by_class\""), "{json}");
        assert!(json.contains("\"missed_injections\": [\n  ]"), "{json}");
        assert!(json.contains("\"lint_sabotage\""), "{json}");
    }
}
