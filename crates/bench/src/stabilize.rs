//! Self-stabilization Monte-Carlo campaign engine — the
//! `stabilization_campaign` binary's core (`BENCH_pr9.json`).
//!
//! Where the recovery campaign (`crate::fault`) injects **one** window per
//! trial and asks "did the violations stop?", this campaign drives whole
//! [`FaultProcess`]es — `periodic` re-injection, `sustained` stuck-at
//! intervals, `correlated` multi-site bursts and a `byzantine` per-side
//! channel adversary — swept over *process classes × intensities ×
//! generated topologies*. Every site of a process becomes a corruption
//! gate ([`CompileOptions::faults`]) with its own trailing stimulus
//! column; every lane runs an independent, seeded instance of the process
//! ([`FaultProcess::windows`]).
//!
//! Each lane feeds a stabilization tracker
//! ([`RecoveryDetector::fault_event`]) on the primary site's rails: at
//! every disturbance-interval start the tracker retimes, so
//! [`RecoveryDetector::stabilization_time`] reports the cycles from the
//! **last** fault event to sustained `(I*R*T)*` conformance —
//! re-injection mid-recovery resets the clock instead of silently keeping
//! the first recovery. Lanes that never stabilize contribute to the
//! non-stabilization rate and report their steady-state
//! [`RecoveryDetector::violation_rate`] instead. A second, unarmed pass of
//! the identical stimulus gives each lane's throughput dip, yielding a
//! dip-versus-intensity curve per class.
//!
//! The report closes with explicit-state **convergence verdicts**
//! ([`check_network_convergence`]): for the small named systems (the
//! fig. 8 pipeline controllers and the paper's fig. 9 configurations) and
//! the first few generated topologies, the model checker explores every
//! fault-reachable controller state and decides whether all fault-free
//! runs re-enter the legal state set — the convergence half of a
//! self-stabilization proof. Systems too wide for exhaustive exploration
//! record a typed skip, never a wedged campaign.
//!
//! Jobs run through the generic streaming pipeline (`stream::run_pipeline`)
//! with index-derived seeds and in-order reduction, so the whole report is
//! bit-identical for every thread count and queue depth.

use std::io::Write as _;
use std::time::Instant;

use elastic_core::channel::ChannelSignals;
use elastic_core::compile::{compile, CompileOptions, FaultInjection, FaultRail};
use elastic_core::fault::FaultProcess;
use elastic_core::gen::{generate, injectable_site, TopoParams};
use elastic_core::protocol::RecoveryDetector;
use elastic_core::systems::{linear_pipeline, paper_example, Config};
use elastic_core::verify::{check_network_convergence, NetlistTestbench, PackedStimulus};
use elastic_core::CoreError;
use elastic_mc::{BridgeOptions, ConvergenceReport};
use elastic_netlist::levelize::Program;
use elastic_netlist::opt::optimize_observed;
use elastic_netlist::wide::{lane_masks, WideSim, LANES};
use elastic_netlist::NetId;

use crate::exp::{default_threads, effective_threads, json_f64, json_str};
use crate::stream::run_pipeline;
use crate::{MAX_TRIALS_PER_RUN, MC_DATA_WIDTH};

/// Every fault-process class the campaign can drive, in report order.
pub const PROCESS_CLASSES: [&str; 4] = ["periodic", "sustained", "correlated", "byzantine"];

/// Campaign options (the `stabilization_campaign` CLI surface).
#[derive(Debug, Clone)]
pub struct StabilizationOpts {
    /// Generated topologies to sweep (seeds `seed..seed + topologies`).
    pub topologies: usize,
    /// Base seed for topology sampling and schedule generation.
    pub seed: u64,
    /// Cycles per trial (the horizon; at least 32).
    pub cycles: usize,
    /// Trials (= packed lanes) per job, 1..=512.
    pub lanes: usize,
    /// Base period of the periodic and byzantine processes, and the unit
    /// of the sustained interval length (at least 2).
    pub period: usize,
    /// Intensity sweep: armed cycles per period (periodic/byzantine),
    /// period-multiples of stuck-at (sustained), bursts (correlated).
    /// Each must be in `1..=period`.
    pub intensities: Vec<usize>,
    /// Violation-free cycles required at the horizon for a lane to count
    /// as stabilized ([`RecoveryDetector::stabilization_time`]).
    pub recovery_tail: usize,
    /// Worker threads (clamped like the throughput engine).
    pub threads: usize,
    /// Streaming-pipeline job queue depth.
    pub queue: usize,
    /// Process classes to drive (subset of [`PROCESS_CLASSES`]).
    pub classes: Vec<String>,
    /// Leading generated topologies additionally sent to the model
    /// checker for a convergence verdict (budget-gated; 0 disables).
    pub mc_topologies: usize,
}

impl Default for StabilizationOpts {
    fn default() -> Self {
        StabilizationOpts {
            topologies: 100,
            seed: 1,
            cycles: 256,
            lanes: 64,
            period: 32,
            intensities: vec![1, 2, 4],
            recovery_tail: 16,
            threads: default_threads(),
            queue: 2,
            classes: PROCESS_CLASSES.iter().map(|&c| c.to_string()).collect(),
            mc_topologies: 4,
        }
    }
}

/// One compiled-and-armed campaign job, ready to execute.
struct StabJob {
    /// Peephole-optimized tape over the observed-cone netlist.
    prog: Program,
    /// The primary site's `(V⁺, S⁺, V⁻, S⁻)` rails — the tracker's feed.
    site: (NetId, NetId, NetId, NetId),
    /// The output channel's `(V⁺, S⁺, V⁻)` rails — throughput counting.
    out: (NetId, NetId, NetId),
    /// Stimulus with every site's per-lane process windows armed.
    armed: PackedStimulus,
    /// The identical stimulus, all arm columns zero.
    baseline: PackedStimulus,
    /// Per-lane fault-event cycles (starts of merged disturbance
    /// intervals), sorted ascending.
    events: Vec<Vec<u64>>,
    /// Display name of the primary faulted channel.
    site_name: String,
}

/// Per-lane outcome of one armed trial under a fault process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneStabilization {
    /// The armed run violated an obligation the unarmed run did not.
    pub disturbed: bool,
    /// The trace re-entered `(I*R*T)*` and held it through the final
    /// recovery tail ([`RecoveryDetector::stabilization_time`] is `Some`).
    pub stabilized: bool,
    /// Cycles from the last fault event to sustained conformance (0 for
    /// unstabilized or undisturbed lanes).
    pub stab_cycles: u64,
    /// Violating cycles per observed cycle — the steady-state disturbance
    /// level when the process never quiesces.
    pub violation_rate: f64,
    /// Fault-free transfer rate minus armed transfer rate at the output.
    pub dip: f64,
}

/// Outcome of one topology × class × intensity job.
#[derive(Debug, Clone)]
pub struct StabJobOutcome {
    /// Topology index within the campaign.
    pub topology: usize,
    /// Process class label.
    pub class: String,
    /// Intensity this job ran at.
    pub intensity: usize,
    /// Primary faulted channel; `None` when the topology had no usable
    /// process of this class (skipped, not failed).
    pub site: Option<String>,
    /// Per-lane outcomes (empty for skipped jobs).
    pub lanes: Vec<LaneStabilization>,
}

/// One intensity point of a class's stabilization curve.
#[derive(Debug, Clone)]
pub struct IntensityStats {
    /// Intensity of this point.
    pub intensity: usize,
    /// Topologies with a usable process at this intensity.
    pub sites: usize,
    /// Armed trials across those topologies.
    pub trials: usize,
    /// Trials whose tracker observed an injected violation.
    pub disturbed: usize,
    /// Disturbed trials that stabilized.
    pub stabilized: usize,
    /// Median stabilization time over disturbed-and-stabilized trials.
    pub stab_p50: f64,
    /// 99th-percentile stabilization time (nearest rank).
    pub stab_p99: f64,
    /// `1 − stabilized/disturbed` (0 when nothing was disturbed).
    pub non_stabilization_rate: f64,
    /// Mean steady-state violation rate over disturbed trials.
    pub mean_violation_rate: f64,
    /// Mean output-throughput dip over **all** armed trials — one point
    /// of the class's dip-versus-intensity curve (not conditioned on
    /// disturbance: a sustained stall costs throughput while staying
    /// protocol-legal).
    pub mean_dip: f64,
}

/// Aggregated statistics of one process class.
#[derive(Debug, Clone)]
pub struct ProcessClassStats {
    /// Process class label.
    pub class: String,
    /// Median stabilization time over every disturbed-and-stabilized
    /// trial of the class (all intensities pooled).
    pub stab_p50: f64,
    /// 99th-percentile stabilization time over the same pool.
    pub stab_p99: f64,
    /// `1 − stabilized/disturbed` over the pool.
    pub non_stabilization_rate: f64,
    /// Mean steady-state violation rate over disturbed trials.
    pub mean_violation_rate: f64,
    /// The dip-versus-intensity curve, in `opts.intensities` order.
    pub points: Vec<IntensityStats>,
}

/// Convergence verdict of one system, or the typed reason it was skipped.
#[derive(Debug, Clone)]
pub struct McVerdict {
    /// System display name.
    pub system: String,
    /// The explicit-state report when exploration fit the budget.
    pub report: Option<ConvergenceReport>,
    /// The typed error when it did not (budget, width, compile).
    pub error: Option<String>,
}

/// The whole campaign, serialized to `BENCH_pr9.json`.
#[derive(Debug, Clone)]
pub struct StabilizationReport {
    /// Campaign name (echoes the options).
    pub name: String,
    /// The options the campaign ran with.
    pub opts: StabilizationOpts,
    /// Worker threads actually spawned.
    pub threads: usize,
    /// Per-class aggregates, in `opts.classes` order.
    pub classes: Vec<ProcessClassStats>,
    /// Per-job outcomes (topology-major, class, then intensity).
    pub jobs: Vec<StabJobOutcome>,
    /// Convergence verdicts: named systems first, then the leading
    /// generated topologies.
    pub mc: Vec<McVerdict>,
    /// Wall-clock seconds for the whole campaign.
    pub wall_secs: f64,
}

/// Nearest-rank percentile of a sorted sample (`NaN` for an empty one —
/// rendered as JSON `null`).
fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64
}

/// Pools the lanes of `jobs`, returning (trials, disturbed, stabilized,
/// sorted stabilization samples, Σ violation-rate over disturbed, Σ dip
/// over **all** trials — a sustained stall dents throughput without ever
/// violating the protocol, so the dip curve must not condition on
/// disturbance).
fn pool(jobs: &[&StabJobOutcome]) -> (usize, usize, usize, Vec<u64>, f64, f64) {
    let lanes: Vec<&LaneStabilization> = jobs.iter().flat_map(|j| j.lanes.iter()).collect();
    let disturbed: Vec<&&LaneStabilization> = lanes.iter().filter(|l| l.disturbed).collect();
    let mut samples: Vec<u64> = disturbed
        .iter()
        .filter(|l| l.stabilized)
        .map(|l| l.stab_cycles)
        .collect();
    samples.sort_unstable();
    let vr: f64 = disturbed.iter().map(|l| l.violation_rate).sum();
    let dips: f64 = lanes.iter().map(|l| l.dip).sum();
    (
        lanes.len(),
        disturbed.len(),
        samples.len(),
        samples,
        vr,
        dips,
    )
}

impl StabilizationReport {
    /// Aggregates per-job outcomes into per-class curves.
    fn aggregate(opts: &StabilizationOpts, jobs: &[StabJobOutcome]) -> Vec<ProcessClassStats> {
        opts.classes
            .iter()
            .map(|class| {
                let of_class: Vec<&StabJobOutcome> =
                    jobs.iter().filter(|j| &j.class == class).collect();
                let points = opts
                    .intensities
                    .iter()
                    .map(|&intensity| {
                        let cell: Vec<&StabJobOutcome> = of_class
                            .iter()
                            .filter(|j| j.intensity == intensity)
                            .copied()
                            .collect();
                        let sites = cell.iter().filter(|j| j.site.is_some()).count();
                        let (trials, disturbed, stabilized, samples, vr, dips) = pool(&cell);
                        IntensityStats {
                            intensity,
                            sites,
                            trials,
                            disturbed,
                            stabilized,
                            stab_p50: percentile(&samples, 0.50),
                            stab_p99: percentile(&samples, 0.99),
                            non_stabilization_rate: if disturbed == 0 {
                                0.0
                            } else {
                                1.0 - stabilized as f64 / disturbed as f64
                            },
                            mean_violation_rate: if disturbed == 0 {
                                0.0
                            } else {
                                vr / disturbed as f64
                            },
                            mean_dip: if trials == 0 {
                                0.0
                            } else {
                                dips / trials as f64
                            },
                        }
                    })
                    .collect();
                let (_, disturbed, stabilized, samples, vr, _) = pool(&of_class);
                ProcessClassStats {
                    class: class.clone(),
                    stab_p50: percentile(&samples, 0.50),
                    stab_p99: percentile(&samples, 0.99),
                    non_stabilization_rate: if disturbed == 0 {
                        0.0
                    } else {
                        1.0 - stabilized as f64 / disturbed as f64
                    },
                    mean_violation_rate: if disturbed == 0 {
                        0.0
                    } else {
                        vr / disturbed as f64
                    },
                    points,
                }
            })
            .collect()
    }

    /// Renders the report as a JSON object (hand-rolled like every other
    /// report in this crate; the workspace vendors no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"campaign\": {},\n", json_str(&self.name)));
        s.push_str(&format!("  \"topologies\": {},\n", self.opts.topologies));
        s.push_str(&format!("  \"cycles\": {},\n", self.opts.cycles));
        s.push_str(&format!("  \"lanes\": {},\n", self.opts.lanes));
        s.push_str(&format!("  \"period\": {},\n", self.opts.period));
        s.push_str(&format!(
            "  \"intensities\": [{}],\n",
            self.opts
                .intensities
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str(&format!(
            "  \"recovery_tail\": {},\n",
            self.opts.recovery_tail
        ));
        s.push_str(&format!("  \"seed\": {},\n", self.opts.seed));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"queue\": {},\n", self.opts.queue));
        s.push_str(&format!("  \"wall_secs\": {},\n", json_f64(self.wall_secs)));
        s.push_str("  \"classes\": [\n");
        for (i, c) in self.classes.iter().enumerate() {
            let sep = if i + 1 == self.classes.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"class\": {}, \"stab_p50\": {}, \"stab_p99\": {}, \
                 \"non_stabilization_rate\": {}, \"mean_violation_rate\": {},\n",
                json_str(&c.class),
                json_f64(c.stab_p50),
                json_f64(c.stab_p99),
                json_f64(c.non_stabilization_rate),
                json_f64(c.mean_violation_rate),
            ));
            s.push_str("     \"curve\": [\n");
            for (k, p) in c.points.iter().enumerate() {
                let psep = if k + 1 == c.points.len() { "" } else { "," };
                s.push_str(&format!(
                    "      {{\"intensity\": {}, \"sites\": {}, \"trials\": {}, \
                     \"disturbed\": {}, \"stabilized\": {}, \"stab_p50\": {}, \
                     \"stab_p99\": {}, \"non_stabilization_rate\": {}, \
                     \"mean_violation_rate\": {}, \"mean_throughput_dip\": {}}}{psep}\n",
                    p.intensity,
                    p.sites,
                    p.trials,
                    p.disturbed,
                    p.stabilized,
                    json_f64(p.stab_p50),
                    json_f64(p.stab_p99),
                    json_f64(p.non_stabilization_rate),
                    json_f64(p.mean_violation_rate),
                    json_f64(p.mean_dip),
                ));
            }
            s.push_str(&format!("     ]}}{sep}\n"));
        }
        s.push_str("  ],\n");
        s.push_str("  \"mc\": [\n");
        for (i, v) in self.mc.iter().enumerate() {
            let sep = if i + 1 == self.mc.len() { "" } else { "," };
            match (&v.report, &v.error) {
                (Some(r), _) => s.push_str(&format!(
                    "    {{\"system\": {}, \"status\": \"ok\", \"converging\": {}, \
                     \"ff_states\": {}, \"legal\": {}, \"diverging\": {}, \
                     \"convergence_bound\": {}, \"fault_inputs\": {}}}{sep}\n",
                    json_str(&v.system),
                    r.converging,
                    r.ff_states,
                    r.legal,
                    r.diverging,
                    r.convergence_bound,
                    r.fault_inputs,
                )),
                (None, err) => s.push_str(&format!(
                    "    {{\"system\": {}, \"status\": \"skipped\", \"error\": {}}}{sep}\n",
                    json_str(&v.system),
                    json_str(err.as_deref().unwrap_or("unknown")),
                )),
            }
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Writes the JSON rendering to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

/// The word width holding `lanes` trials.
fn width_for(lanes: usize) -> usize {
    match lanes {
        n if n <= LANES => 1,
        n if n <= 2 * LANES => 2,
        n if n <= 4 * LANES => 4,
        _ => 8,
    }
}

/// Constructs the fault process a job drives, or `None` when the sampled
/// topology offers no usable site for the class — the choice is a pure
/// function of `(sys, class, intensity, opts, sched_seed)`, so every
/// worker count builds the same process.
fn build_process(
    sys: &elastic_core::gen::GeneratedSystem,
    class: &str,
    intensity: usize,
    opts: &StabilizationOpts,
    sched_seed: u64,
) -> Option<FaultProcess> {
    let cycles = opts.cycles;
    let process = match class {
        "periodic" => {
            let (fault, eff) = injectable_site(sys, "rail_flip", sched_seed, cycles)?;
            FaultProcess::Periodic {
                fault,
                period: opts.period,
                duty: intensity,
                start: eff.min(cycles.saturating_sub(intensity)),
            }
        }
        "sustained" => {
            let (fault, eff) = injectable_site(sys, "stuck_at_0", sched_seed, cycles)?;
            let len = (intensity * opts.period).min(cycles.saturating_sub(eff));
            if len == 0 {
                return None;
            }
            FaultProcess::Sustained {
                fault,
                start: eff,
                len,
            }
        }
        "correlated" => {
            let (fault, _) = injectable_site(sys, "rail_flip", sched_seed, cycles)?;
            let first = fault.channel()?.to_string();
            // Second site: another channel when the topology has one, the
            // probed channel's forward stop otherwise — always a distinct
            // (channel, rail) pair.
            let second = sys
                .network
                .channels()
                .map(|c| sys.network.channel(c).name.clone())
                .find(|n| *n != first);
            let site2 = match second {
                Some(channel) => FaultInjection::RailFlip {
                    channel,
                    rail: FaultRail::Vp,
                },
                None => FaultInjection::RailFlip {
                    channel: first.clone(),
                    rail: FaultRail::Sp,
                },
            };
            let len = (opts.period / 4).max(1).min(cycles / intensity.max(1));
            if len == 0 {
                return None;
            }
            FaultProcess::Correlated {
                faults: vec![fault, site2],
                bursts: intensity,
                len,
            }
        }
        "byzantine" => {
            // Prefer the probed-effective channel when it is
            // active-active; any non-passive channel otherwise.
            let probed = injectable_site(sys, "rail_flip", sched_seed, cycles)
                .and_then(|(f, _)| f.channel().map(str::to_string));
            let non_passive = |name: &String| {
                sys.network.channels().any(|c| {
                    sys.network.channel(c).name == *name && !sys.network.channel(c).passive
                })
            };
            let channel = probed.filter(non_passive).or_else(|| {
                sys.network
                    .channels()
                    .map(|c| sys.network.channel(c))
                    .find(|ch| !ch.passive)
                    .map(|ch| ch.name.clone())
            })?;
            FaultProcess::Byzantine {
                channel,
                period: opts.period,
                duty: intensity,
            }
        }
        _ => return None,
    };
    // The constructions above are clamped to validate by design; a
    // topology that still fails (e.g. a degenerate horizon) is a skip,
    // not a campaign abort.
    process.validate(&sys.network, cycles).ok()?;
    Some(process)
}

/// Builds one campaign job: sample the topology, construct the process,
/// compile with one corruption gate per site, pack the stimulus and arm
/// every site's per-lane windows.
fn build_job(
    topo: usize,
    class: &str,
    intensity: usize,
    opts: &StabilizationOpts,
) -> Result<Option<StabJob>, CoreError> {
    let params = TopoParams::sample(opts.seed.wrapping_add(topo as u64));
    let Ok(sys) = generate(&params) else {
        return Ok(None);
    };
    let sched_seed = opts.seed.wrapping_add((topo * opts.lanes) as u64);
    let Some(process) = build_process(&sys, class, intensity, opts, sched_seed) else {
        return Ok(None);
    };
    let sites = process.sites();
    let opt = compile(
        &sys.network,
        &CompileOptions {
            lint: false,
            data_width: MC_DATA_WIDTH,
            nondet_merge: false,
            optimize: true,
            fault: None,
            faults: sites.clone(),
        },
    )?;
    let site_name = sites[0]
        .channel()
        .expect("process sites are rail faults")
        .to_string();
    // Observe the output's transfer rails plus all four rails of every
    // site channel (keeps each corruption gate and its arm input in the
    // observed cone), deduplicated.
    let out_rails = &opt.channels[sys.output_channel.index()];
    let mut observe: Vec<NetId> = vec![out_rails.vp, out_rails.sp, out_rails.vn];
    let mut primary = None;
    for site in &sites {
        let name = site.channel().expect("rail fault").to_string();
        let chan = sys
            .network
            .channels()
            .find(|&c| sys.network.channel(c).name == name)
            .expect("validated channel exists");
        if primary.is_none() {
            primary = Some(chan);
        }
        let r = &opt.channels[chan.index()];
        for id in [r.vp, r.sp, r.vn, r.sn] {
            if !observe.contains(&id) {
                observe.push(id);
            }
        }
    }
    let (obs, map) = optimize_observed(&opt.netlist, &observe).map_err(CoreError::from)?;
    let remap = |id: NetId| map[id.index()].expect("observed rails survive as outputs");
    let tb = NetlistTestbench::with_faults(&sys.network, &obs, MC_DATA_WIDTH, &sites)?;
    let cols = tb.fault_cols();
    if cols.len() != sites.len() {
        return Err(CoreError::FaultSite(format!(
            "{} fault sites lowered to {} arm columns",
            sites.len(),
            cols.len()
        )));
    }
    let (prog, _) = Program::compile_optimized(&obs).map_err(CoreError::from)?;
    let width = width_for(opts.lanes);
    let baseline = PackedStimulus::generate(
        &tb,
        &sys.network,
        &sys.env,
        sched_seed,
        opts.lanes,
        opts.cycles,
        width,
    )?;
    let mut armed = baseline.clone();
    let mut events = Vec::with_capacity(opts.lanes);
    for lane in 0..opts.lanes {
        for (site, windows) in process
            .windows(sched_seed, lane, opts.cycles)
            .iter()
            .enumerate()
        {
            for &(start, len) in windows {
                armed.arm_fault(cols[site], lane, start, len)?;
            }
        }
        events.push(
            process
                .merged_windows(sched_seed, lane, opts.cycles)
                .iter()
                .map(|&(s, _)| s)
                .collect(),
        );
    }
    let sr = &opt.channels[primary.expect("at least one site").index()];
    Ok(Some(StabJob {
        prog,
        site: (remap(sr.vp), remap(sr.sp), remap(sr.vn), remap(sr.sn)),
        out: (
            remap(out_rails.vp),
            remap(out_rails.sp),
            remap(out_rails.vn),
        ),
        armed,
        baseline,
        events,
        site_name,
    }))
}

/// One tape pass: advances every lane through `stim`, counting output
/// transfers and feeding each lane's tracker — with fault events marked at
/// the lane's disturbance-interval starts when `retime` is set.
fn drive<const W: usize>(
    job: &StabJob,
    stim: &PackedStimulus,
    retime: bool,
) -> Result<(Vec<u32>, Vec<RecoveryDetector>), CoreError> {
    let lanes = job.events.len();
    let mut sim: WideSim<W> = WideSim::from_program(job.prog.clone());
    sim.check_input_slots(stim.slots())
        .map_err(CoreError::from)?;
    let live = lane_masks::<W>(lanes);
    let (svp, ssp, svn, ssn) = job.site;
    let (ovp, osp, ovn) = job.out;
    let mut counts = vec![0u32; lanes];
    let mut dets = vec![RecoveryDetector::new(); lanes];
    let mut cursor = vec![0usize; lanes];
    for t in 0..stim.cycles() {
        if retime {
            for (k, det) in dets.iter_mut().enumerate() {
                if job.events[k].get(cursor[k]) == Some(&(t as u64)) {
                    det.fault_event();
                    cursor[k] += 1;
                }
            }
        }
        sim.cycle_packed(stim.slots(), stim.row(t));
        for (w, &mask) in live.iter().enumerate() {
            let (vpw, spw, vnw, snw) = (
                sim.word(svp, w),
                sim.word(ssp, w),
                sim.word(svn, w),
                sim.word(ssn, w),
            );
            for b in 0..LANES.min(lanes - w * LANES) {
                dets[w * LANES + b].observe(ChannelSignals {
                    vp: vpw >> b & 1 == 1,
                    sp: spw >> b & 1 == 1,
                    vn: vnw >> b & 1 == 1,
                    sn: snw >> b & 1 == 1,
                    data: 0,
                });
            }
            let mut m = sim.word(ovp, w) & !sim.word(osp, w) & !sim.word(ovn, w) & mask;
            while m != 0 {
                counts[w * LANES + m.trailing_zeros() as usize] += 1;
                m &= m - 1;
            }
        }
    }
    Ok((counts, dets))
}

/// Executes one built job: unarmed baseline pass, armed pass with fault
/// events, per-lane classification.
fn run_job_w<const W: usize>(
    job: &StabJob,
    opts: &StabilizationOpts,
) -> Result<Vec<LaneStabilization>, CoreError> {
    let (base_counts, base_dets) = drive::<W>(job, &job.baseline, false)?;
    let (armed_counts, armed_dets) = drive::<W>(job, &job.armed, true)?;
    let cycles = job.armed.cycles() as f64;
    Ok((0..job.events.len())
        .map(|j| {
            let det = &armed_dets[j];
            let disturbed = det.violations() > base_dets[j].violations();
            let stab = det.stabilization_time(opts.recovery_tail);
            LaneStabilization {
                disturbed,
                stabilized: stab.is_some(),
                stab_cycles: stab.unwrap_or(0),
                violation_rate: det.violation_rate(),
                dip: (f64::from(base_counts[j]) - f64::from(armed_counts[j])) / cycles,
            }
        })
        .collect())
}

/// Width-dispatched [`run_job_w`].
fn run_job(job: &StabJob, opts: &StabilizationOpts) -> Result<Vec<LaneStabilization>, CoreError> {
    match job.armed.width() {
        1 => run_job_w::<1>(job, opts),
        2 => run_job_w::<2>(job, opts),
        4 => run_job_w::<4>(job, opts),
        8 => run_job_w::<8>(job, opts),
        w => Err(CoreError::ScheduleBatch(format!(
            "unsupported stimulus width {w}"
        ))),
    }
}

/// The budget every convergence exploration runs under: wide enough for
/// the pipeline controllers and the lazy fig. 9 configuration, tight
/// enough that an oversized system skips immediately with a typed budget
/// error instead of wedging the campaign. The input cap is the sharp
/// gate: each extra free input doubles the per-state successor fan-out,
/// so the early-evaluation configurations (seven inputs at the two data
/// bits their guards dictate) and most generated topologies record an
/// instant `too many inputs` skip rather than burning the state budget.
fn mc_budget() -> BridgeOptions {
    BridgeOptions {
        max_ff_states: 1 << 12,
        max_inputs: 6,
    }
}

/// The canonical single-site process used for convergence verdicts: a
/// duty-1 periodic V⁺ flip on the first non-passive channel. (The
/// explicit-state analysis only consumes the *sites*; windows are
/// irrelevant to the reachable-set computation.)
fn mc_process(net: &elastic_core::ElasticNetwork) -> Option<FaultProcess> {
    let channel = net
        .channels()
        .map(|c| net.channel(c))
        .find(|ch| !ch.passive)
        .map(|ch| ch.name.clone())?;
    Some(FaultProcess::Periodic {
        fault: FaultInjection::RailFlip {
            channel,
            rail: FaultRail::Vp,
        },
        period: 8,
        duty: 1,
        start: 0,
    })
}

/// One convergence verdict, with every failure recorded as a typed skip.
fn mc_verdict(
    system: &str,
    net: &elastic_core::ElasticNetwork,
    data_width: usize,
    cycles: usize,
) -> McVerdict {
    let Some(process) = mc_process(net) else {
        return McVerdict {
            system: system.to_string(),
            report: None,
            error: Some("no non-passive channel to corrupt".into()),
        };
    };
    match check_network_convergence(net, &process, cycles.max(16), data_width, mc_budget()) {
        Ok(report) => McVerdict {
            system: system.to_string(),
            report: Some(report),
            error: None,
        },
        Err(e) => McVerdict {
            system: system.to_string(),
            report: None,
            error: Some(e.to_string()),
        },
    }
}

/// Convergence verdicts for the named small systems (fig. 8 pipeline
/// controllers, fig. 9 paper configurations) and the campaign's leading
/// generated topologies.
fn mc_section(opts: &StabilizationOpts) -> Vec<McVerdict> {
    let mut out = Vec::new();
    for (stages, tokens) in [(1usize, 0usize), (2, 1)] {
        match linear_pipeline(stages, tokens) {
            Ok((net, _, _)) => out.push(mc_verdict(
                &format!("linear_pipeline({stages},{tokens})"),
                &net,
                0,
                opts.cycles,
            )),
            Err(e) => out.push(McVerdict {
                system: format!("linear_pipeline({stages},{tokens})"),
                report: None,
                error: Some(e.to_string()),
            }),
        }
    }
    for cfg in Config::all() {
        let name = format!("paper_example({cfg:?})");
        // Early-evaluation guards dictate two data bits; the lazy config
        // checks as pure control.
        let dw = if matches!(cfg, Config::NoEarlyEval) {
            0
        } else {
            2
        };
        match paper_example(cfg) {
            Ok(sys) => out.push(mc_verdict(&name, &sys.network, dw, opts.cycles)),
            Err(e) => out.push(McVerdict {
                system: name,
                report: None,
                error: Some(e.to_string()),
            }),
        }
    }
    for topo in 0..opts.mc_topologies.min(opts.topologies) {
        let name = format!("topology_{topo}");
        let params = TopoParams::sample(opts.seed.wrapping_add(topo as u64));
        // Pure-control width: every data bit is another free input, and
        // the convergence question is a control-protocol question.
        // Topologies whose early-evaluation guards demand data bits
        // record the compile error as their skip reason.
        match generate(&params) {
            Ok(sys) => out.push(mc_verdict(&name, &sys.network, 0, opts.cycles)),
            Err(e) => out.push(McVerdict {
                system: name,
                report: None,
                error: Some(e.to_string()),
            }),
        }
    }
    out
}

/// Runs the campaign: `topologies × classes × intensities` jobs through
/// the streaming pipeline, reduced in job order, aggregated per class,
/// plus the convergence section.
///
/// # Errors
///
/// [`CoreError::FaultProcess`] for an unknown class label or an invalid
/// intensity sweep, [`CoreError::FaultSite`] for an unusable option set;
/// the first job error otherwise (missing sites are skipped jobs, not
/// errors).
pub fn run_stabilization_campaign(
    opts: &StabilizationOpts,
) -> Result<StabilizationReport, CoreError> {
    if let Some(bad) = opts
        .classes
        .iter()
        .find(|c| !PROCESS_CLASSES.contains(&c.as_str()))
    {
        return Err(CoreError::FaultProcess(format!(
            "unknown fault-process class {bad:?} (expected one of {PROCESS_CLASSES:?})"
        )));
    }
    if opts.cycles < 32 {
        return Err(CoreError::FaultSite(format!(
            "campaign horizon {} is too short for a process plus recovery tail (min 32)",
            opts.cycles
        )));
    }
    if opts.lanes == 0 || opts.lanes > MAX_TRIALS_PER_RUN {
        return Err(CoreError::FaultSite(format!(
            "{} lanes per job (expected 1..={MAX_TRIALS_PER_RUN})",
            opts.lanes
        )));
    }
    if opts.period < 2 {
        return Err(CoreError::FaultProcess(format!(
            "process period {} is too short (min 2)",
            opts.period
        )));
    }
    if opts.intensities.is_empty() {
        return Err(CoreError::FaultProcess(
            "empty intensity sweep: give at least one intensity".into(),
        ));
    }
    if let Some(&bad) = opts
        .intensities
        .iter()
        .find(|&&i| i == 0 || i > opts.period)
    {
        return Err(CoreError::FaultProcess(format!(
            "intensity {bad} outside 1..={} (the process period)",
            opts.period
        )));
    }
    let t0 = Instant::now();
    let nc = opts.classes.len();
    let ni = opts.intensities.len();
    let jobs_total = opts.topologies * nc * ni;
    let threads = effective_threads(opts.threads, jobs_total);
    let jobs = if jobs_total == 0 {
        Vec::new()
    } else {
        run_pipeline::<Option<StabJob>, StabJobOutcome>(
            jobs_total,
            threads,
            opts.queue,
            |i| {
                build_job(
                    i / (nc * ni),
                    &opts.classes[i / ni % nc],
                    opts.intensities[i % ni],
                    opts,
                )
            },
            |i, payload| {
                let topology = i / (nc * ni);
                let class = opts.classes[i / ni % nc].clone();
                let intensity = opts.intensities[i % ni];
                match payload {
                    None => Ok(StabJobOutcome {
                        topology,
                        class,
                        intensity,
                        site: None,
                        lanes: Vec::new(),
                    }),
                    Some(job) => {
                        let lanes = run_job(&job, opts)?;
                        Ok(StabJobOutcome {
                            topology,
                            class,
                            intensity,
                            site: Some(job.site_name),
                            lanes,
                        })
                    }
                }
            },
            |_, _| {},
        )?
    };
    let classes = StabilizationReport::aggregate(opts, &jobs);
    let mc = mc_section(opts);
    Ok(StabilizationReport {
        name: format!(
            "pr9_stabilization_campaign topologies={} cycles={} lanes={} period={} tail={} seed={}",
            opts.topologies, opts.cycles, opts.lanes, opts.period, opts.recovery_tail, opts.seed
        ),
        opts: opts.clone(),
        threads,
        classes,
        jobs,
        mc,
        wall_secs: t0.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts(threads: usize) -> StabilizationOpts {
        StabilizationOpts {
            topologies: 5,
            seed: 11,
            cycles: 128,
            lanes: 8,
            period: 16,
            intensities: vec![1, 2],
            recovery_tail: 12,
            threads,
            queue: 2,
            mc_topologies: 1,
            ..StabilizationOpts::default()
        }
    }

    #[test]
    fn small_campaign_disturbs_and_is_thread_deterministic() {
        let a = run_stabilization_campaign(&small_opts(1)).unwrap();
        assert_eq!(a.classes.len(), PROCESS_CLASSES.len());
        let disturbed: usize = a
            .classes
            .iter()
            .flat_map(|c| c.points.iter())
            .map(|p| p.disturbed)
            .sum();
        assert!(disturbed > 0, "no lane observed an injected violation");
        for c in &a.classes {
            for p in &c.points {
                assert!(p.stabilized <= p.disturbed, "{}@{}", c.class, p.intensity);
                assert!(p.disturbed <= p.trials, "{}@{}", c.class, p.intensity);
                if p.stabilized > 0 {
                    assert!(p.stab_p50 <= p.stab_p99, "{}@{}", c.class, p.intensity);
                }
            }
        }
        // The convergence section covers the named systems plus one
        // generated topology, and at least the pipeline controllers
        // produce real verdicts.
        assert_eq!(a.mc.len(), 2 + Config::all().len() + 1);
        assert!(a.mc[0].report.is_some(), "{:?}", a.mc[0]);
        assert!(a.mc[1].report.is_some(), "{:?}", a.mc[1]);
        for v in &a.mc {
            assert!(v.report.is_some() || v.error.is_some(), "{}", v.system);
        }
        // Bit-identical report for a different worker count and queue.
        let b = run_stabilization_campaign(&StabilizationOpts {
            queue: 4,
            ..small_opts(3)
        })
        .unwrap();
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.topology, y.topology);
            assert_eq!(x.class, y.class);
            assert_eq!(x.intensity, y.intensity);
            assert_eq!(x.site, y.site);
            assert_eq!(x.lanes, y.lanes);
        }
    }

    #[test]
    fn report_json_is_well_formed() {
        let r = run_stabilization_campaign(&StabilizationOpts {
            topologies: 2,
            lanes: 4,
            mc_topologies: 0,
            ..small_opts(2)
        })
        .unwrap();
        let json = r.to_json();
        for class in PROCESS_CLASSES {
            assert!(json.contains(&format!("\"class\": \"{class}\"")), "{json}");
        }
        for key in [
            "\"stab_p50\"",
            "\"non_stabilization_rate\"",
            "\"mean_throughput_dip\"",
            "\"mc\"",
            "\"converging\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
    }

    #[test]
    fn bad_options_are_typed_errors() {
        let base = small_opts(1);
        for (bad, wants_process_err) in [
            (
                StabilizationOpts {
                    classes: vec!["meltdown".into()],
                    ..base.clone()
                },
                true,
            ),
            (
                StabilizationOpts {
                    cycles: 16,
                    ..base.clone()
                },
                false,
            ),
            (
                StabilizationOpts {
                    lanes: 0,
                    ..base.clone()
                },
                false,
            ),
            (
                StabilizationOpts {
                    period: 1,
                    ..base.clone()
                },
                true,
            ),
            (
                StabilizationOpts {
                    intensities: vec![],
                    ..base.clone()
                },
                true,
            ),
            (
                StabilizationOpts {
                    intensities: vec![17],
                    ..base.clone()
                },
                true,
            ),
        ] {
            let err = run_stabilization_campaign(&bad).unwrap_err();
            match (wants_process_err, &err) {
                (true, CoreError::FaultProcess(_)) | (false, CoreError::FaultSite(_)) => {}
                other => panic!("wrong error class: {other:?}"),
            }
        }
    }
}
