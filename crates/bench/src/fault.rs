//! Fault-injection recovery-time Monte-Carlo campaign engine — the
//! `fault_campaign` binary's core (`BENCH_pr7.json`).
//!
//! The campaign sweeps *fault classes × injection sites × generated
//! topologies*: for each sampled [`TopoParams`] topology and each fault
//! class, [`injectable_site`] picks a channel/rail/cycle where the fault
//! is guaranteed to be *effective* (probed against a clean behavioural
//! pre-run), the network is compiled **with** the corruption gate spliced
//! into that rail ([`elastic_core::compile::FaultInjection`]), and the
//! packed wide backend runs
//! one trial per lane with an **independent per-lane injection window**
//! ([`PackedStimulus::arm_fault`]) — 64–512 fault instances per tape pass.
//!
//! Each lane feeds a streaming [`RecoveryDetector`] on the faulted
//! channel's four rails: the detector records every cycle on which the
//! trace breaks a SELF obligation and the lane has *recovered* once the
//! violations stop for [`FaultCampaignOpts::recovery_tail`] cycles — the
//! trace has re-entered the legal `(I*R*T)*` language. A second, unarmed
//! run of the identical stimulus gives the fault-free throughput, so
//! every lane also reports its throughput dip.
//!
//! Per class the campaign aggregates the recovery-time distribution
//! (p50/p99 cycles from injection to the last violating cycle), the
//! non-recovery rate (disturbed lanes still violating at the horizon) and
//! the mean throughput dip.
//!
//! Jobs run through the same generic streaming pipeline as the throughput
//! engine (`stream::run_pipeline`): the produce stage compiles the
//! faulted netlist and packs the stimulus, the consume stage executes the
//! tape — and because every seed derives from the job index, the whole
//! report is bit-identical for every thread count and queue depth.

use std::io::Write as _;
use std::time::Instant;

use elastic_core::channel::ChannelSignals;
use elastic_core::compile::{compile, CompileOptions};
use elastic_core::gen::{generate, injectable_site, TopoParams};
use elastic_core::protocol::RecoveryDetector;
use elastic_core::verify::{NetlistTestbench, PackedStimulus};
use elastic_core::CoreError;
use elastic_netlist::levelize::Program;
use elastic_netlist::opt::optimize_observed;
use elastic_netlist::wide::{lane_masks, WideSim, LANES};
use elastic_netlist::NetId;

use crate::exp::{default_threads, effective_threads, json_f64, json_str};
use crate::stream::run_pipeline;
use crate::{MAX_TRIALS_PER_RUN, MC_DATA_WIDTH};

/// Every transient rail-fault class the campaign can inject, in report
/// order. (`drop_anti_token` is a *lowering* sabotage, not a transient
/// rail fault, and lives in the fuzz campaign's inject mode instead.)
pub const FAULT_CLASSES: [&str; 5] = [
    "rail_flip",
    "stuck_at_0",
    "stuck_at_1",
    "duplicate_token",
    "lose_token",
];

/// Consecutive lanes get injection windows staggered by `lane % STAGGER`
/// cycles, so packed trials carry genuinely independent fault instances
/// (different cycles, different schedules) from one probed base site.
const WINDOW_STAGGER: usize = 4;

/// Campaign options (the `fault_campaign` CLI surface).
#[derive(Debug, Clone)]
pub struct FaultCampaignOpts {
    /// Generated topologies to sweep (seeds `seed..seed + topologies`).
    pub topologies: usize,
    /// Base seed for topology sampling and schedule generation.
    pub seed: u64,
    /// Cycles per trial (the horizon; at least 16).
    pub cycles: usize,
    /// Trials (= packed lanes) per topology × class job, 1..=512.
    pub lanes: usize,
    /// Armed cycles per lane's injection window (clamped to ≥ 1).
    pub window_len: usize,
    /// Violation-free cycles required before a disturbed lane counts as
    /// recovered ([`RecoveryDetector::recovered`]).
    pub recovery_tail: usize,
    /// Worker threads (clamped like the throughput engine).
    pub threads: usize,
    /// Streaming-pipeline job queue depth.
    pub queue: usize,
    /// Fault classes to inject (subset of [`FAULT_CLASSES`]).
    pub classes: Vec<String>,
}

impl Default for FaultCampaignOpts {
    fn default() -> Self {
        FaultCampaignOpts {
            topologies: 100,
            seed: 1,
            cycles: 256,
            lanes: 64,
            window_len: 1,
            recovery_tail: 16,
            threads: default_threads(),
            queue: 2,
            classes: FAULT_CLASSES.iter().map(|&c| c.to_string()).collect(),
        }
    }
}

/// One compiled-and-packed campaign job, ready to execute: the produce
/// stage's payload.
struct FaultJob {
    /// Peephole-optimized tape over the observed-cone faulted netlist.
    prog: Program,
    /// The faulted channel's `(V⁺, S⁺, V⁻, S⁻)` rails in the observed
    /// netlist — the recovery detector's feed.
    site: (NetId, NetId, NetId, NetId),
    /// The output channel's `(V⁺, S⁺, V⁻)` rails — throughput counting.
    out: (NetId, NetId, NetId),
    /// Stimulus with per-lane fault windows armed.
    armed: PackedStimulus,
    /// The identical stimulus, fault column all-zero: the fault-free
    /// reference for the throughput dip.
    baseline: PackedStimulus,
    /// Per-lane injection-window start cycles.
    windows: Vec<usize>,
    /// Display name of the faulted channel.
    site_name: String,
}

/// Per-lane outcome of one armed trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneOutcome {
    /// The armed run violated a SELF obligation that the unarmed run did
    /// not — the fault was observable on the monitored channel.
    pub disturbed: bool,
    /// The violations stopped at least `recovery_tail` cycles before the
    /// horizon (trivially true for undisturbed lanes).
    pub recovered: bool,
    /// Cycles from this lane's injection-window start to the end of the
    /// last violating cycle (0 for undisturbed lanes).
    pub recovery_cycles: u64,
    /// Fault-free transfer rate minus armed transfer rate at the output.
    pub dip: f64,
}

/// Outcome of one topology × class job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Topology index within the campaign.
    pub topology: usize,
    /// Fault class label.
    pub class: String,
    /// Faulted channel name; `None` when the topology had no effective
    /// injection site for this class (the job is skipped, not failed).
    pub site: Option<String>,
    /// Per-lane outcomes (empty for skipped jobs).
    pub lanes: Vec<LaneOutcome>,
}

/// Aggregated recovery statistics of one fault class.
#[derive(Debug, Clone)]
pub struct ClassStats {
    /// Fault class label.
    pub class: String,
    /// Topologies with an effective injection site for this class.
    pub sites: usize,
    /// Armed trials across those sites.
    pub trials: usize,
    /// Trials whose monitor observed at least one injected violation.
    pub disturbed: usize,
    /// Disturbed trials that re-entered the legal language.
    pub recovered: usize,
    /// Median cycles-to-recovery over disturbed-and-recovered trials.
    pub recovery_p50: f64,
    /// 99th-percentile cycles-to-recovery (nearest rank).
    pub recovery_p99: f64,
    /// `1 − recovered/disturbed` (0 when nothing was disturbed).
    pub non_recovery_rate: f64,
    /// Mean output-throughput dip over disturbed trials.
    pub mean_dip: f64,
}

/// The whole campaign, serialized to `BENCH_pr7.json`.
#[derive(Debug, Clone)]
pub struct FaultCampaignReport {
    /// Campaign name (echoes the options).
    pub name: String,
    /// The options the campaign ran with.
    pub opts: FaultCampaignOpts,
    /// Worker threads actually spawned.
    pub threads: usize,
    /// Per-class aggregates, in `opts.classes` order.
    pub classes: Vec<ClassStats>,
    /// Per-job outcomes, in job order (topology-major, class-minor).
    pub jobs: Vec<JobOutcome>,
    /// Wall-clock seconds for the whole campaign.
    pub wall_secs: f64,
}

/// Nearest-rank percentile of a sorted sample (`NaN` for an empty one —
/// rendered as JSON `null`).
fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64
}

impl FaultCampaignReport {
    /// Aggregates per-job outcomes into per-class statistics.
    fn aggregate(opts: &FaultCampaignOpts, jobs: &[JobOutcome]) -> Vec<ClassStats> {
        opts.classes
            .iter()
            .map(|class| {
                let of_class: Vec<&JobOutcome> =
                    jobs.iter().filter(|j| &j.class == class).collect();
                let sites = of_class.iter().filter(|j| j.site.is_some()).count();
                let lanes: Vec<&LaneOutcome> =
                    of_class.iter().flat_map(|j| j.lanes.iter()).collect();
                let disturbed: Vec<&&LaneOutcome> = lanes.iter().filter(|l| l.disturbed).collect();
                let mut samples: Vec<u64> = disturbed
                    .iter()
                    .filter(|l| l.recovered)
                    .map(|l| l.recovery_cycles)
                    .collect();
                samples.sort_unstable();
                let recovered = samples.len();
                let dips: f64 = disturbed.iter().map(|l| l.dip).sum();
                ClassStats {
                    class: class.clone(),
                    sites,
                    trials: lanes.len(),
                    disturbed: disturbed.len(),
                    recovered,
                    recovery_p50: percentile(&samples, 0.50),
                    recovery_p99: percentile(&samples, 0.99),
                    non_recovery_rate: if disturbed.is_empty() {
                        0.0
                    } else {
                        1.0 - recovered as f64 / disturbed.len() as f64
                    },
                    mean_dip: if disturbed.is_empty() {
                        0.0
                    } else {
                        dips / disturbed.len() as f64
                    },
                }
            })
            .collect()
    }

    /// Renders the report as a JSON object (hand-rolled like every other
    /// report in this crate; the workspace vendors no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"campaign\": {},\n", json_str(&self.name)));
        s.push_str(&format!("  \"topologies\": {},\n", self.opts.topologies));
        s.push_str(&format!("  \"cycles\": {},\n", self.opts.cycles));
        s.push_str(&format!("  \"lanes\": {},\n", self.opts.lanes));
        s.push_str(&format!("  \"window_len\": {},\n", self.opts.window_len));
        s.push_str(&format!(
            "  \"recovery_tail\": {},\n",
            self.opts.recovery_tail
        ));
        s.push_str(&format!("  \"seed\": {},\n", self.opts.seed));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!(
            "  \"requested_threads\": {},\n",
            self.opts.threads
        ));
        s.push_str(&format!("  \"queue\": {},\n", self.opts.queue));
        s.push_str(&format!("  \"wall_secs\": {},\n", json_f64(self.wall_secs)));
        s.push_str("  \"classes\": [\n");
        for (i, c) in self.classes.iter().enumerate() {
            let sep = if i + 1 == self.classes.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"class\": {}, \"sites\": {}, \"trials\": {}, \
                 \"disturbed\": {}, \"recovered\": {}, \"recovery_p50\": {}, \
                 \"recovery_p99\": {}, \"non_recovery_rate\": {}, \
                 \"mean_throughput_dip\": {}}}{sep}\n",
                json_str(&c.class),
                c.sites,
                c.trials,
                c.disturbed,
                c.recovered,
                json_f64(c.recovery_p50),
                json_f64(c.recovery_p99),
                json_f64(c.non_recovery_rate),
                json_f64(c.mean_dip),
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Writes the JSON rendering to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

/// The word width holding `lanes` trials.
fn width_for(lanes: usize) -> usize {
    match lanes {
        n if n <= LANES => 1,
        n if n <= 2 * LANES => 2,
        n if n <= 4 * LANES => 4,
        _ => 8,
    }
}

/// Builds one campaign job: sample the topology, probe an effective
/// injection site, compile with the corruption gate, resolve the observed
/// rails, pack the stimulus and arm the per-lane windows. Returns `None`
/// when the topology has no effective site for the class (a skipped job).
fn build_job(
    topo: usize,
    class: &str,
    opts: &FaultCampaignOpts,
) -> Result<Option<FaultJob>, CoreError> {
    let params = TopoParams::sample(opts.seed.wrapping_add(topo as u64));
    let Ok(sys) = generate(&params) else {
        return Ok(None);
    };
    let sched_seed = opts.seed.wrapping_add((topo * opts.lanes) as u64);
    let Some((fault, eff)) = injectable_site(&sys, class, sched_seed, opts.cycles) else {
        return Ok(None);
    };
    let opt = compile(
        &sys.network,
        &CompileOptions {
            lint: false,
            data_width: MC_DATA_WIDTH,
            nondet_merge: false,
            optimize: true,
            fault: Some(fault.clone()),
            faults: vec![],
        },
    )?;
    let site_name = fault
        .channel()
        .expect("rail-fault classes always name a channel")
        .to_string();
    let site_chan = sys
        .network
        .channels()
        .find(|&c| sys.network.channel(c).name == site_name)
        .expect("injectable_site picked an existing channel");
    let site_rails = &opt.channels[site_chan.index()];
    let out_rails = &opt.channels[sys.output_channel.index()];
    // Keep the observed cone: the output's transfer rails plus all four
    // rails the recovery detector feeds on (deduplicated — the faulted
    // channel may be the output channel).
    let mut observe: Vec<NetId> = Vec::new();
    for id in [
        out_rails.vp,
        out_rails.sp,
        out_rails.vn,
        site_rails.vp,
        site_rails.sp,
        site_rails.vn,
        site_rails.sn,
    ] {
        if !observe.contains(&id) {
            observe.push(id);
        }
    }
    let (obs, map) = optimize_observed(&opt.netlist, &observe).map_err(CoreError::from)?;
    let remap = |id: NetId| map[id.index()].expect("observed rails survive as outputs");
    let tb = NetlistTestbench::with_fault(&sys.network, &obs, MC_DATA_WIDTH, &fault)?;
    let col = tb.fault_col().ok_or_else(|| {
        CoreError::FaultSite(format!(
            "fault {} lowered without an arm input",
            fault.label()
        ))
    })?;
    let (prog, _) = Program::compile_optimized(&obs).map_err(CoreError::from)?;
    let width = width_for(opts.lanes);
    let baseline = PackedStimulus::generate(
        &tb,
        &sys.network,
        &sys.env,
        sched_seed,
        opts.lanes,
        opts.cycles,
        width,
    )?;
    let mut armed = baseline.clone();
    let len = opts.window_len.max(1);
    let mut windows = Vec::with_capacity(opts.lanes);
    for lane in 0..opts.lanes {
        // Stagger windows so each lane carries an independent fault
        // instance; the base cycle is effective for lane 0's schedule by
        // construction, neighbours differ by schedule *and* cycle.
        let start = (eff + lane % WINDOW_STAGGER).min(opts.cycles.saturating_sub(len));
        armed.arm_fault(col, lane, start, len)?;
        windows.push(start);
    }
    Ok(Some(FaultJob {
        prog,
        site: (
            remap(site_rails.vp),
            remap(site_rails.sp),
            remap(site_rails.vn),
            remap(site_rails.sn),
        ),
        out: (
            remap(out_rails.vp),
            remap(out_rails.sp),
            remap(out_rails.vn),
        ),
        armed,
        baseline,
        windows,
        site_name,
    }))
}

/// One tape pass: advances every lane through `stim`, counting output
/// transfers and feeding each lane's recovery detector with the faulted
/// channel's rails.
fn drive<const W: usize>(
    job: &FaultJob,
    stim: &PackedStimulus,
) -> Result<(Vec<u32>, Vec<RecoveryDetector>), CoreError> {
    let lanes = job.windows.len();
    let mut sim: WideSim<W> = WideSim::from_program(job.prog.clone());
    sim.check_input_slots(stim.slots())
        .map_err(CoreError::from)?;
    let live = lane_masks::<W>(lanes);
    let (svp, ssp, svn, ssn) = job.site;
    let (ovp, osp, ovn) = job.out;
    let mut counts = vec![0u32; lanes];
    let mut dets = vec![RecoveryDetector::new(); lanes];
    for t in 0..stim.cycles() {
        sim.cycle_packed(stim.slots(), stim.row(t));
        for (w, &mask) in live.iter().enumerate() {
            let (vpw, spw, vnw, snw) = (
                sim.word(svp, w),
                sim.word(ssp, w),
                sim.word(svn, w),
                sim.word(ssn, w),
            );
            for b in 0..LANES.min(lanes - w * LANES) {
                dets[w * LANES + b].observe(ChannelSignals {
                    vp: vpw >> b & 1 == 1,
                    sp: spw >> b & 1 == 1,
                    vn: vnw >> b & 1 == 1,
                    sn: snw >> b & 1 == 1,
                    data: 0,
                });
            }
            let mut m = sim.word(ovp, w) & !sim.word(osp, w) & !sim.word(ovn, w) & mask;
            while m != 0 {
                counts[w * LANES + m.trailing_zeros() as usize] += 1;
                m &= m - 1;
            }
        }
    }
    Ok((counts, dets))
}

/// Executes one built job: the unarmed baseline pass, the armed pass, and
/// the per-lane classification.
fn run_job_w<const W: usize>(
    job: &FaultJob,
    opts: &FaultCampaignOpts,
) -> Result<Vec<LaneOutcome>, CoreError> {
    let (base_counts, base_dets) = drive::<W>(job, &job.baseline)?;
    let (armed_counts, armed_dets) = drive::<W>(job, &job.armed)?;
    let cycles = job.armed.cycles() as f64;
    Ok((0..job.windows.len())
        .map(|j| {
            let det = &armed_dets[j];
            // A generated network is protocol-clean, but gate the
            // classification on the baseline anyway: only *injected*
            // violations count as disturbance.
            let disturbed = det.violations() > base_dets[j].violations();
            LaneOutcome {
                disturbed,
                recovered: det.recovered(opts.recovery_tail),
                recovery_cycles: det
                    .last_violation()
                    .map_or(0, |lv| ((lv + 1).saturating_sub(job.windows[j])) as u64),
                dip: (f64::from(base_counts[j]) - f64::from(armed_counts[j])) / cycles,
            }
        })
        .collect())
}

/// Width-dispatched [`run_job_w`].
fn run_job(job: &FaultJob, opts: &FaultCampaignOpts) -> Result<Vec<LaneOutcome>, CoreError> {
    match job.armed.width() {
        1 => run_job_w::<1>(job, opts),
        2 => run_job_w::<2>(job, opts),
        4 => run_job_w::<4>(job, opts),
        8 => run_job_w::<8>(job, opts),
        w => Err(CoreError::ScheduleBatch(format!(
            "unsupported stimulus width {w}"
        ))),
    }
}

/// Runs the campaign: `topologies × classes` jobs through the streaming
/// pipeline, reduced in job order, aggregated per class.
///
/// # Errors
///
/// [`CoreError::FaultSite`] for an unknown class label or an unusable
/// option set; the first job error otherwise (compile or execution
/// failures — *missing* injection sites are skipped jobs, not errors).
pub fn run_fault_campaign(opts: &FaultCampaignOpts) -> Result<FaultCampaignReport, CoreError> {
    if let Some(bad) = opts
        .classes
        .iter()
        .find(|c| !FAULT_CLASSES.contains(&c.as_str()))
    {
        return Err(CoreError::FaultSite(format!(
            "unknown fault class {bad:?} (expected one of {FAULT_CLASSES:?})"
        )));
    }
    if opts.cycles < 16 {
        return Err(CoreError::FaultSite(format!(
            "campaign horizon {} is too short for warm-up + recovery tail (min 16)",
            opts.cycles
        )));
    }
    if opts.lanes == 0 || opts.lanes > MAX_TRIALS_PER_RUN {
        return Err(CoreError::FaultSite(format!(
            "{} lanes per job (expected 1..={MAX_TRIALS_PER_RUN})",
            opts.lanes
        )));
    }
    let t0 = Instant::now();
    let nc = opts.classes.len();
    let jobs_total = opts.topologies * nc;
    let threads = effective_threads(opts.threads, jobs_total);
    let jobs = if jobs_total == 0 {
        Vec::new()
    } else {
        run_pipeline::<Option<FaultJob>, JobOutcome>(
            jobs_total,
            threads,
            opts.queue,
            |i| build_job(i / nc, &opts.classes[i % nc], opts),
            |i, payload| {
                let (topology, class) = (i / nc, opts.classes[i % nc].clone());
                match payload {
                    None => Ok(JobOutcome {
                        topology,
                        class,
                        site: None,
                        lanes: Vec::new(),
                    }),
                    Some(job) => {
                        let lanes = run_job(&job, opts)?;
                        Ok(JobOutcome {
                            topology,
                            class,
                            site: Some(job.site_name),
                            lanes,
                        })
                    }
                }
            },
            |_, _| {},
        )?
    };
    let classes = FaultCampaignReport::aggregate(opts, &jobs);
    Ok(FaultCampaignReport {
        name: format!(
            "pr7_fault_campaign topologies={} cycles={} lanes={} window={} tail={} seed={}",
            opts.topologies,
            opts.cycles,
            opts.lanes,
            opts.window_len,
            opts.recovery_tail,
            opts.seed
        ),
        opts: opts.clone(),
        threads,
        classes,
        jobs,
        wall_secs: t0.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts(threads: usize) -> FaultCampaignOpts {
        FaultCampaignOpts {
            topologies: 6,
            seed: 11,
            cycles: 96,
            lanes: 8,
            window_len: 1,
            recovery_tail: 12,
            threads,
            queue: 2,
            ..FaultCampaignOpts::default()
        }
    }

    #[test]
    fn small_campaign_disturbs_and_is_thread_deterministic() {
        let a = run_fault_campaign(&small_opts(1)).unwrap();
        assert_eq!(a.classes.len(), FAULT_CLASSES.len());
        let sites: usize = a.classes.iter().map(|c| c.sites).sum();
        let disturbed: usize = a.classes.iter().map(|c| c.disturbed).sum();
        assert!(sites > 0, "no injectable sites across 6 topologies");
        assert!(disturbed > 0, "no lane observed an injected violation");
        // Every armed-and-disturbed lane measured a coherent recovery
        // outcome: recovered lanes have a recovery point, percentiles are
        // ordered.
        for c in &a.classes {
            assert!(c.recovered <= c.disturbed, "{}", c.class);
            assert!(c.disturbed <= c.trials, "{}", c.class);
            if c.recovered > 0 {
                assert!(c.recovery_p50 <= c.recovery_p99, "{}", c.class);
                assert!(c.recovery_p50 >= 1.0, "{}", c.class);
            }
        }
        // Bit-identical report for a different worker count.
        let b = run_fault_campaign(&small_opts(3)).unwrap();
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.topology, y.topology);
            assert_eq!(x.class, y.class);
            assert_eq!(x.site, y.site);
            assert_eq!(x.lanes, y.lanes);
        }
    }

    #[test]
    fn report_json_is_well_formed() {
        let r = run_fault_campaign(&FaultCampaignOpts {
            topologies: 2,
            cycles: 64,
            lanes: 4,
            threads: 2,
            ..small_opts(2)
        })
        .unwrap();
        let json = r.to_json();
        for class in FAULT_CLASSES {
            assert!(json.contains(&format!("\"class\": \"{class}\"")), "{json}");
        }
        assert!(json.contains("\"recovery_p50\""));
        assert!(json.contains("\"non_recovery_rate\""));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
    }

    #[test]
    fn bad_options_are_fault_site_errors() {
        let base = small_opts(1);
        for bad in [
            FaultCampaignOpts {
                classes: vec!["meltdown".into()],
                ..base.clone()
            },
            FaultCampaignOpts {
                cycles: 8,
                ..base.clone()
            },
            FaultCampaignOpts {
                lanes: 0,
                ..base.clone()
            },
            FaultCampaignOpts {
                lanes: MAX_TRIALS_PER_RUN + 1,
                ..base.clone()
            },
        ] {
            assert!(matches!(
                run_fault_campaign(&bad),
                Err(CoreError::FaultSite(_))
            ));
        }
        // An empty class list is a no-op campaign, not an error.
        let empty = run_fault_campaign(&FaultCampaignOpts {
            classes: Vec::new(),
            ..base
        })
        .unwrap();
        assert!(empty.classes.is_empty());
        assert!(empty.jobs.is_empty());
    }
}
