//! Sharded multi-threaded Monte-Carlo experiment engine.
//!
//! A single [`crate::WideHarness::run`] advances at most
//! [`crate::MAX_TRIALS_PER_RUN`] (= 512) trials in one bit-parallel pass.
//! This module scales the paper's randomized experiments (Sect. 6.1,
//! Figs. 5–9, Table 1) to arbitrary trial counts across OS threads:
//!
//! ```text
//!   Experiment { system × env × cycles × trials, seed } × BackendSel
//!        │ dispatch_backend()       runtime word width W from tape
//!        │ shards_for()             footprint + trial count (or forced);
//!        ▼                          ⌈trials/L⌉ shards of L = W·64 lanes
//!   [Shard 0][Shard 1]…[Shard n-1]  seed+L·i .. seed+L·i+lanes
//!        │ streaming pipeline       compile+optimize once, share
//!        ▼                          &WideHarness; hybrid workers pack
//!   pack(k+1) ∥ execute(k)          shard k+1 while shard k executes
//!        │ reduce (by shard index)  (bounded stimulus queue, see
//!        ▼                          `stream` module docs)
//!   McStats { per_lane[trials] } → mean / stddev / 95% CI
//! ```
//!
//! **Determinism contract:** lane *j* of the campaign always runs the
//! schedule seeded `seed + j`, and shards are reduced in shard-index order
//! — so the per-lane vector (and therefore mean/sd/CI) is bit-identical for
//! every thread count, **every queue depth, every backend (runtime-
//! dispatched or forced), every cache-block size and every chunk size**,
//! including a single-threaded scalar run of the same seeds.
//!
//! **Oversubscription contract:** the engine never spawns more workers
//! than there are shards, and clamps the pool to the machine's available
//! parallelism — an explicit `--threads 8` on a 1-core host runs 1 worker
//! and records both numbers ([`PointResult::requested_threads`] vs
//! [`PointResult::threads`]), instead of timeslicing eight threads over
//! one core and *slowing down* (the BENCH_pr4.json `scaling` regression).
//!
//! **Thread-safety contract:** a compiled [`elastic_netlist::levelize::Program`]
//! is immutable instruction data and a
//! [`elastic_netlist::wide::WideSimulator`] is plain owned state; both are
//! `Send + Sync` (statically asserted in `elastic_netlist::wide`), so one
//! [`WideHarness`] is shared by reference across the scoped worker pool and
//! each worker clones the power-up prototype per shard.
//!
//! Analytic cross-check: for configurations without early evaluation the
//! system is a marked graph, and measured throughput must respect the
//! minimum-cycle-ratio bound (paper Sect. 6.1, reference \[8\]) — see
//! [`lazy_bound_check`].

use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use elastic_core::channel::ChanId;
use elastic_core::dmg_bridge::lazy_throughput_bound;
use elastic_core::gen::{self, TopoParams};
use elastic_core::network::ElasticNetwork;
use elastic_core::sim::{DataGen, EnvConfig, SourceCfg};
use elastic_core::systems::{paper_example, Config};
use elastic_core::CoreError;
use elastic_netlist::wide::LANES;

use crate::stream::run_shards_streaming;
use crate::{
    dispatch_backend, Backend, BackendSel, McStats, WideHarness, DISPATCH_FOOTPRINT_BYTES,
};

/// Which elastic system a campaign point simulates.
#[derive(Debug, Clone)]
pub enum SystemSpec {
    /// One of the five Table 1 configurations of the paper's Fig. 9
    /// example.
    Paper(Config),
    /// An arbitrary user-built network; `output` is the channel whose
    /// positive-transfer rate is reported as throughput.
    Custom {
        /// The elastic control network.
        network: ElasticNetwork,
        /// Observed output channel.
        output: ChanId,
    },
    /// A randomly generated topology (`elastic_core::gen`): the fuzz
    /// campaign's scenario-diversity axis, usable by any Monte-Carlo
    /// experiment. Pair it with the environment of
    /// [`gen::generate`]'s [`gen::GeneratedSystem::env`] so
    /// the schedules match the topology's sources/sinks/VL units.
    Generated(TopoParams),
}

impl SystemSpec {
    /// Resolves the spec into a network and its observed output channel.
    ///
    /// # Errors
    ///
    /// Propagates build failures of the paper example or the topology
    /// generator.
    pub fn build(&self) -> Result<(ElasticNetwork, ChanId), CoreError> {
        match self {
            SystemSpec::Paper(config) => {
                let sys = paper_example(*config)?;
                Ok((sys.network, sys.output_channel))
            }
            SystemSpec::Custom { network, output } => Ok((network.clone(), *output)),
            SystemSpec::Generated(params) => {
                let sys = gen::generate(params)?;
                Ok((sys.network, sys.output_channel))
            }
        }
    }
}

/// One point of a Monte-Carlo campaign: a system, an environment, a horizon
/// and a trial budget.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Point label (free-form; lands in reports and JSON).
    pub label: String,
    /// The system to simulate.
    pub system: SystemSpec,
    /// Environment distributions (offer/stop/kill rates, payload and
    /// latency distributions) used to generate the random schedules.
    pub env: EnvConfig,
    /// Cycles per trial.
    pub cycles: usize,
    /// Number of independent trials (any size; split into ⌈trials/64⌉
    /// shards).
    pub trials: usize,
    /// Base seed: trial `j` replays the schedule seeded `seed + j`
    /// (wrapping at `u64::MAX`).
    pub seed: u64,
}

/// One unit of worker-pool work: a run of consecutive trials (at most the
/// backend's lane capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Shard index (0-based; also its reduction position).
    pub index: usize,
    /// Seed of the shard's first lane (`lane k` uses `seed + k`).
    pub seed: u64,
    /// Live lanes in this shard (only the final shard may be partial).
    pub lanes: usize,
}

/// Splits `trials` into ⌈trials/64⌉ single-word shards — the classic PR-3
/// chunking, equivalent to [`shards_for`] with [`LANES`] lanes per shard.
pub fn shards(trials: usize, seed: u64) -> Vec<Shard> {
    shards_for(trials, seed, LANES)
}

/// Splits `trials` into ⌈trials/lanes_per_shard⌉ shards with deterministic
/// seed derivation: shard `i` starts at `seed + lanes_per_shard·i`, so the
/// flattened lane order is exactly `seed, seed+1, …, seed+trials-1` —
/// independent of the thread count **and of the chunk size**: re-chunking
/// for a wider backend permutes nothing. Arithmetic wraps at `u64::MAX`
/// (consistently with the per-lane derivation in
/// [`WideHarness::schedules`]), so a near-maximal user seed stays
/// deterministic instead of panicking in debug builds.
///
/// # Panics
///
/// Panics if `lanes_per_shard` is zero.
pub fn shards_for(trials: usize, seed: u64, lanes_per_shard: usize) -> Vec<Shard> {
    assert!(lanes_per_shard > 0, "shards need at least one lane");
    (0..trials.div_ceil(lanes_per_shard))
        .map(|i| Shard {
            index: i,
            seed: seed.wrapping_add((i * lanes_per_shard) as u64),
            lanes: lanes_per_shard.min(trials - i * lanes_per_shard),
        })
        .collect()
}

/// Outcome of one campaign point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Point label (copied from the [`Experiment`]).
    pub label: String,
    /// Reduced statistics; `per_lane[j]` is the trial seeded `seed + j`.
    pub stats: McStats,
    /// Worker threads actually spawned (requested, clamped to the shard
    /// count and the machine's available parallelism).
    pub threads: usize,
    /// Worker threads the caller asked for, before clamping.
    pub requested_threads: usize,
    /// Number of shards executed.
    pub shards: usize,
    /// Wall-clock seconds for the whole point (compile + stimulus + runs;
    /// compile excluded when a prebuilt harness is supplied).
    pub wall_secs: f64,
    /// Executed backend label (see [`Backend::label`]) — for
    /// [`BackendSel::Auto`] this is the width the dispatch picked.
    pub backend: &'static str,
    /// Backend selection mode label (see [`BackendSel::label`]): `"auto"`
    /// when the width was runtime-dispatched, else the forced backend.
    pub dispatch: &'static str,
    /// Bounded stimulus-queue depth of the streaming pipeline (1 for the
    /// batch scalar path).
    pub queue: usize,
}

impl PointResult {
    /// Formats `mean ±ci95 (sd)` for tables.
    pub fn summary(&self) -> String {
        format!(
            "{:.4} ±{:.4} (sd {:.4})",
            self.stats.mean(),
            self.stats.ci95(),
            self.stats.stddev()
        )
    }

    /// End-to-end throughput of the point in simulated cycles per
    /// wall-clock second (`trials × cycles / wall_secs`) — the headline
    /// per-core metric of the Monte-Carlo engine.
    pub fn cycles_per_sec(&self) -> f64 {
        let total = self.stats.trials() as f64 * self.stats.cycles as f64;
        if self.wall_secs > 0.0 {
            total / self.wall_secs
        } else {
            f64::INFINITY
        }
    }
}

/// Errors surfaced by the experiment engine.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ExpError {
    /// The experiment spec is unusable (zero trials or cycles).
    EmptyExperiment,
    /// Building, compiling or analysing the system failed.
    Core(CoreError),
}

impl fmt::Display for ExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpError::EmptyExperiment => {
                write!(f, "experiment needs at least one trial and one cycle")
            }
            ExpError::Core(e) => write!(f, "system error: {e}"),
        }
    }
}

impl std::error::Error for ExpError {}

impl From<CoreError> for ExpError {
    fn from(e: CoreError) -> Self {
        ExpError::Core(e)
    }
}

/// Tunables of the streaming experiment engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOpts {
    /// Requested worker threads; the engine clamps to the shard count and
    /// the machine's available parallelism (see [`effective_threads`]).
    pub threads: usize,
    /// Bounded stimulus-queue depth: at most this many packed stimulus
    /// matrices exist at once (queued + mid-pack), which is the pipeline's
    /// memory bound. Clamped to at least 1.
    pub queue: usize,
    /// Backend selection: runtime width dispatch or a forced backend.
    pub backend: BackendSel,
    /// Byte budget for cache-blocked tape scheduling
    /// ([`elastic_netlist::levelize::Program::block_plan`]).
    pub block_bytes: usize,
}

impl Default for EngineOpts {
    fn default() -> Self {
        EngineOpts {
            threads: default_threads(),
            queue: 2,
            backend: BackendSel::Auto,
            block_bytes: DISPATCH_FOOTPRINT_BYTES,
        }
    }
}

/// The worker count the engine actually spawns for `requested` threads
/// over `shards` shards: clamped so that (a) spare workers with no shard
/// to claim are never spawned, and (b) the pool never oversubscribes the
/// machine — `requested > available_parallelism` timeslices workers over
/// the same cores and *increases* wall time (the BENCH_pr4.json `scaling`
/// regression: 2 threads took 2.5× as long as 1 on a 1-core host).
pub fn effective_threads(requested: usize, shards: usize) -> usize {
    requested.clamp(1, shards.max(1)).min(default_threads())
}

/// Runs one campaign point with default engine options (runtime-dispatched
/// backend, streaming pipeline) — see [`run_experiment_opts`].
///
/// # Errors
///
/// [`ExpError::EmptyExperiment`] for a zero-trial/zero-cycle spec;
/// [`ExpError::Core`] when the system fails to build or compile.
pub fn run_experiment(exp: &Experiment, threads: usize) -> Result<PointResult, ExpError> {
    run_experiment_opts(
        exp,
        &EngineOpts {
            threads,
            ..EngineOpts::default()
        },
    )
}

/// Runs one campaign point on a forced [`Backend`] — the pre-dispatch
/// entry point, kept for backend-equivalence checks. Identical per-lane
/// results to [`run_experiment_opts`] with [`BackendSel::Auto`] (asserted
/// by proptests).
///
/// # Errors
///
/// [`ExpError::EmptyExperiment`] for a zero-trial/zero-cycle spec;
/// [`ExpError::Core`] when the system fails to build or compile.
pub fn run_experiment_backend(
    exp: &Experiment,
    threads: usize,
    backend: Backend,
) -> Result<PointResult, ExpError> {
    run_experiment_opts(
        exp,
        &EngineOpts {
            threads,
            backend: BackendSel::Fixed(backend),
            ..EngineOpts::default()
        },
    )
}

/// Runs one campaign point through the streaming pipeline.
///
/// The network is compiled **once** (through the full optimize → levelize →
/// peephole pipeline); the resulting [`WideHarness`] is shared by reference
/// across the hybrid worker pool of the `stream` module: stimulus packing
/// (producer), tape execution (consumer) and transfer-count reduction
/// overlap, so the stimulus for shard *k+1* is packed while shard *k*
/// executes behind a bounded queue. The word width is taken from
/// `opts.backend` — [`dispatch_backend`] at runtime for
/// [`BackendSel::Auto`] — and each shard covers `backend.lanes()` trials.
/// The scalar reference backend has no packed path and falls back to the
/// batch engine (one gate-level interpreter run per trial).
///
/// See the module docs for the determinism and oversubscription contracts.
///
/// # Errors
///
/// [`ExpError::EmptyExperiment`] for a zero-trial/zero-cycle spec;
/// [`ExpError::Core`] when the system fails to build, compile, or run.
///
/// # Panics
///
/// Panics only on library bugs (a worker thread panicking mid-shard), never
/// on bad experiment inputs.
pub fn run_experiment_opts(exp: &Experiment, opts: &EngineOpts) -> Result<PointResult, ExpError> {
    run_experiment_streaming(exp, opts, |_, _| {})
}

/// [`run_experiment_opts`] with a partial-result hook: `on_partial(i, s)`
/// fires on the calling thread, in shard-index order, as soon as shards
/// `0..=i` have all completed — live progress for long campaigns without
/// waiting for the final reduction.
///
/// # Errors
///
/// See [`run_experiment_opts`].
pub fn run_experiment_streaming(
    exp: &Experiment,
    opts: &EngineOpts,
    on_partial: impl FnMut(usize, &McStats),
) -> Result<PointResult, ExpError> {
    if exp.trials == 0 || exp.cycles == 0 {
        return Err(ExpError::EmptyExperiment);
    }
    let t0 = Instant::now();
    let (network, out) = exp.system.build()?;
    let harness = WideHarness::try_new(&network, out)?;
    run_core(&harness, &network, exp, opts, t0, on_partial)
}

/// Runs one campaign point against a **prebuilt** harness, skipping the
/// per-point compile: campaign binaries sweeping many environments over
/// the same system build the [`WideHarness`] once and amortize it.
/// `exp.system` is ignored — `harness`/`network` stand in for it, and the
/// caller is responsible for their consistency. `wall_secs` (and therefore
/// [`PointResult::cycles_per_sec`]) covers only stimulus + execution.
///
/// # Errors
///
/// [`ExpError::EmptyExperiment`] for a zero-trial/zero-cycle spec;
/// [`ExpError::Core`] when a pipeline stage fails.
pub fn run_prepared(
    harness: &WideHarness,
    network: &ElasticNetwork,
    exp: &Experiment,
    opts: &EngineOpts,
) -> Result<PointResult, ExpError> {
    if exp.trials == 0 || exp.cycles == 0 {
        return Err(ExpError::EmptyExperiment);
    }
    run_core(harness, network, exp, opts, Instant::now(), |_, _| {})
}

/// The engine core shared by every entry point: dispatch the backend,
/// shard the trials, run the streaming pipeline (or the batch scalar
/// fallback), reduce in shard-index order.
fn run_core(
    harness: &WideHarness,
    network: &ElasticNetwork,
    exp: &Experiment,
    opts: &EngineOpts,
    t0: Instant,
    mut on_partial: impl FnMut(usize, &McStats),
) -> Result<PointResult, ExpError> {
    let backend = match opts.backend {
        BackendSel::Auto => dispatch_backend(harness.program(), exp.trials),
        BackendSel::Fixed(b) => b,
    };
    let work = shards_for(exp.trials, exp.seed, backend.lanes());
    let threads = effective_threads(opts.threads, work.len());
    let stats = if backend == Backend::Scalar {
        let mut done = run_batch_scalar(harness, network, exp, &work, threads);
        done.sort_unstable_by_key(|&(i, _)| i);
        for (i, s) in &done {
            on_partial(*i, s);
        }
        McStats::concat(done.into_iter().map(|(_, s)| s))
    } else {
        let width = backend.lanes() / LANES;
        let plan = harness.program().block_plan(width, opts.block_bytes);
        let per_shard = run_shards_streaming(
            harness, network, &exp.env, exp.cycles, &work, width, &plan, threads, opts.queue,
            on_partial,
        )?;
        McStats::concat(per_shard)
    };
    debug_assert_eq!(stats.trials(), exp.trials);
    Ok(PointResult {
        label: exp.label.clone(),
        stats,
        threads,
        requested_threads: opts.threads,
        shards: work.len(),
        wall_secs: t0.elapsed().as_secs_f64(),
        backend: backend.label(),
        dispatch: opts.backend.label(),
        queue: if backend == Backend::Scalar {
            1
        } else {
            opts.queue.max(1)
        },
    })
}

/// The scalar fallback: the classic PR4 batch pool — workers claim shards
/// from an atomic cursor, generate that shard's schedules and run them one
/// gate-level interpreter pass per trial. Returns unsorted
/// `(shard index, stats)` pairs.
fn run_batch_scalar(
    harness: &WideHarness,
    network: &ElasticNetwork,
    exp: &Experiment,
    work: &[Shard],
    threads: usize,
) -> Vec<(usize, McStats)> {
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<(usize, McStats)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(shard) = work.get(i) else { break };
                        let scheds = WideHarness::schedules(
                            network,
                            &exp.env,
                            shard.seed,
                            exp.cycles,
                            shard.lanes,
                        );
                        let stats = harness
                            .try_run_scalar(&scheds)
                            .expect("shard sized to the backend (library bug)");
                        local.push((shard.index, stats));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked (library bug)"))
            .collect()
    })
}

/// The early-vs-lazy configuration pair every early-evaluation ablation
/// sweeps: the paper's headline contrast (Table 1 rows 1 and 5).
pub const EE_CONFIGS: [(Config, &str); 2] = [
    (Config::ActiveAntiTokens, "early"),
    (Config::NoEarlyEval, "lazy"),
];

/// Builds the `sweep_ee_prob`-style campaign point for fast-branch
/// probability `p_i`: the Fig. 9 example with the opcode distribution on
/// `Din` set to I with probability `p_i` and the remaining mass split 3:1
/// between F and M. Shared by `sweep_ee_prob` and `campaign` so their
/// points stay equivalent by construction.
///
/// # Errors
///
/// Propagates build failures of the paper example.
pub fn ee_prob_experiment(
    p_i: f64,
    config: Config,
    tag: &str,
    cycles: usize,
    trials: usize,
    seed: u64,
) -> Result<Experiment, ExpError> {
    let sys = paper_example(config)?;
    let rest = 1.0 - p_i;
    let mut env = sys.env_config.clone();
    env.sources.insert(
        "Din".into(),
        SourceCfg {
            rate: 1.0,
            data: DataGen::Weighted(vec![(0b00, p_i), (0b10, rest * 0.75), (0b01, rest * 0.25)]),
        },
    );
    Ok(Experiment {
        label: format!("p_i={p_i:.2}/{tag}"),
        system: SystemSpec::Paper(config),
        env,
        cycles,
        trials,
        seed,
    })
}

/// Outcome of the marked-graph analytic cross-check of one lazy point.
#[derive(Debug, Clone)]
pub struct BoundCheck {
    /// The `min_cycle_ratio` throughput bound of the abstracted system.
    pub bound: f64,
    /// Measured Monte-Carlo mean throughput.
    pub measured: f64,
    /// Tolerance granted for finite-horizon noise.
    pub tolerance: f64,
    /// Whether `measured <= bound + tolerance`.
    pub ok: bool,
    /// Component names on the critical cycle.
    pub critical: Vec<String>,
}

/// Cross-checks a measured lazy-configuration throughput against the
/// minimum-cycle-ratio bound of its marked-graph abstraction
/// (`elastic_core::dmg_bridge`). Lazy systems cannot beat the bound; a
/// sharded campaign whose lazy mean exceeds it has a bug (bad seeding, a
/// polluted partial shard, a broken reducer), which is exactly what this
/// check is for.
///
/// # Errors
///
/// Propagates abstraction/analysis failures (e.g. a system that is not
/// strongly connected after abstraction) — as typed errors, not panics, so
/// campaign runners can report and continue.
pub fn lazy_bound_check(
    network: &ElasticNetwork,
    env: &EnvConfig,
    measured: f64,
    tolerance: f64,
) -> Result<BoundCheck, ExpError> {
    let b = lazy_throughput_bound(network, env)?;
    Ok(BoundCheck {
        bound: b.bound,
        measured,
        tolerance,
        ok: measured <= b.bound + tolerance,
        critical: b.critical,
    })
}

/// One thread-scaling measurement of a campaign's reference point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingRow {
    /// Threads the ladder step asked for.
    pub requested: usize,
    /// Threads the engine actually spawned (see [`effective_threads`]) —
    /// the corrected PR6 methodology: BENCH_pr4.json recorded requested
    /// threads only, which on an oversubscribed host made "2 threads" a
    /// measurement of timeslicing overhead, not scaling.
    pub effective: usize,
    /// Wall-clock seconds of the reference point at this step.
    pub wall_secs: f64,
}

/// A campaign-level record serialized to `BENCH_pr3.json`-style files.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// Completed points.
    pub points: Vec<PointResult>,
    /// Analytic cross-checks, as `(point label, check)` pairs.
    pub bound_checks: Vec<(String, BoundCheck)>,
    /// Thread-scaling measurements for one reference point.
    pub scaling: Vec<ScalingRow>,
}

impl CampaignReport {
    /// Renders the whole report as a JSON object (hand-rolled: the
    /// workspace is offline and vendors no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"campaign\": {},\n", json_str(&self.name)));
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let sep = if i + 1 == self.points.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"point\": {}, \"mean\": {}, \"sd\": {}, \"ci95\": {}, \
                 \"trials\": {}, \"cycles\": {}, \"shards\": {}, \"threads\": {}, \
                 \"requested_threads\": {}, \"queue\": {}, \"wall_secs\": {}, \
                 \"backend\": {}, \"dispatch\": {}, \"cycles_per_sec\": {}}}{sep}\n",
                json_str(&p.label),
                json_f64(p.stats.mean()),
                json_f64(p.stats.stddev()),
                json_f64(p.stats.ci95()),
                p.stats.trials(),
                p.stats.cycles,
                p.shards,
                p.threads,
                p.requested_threads,
                p.queue,
                json_f64(p.wall_secs),
                json_str(p.backend),
                json_str(p.dispatch),
                json_f64(p.cycles_per_sec()),
            ));
        }
        s.push_str("  ],\n  \"bound_checks\": [\n");
        for (i, (label, c)) in self.bound_checks.iter().enumerate() {
            let sep = if i + 1 == self.bound_checks.len() {
                ""
            } else {
                ","
            };
            s.push_str(&format!(
                "    {{\"point\": {}, \"bound\": {}, \"measured\": {}, \
                 \"tolerance\": {}, \"ok\": {}, \"critical\": [{}]}}{sep}\n",
                json_str(label),
                json_f64(c.bound),
                json_f64(c.measured),
                json_f64(c.tolerance),
                c.ok,
                c.critical
                    .iter()
                    .map(|n| json_str(n))
                    .collect::<Vec<_>>()
                    .join(", "),
            ));
        }
        s.push_str("  ],\n  \"scaling\": [\n");
        for (i, &row) in self.scaling.iter().enumerate() {
            let sep = if i + 1 == self.scaling.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"requested_threads\": {}, \"effective_threads\": {}, \
                 \"wall_secs\": {}}}{sep}\n",
                row.requested,
                row.effective,
                json_f64(row.wall_secs)
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Writes the JSON rendering to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

/// Minimal JSON string escape (quotes, backslashes, control chars).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite floats only — JSON has no NaN/Inf, so degrade to null.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Shared command-line options of the campaign binaries
/// (`--trials N --threads N --cycles N --seed N --json PATH --queue N
/// --backend {auto,scalar,wide,wide1,wide2,wide4,wide8}`).
#[derive(Debug, Clone)]
pub struct CliOpts {
    /// Trials per point.
    pub trials: usize,
    /// Worker threads (defaults to the machine's available parallelism;
    /// the engine clamps, see [`effective_threads`]).
    pub threads: usize,
    /// Cycles per trial.
    pub cycles: usize,
    /// Base seed.
    pub seed: u64,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Backend selection (defaults to runtime dispatch, `auto`).
    pub backend: BackendSel,
    /// Streaming-pipeline stimulus queue depth.
    pub queue: usize,
}

impl CliOpts {
    /// Parses `std::env::args`, falling back to the given defaults when a
    /// flag is absent. Unknown flags are ignored so binaries can add their
    /// own — but a flag that *is* present with an unparsable or missing
    /// value is a hard error (exit 2): these binaries produce published
    /// measurements, and silently running the default size after a typo
    /// would record numbers for a campaign that never ran.
    pub fn parse(default_trials: usize, default_cycles: usize) -> CliOpts {
        let args: Vec<String> = std::env::args().collect();
        let grab = |flag: &str| -> Option<String> {
            args.iter().position(|a| a == flag).map(|i| {
                args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("error: {flag} requires a value");
                    std::process::exit(2);
                })
            })
        };
        fn parsed<T: std::str::FromStr>(flag: &str, v: Option<String>, dflt: T) -> T {
            match v {
                None => dflt,
                Some(raw) => raw.parse().unwrap_or_else(|_| {
                    eprintln!("error: invalid value for {flag}: {raw:?}");
                    std::process::exit(2);
                }),
            }
        }
        fn positive(flag: &str, v: usize) -> usize {
            if v == 0 {
                eprintln!("error: {flag} must be at least 1");
                std::process::exit(2);
            }
            v
        }
        let backend = match grab("--backend") {
            None => BackendSel::Auto,
            Some(raw) => BackendSel::parse(&raw).unwrap_or_else(|| {
                eprintln!(
                    "error: invalid value for --backend: {raw:?} \
                     (expected auto, scalar, wide, wide1, wide2, wide4 or wide8)"
                );
                std::process::exit(2);
            }),
        };
        CliOpts {
            trials: positive(
                "--trials",
                parsed("--trials", grab("--trials"), default_trials),
            ),
            threads: positive(
                "--threads",
                parsed("--threads", grab("--threads"), default_threads()),
            ),
            cycles: positive(
                "--cycles",
                parsed("--cycles", grab("--cycles"), default_cycles),
            ),
            seed: parsed("--seed", grab("--seed"), 1),
            json: grab("--json"),
            backend,
            queue: positive(
                "--queue",
                parsed("--queue", grab("--queue"), EngineOpts::default().queue),
            ),
        }
    }

    /// The [`EngineOpts`] these CLI options describe.
    pub fn engine(&self) -> EngineOpts {
        EngineOpts {
            threads: self.threads,
            queue: self.queue,
            backend: self.backend,
            ..EngineOpts::default()
        }
    }
}

/// The machine's available parallelism (1 when unknown).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::systems::linear_pipeline;

    fn pipeline_spec() -> (SystemSpec, EnvConfig) {
        let (net, _, out) = linear_pipeline(2, 1).unwrap();
        (
            SystemSpec::Custom {
                network: net,
                output: out,
            },
            EnvConfig::default(),
        )
    }

    #[test]
    fn shard_derivation_covers_trials_exactly() {
        // N % 64 == 0, N % 64 != 0 and N < 64 all partition cleanly.
        for (trials, expect) in [(128usize, vec![64, 64]), (100, vec![64, 36]), (5, vec![5])] {
            let sh = shards(trials, 1000);
            assert_eq!(sh.len(), expect.len(), "{trials} trials");
            for (i, s) in sh.iter().enumerate() {
                assert_eq!(s.index, i);
                assert_eq!(s.lanes, expect[i]);
                assert_eq!(s.seed, 1000 + (i * LANES) as u64);
            }
            assert_eq!(sh.iter().map(|s| s.lanes).sum::<usize>(), trials);
        }
        assert!(shards(0, 0).is_empty());
    }

    #[test]
    fn near_max_seed_wraps_instead_of_panicking() {
        // Regression: seed arithmetic close to u64::MAX must wrap (like the
        // sweep binaries' seed offsets), not overflow-panic in debug builds.
        let base = u64::MAX - 70;
        let sh = shards(130, base);
        assert_eq!(sh[0].seed, base);
        assert_eq!(sh[1].seed, base.wrapping_add(64));
        assert_eq!(sh[2].seed, 57, "wrapped past u64::MAX");
        let (system, env) = pipeline_spec();
        let exp = Experiment {
            label: "wrap".into(),
            system,
            env,
            cycles: 20,
            trials: 130,
            seed: base,
        };
        let one = run_experiment(&exp, 1).unwrap();
        let multi = run_experiment(&exp, 3).unwrap();
        assert_eq!(one.stats.per_lane, multi.stats.per_lane);
    }

    #[test]
    fn empty_experiment_is_an_error() {
        let (system, env) = pipeline_spec();
        let exp = Experiment {
            label: "empty".into(),
            system,
            env,
            cycles: 100,
            trials: 0,
            seed: 1,
        };
        assert!(matches!(
            run_experiment(&exp, 2),
            Err(ExpError::EmptyExperiment)
        ));
    }

    #[test]
    fn partial_shard_matches_direct_wide_run() {
        // 70 trials: one 512-lane shard (partial) on the default wide8
        // backend, two shards on wide1. Neither chunking may leak its dead
        // upper lanes into the estimate, and both must flatten to the same
        // per-lane vector as direct single-word runs.
        let (system, env) = pipeline_spec();
        let exp = Experiment {
            label: "partial".into(),
            system: system.clone(),
            env: env.clone(),
            cycles: 60,
            trials: 70,
            seed: 400,
        };
        let res = run_experiment(&exp, 2).unwrap();
        assert_eq!(res.stats.trials(), 70);
        assert_eq!(res.shards, 1, "one 512-lane shard on the default backend");
        let narrow = run_experiment_backend(&exp, 2, Backend::Wide1).unwrap();
        assert_eq!(narrow.shards, 2, "two 64-lane shards on wide1");
        // Reference: drive the two 64-lane shards directly through
        // WideHarness.
        let (net, out) = system.build().unwrap();
        let h = WideHarness::new(&net, out);
        let s0 = WideHarness::schedules(&net, &env, 400, 60, 64);
        let s1 = WideHarness::schedules(&net, &env, 400 + 64, 60, 6);
        let expect: Vec<f64> = h
            .run(&s0)
            .per_lane
            .into_iter()
            .chain(h.run(&s1).per_lane)
            .collect();
        assert_eq!(res.stats.per_lane, expect);
        assert_eq!(narrow.stats.per_lane, expect);
    }

    #[test]
    fn all_backends_agree_bit_exactly() {
        // The same experiment on every backend — scalar interpreter on the
        // raw netlist included — must produce the identical per-lane
        // vector: the end-to-end cross-check of the optimize → levelize →
        // peephole → pack pipeline.
        let (system, env) = pipeline_spec();
        let exp = Experiment {
            label: "backends".into(),
            system,
            env,
            cycles: 40,
            trials: 70,
            seed: 3000,
        };
        let reference = run_experiment_backend(&exp, 1, Backend::Scalar).unwrap();
        assert_eq!(reference.backend, "scalar");
        for backend in [
            Backend::Wide1,
            Backend::Wide2,
            Backend::Wide4,
            Backend::Wide8,
        ] {
            let res = run_experiment_backend(&exp, 2, backend).unwrap();
            assert_eq!(res.stats.per_lane, reference.stats.per_lane, "{backend:?}");
            assert_eq!(res.backend, backend.label());
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (system, env) = pipeline_spec();
        let exp = Experiment {
            label: "det".into(),
            system,
            env,
            cycles: 50,
            trials: 130,
            seed: 77,
        };
        let one = run_experiment(&exp, 1).unwrap();
        for threads in [2, 3, 8] {
            let multi = run_experiment(&exp, threads).unwrap();
            assert_eq!(
                one.stats.per_lane, multi.stats.per_lane,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn lazy_bound_check_holds_on_paper_lazy_config() {
        let sys = paper_example(Config::NoEarlyEval).unwrap();
        let exp = Experiment {
            label: "lazy".into(),
            system: SystemSpec::Paper(Config::NoEarlyEval),
            env: sys.env_config.clone(),
            cycles: 300,
            trials: 96,
            seed: 9,
        };
        let res = run_experiment(&exp, 2).unwrap();
        let check =
            lazy_bound_check(&sys.network, &sys.env_config, res.stats.mean(), 0.03).unwrap();
        assert!(
            check.ok,
            "lazy mean {} exceeded bound {}",
            check.measured, check.bound
        );
        assert!(!check.critical.is_empty());
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = CampaignReport {
            name: "unit \"quoted\"".into(),
            points: vec![PointResult {
                label: "p\\0".into(),
                stats: McStats {
                    cycles: 10,
                    per_lane: vec![0.25, 0.75],
                },
                threads: 2,
                requested_threads: 8,
                shards: 1,
                wall_secs: 0.5,
                backend: "wide8",
                dispatch: "auto",
                queue: 2,
            }],
            bound_checks: vec![(
                "lazy".into(),
                BoundCheck {
                    bound: 0.25,
                    measured: 0.2,
                    tolerance: 0.01,
                    ok: true,
                    critical: vec!["M1".into()],
                },
            )],
            scaling: vec![
                ScalingRow {
                    requested: 1,
                    effective: 1,
                    wall_secs: 2.0,
                },
                ScalingRow {
                    requested: 4,
                    effective: 1,
                    wall_secs: f64::NAN,
                },
            ],
        };
        let json = report.to_json();
        assert!(json.contains("\"campaign\": \"unit \\\"quoted\\\"\""));
        assert!(json.contains("\"point\": \"p\\\\0\""));
        assert!(json.contains("\"mean\": 0.500000"));
        assert!(json.contains("\"trials\": 2"));
        assert!(json.contains("\"backend\": \"wide8\""));
        assert!(json.contains("\"dispatch\": \"auto\""));
        assert!(json.contains("\"requested_threads\": 8"));
        assert!(json.contains("\"queue\": 2"));
        assert!(json.contains("\"requested_threads\": 4, \"effective_threads\": 1"));
        // 2 trials × 10 cycles / 0.5 s = 40 cycles/sec.
        assert!(json.contains("\"cycles_per_sec\": 40.000000"));
        assert!(json.contains("\"ok\": true"));
        assert!(json.contains("\"critical\": [\"M1\"]"));
        // Non-finite wall times degrade to null instead of invalid JSON.
        assert!(json.contains("\"wall_secs\": null"));
        // Balanced braces/brackets as a cheap well-formedness proxy.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "{open}{close}"
            );
        }
    }
}
