//! Shared harness code for the table/figure regeneration binaries and the
//! Criterion benches.
//!
//! The Monte-Carlo machinery lives here: [`WideHarness`] compiles an
//! elastic network once and then evaluates up to 64 independent random
//! schedules per run through the bit-parallel
//! [`elastic_netlist::wide::WideSimulator`] backend, with a scalar
//! reference path ([`WideHarness::run_scalar`]) for equivalence checks and
//! speedup measurements. The [`exp`] module scales a single 64-lane word to
//! arbitrary-size campaigns sharded across OS threads.

pub mod exp;

use std::time::Instant;

use elastic_core::channel::ChanId;
use elastic_core::compile::{compile, CompileOptions, Compiled};
use elastic_core::network::ElasticNetwork;
use elastic_core::sim::{BehavSim, EnvConfig, RandomEnv};
use elastic_core::stats::SimReport;
use elastic_core::systems::{paper_example, Config, PaperSystem};
use elastic_core::verify::{NetlistTestbench, Schedule};
use elastic_core::CoreError;
use elastic_netlist::area::AreaReport;
use elastic_netlist::opt::optimize;
use elastic_netlist::sim::Simulator;
use elastic_netlist::wide::{lane_mask, WideSimulator, LANES};

/// One row of the regenerated Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Configuration label (paper row name).
    pub label: String,
    /// System throughput (positive transfers per cycle at the environment).
    pub throughput: f64,
    /// Per-channel `(name, positive, negative, kill)` rates for the five
    /// Table 1 channels.
    pub channels: Vec<(String, f64, f64, f64)>,
    /// Post-optimization area of the compiled control layer.
    pub area: AreaReport,
}

/// Runs one Table 1 configuration for `cycles` cycles with `seed`.
///
/// # Panics
///
/// Panics if the fixed example system fails to build or simulate — that
/// would be a library bug, and the binaries want a loud failure.
pub fn run_table1_row(config: Config, cycles: u64, seed: u64) -> Table1Row {
    let sys = paper_example(config).expect("example builds");
    let mut sim = BehavSim::new(&sys.network).expect("network is valid");
    let mut env = RandomEnv::new(seed, sys.env_config.clone());
    sim.run(&mut env, cycles).expect("simulation runs");
    let report = sim.report();
    let ch = &sys.channels;
    let named: [(&str, ChanId); 5] = [
        ("F2->F3", ch.f2_f3),
        ("F3->W", ch.f3_w),
        ("S->M1", ch.s_m1),
        ("M1->M2", ch.m1_m2),
        ("M2->W", ch.m2_w),
    ];
    let channels = named
        .iter()
        .map(|&(name, c)| {
            (
                name.to_string(),
                report.positive_rate(c),
                report.negative_rate(c),
                report.kill_rate(c),
            )
        })
        .collect();
    let area = control_area(&sys);
    Table1Row {
        label: config.label().to_string(),
        throughput: report.positive_rate(sys.output_channel),
        channels,
        area,
    }
}

/// Compiles the control layer of a system, optimizes it and reports area.
///
/// # Panics
///
/// Panics on compilation failure (library bug).
pub fn control_area(sys: &PaperSystem) -> AreaReport {
    let compiled = elastic_core::compile::compile(
        &sys.network,
        &elastic_core::compile::CompileOptions {
            data_width: 2,
            nondet_merge: false,
        },
    )
    .expect("compiles");
    let (opt, _) = optimize(&compiled.netlist).expect("optimizes");
    AreaReport::of(&opt)
}

/// Runs all five configurations and returns the rows in paper order.
pub fn run_table1(cycles: u64, seed: u64) -> Vec<Table1Row> {
    Config::all()
        .into_iter()
        .map(|c| run_table1_row(c, cycles, seed))
        .collect()
}

/// Formats the regenerated table alongside the paper's reference values.
pub fn format_table1(rows: &[Table1Row]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<22} {:>6}  {:<28} {:<28} {:<28} {:<28} {:<28}  area",
        "Configuration",
        "Th",
        "F2->F3 (+ - x)",
        "F3->W (+ - x)",
        "S->M1 (+ - x)",
        "M1->M2 (+ - x)",
        "M2->W (+ - x)"
    );
    for r in rows {
        let _ = write!(s, "{:<22} {:>6.3}  ", r.label, r.throughput);
        for (_, p, nr, k) in &r.channels {
            let _ = write!(s, "{p:>7.3} {nr:>7.3} {k:>7.3}      ");
        }
        let _ = writeln!(s, "{}", r.area);
    }
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "Paper reference (Table 1): Th = 0.400 / 0.343 / 0.387 / 0.280 / 0.277;"
    );
    let _ = writeln!(
        s,
        "area lit = 253 / 241 / 213 / 234 / 176 (SIS factored literals)."
    );
    s
}

/// Per-lane positive-transfer statistics of one Monte-Carlo run.
#[derive(Debug, Clone)]
pub struct McStats {
    /// Simulated cycles per trial.
    pub cycles: u64,
    /// Positive-transfer rate of the observed channel per trial.
    pub per_lane: Vec<f64>,
}

impl McStats {
    /// Number of trials.
    pub fn trials(&self) -> usize {
        self.per_lane.len()
    }

    /// Mean throughput across trials (0 for an empty run).
    pub fn mean(&self) -> f64 {
        if self.per_lane.is_empty() {
            return 0.0;
        }
        self.per_lane.iter().sum::<f64>() / self.per_lane.len() as f64
    }

    /// Sample standard deviation across trials (0 for a single trial).
    pub fn stddev(&self) -> f64 {
        if self.per_lane.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self
            .per_lane
            .iter()
            .map(|&x| (x - m) * (x - m))
            .sum::<f64>()
            / (self.per_lane.len() - 1) as f64;
        var.sqrt()
    }

    /// Half-width of the normal-approximation 95% confidence interval on
    /// the mean: `1.96 · s / √n` (0 for fewer than two trials).
    pub fn ci95(&self) -> f64 {
        if self.per_lane.len() < 2 {
            return 0.0;
        }
        1.96 * self.stddev() / (self.per_lane.len() as f64).sqrt()
    }

    /// Concatenates per-shard statistics into one campaign-level `McStats`,
    /// preserving lane order (shard 0's lanes first). The caller supplies
    /// the shards in shard-index order so the result is independent of
    /// which worker thread ran which shard.
    ///
    /// # Panics
    ///
    /// Panics if the shards disagree on the cycle horizon — their rates
    /// would not be commensurable.
    pub fn concat(shards: impl IntoIterator<Item = McStats>) -> McStats {
        let mut out = McStats {
            cycles: 0,
            per_lane: Vec::new(),
        };
        for s in shards {
            assert!(
                out.per_lane.is_empty() || out.cycles == s.cycles,
                "shards must share one horizon ({} vs {})",
                out.cycles,
                s.cycles
            );
            out.cycles = s.cycles;
            out.per_lane.extend_from_slice(&s.per_lane);
        }
        out
    }
}

/// A compiled network plus the testbench handles needed to replay
/// [`Schedule`]s against it — compile once, run many schedule batches.
///
/// # Panics
///
/// Construction and runs panic on library errors (compilation failures,
/// missing rails): the bench binaries want loud failures, like the rest of
/// this crate.
pub struct WideHarness {
    compiled: Compiled,
    tb: NetlistTestbench,
    out: ChanId,
    /// Power-up-state simulators built once at construction; runs clone
    /// them instead of re-levelizing / re-checking the netlist per call.
    wide_proto: WideSimulator,
    scalar_proto: Simulator,
}

/// Payload width used by the Monte-Carlo harness (matches the 2-bit opcode
/// space of the paper's example).
pub const MC_DATA_WIDTH: usize = 2;

impl WideHarness {
    /// Compiles `net` and resolves the testbench handles. `out` is the
    /// channel whose positive-transfer rate is reported as throughput.
    pub fn new(net: &ElasticNetwork, out: ChanId) -> WideHarness {
        Self::try_new(net, out).expect("compiles")
    }

    /// Fallible variant of [`WideHarness::new`] for campaign runners that
    /// must surface a broken system spec instead of panicking a worker.
    ///
    /// # Errors
    ///
    /// Propagates compilation and testbench-resolution failures.
    pub fn try_new(net: &ElasticNetwork, out: ChanId) -> Result<WideHarness, CoreError> {
        let compiled = compile(
            net,
            &CompileOptions {
                data_width: MC_DATA_WIDTH,
                nondet_merge: false,
            },
        )?;
        let tb = NetlistTestbench::new(net, &compiled.netlist, MC_DATA_WIDTH)?;
        let wide_proto = WideSimulator::new(&compiled.netlist).map_err(CoreError::from)?;
        let scalar_proto = Simulator::new(&compiled.netlist).map_err(CoreError::from)?;
        Ok(WideHarness {
            compiled,
            tb,
            out,
            wide_proto,
            scalar_proto,
        })
    }

    /// Shared horizon of a schedule batch.
    ///
    /// # Panics
    ///
    /// Panics when the batch is empty or mixes horizons — per-lane rates
    /// would silently be wrong for the shorter schedules otherwise.
    fn horizon(schedules: &[Schedule]) -> u64 {
        let cycles = schedules.first().expect("at least one schedule").cycles();
        assert!(
            schedules.iter().all(|s| s.cycles() == cycles),
            "schedules must share one horizon"
        );
        cycles as u64
    }

    /// Generates `lanes` independent random schedules with seeds
    /// `seed..seed + lanes` (wrapping at `u64::MAX`, matching the shard
    /// seed derivation of `exp::shards`).
    pub fn schedules(
        net: &ElasticNetwork,
        env: &EnvConfig,
        seed: u64,
        cycles: usize,
        lanes: usize,
    ) -> Vec<Schedule> {
        assert!((1..=LANES).contains(&lanes), "1..={LANES} lanes");
        (0..lanes as u64)
            .map(|k| Schedule::random(net, env, seed.wrapping_add(k), cycles))
            .collect()
    }

    /// Runs all schedules at once through the bit-parallel backend: one
    /// compiled-tape pass per cycle advances every trial. A partial word
    /// (fewer than [`LANES`] schedules — e.g. the final shard of a sharded
    /// campaign) is masked to the live lanes, so the dead upper lanes can
    /// never pollute the statistics.
    pub fn run(&self, schedules: &[Schedule]) -> McStats {
        let cycles = Self::horizon(schedules);
        let live = lane_mask(schedules.len());
        let mut sim = self.wide_proto.clone();
        let nets = &self.compiled.channels[self.out.index()];
        let mut counts = vec![0u64; schedules.len()];
        for t in 0..cycles {
            sim.cycle(&self.tb.wide_inputs_at(schedules, t))
                .expect("runs");
            // Positive transfer: V+ & !S+ & !V- (kills excluded), all live
            // lanes at once.
            let mask = sim.value(nets.vp) & !sim.value(nets.sp) & !sim.value(nets.vn) & live;
            for (lane, c) in counts.iter_mut().enumerate() {
                *c += mask >> lane & 1;
            }
        }
        McStats {
            cycles,
            per_lane: counts.iter().map(|&c| c as f64 / cycles as f64).collect(),
        }
    }

    /// Reference path: the same schedules, one scalar gate-level
    /// [`Simulator`] run per trial. Produces identical statistics to
    /// [`WideHarness::run`] (asserted in tests); exists to measure the
    /// per-trial speedup of the wide backend.
    pub fn run_scalar(&self, schedules: &[Schedule]) -> McStats {
        let cycles = Self::horizon(schedules);
        let nets = &self.compiled.channels[self.out.index()];
        let per_lane = schedules
            .iter()
            .map(|sched| {
                let mut sim = self.scalar_proto.clone();
                let mut count = 0u64;
                for t in 0..cycles {
                    sim.cycle(&self.tb.inputs_at(sched, t)).expect("runs");
                    if sim.value(nets.vp) && !sim.value(nets.sp) && !sim.value(nets.vn) {
                        count += 1;
                    }
                }
                count as f64 / cycles as f64
            })
            .collect();
        McStats { cycles, per_lane }
    }
}

/// Outcome of a wide-vs-scalar speedup measurement.
#[derive(Debug, Clone)]
pub struct SpeedupReport {
    /// Trials (lanes) measured.
    pub lanes: usize,
    /// Cycles per trial.
    pub cycles: u64,
    /// Wall-clock seconds for the wide pass (all trials at once).
    pub wide_secs: f64,
    /// Wall-clock seconds for the scalar pass (one run per trial).
    pub scalar_secs: f64,
    /// Whether both paths produced identical per-lane rates.
    pub rates_match: bool,
}

impl SpeedupReport {
    /// Per-trial speedup of the wide backend over the scalar path.
    pub fn speedup(&self) -> f64 {
        self.scalar_secs / self.wide_secs
    }
}

/// Times the wide backend against the scalar path on the same schedule set
/// and cross-checks their statistics.
pub fn measure_speedup(harness: &WideHarness, schedules: &[Schedule]) -> SpeedupReport {
    let t0 = Instant::now();
    let wide = harness.run(schedules);
    let wide_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let scalar = harness.run_scalar(schedules);
    let scalar_secs = t1.elapsed().as_secs_f64();
    SpeedupReport {
        lanes: schedules.len(),
        cycles: wide.cycles,
        wide_secs,
        scalar_secs,
        rates_match: wide.per_lane == scalar.per_lane,
    }
}

/// Convenience: positive/negative/kill rates of a channel from a report.
pub fn rates(report: &SimReport, chan: ChanId) -> (f64, f64, f64) {
    (
        report.positive_rate(chan),
        report.negative_rate(chan),
        report.kill_rate(chan),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes_hold() {
        let rows = run_table1(6000, 11);
        let th: Vec<f64> = rows.iter().map(|r| r.throughput).collect();
        // Row order: Active, NoBuffer, PassiveF3W, PassiveM2W, NoEarlyEval.
        assert!(th[0] > th[4] * 1.15, "active {} >> lazy {}", th[0], th[4]);
        assert!(th[0] > th[1], "active {} > no-buffer {}", th[0], th[1]);
        assert!(th[2] > th[3], "passive-F3 {} > passive-M {}", th[2], th[3]);
        assert!(th[3] < th[0], "passive-M {} < active {}", th[3], th[0]);
        // Area ordering: lazy smallest; active >= passive variants.
        let lits: Vec<usize> = rows.iter().map(|r| r.area.literals).collect();
        assert!(
            lits[4] < lits[0],
            "lazy area {} < active {}",
            lits[4],
            lits[0]
        );
        assert!(
            lits[2] <= lits[0],
            "passive F3 {} <= active {}",
            lits[2],
            lits[0]
        );
        assert!(
            lits[3] <= lits[0],
            "passive M {} <= active {}",
            lits[3],
            lits[0]
        );
    }

    #[test]
    fn table_formatting_contains_all_rows() {
        let rows = run_table1(300, 1);
        let text = format_table1(&rows);
        for r in &rows {
            assert!(text.contains(&r.label));
        }
    }

    #[test]
    fn wide_and_scalar_mc_agree_exactly() {
        let sys = paper_example(Config::ActiveAntiTokens).unwrap();
        let h = WideHarness::new(&sys.network, sys.output_channel);
        let scheds = WideHarness::schedules(&sys.network, &sys.env_config, 5, 400, 6);
        let wide = h.run(&scheds);
        let scalar = h.run_scalar(&scheds);
        assert_eq!(wide.per_lane, scalar.per_lane);
        assert!(wide.mean() > 0.1 && wide.mean() < 1.0, "{}", wide.mean());
    }

    #[test]
    fn mc_stats_mean_and_stddev() {
        let s = McStats {
            cycles: 10,
            per_lane: vec![0.2, 0.4],
        };
        assert!((s.mean() - 0.3).abs() < 1e-12);
        assert!((s.stddev() - (0.02f64).sqrt()).abs() < 1e-12);
        let one = McStats {
            cycles: 10,
            per_lane: vec![0.5],
        };
        assert_eq!(one.stddev(), 0.0);
    }

    #[test]
    fn wide_mc_reproduces_table1_ordering() {
        // The wide Monte-Carlo backend must reproduce the Table 1 shape:
        // active anti-tokens beat the lazy join clearly, averaged over many
        // independent schedules.
        let mut means = Vec::new();
        for config in [Config::ActiveAntiTokens, Config::NoEarlyEval] {
            let sys = paper_example(config).unwrap();
            let h = WideHarness::new(&sys.network, sys.output_channel);
            let scheds = WideHarness::schedules(&sys.network, &sys.env_config, 11, 1500, 32);
            means.push(h.run(&scheds).mean());
        }
        assert!(
            means[0] > means[1] * 1.1,
            "active {} should beat lazy {}",
            means[0],
            means[1]
        );
    }
}
