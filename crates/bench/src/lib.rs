//! Shared harness code for the table/figure regeneration binaries and the
//! Criterion benches.

use elastic_core::channel::ChanId;
use elastic_core::sim::{BehavSim, RandomEnv};
use elastic_core::stats::SimReport;
use elastic_core::systems::{paper_example, Config, PaperSystem};
use elastic_netlist::area::AreaReport;
use elastic_netlist::opt::optimize;

/// One row of the regenerated Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Configuration label (paper row name).
    pub label: String,
    /// System throughput (positive transfers per cycle at the environment).
    pub throughput: f64,
    /// Per-channel `(name, positive, negative, kill)` rates for the five
    /// Table 1 channels.
    pub channels: Vec<(String, f64, f64, f64)>,
    /// Post-optimization area of the compiled control layer.
    pub area: AreaReport,
}

/// Runs one Table 1 configuration for `cycles` cycles with `seed`.
///
/// # Panics
///
/// Panics if the fixed example system fails to build or simulate — that
/// would be a library bug, and the binaries want a loud failure.
pub fn run_table1_row(config: Config, cycles: u64, seed: u64) -> Table1Row {
    let sys = paper_example(config).expect("example builds");
    let mut sim = BehavSim::new(&sys.network).expect("network is valid");
    let mut env = RandomEnv::new(seed, sys.env_config.clone());
    sim.run(&mut env, cycles).expect("simulation runs");
    let report = sim.report();
    let ch = &sys.channels;
    let named: [(&str, ChanId); 5] = [
        ("F2->F3", ch.f2_f3),
        ("F3->W", ch.f3_w),
        ("S->M1", ch.s_m1),
        ("M1->M2", ch.m1_m2),
        ("M2->W", ch.m2_w),
    ];
    let channels = named
        .iter()
        .map(|&(name, c)| {
            (
                name.to_string(),
                report.positive_rate(c),
                report.negative_rate(c),
                report.kill_rate(c),
            )
        })
        .collect();
    let area = control_area(&sys);
    Table1Row {
        label: config.label().to_string(),
        throughput: report.positive_rate(sys.output_channel),
        channels,
        area,
    }
}

/// Compiles the control layer of a system, optimizes it and reports area.
///
/// # Panics
///
/// Panics on compilation failure (library bug).
pub fn control_area(sys: &PaperSystem) -> AreaReport {
    let compiled = elastic_core::compile::compile(
        &sys.network,
        &elastic_core::compile::CompileOptions {
            data_width: 2,
            nondet_merge: false,
        },
    )
    .expect("compiles");
    let (opt, _) = optimize(&compiled.netlist).expect("optimizes");
    AreaReport::of(&opt)
}

/// Runs all five configurations and returns the rows in paper order.
pub fn run_table1(cycles: u64, seed: u64) -> Vec<Table1Row> {
    Config::all()
        .into_iter()
        .map(|c| run_table1_row(c, cycles, seed))
        .collect()
}

/// Formats the regenerated table alongside the paper's reference values.
pub fn format_table1(rows: &[Table1Row]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<22} {:>6}  {:<28} {:<28} {:<28} {:<28} {:<28}  area",
        "Configuration",
        "Th",
        "F2->F3 (+ - x)",
        "F3->W (+ - x)",
        "S->M1 (+ - x)",
        "M1->M2 (+ - x)",
        "M2->W (+ - x)"
    );
    for r in rows {
        let _ = write!(s, "{:<22} {:>6.3}  ", r.label, r.throughput);
        for (_, p, nr, k) in &r.channels {
            let _ = write!(s, "{p:>7.3} {nr:>7.3} {k:>7.3}      ");
        }
        let _ = writeln!(s, "{}", r.area);
    }
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "Paper reference (Table 1): Th = 0.400 / 0.343 / 0.387 / 0.280 / 0.277;"
    );
    let _ = writeln!(
        s,
        "area lit = 253 / 241 / 213 / 234 / 176 (SIS factored literals)."
    );
    s
}

/// Convenience: positive/negative/kill rates of a channel from a report.
pub fn rates(report: &SimReport, chan: ChanId) -> (f64, f64, f64) {
    (
        report.positive_rate(chan),
        report.negative_rate(chan),
        report.kill_rate(chan),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes_hold() {
        let rows = run_table1(6000, 11);
        let th: Vec<f64> = rows.iter().map(|r| r.throughput).collect();
        // Row order: Active, NoBuffer, PassiveF3W, PassiveM2W, NoEarlyEval.
        assert!(th[0] > th[4] * 1.15, "active {} >> lazy {}", th[0], th[4]);
        assert!(th[0] > th[1], "active {} > no-buffer {}", th[0], th[1]);
        assert!(th[2] > th[3], "passive-F3 {} > passive-M {}", th[2], th[3]);
        assert!(th[3] < th[0], "passive-M {} < active {}", th[3], th[0]);
        // Area ordering: lazy smallest; active >= passive variants.
        let lits: Vec<usize> = rows.iter().map(|r| r.area.literals).collect();
        assert!(
            lits[4] < lits[0],
            "lazy area {} < active {}",
            lits[4],
            lits[0]
        );
        assert!(
            lits[2] <= lits[0],
            "passive F3 {} <= active {}",
            lits[2],
            lits[0]
        );
        assert!(
            lits[3] <= lits[0],
            "passive M {} <= active {}",
            lits[3],
            lits[0]
        );
    }

    #[test]
    fn table_formatting_contains_all_rows() {
        let rows = run_table1(300, 1);
        let text = format_table1(&rows);
        for r in &rows {
            assert!(text.contains(&r.label));
        }
    }
}
