//! Shared harness code for the table/figure regeneration binaries and the
//! Criterion benches.
//!
//! The Monte-Carlo machinery lives here: [`WideHarness`] compiles an
//! elastic network once through the throughput-first execution pipeline —
//! netlist optimization, observed-cone dead-code elimination, tape
//! peephole, packed stimulus — and then evaluates up to
//! [`MAX_TRIALS_PER_RUN`] independent random schedules per run through the
//! multi-word bit-parallel [`elastic_netlist::wide::WideSim`] backend, with
//! a scalar reference path on the *unoptimized* netlist
//! ([`WideHarness::run_scalar`]) for end-to-end equivalence checks and
//! speedup measurements. The [`exp`] module scales single runs to
//! arbitrary-size campaigns sharded across OS threads.

pub mod exp;
pub mod fault;
pub mod fuzz;
pub mod stabilize;
mod stream;

use std::time::Instant;

use elastic_core::channel::ChanId;
use elastic_core::compile::{compile, CompileOptions, Compiled};
use elastic_core::network::ElasticNetwork;
use elastic_core::sim::{BehavSim, EnvConfig, RandomEnv};
use elastic_core::stats::SimReport;
use elastic_core::systems::{paper_example, Config, PaperSystem};
use elastic_core::verify::{NetlistTestbench, PackedStimulus, Schedule};
use elastic_core::CoreError;
use elastic_netlist::area::AreaReport;
use elastic_netlist::levelize::{BlockPlan, Program};
use elastic_netlist::opt::{optimize, optimize_observed};
use elastic_netlist::sim::Simulator;
use elastic_netlist::wide::{lane_masks, WideSim, LANES};
use elastic_netlist::NetId;

/// One row of the regenerated Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Configuration label (paper row name).
    pub label: String,
    /// System throughput (positive transfers per cycle at the environment).
    pub throughput: f64,
    /// Per-channel `(name, positive, negative, kill)` rates for the five
    /// Table 1 channels.
    pub channels: Vec<(String, f64, f64, f64)>,
    /// Post-optimization area of the compiled control layer.
    pub area: AreaReport,
}

/// Runs one Table 1 configuration for `cycles` cycles with `seed`.
///
/// # Panics
///
/// Panics if the fixed example system fails to build or simulate — that
/// would be a library bug, and the binaries want a loud failure.
pub fn run_table1_row(config: Config, cycles: u64, seed: u64) -> Table1Row {
    let sys = paper_example(config).expect("example builds");
    let mut sim = BehavSim::new(&sys.network).expect("network is valid");
    let mut env = RandomEnv::new(seed, sys.env_config.clone());
    sim.run(&mut env, cycles).expect("simulation runs");
    let report = sim.report();
    let ch = &sys.channels;
    let named: [(&str, ChanId); 5] = [
        ("F2->F3", ch.f2_f3),
        ("F3->W", ch.f3_w),
        ("S->M1", ch.s_m1),
        ("M1->M2", ch.m1_m2),
        ("M2->W", ch.m2_w),
    ];
    let channels = named
        .iter()
        .map(|&(name, c)| {
            (
                name.to_string(),
                report.positive_rate(c),
                report.negative_rate(c),
                report.kill_rate(c),
            )
        })
        .collect();
    let area = control_area(&sys);
    Table1Row {
        label: config.label().to_string(),
        throughput: report.positive_rate(sys.output_channel),
        channels,
        area,
    }
}

/// Compiles the control layer of a system, optimizes it and reports area.
///
/// # Panics
///
/// Panics on compilation failure (library bug).
pub fn control_area(sys: &PaperSystem) -> AreaReport {
    let compiled = elastic_core::compile::compile(
        &sys.network,
        &elastic_core::compile::CompileOptions {
            lint: false,
            data_width: 2,
            nondet_merge: false,
            optimize: false,
            fault: None,
            faults: vec![],
        },
    )
    .expect("compiles");
    let (opt, _) = optimize(&compiled.netlist).expect("optimizes");
    AreaReport::of(&opt)
}

/// Runs all five configurations and returns the rows in paper order.
pub fn run_table1(cycles: u64, seed: u64) -> Vec<Table1Row> {
    Config::all()
        .into_iter()
        .map(|c| run_table1_row(c, cycles, seed))
        .collect()
}

/// Formats the regenerated table alongside the paper's reference values.
pub fn format_table1(rows: &[Table1Row]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<22} {:>6}  {:<28} {:<28} {:<28} {:<28} {:<28}  area",
        "Configuration",
        "Th",
        "F2->F3 (+ - x)",
        "F3->W (+ - x)",
        "S->M1 (+ - x)",
        "M1->M2 (+ - x)",
        "M2->W (+ - x)"
    );
    for r in rows {
        let _ = write!(s, "{:<22} {:>6.3}  ", r.label, r.throughput);
        for (_, p, nr, k) in &r.channels {
            let _ = write!(s, "{p:>7.3} {nr:>7.3} {k:>7.3}      ");
        }
        let _ = writeln!(s, "{}", r.area);
    }
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "Paper reference (Table 1): Th = 0.400 / 0.343 / 0.387 / 0.280 / 0.277;"
    );
    let _ = writeln!(
        s,
        "area lit = 253 / 241 / 213 / 234 / 176 (SIS factored literals)."
    );
    s
}

/// Per-lane positive-transfer statistics of one Monte-Carlo run.
#[derive(Debug, Clone)]
pub struct McStats {
    /// Simulated cycles per trial.
    pub cycles: u64,
    /// Positive-transfer rate of the observed channel per trial.
    pub per_lane: Vec<f64>,
}

impl McStats {
    /// Number of trials.
    pub fn trials(&self) -> usize {
        self.per_lane.len()
    }

    /// Mean throughput across trials (0 for an empty run).
    pub fn mean(&self) -> f64 {
        if self.per_lane.is_empty() {
            return 0.0;
        }
        self.per_lane.iter().sum::<f64>() / self.per_lane.len() as f64
    }

    /// Sample standard deviation across trials (0 for a single trial).
    pub fn stddev(&self) -> f64 {
        if self.per_lane.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self
            .per_lane
            .iter()
            .map(|&x| (x - m) * (x - m))
            .sum::<f64>()
            / (self.per_lane.len() - 1) as f64;
        var.sqrt()
    }

    /// Half-width of the normal-approximation 95% confidence interval on
    /// the mean: `1.96 · s / √n` (0 for fewer than two trials).
    pub fn ci95(&self) -> f64 {
        if self.per_lane.len() < 2 {
            return 0.0;
        }
        1.96 * self.stddev() / (self.per_lane.len() as f64).sqrt()
    }

    /// Concatenates per-shard statistics into one campaign-level `McStats`,
    /// preserving lane order (shard 0's lanes first). The caller supplies
    /// the shards in shard-index order so the result is independent of
    /// which worker thread ran which shard.
    ///
    /// # Panics
    ///
    /// Panics if the shards disagree on the cycle horizon — their rates
    /// would not be commensurable.
    pub fn concat(shards: impl IntoIterator<Item = McStats>) -> McStats {
        let mut out = McStats {
            cycles: 0,
            per_lane: Vec::new(),
        };
        for s in shards {
            assert!(
                out.per_lane.is_empty() || out.cycles == s.cycles,
                "shards must share one horizon ({} vs {})",
                out.cycles,
                s.cycles
            );
            out.cycles = s.cycles;
            out.per_lane.extend_from_slice(&s.per_lane);
        }
        out
    }
}

/// Maximum schedules a single [`WideHarness::run`] advances at once: the
/// widest (`W = 8`) multi-word backend packs 512 trials per tape pass.
pub const MAX_TRIALS_PER_RUN: usize = 8 * LANES;

/// Which execution engine a Monte-Carlo run uses.
///
/// All backends produce bit-identical per-lane [`McStats`] for the same
/// schedules (asserted by tests and the `campaign` binary); they differ
/// only in speed. `Scalar` runs the raw unoptimized netlist through the
/// gate-level interpreter — the end-to-end reference that cross-checks the
/// whole optimize → levelize → peephole → pack pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// One scalar gate-level [`Simulator`] run per trial, raw netlist.
    Scalar,
    /// Single-word compiled backend (64 trials per pass).
    Wide1,
    /// Two-word compiled backend (128 trials per pass).
    Wide2,
    /// Four-word compiled backend (256 trials per pass).
    Wide4,
    /// Eight-word compiled backend (512 trials per pass) — the default.
    #[default]
    Wide8,
}

impl Backend {
    /// Every backend, scalar first.
    pub const ALL: [Backend; 5] = [
        Backend::Scalar,
        Backend::Wide1,
        Backend::Wide2,
        Backend::Wide4,
        Backend::Wide8,
    ];

    /// Trials one run (and therefore one campaign shard) covers. The
    /// scalar backend is per-trial, so it keeps the classic 64-trial shard
    /// for scheduling parity with `Wide1`.
    pub fn lanes(self) -> usize {
        match self {
            Backend::Scalar | Backend::Wide1 => LANES,
            Backend::Wide2 => 2 * LANES,
            Backend::Wide4 => 4 * LANES,
            Backend::Wide8 => 8 * LANES,
        }
    }

    /// CLI name (`--backend` value).
    pub fn label(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Wide1 => "wide1",
            Backend::Wide2 => "wide2",
            Backend::Wide4 => "wide4",
            Backend::Wide8 => "wide8",
        }
    }

    /// Parses a `--backend` value; `wide` is an alias for the widest
    /// backend.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "scalar" => Some(Backend::Scalar),
            "wide" | "wide8" => Some(Backend::Wide8),
            "wide1" => Some(Backend::Wide1),
            "wide2" => Some(Backend::Wide2),
            "wide4" => Some(Backend::Wide4),
            _ => None,
        }
    }
}

/// How the experiment engine chooses its execution backend: a forced
/// [`Backend`], or per-topology runtime dispatch via [`dispatch_backend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendSel {
    /// Pick the word width at runtime from the compiled tape's value-arena
    /// footprint and the campaign's trial count — the default.
    #[default]
    Auto,
    /// Force one backend (the pre-PR6 behaviour; `--backend wide4` etc.).
    Fixed(Backend),
}

impl BackendSel {
    /// CLI name (`--backend` value).
    pub fn label(self) -> &'static str {
        match self {
            BackendSel::Auto => "auto",
            BackendSel::Fixed(b) => b.label(),
        }
    }

    /// Parses a `--backend` value: `auto`, or anything [`Backend::parse`]
    /// accepts.
    pub fn parse(s: &str) -> Option<BackendSel> {
        if s == "auto" {
            return Some(BackendSel::Auto);
        }
        Backend::parse(s).map(BackendSel::Fixed)
    }
}

/// Value-arena byte budget the runtime width dispatch keeps a topology's
/// working set under: half a typical 1 MiB L2, leaving room for the
/// stimulus rows streaming through the same cache.
pub const DISPATCH_FOOTPRINT_BYTES: usize = 512 * 1024;

/// Picks the word width for a topology at runtime: the widest `W` whose
/// `W`-word value arena fits [`DISPATCH_FOOTPRINT_BYTES`], narrowed while a
/// narrower backend already holds every trial (`trials ≤ (W/2)·LANES`) —
/// wider words would only splat zeros through dead lanes. Never returns
/// [`Backend::Scalar`]; the scalar path is a reference, not a dispatch
/// target. The choice is recorded in campaign JSON as `dispatch`.
pub fn dispatch_backend(prog: &Program, trials: usize) -> Backend {
    let mut w = 8usize;
    while w > 1 && prog.footprint_bytes(w) > DISPATCH_FOOTPRINT_BYTES {
        w /= 2;
    }
    while w > 1 && trials <= (w / 2) * LANES {
        w /= 2;
    }
    match w {
        1 => Backend::Wide1,
        2 => Backend::Wide2,
        4 => Backend::Wide4,
        _ => Backend::Wide8,
    }
}

/// A compiled network plus everything needed to replay [`Schedule`]s
/// against it — compile once, run many schedule batches.
///
/// Construction builds the throughput-first execution pipeline:
///
/// 1. **raw compile** — the gate-for-gate netlist, kept for the scalar
///    reference path and channel-rail probing;
/// 2. **optimize** — [`CompileOptions::optimize`] reruns the paper's
///    "simple logic synthesis" (Sect. 6) ahead of simulation;
/// 3. **observed-cone DCE** — [`optimize_observed`] keeps only the logic
///    that can influence the observed channel's `V⁺/S⁺/V⁻` rails;
/// 4. **levelize + peephole** — [`Program::compile_optimized`] emits the
///    instruction tapes and collapses copies, fuses inverters and drops
///    phase-dead recomputation;
/// 5. **per run: pack + multi-word execute** — schedules are packed once
///    into a [`PackedStimulus`] matrix and streamed through a
///    [`WideSim<W>`] with sparse `trailing_zeros` transfer counting.
///
/// # Panics
///
/// The non-`try` constructors and runners panic on library errors
/// (compilation failures, missing rails, bad batches): the bench binaries
/// want loud failures, like the rest of this crate.
pub struct WideHarness {
    /// Raw (unoptimized) compilation: scalar reference path + rail ids.
    compiled: Compiled,
    tb: NetlistTestbench,
    out: ChanId,
    /// Power-up-state scalar simulator on the raw netlist; cloned per
    /// reference run.
    scalar_proto: Simulator,
    /// Peephole-optimized tape over the observed-cone netlist — the wide
    /// path all `Wide*` backends execute.
    prog: Program,
    /// Testbench resolved against the observed-cone netlist (input names
    /// survive optimization).
    wide_tb: NetlistTestbench,
    /// The observed channel's `(V⁺, S⁺, V⁻)` rails in the observed-cone
    /// netlist.
    obs_rails: (NetId, NetId, NetId),
}

/// Payload width used by the Monte-Carlo harness (matches the 2-bit opcode
/// space of the paper's example).
pub const MC_DATA_WIDTH: usize = 2;

impl WideHarness {
    /// Compiles `net` and resolves the testbench handles. `out` is the
    /// channel whose positive-transfer rate is reported as throughput.
    pub fn new(net: &ElasticNetwork, out: ChanId) -> WideHarness {
        Self::try_new(net, out).expect("compiles")
    }

    /// Fallible variant of [`WideHarness::new`] for campaign runners that
    /// must surface a broken system spec instead of panicking a worker.
    ///
    /// # Errors
    ///
    /// Propagates compilation and testbench-resolution failures.
    pub fn try_new(net: &ElasticNetwork, out: ChanId) -> Result<WideHarness, CoreError> {
        let compiled = compile(
            net,
            &CompileOptions {
                lint: false,
                data_width: MC_DATA_WIDTH,
                nondet_merge: false,
                optimize: false,
                fault: None,
                faults: vec![],
            },
        )?;
        let tb = NetlistTestbench::new(net, &compiled.netlist, MC_DATA_WIDTH)?;
        let scalar_proto = Simulator::new(&compiled.netlist).map_err(CoreError::from)?;
        // The wide path: optimized compile, then keep only the cones that
        // can influence the three observed rails, then peephole the tape.
        let opt = compile(
            net,
            &CompileOptions {
                lint: false,
                data_width: MC_DATA_WIDTH,
                nondet_merge: false,
                optimize: true,
                fault: None,
                faults: vec![],
            },
        )?;
        let rails = &opt.channels[out.index()];
        let (obs, map) = optimize_observed(&opt.netlist, &[rails.vp, rails.sp, rails.vn])
            .map_err(CoreError::from)?;
        let remap = |id: NetId| map[id.index()].expect("observed rails survive as outputs");
        let obs_rails = (remap(rails.vp), remap(rails.sp), remap(rails.vn));
        let wide_tb = NetlistTestbench::new(net, &obs, MC_DATA_WIDTH)?;
        let (prog, _stats) = Program::compile_optimized(&obs).map_err(CoreError::from)?;
        Ok(WideHarness {
            compiled,
            tb,
            out,
            scalar_proto,
            prog,
            wide_tb,
            obs_rails,
        })
    }

    /// Shared horizon of a schedule batch.
    ///
    /// # Errors
    ///
    /// [`CoreError::ScheduleBatch`] when the batch is empty or mixes
    /// horizons — per-lane rates would silently be wrong for the shorter
    /// schedules otherwise.
    fn try_horizon(schedules: &[Schedule]) -> Result<u64, CoreError> {
        let Some(first) = schedules.first() else {
            return Err(CoreError::ScheduleBatch("empty schedule batch".into()));
        };
        let cycles = first.cycles();
        if let Some(bad) = schedules.iter().find(|s| s.cycles() != cycles) {
            return Err(CoreError::ScheduleBatch(format!(
                "mixed horizons: {cycles} vs {}",
                bad.cycles()
            )));
        }
        Ok(cycles as u64)
    }

    /// Generates `lanes` independent random schedules with seeds
    /// `seed..seed + lanes` (wrapping at `u64::MAX`, matching the shard
    /// seed derivation of `exp::shards_for`).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or exceeds [`MAX_TRIALS_PER_RUN`].
    pub fn schedules(
        net: &ElasticNetwork,
        env: &EnvConfig,
        seed: u64,
        cycles: usize,
        lanes: usize,
    ) -> Vec<Schedule> {
        assert!(
            (1..=MAX_TRIALS_PER_RUN).contains(&lanes),
            "1..={MAX_TRIALS_PER_RUN} lanes"
        );
        (0..lanes as u64)
            .map(|k| Schedule::random(net, env, seed.wrapping_add(k), cycles))
            .collect()
    }

    /// Runs all schedules at once through the narrowest multi-word backend
    /// that holds them (≤ 64 → `W = 1`, ≤ 128 → `W = 2`, …): one
    /// peephole-optimized tape pass per cycle advances every trial from the
    /// packed stimulus matrix. Partial final words are masked to the live
    /// lanes, so dead lanes can never pollute the statistics.
    ///
    /// # Errors
    ///
    /// [`CoreError::ScheduleBatch`] for an empty batch, more than
    /// [`MAX_TRIALS_PER_RUN`] schedules, or mixed horizons.
    pub fn try_run(&self, schedules: &[Schedule]) -> Result<McStats, CoreError> {
        match schedules.len() {
            0 => Err(CoreError::ScheduleBatch("empty schedule batch".into())),
            n if n <= LANES => self.try_run_w::<1>(schedules),
            n if n <= 2 * LANES => self.try_run_w::<2>(schedules),
            n if n <= 4 * LANES => self.try_run_w::<4>(schedules),
            n if n <= 8 * LANES => self.try_run_w::<8>(schedules),
            n => Err(CoreError::ScheduleBatch(format!(
                "{n} schedules exceed the {MAX_TRIALS_PER_RUN}-lane capacity"
            ))),
        }
    }

    /// Panicking wrapper around [`WideHarness::try_run`] for the bench
    /// binaries.
    ///
    /// # Panics
    ///
    /// Panics on bad batches (see [`WideHarness::try_run`]).
    pub fn run(&self, schedules: &[Schedule]) -> McStats {
        self.try_run(schedules).expect("runs")
    }

    /// Runs a batch on an explicitly chosen [`Backend`].
    ///
    /// # Errors
    ///
    /// [`CoreError::ScheduleBatch`] when the batch is empty, exceeds the
    /// backend's lane capacity, or mixes horizons.
    pub fn try_run_backend(
        &self,
        schedules: &[Schedule],
        backend: Backend,
    ) -> Result<McStats, CoreError> {
        match backend {
            Backend::Scalar => self.try_run_scalar(schedules),
            Backend::Wide1 => self.try_run_w::<1>(schedules),
            Backend::Wide2 => self.try_run_w::<2>(schedules),
            Backend::Wide4 => self.try_run_w::<4>(schedules),
            Backend::Wide8 => self.try_run_w::<8>(schedules),
        }
    }

    /// The multi-word hot loop: pack once, then stream rows into the
    /// values arena by slot index and count transfers by iterating the set
    /// bits of the per-word transfer mask (`trailing_zeros`), instead of
    /// shifting through all 64 lanes every cycle.
    fn try_run_w<const W: usize>(&self, schedules: &[Schedule]) -> Result<McStats, CoreError> {
        let cycles = Self::try_horizon(schedules)?;
        let stim = PackedStimulus::pack(&self.wide_tb, schedules, W)?;
        let mut sim: WideSim<W> = WideSim::from_program(self.prog.clone());
        sim.check_input_slots(stim.slots())
            .map_err(CoreError::from)?;
        let live = lane_masks::<W>(schedules.len());
        let (vp, sp, vn) = self.obs_rails;
        let mut counts = vec![0u32; schedules.len()];
        for t in 0..cycles as usize {
            sim.cycle_packed(stim.slots(), stim.row(t));
            // Positive transfer: V+ & !S+ & !V- (kills excluded), one word
            // of lanes at a time.
            for (w, &mask) in live.iter().enumerate() {
                let mut m = sim.word(vp, w) & !sim.word(sp, w) & !sim.word(vn, w) & mask;
                while m != 0 {
                    counts[w * LANES + m.trailing_zeros() as usize] += 1;
                    m &= m - 1;
                }
            }
        }
        Ok(McStats {
            cycles,
            per_lane: counts
                .iter()
                .map(|&c| f64::from(c) / cycles as f64)
                .collect(),
        })
    }

    /// Generates a packed stimulus matrix for `lanes` trials directly —
    /// the streaming pipeline's producer stage. Bit-identical to packing
    /// [`WideHarness::schedules`] with the same arguments (each lane `k`
    /// replays the RNG stream of seed `seed + k`), but built in one fused
    /// pass without materializing [`Schedule`]s.
    ///
    /// # Errors
    ///
    /// [`CoreError::ScheduleBatch`] when `lanes` is zero or exceeds
    /// `width · LANES`.
    pub fn generate_stimulus(
        &self,
        net: &ElasticNetwork,
        env: &EnvConfig,
        seed: u64,
        cycles: usize,
        lanes: usize,
        width: usize,
    ) -> Result<PackedStimulus, CoreError> {
        PackedStimulus::generate(&self.wide_tb, net, env, seed, lanes, cycles, width)
    }

    /// Executes a pre-built stimulus matrix — the streaming pipeline's
    /// consumer stage. The word width is dispatched at runtime from
    /// `stim.width()` onto the matching monomorphized backend, and the tape
    /// runs through `plan`'s cache blocks
    /// ([`WideSim::cycle_packed_blocked`]). Only the first `lanes` trials
    /// count toward the statistics; trailing lanes of a partial word are
    /// masked out.
    ///
    /// # Errors
    ///
    /// [`CoreError::ScheduleBatch`] when `lanes` is zero, exceeds the
    /// stimulus width's capacity, or `stim.width()` is not one of
    /// {1, 2, 4, 8}; propagates slot-validation failures.
    pub fn try_run_stim(
        &self,
        stim: &PackedStimulus,
        lanes: usize,
        plan: &BlockPlan,
    ) -> Result<McStats, CoreError> {
        match stim.width() {
            1 => self.run_stim_w::<1>(stim, lanes, plan),
            2 => self.run_stim_w::<2>(stim, lanes, plan),
            4 => self.run_stim_w::<4>(stim, lanes, plan),
            8 => self.run_stim_w::<8>(stim, lanes, plan),
            w => Err(CoreError::ScheduleBatch(format!(
                "unsupported stimulus width {w} (expected 1, 2, 4 or 8)"
            ))),
        }
    }

    fn run_stim_w<const W: usize>(
        &self,
        stim: &PackedStimulus,
        lanes: usize,
        plan: &BlockPlan,
    ) -> Result<McStats, CoreError> {
        if lanes == 0 || lanes > W * LANES {
            return Err(CoreError::ScheduleBatch(format!(
                "{lanes} trials do not fit a {W}-word backend (1..={})",
                W * LANES
            )));
        }
        let cycles = stim.cycles() as u64;
        let mut sim: WideSim<W> = WideSim::from_program(self.prog.clone());
        sim.check_input_slots(stim.slots())
            .map_err(CoreError::from)?;
        let live = lane_masks::<W>(lanes);
        let (vp, sp, vn) = self.obs_rails;
        let mut counts = vec![0u32; lanes];
        // Bit-sliced vertical counters: per lane word, 8 planes hold each
        // lane's transfer count for up to 255 cycles (plane `b` is bit `b`
        // of every lane's count). Adding a transfer mask is a ripple-carry
        // over the planes — ~2 word ops per cycle on average, instead of
        // one `trailing_zeros` round-trip per set bit (≈ 48 on a dense
        // word). Flushes decode the planes into the scalar counts.
        let mut planes = [[0u64; 8]; W];
        let mut window = 0u32;
        let flush = |counts: &mut [u32], planes: &mut [[u64; 8]; W]| {
            for (w, pl) in planes.iter_mut().enumerate() {
                for (b, plane) in pl.iter_mut().enumerate() {
                    let mut m = *plane;
                    while m != 0 {
                        counts[w * LANES + m.trailing_zeros() as usize] += 1 << b;
                        m &= m - 1;
                    }
                    *plane = 0;
                }
            }
        };
        for t in 0..cycles as usize {
            sim.cycle_packed_blocked(stim.slots(), stim.row(t), plan);
            for (w, &mask) in live.iter().enumerate() {
                let mut carry = sim.word(vp, w) & !sim.word(sp, w) & !sim.word(vn, w) & mask;
                for plane in planes[w].iter_mut() {
                    if carry == 0 {
                        break;
                    }
                    let c = *plane & carry;
                    *plane ^= carry;
                    carry = c;
                }
                debug_assert_eq!(carry, 0, "255-cycle window overflowed a lane counter");
            }
            window += 1;
            if window == 255 {
                flush(&mut counts, &mut planes);
                window = 0;
            }
        }
        if window > 0 {
            flush(&mut counts, &mut planes);
        }
        Ok(McStats {
            cycles,
            per_lane: counts
                .iter()
                .map(|&c| f64::from(c) / cycles as f64)
                .collect(),
        })
    }

    /// The pre-packing execution path: the same peephole-optimized program,
    /// but driven per cycle through
    /// [`NetlistTestbench::wide_inputs_at`]'s freshly allocated
    /// `(NetId, mask)` vectors. Kept to attribute the stimulus-packing gain
    /// in benchmarks and as the reference for the packed-equivalence
    /// property tests (≤ 64 schedules).
    ///
    /// # Panics
    ///
    /// Panics on empty/mixed-horizon batches or more than [`LANES`]
    /// schedules.
    pub fn run_unpacked(&self, schedules: &[Schedule]) -> McStats {
        let cycles = Self::try_horizon(schedules).expect("valid batch");
        let live = lane_masks::<1>(schedules.len())[0];
        let mut sim: WideSim<1> = WideSim::from_program(self.prog.clone());
        let (vp, sp, vn) = self.obs_rails;
        let mut counts = vec![0u64; schedules.len()];
        for t in 0..cycles {
            sim.cycle(&self.wide_tb.wide_inputs_at(schedules, t))
                .expect("runs");
            let mask = sim.value(vp) & !sim.value(sp) & !sim.value(vn) & live;
            for (lane, c) in counts.iter_mut().enumerate() {
                *c += mask >> lane & 1;
            }
        }
        McStats {
            cycles,
            per_lane: counts.iter().map(|&c| c as f64 / cycles as f64).collect(),
        }
    }

    /// Reference path: the same schedules, one scalar gate-level
    /// [`Simulator`] run per trial over the **unoptimized** netlist.
    /// Produces identical statistics to every other backend (asserted in
    /// tests) — this is the end-to-end cross-check of the optimizer, the
    /// peephole pass and the packed stimulus, and the baseline for speedup
    /// measurements.
    ///
    /// # Errors
    ///
    /// [`CoreError::ScheduleBatch`] for an empty or mixed-horizon batch.
    pub fn try_run_scalar(&self, schedules: &[Schedule]) -> Result<McStats, CoreError> {
        let cycles = Self::try_horizon(schedules)?;
        let nets = &self.compiled.channels[self.out.index()];
        let per_lane = schedules
            .iter()
            .map(|sched| {
                let mut sim = self.scalar_proto.clone();
                let mut count = 0u64;
                for t in 0..cycles {
                    sim.cycle(&self.tb.inputs_at(sched, t)).expect("runs");
                    if sim.value(nets.vp) && !sim.value(nets.sp) && !sim.value(nets.vn) {
                        count += 1;
                    }
                }
                count as f64 / cycles as f64
            })
            .collect();
        Ok(McStats { cycles, per_lane })
    }

    /// Panicking wrapper around [`WideHarness::try_run_scalar`].
    ///
    /// # Panics
    ///
    /// Panics on empty or mixed-horizon batches.
    pub fn run_scalar(&self, schedules: &[Schedule]) -> McStats {
        self.try_run_scalar(schedules).expect("runs")
    }

    /// The peephole-optimized program the wide backends execute (tape
    /// statistics for reports and benches).
    pub fn program(&self) -> &Program {
        &self.prog
    }
}

/// Outcome of a wide-vs-scalar speedup measurement.
#[derive(Debug, Clone)]
pub struct SpeedupReport {
    /// Trials (lanes) measured.
    pub lanes: usize,
    /// Cycles per trial.
    pub cycles: u64,
    /// Wall-clock seconds for the wide pass (all trials at once).
    pub wide_secs: f64,
    /// Wall-clock seconds for the scalar pass (one run per trial).
    pub scalar_secs: f64,
    /// Whether both paths produced identical per-lane rates.
    pub rates_match: bool,
}

impl SpeedupReport {
    /// Per-trial speedup of the wide backend over the scalar path.
    pub fn speedup(&self) -> f64 {
        self.scalar_secs / self.wide_secs
    }
}

/// Times the wide backend against the scalar path on the same schedule set
/// and cross-checks their statistics.
pub fn measure_speedup(harness: &WideHarness, schedules: &[Schedule]) -> SpeedupReport {
    let t0 = Instant::now();
    let wide = harness.run(schedules);
    let wide_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let scalar = harness.run_scalar(schedules);
    let scalar_secs = t1.elapsed().as_secs_f64();
    SpeedupReport {
        lanes: schedules.len(),
        cycles: wide.cycles,
        wide_secs,
        scalar_secs,
        rates_match: wide.per_lane == scalar.per_lane,
    }
}

/// Convenience: positive/negative/kill rates of a channel from a report.
///
/// # Panics
///
/// Panics if `chan` is out of range; binaries resolving user-supplied
/// channel names must use [`try_rates`] (or [`rate_or_exit`]) instead.
pub fn rates(report: &SimReport, chan: ChanId) -> (f64, f64, f64) {
    try_rates(report, chan).expect("channel in range")
}

/// Checked variant of [`rates`]: `None` when `chan` does not belong to the
/// report.
pub fn try_rates(report: &SimReport, chan: ChanId) -> Option<(f64, f64, f64)> {
    Some((
        report.try_positive_rate(chan)?,
        report.try_negative_rate(chan)?,
        report.try_kill_rate(chan)?,
    ))
}

/// Unwraps a checked per-channel rate for the figure binaries: prints a
/// proper error naming the channel and exits with status 1 instead of
/// panicking with `expect("channel in range")` — the satellite hardening
/// for binaries whose channel ids can come from user input.
pub fn rate_or_exit(rate: Option<f64>, what: &str) -> f64 {
    rate.unwrap_or_else(|| {
        eprintln!("error: channel {what} is not part of this simulation report");
        std::process::exit(1);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes_hold() {
        let rows = run_table1(6000, 11);
        let th: Vec<f64> = rows.iter().map(|r| r.throughput).collect();
        // Row order: Active, NoBuffer, PassiveF3W, PassiveM2W, NoEarlyEval.
        assert!(th[0] > th[4] * 1.15, "active {} >> lazy {}", th[0], th[4]);
        assert!(th[0] > th[1], "active {} > no-buffer {}", th[0], th[1]);
        assert!(th[2] > th[3], "passive-F3 {} > passive-M {}", th[2], th[3]);
        assert!(th[3] < th[0], "passive-M {} < active {}", th[3], th[0]);
        // Area ordering: lazy smallest; active >= passive variants.
        let lits: Vec<usize> = rows.iter().map(|r| r.area.literals).collect();
        assert!(
            lits[4] < lits[0],
            "lazy area {} < active {}",
            lits[4],
            lits[0]
        );
        assert!(
            lits[2] <= lits[0],
            "passive F3 {} <= active {}",
            lits[2],
            lits[0]
        );
        assert!(
            lits[3] <= lits[0],
            "passive M {} <= active {}",
            lits[3],
            lits[0]
        );
    }

    #[test]
    fn table_formatting_contains_all_rows() {
        let rows = run_table1(300, 1);
        let text = format_table1(&rows);
        for r in &rows {
            assert!(text.contains(&r.label));
        }
    }

    #[test]
    fn execution_pipeline_shrinks_the_tape() {
        // The optimize → observed-cone DCE → peephole front end must leave
        // a much shorter instruction tape than a raw levelization of the
        // same system — that reduction is the per-cycle work the engine no
        // longer does.
        let sys = paper_example(Config::ActiveAntiTokens).unwrap();
        let h = WideHarness::new(&sys.network, sys.output_channel);
        let raw_nl = compile(
            &sys.network,
            &CompileOptions {
                lint: false,
                data_width: MC_DATA_WIDTH,
                nondet_merge: false,
                optimize: false,
                fault: None,
                faults: vec![],
            },
        )
        .unwrap()
        .netlist;
        let raw = Program::compile(&raw_nl).unwrap();
        let raw_len = raw.high().len() + raw.low().len();
        let opt_len = h.program().high().len() + h.program().low().len();
        assert!(
            opt_len * 2 < raw_len,
            "optimized tape {opt_len} not under half the raw {raw_len}"
        );
        println!("tape: raw {raw_len} instrs -> optimized {opt_len}");
    }

    #[test]
    fn try_run_rejects_bad_batches_typed() {
        // Satellite hardening: empty and mixed-horizon batches are typed
        // errors on every entry point, not panics.
        let sys = paper_example(Config::ActiveAntiTokens).unwrap();
        let h = WideHarness::new(&sys.network, sys.output_channel);
        assert!(matches!(h.try_run(&[]), Err(CoreError::ScheduleBatch(_))));
        assert!(matches!(
            h.try_run_scalar(&[]),
            Err(CoreError::ScheduleBatch(_))
        ));
        let mut mixed = WideHarness::schedules(&sys.network, &sys.env_config, 1, 50, 2);
        mixed.push(Schedule::random(&sys.network, &sys.env_config, 9, 60));
        assert!(matches!(
            h.try_run(&mixed),
            Err(CoreError::ScheduleBatch(_))
        ));
        assert!(matches!(
            h.try_run_scalar(&mixed),
            Err(CoreError::ScheduleBatch(_))
        ));
        // Capacity: 65 schedules overflow the single-word backend but fit
        // the default auto-width path.
        let many = WideHarness::schedules(&sys.network, &sys.env_config, 1, 20, 65);
        assert!(matches!(
            h.try_run_backend(&many, Backend::Wide1),
            Err(CoreError::ScheduleBatch(_))
        ));
        assert_eq!(h.try_run(&many).unwrap().trials(), 65);
    }

    #[test]
    fn wide_and_scalar_mc_agree_exactly() {
        let sys = paper_example(Config::ActiveAntiTokens).unwrap();
        let h = WideHarness::new(&sys.network, sys.output_channel);
        let scheds = WideHarness::schedules(&sys.network, &sys.env_config, 5, 400, 6);
        let wide = h.run(&scheds);
        let scalar = h.run_scalar(&scheds);
        assert_eq!(wide.per_lane, scalar.per_lane);
        assert!(wide.mean() > 0.1 && wide.mean() < 1.0, "{}", wide.mean());
    }

    #[test]
    fn mc_stats_mean_and_stddev() {
        let s = McStats {
            cycles: 10,
            per_lane: vec![0.2, 0.4],
        };
        assert!((s.mean() - 0.3).abs() < 1e-12);
        assert!((s.stddev() - (0.02f64).sqrt()).abs() < 1e-12);
        let one = McStats {
            cycles: 10,
            per_lane: vec![0.5],
        };
        assert_eq!(one.stddev(), 0.0);
    }

    #[test]
    fn stimulus_path_matches_schedule_path_exactly() {
        // The streaming producer/consumer pair (generate_stimulus +
        // try_run_stim) must be bit-identical to the batch path (schedules
        // + try_run) for every width and for blocked execution.
        let sys = paper_example(Config::ActiveAntiTokens).unwrap();
        let h = WideHarness::new(&sys.network, sys.output_channel);
        let (seed, cycles, lanes) = (21u64, 300usize, 70usize);
        let scheds = WideHarness::schedules(&sys.network, &sys.env_config, seed, cycles, lanes);
        let batch = h.try_run(&scheds).unwrap();
        for width in [2usize, 4, 8] {
            let stim = h
                .generate_stimulus(&sys.network, &sys.env_config, seed, cycles, lanes, width)
                .unwrap();
            for budget in [usize::MAX, 256] {
                let plan = h.program().block_plan(width, budget);
                let streamed = h.try_run_stim(&stim, lanes, &plan).unwrap();
                assert_eq!(
                    streamed.per_lane, batch.per_lane,
                    "width {width} budget {budget}"
                );
            }
        }
    }

    #[test]
    fn try_run_stim_rejects_bad_lane_counts() {
        let sys = paper_example(Config::ActiveAntiTokens).unwrap();
        let h = WideHarness::new(&sys.network, sys.output_channel);
        let stim = h
            .generate_stimulus(&sys.network, &sys.env_config, 3, 50, 64, 1)
            .unwrap();
        let plan = h.program().block_plan(1, usize::MAX);
        assert!(matches!(
            h.try_run_stim(&stim, 0, &plan),
            Err(CoreError::ScheduleBatch(_))
        ));
        assert!(matches!(
            h.try_run_stim(&stim, 65, &plan),
            Err(CoreError::ScheduleBatch(_))
        ));
    }

    #[test]
    fn dispatch_picks_sane_widths() {
        let sys = paper_example(Config::ActiveAntiTokens).unwrap();
        let h = WideHarness::new(&sys.network, sys.output_channel);
        let p = h.program();
        // The paper example's tape is tiny, so trials drive the choice.
        assert_eq!(dispatch_backend(p, 1), Backend::Wide1);
        assert_eq!(dispatch_backend(p, LANES), Backend::Wide1);
        assert_eq!(dispatch_backend(p, LANES + 1), Backend::Wide2);
        assert_eq!(dispatch_backend(p, 4 * LANES + 1), Backend::Wide8);
        assert_eq!(dispatch_backend(p, 100_000), Backend::Wide8);
        // Never scalar, and the choice always holds the trials it is asked
        // about (or is the widest backend).
        for trials in [1, 63, 64, 65, 500, 512, 513] {
            let b = dispatch_backend(p, trials);
            assert!(b != Backend::Scalar);
            assert!(b.lanes() >= trials.min(MAX_TRIALS_PER_RUN));
        }
    }

    #[test]
    fn backend_sel_parses_auto_and_fixed() {
        assert_eq!(BackendSel::parse("auto"), Some(BackendSel::Auto));
        assert_eq!(
            BackendSel::parse("wide4"),
            Some(BackendSel::Fixed(Backend::Wide4))
        );
        assert_eq!(BackendSel::parse("nope"), None);
        assert_eq!(BackendSel::Auto.label(), "auto");
        assert_eq!(BackendSel::Fixed(Backend::Scalar).label(), "scalar");
        assert_eq!(BackendSel::default(), BackendSel::Auto);
    }

    #[test]
    fn wide_mc_reproduces_table1_ordering() {
        // The wide Monte-Carlo backend must reproduce the Table 1 shape:
        // active anti-tokens beat the lazy join clearly, averaged over many
        // independent schedules.
        let mut means = Vec::new();
        for config in [Config::ActiveAntiTokens, Config::NoEarlyEval] {
            let sys = paper_example(config).unwrap();
            let h = WideHarness::new(&sys.network, sys.output_channel);
            let scheds = WideHarness::schedules(&sys.network, &sys.env_config, 11, 1500, 32);
            means.push(h.run(&scheds).mean());
        }
        assert!(
            means[0] > means[1] * 1.1,
            "active {} should beat lazy {}",
            means[0],
            means[1]
        );
    }
}
