//! Property tests for the sharded Monte-Carlo experiment engine: the
//! shard/seed/reduce pipeline must be indistinguishable from driving the
//! 64-lane words directly, for any trial count and any thread count.

use elastic_bench::exp::{
    effective_threads, run_experiment, run_experiment_backend, run_experiment_opts,
    run_experiment_streaming, shards, shards_for, EngineOpts, Experiment, SystemSpec,
};
use elastic_bench::{Backend, BackendSel, WideHarness};
use elastic_core::sim::{EnvConfig, SinkCfg, SourceCfg};
use elastic_core::systems::linear_pipeline;
use elastic_netlist::wide::LANES;
use proptest::prelude::*;

/// A small but non-trivial environment: throttled source, back-pressuring
/// and killing sink, so schedules actually differ between seeds.
fn stress_env() -> EnvConfig {
    EnvConfig {
        default_source: SourceCfg {
            rate: 0.8,
            ..Default::default()
        },
        default_sink: SinkCfg {
            stop_prob: 0.25,
            kill_prob: 0.1,
        },
        ..Default::default()
    }
}

fn pipeline_experiment(trials: usize, seed: u64, cycles: usize) -> Experiment {
    let (network, _, output) = linear_pipeline(2, 1).unwrap();
    Experiment {
        label: format!("prop/{trials}/{seed}"),
        system: SystemSpec::Custom { network, output },
        env: stress_env(),
        cycles,
        trials,
        seed,
    }
}

/// Reference path: drive each 64-lane word directly through
/// `WideHarness::run` (no worker pool, no cursor, no reduction) and flatten
/// in seed order.
fn direct_per_lane(exp: &Experiment) -> Vec<f64> {
    let (net, out) = exp.system.build().unwrap();
    let h = WideHarness::new(&net, out);
    shards(exp.trials, exp.seed)
        .iter()
        .flat_map(|s| {
            let scheds = WideHarness::schedules(&net, &exp.env, s.seed, exp.cycles, s.lanes);
            h.run(&scheds).per_lane
        })
        .collect()
}

proptest! {
    /// Sharded `trials = N` reproduces the direct single-word runs exactly
    /// for the covered lanes — including `N < 64` and `N % 64 != 0`, where
    /// the final partial word's dead lanes must contribute nothing.
    #[test]
    fn sharded_equals_direct_wide_runs(n in 1usize..150, seed in 0u64..1000) {
        let exp = pipeline_experiment(n, seed, 30);
        let res = run_experiment(&exp, 3).unwrap();
        prop_assert_eq!(res.stats.trials(), n);
        let direct = direct_per_lane(&exp);
        prop_assert_eq!(&res.stats.per_lane, &direct);
        // Means agree exactly, not just approximately: same summands, same
        // order.
        let direct_mean = direct.iter().sum::<f64>() / direct.len() as f64;
        prop_assert_eq!(res.stats.mean(), direct_mean);
    }

    /// Per-shard seeding is a pure function of (base seed, shard index):
    /// every thread count flattens to the same per-lane vector.
    #[test]
    fn seeding_is_deterministic_across_thread_counts(
        n in 1usize..200,
        seed in 0u64..1000,
        threads in 2usize..6,
    ) {
        let exp = pipeline_experiment(n, seed, 25);
        let reference = run_experiment(&exp, 1).unwrap();
        let multi = run_experiment(&exp, threads).unwrap();
        prop_assert_eq!(&reference.stats.per_lane, &multi.stats.per_lane);
        prop_assert_eq!(reference.stats.cycles, multi.stats.cycles);
    }

    /// The shard partition itself: covers exactly `seed..seed+n` in order,
    /// all words full except possibly the last — for the classic 64-lane
    /// chunking and every wider backend chunk size.
    #[test]
    fn shard_partition_is_exact(n in 1usize..5000, seed in 0u64..u64::MAX / 2) {
        let sh = shards(n, seed);
        prop_assert_eq!(sh.len(), n.div_ceil(LANES));
        for chunk in [LANES, 2 * LANES, 4 * LANES, 8 * LANES] {
            let sh = shards_for(n, seed, chunk);
            prop_assert_eq!(sh.len(), n.div_ceil(chunk));
            let mut next = seed;
            for (i, s) in sh.iter().enumerate() {
                prop_assert_eq!(s.index, i);
                prop_assert_eq!(s.seed, next);
                let full = i + 1 < sh.len();
                prop_assert!(if full { s.lanes == chunk } else { (1..=chunk).contains(&s.lanes) });
                next += s.lanes as u64;
            }
            prop_assert_eq!(next, seed + n as u64);
        }
    }

    /// Satellite (c): a `PackedStimulus`-driven run reproduces the
    /// `wide_inputs_at`-driven (per-cycle allocation) path bit-exactly for
    /// any shard size — the two stimulus paths execute the identical
    /// optimized program, so the per-lane rate vectors must be equal, not
    /// just close.
    #[test]
    fn packed_runs_equal_unpacked_runs(n in 1usize..150, seed in 0u64..1000) {
        let exp = pipeline_experiment(n, seed, 30);
        let (net, out) = exp.system.build().unwrap();
        let h = WideHarness::new(&net, out);
        // Packed, auto-width multi-word path (what campaigns run).
        let packed: Vec<f64> = shards_for(n, seed, 8 * LANES)
            .iter()
            .flat_map(|s| {
                let scheds = WideHarness::schedules(&net, &exp.env, s.seed, exp.cycles, s.lanes);
                h.run(&scheds).per_lane
            })
            .collect();
        // Unpacked single-word reference (pre-PR4 stimulus path).
        let unpacked: Vec<f64> = shards(n, seed)
            .iter()
            .flat_map(|s| {
                let scheds = WideHarness::schedules(&net, &exp.env, s.seed, exp.cycles, s.lanes);
                h.run_unpacked(&scheds).per_lane
            })
            .collect();
        prop_assert_eq!(&packed, &unpacked);
        // And the sharded engine agrees with both on every backend width.
        let engine = run_experiment_backend(&exp, 3, Backend::Wide4).unwrap();
        prop_assert_eq!(&engine.stats.per_lane, &packed);
    }

    /// Tentpole invariant: the streaming pipeline is bit-identical to the
    /// direct reference for every queue depth, cache-block budget, thread
    /// count, and backend (runtime-dispatched or forced) — streaming is an
    /// execution strategy, never a semantic knob.
    #[test]
    fn streaming_is_invariant_under_queue_block_and_backend(
        n in 1usize..150,
        seed in 0u64..500,
        threads in 1usize..5,
    ) {
        let exp = pipeline_experiment(n, seed, 30);
        let direct = direct_per_lane(&exp);
        for queue in [1usize, 2, 8] {
            for block_bytes in [usize::MAX, 4096, 64] {
                for backend in [
                    BackendSel::Auto,
                    BackendSel::Fixed(Backend::Wide1),
                    BackendSel::Fixed(Backend::Wide8),
                ] {
                    let opts = EngineOpts { threads, queue, backend, block_bytes };
                    let res = run_experiment_opts(&exp, &opts).unwrap();
                    prop_assert_eq!(
                        &res.stats.per_lane, &direct,
                        "queue={} block={} backend={}",
                        queue, block_bytes, opts.backend.label()
                    );
                }
            }
        }
    }

    /// The partial-result stream is the final result: partials arrive in
    /// shard-index order, exactly once each, and their concatenation is the
    /// reduced per-lane vector.
    #[test]
    fn partial_stream_concatenates_to_the_batch_result(
        n in 1usize..200,
        seed in 0u64..500,
        queue in 1usize..4,
    ) {
        let exp = pipeline_experiment(n, seed, 25);
        let opts = EngineOpts { threads: 3, queue, ..EngineOpts::default() };
        let mut streamed: Vec<f64> = Vec::new();
        let mut indices: Vec<usize> = Vec::new();
        let res = run_experiment_streaming(&exp, &opts, |i, s| {
            indices.push(i);
            streamed.extend_from_slice(&s.per_lane);
        }).unwrap();
        prop_assert_eq!(&indices, &(0..indices.len()).collect::<Vec<_>>());
        prop_assert_eq!(&streamed, &res.stats.per_lane);
        prop_assert_eq!(&res.stats.per_lane, &direct_per_lane(&exp));
    }
}

/// Satellite regression: a single-trial campaign must report finite
/// statistics (the `n − 1` sample-variance divisor degenerates at one
/// trial) and serialize to JSON without any `NaN`/`inf` literal.
#[test]
fn single_trial_campaign_has_finite_stats_and_clean_json() {
    use elastic_bench::exp::CampaignReport;
    let exp = pipeline_experiment(1, 42, 50);
    let res = run_experiment(&exp, 2).unwrap();
    assert_eq!(res.stats.trials(), 1);
    assert!(res.stats.mean().is_finite());
    assert_eq!(
        res.stats.stddev(),
        0.0,
        "sample sd of one trial is 0, not NaN"
    );
    assert_eq!(
        res.stats.ci95(),
        0.0,
        "CI half-width of one trial is 0, not NaN"
    );
    assert!(res.summary().chars().all(|c| c != 'N'), "{}", res.summary());
    let report = CampaignReport {
        name: "trials=1".into(),
        points: vec![res],
        ..Default::default()
    };
    let json = report.to_json();
    assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    assert!(json.contains("\"sd\": 0.000000"), "{json}");
    assert!(json.contains("\"ci95\": 0.000000"), "{json}");
}

/// Satellite regression (the BENCH_pr4.json scaling bug): an oversubscribed
/// thread request no longer spawns more workers than the host can run or
/// the shard count can feed. The request is honored in the report
/// (`requested_threads`) but the engine clamps the spawned pool, and the
/// results are bit-identical to the single-threaded run.
#[test]
fn oversubscribed_thread_requests_are_clamped() {
    // 80 trials on the auto-dispatched width collapse to very few shards;
    // request far more threads than either the shards or this machine.
    let exp = pipeline_experiment(80, 7, 25);
    let opts = EngineOpts {
        threads: 64,
        ..EngineOpts::default()
    };
    let res = run_experiment_opts(&exp, &opts).unwrap();
    assert_eq!(res.requested_threads, 64);
    assert_eq!(res.threads, effective_threads(64, res.shards));
    assert!(
        res.threads <= res.shards,
        "spawned {} workers for {} shards",
        res.threads,
        res.shards
    );
    let avail = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    assert!(
        res.threads <= avail,
        "spawned {} workers on a {avail}-way host",
        res.threads
    );
    let single = run_experiment(&exp, 1).unwrap();
    assert_eq!(single.stats.per_lane, res.stats.per_lane);

    // The clamp is monotone and bounded for any request.
    for requested in [1usize, 2, 7, 64, 1024] {
        let eff = effective_threads(requested, 4);
        assert!(eff >= 1 && eff <= 4.min(avail.max(1)));
        assert!(eff <= requested);
    }
    assert_eq!(effective_threads(0, 4), 1, "zero requests still run");
    assert_eq!(effective_threads(8, 0), 1, "zero shards still spawn one");
}

/// The generated-topology system spec plugs into the Monte-Carlo engine
/// like any other system: deterministic per-lane results for any thread
/// count, using the topology's own environment.
#[test]
fn generated_system_spec_runs_in_the_engine() {
    use elastic_core::gen::{self, TopoParams};
    let params = TopoParams::sample(3);
    let sys = gen::generate(&params).unwrap();
    let exp = Experiment {
        label: "gen/3".into(),
        system: SystemSpec::Generated(params),
        env: sys.env.clone(),
        cycles: 60,
        trials: 70,
        seed: 9,
    };
    let one = run_experiment(&exp, 1).unwrap();
    let multi = run_experiment(&exp, 3).unwrap();
    assert_eq!(one.stats.per_lane, multi.stats.per_lane);
    assert_eq!(one.stats.trials(), 70);
}
