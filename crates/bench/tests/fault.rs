//! Fault-injection equivalence and regression tests.
//!
//! 1. **Lane equivalence** (proptest): a wide backend running lane *k*
//!    with a per-lane fault mask must be bit-identical — every observed
//!    rail, every cycle — to a scalar netlist run of trial *k* with the
//!    same fault armed on its schedule, across word widths `W ∈
//!    {1,2,4,8}`, the plain and cache-blocked tape paths, and the
//!    schedule-pack versus fused-generate stimulus producers.
//! 2. **Empty-fault regression**: a campaign with no fault injected must
//!    reproduce the committed `BENCH_pr6.json` means bit-identically —
//!    the PR7 fault plumbing (fault-arm inputs, stimulus fault column,
//!    generalized worker pipeline) is strictly pay-for-what-you-inject.
//!
//! Counterexample seeds shrunk during development are pinned in
//! `proptest-regressions/fault.txt` and replayed before the random phase.

use elastic_bench::exp::{ee_prob_experiment, run_experiment};
use elastic_bench::fault::FAULT_CLASSES;
use elastic_bench::{WideHarness, MC_DATA_WIDTH};
use elastic_core::compile::{compile, CompileOptions};
use elastic_core::gen::{generate, injectable_site, TopoParams};
use elastic_core::systems::Config;
use elastic_core::verify::{NetlistTestbench, PackedStimulus};
use elastic_netlist::levelize::Program;
use elastic_netlist::opt::optimize_observed;
use elastic_netlist::sim::Simulator;
use elastic_netlist::wide::{WideSim, LANES};
use elastic_netlist::NetId;
use proptest::prelude::*;

const CYCLES: usize = 48;

/// One fully prepared faulted system: observed-cone netlist, testbench
/// with the fault-arm input resolved, tape program, armed schedules and
/// the observed rail set (site V⁺S⁺V⁻S⁻ + output V⁺S⁺V⁻, deduplicated).
struct Prepared {
    tb: NetlistTestbench,
    prog: Program,
    rails: Vec<NetId>,
    schedules: Vec<elastic_core::verify::Schedule>,
    windows: Vec<(usize, usize)>,
    sys: elastic_core::gen::GeneratedSystem,
    seed: u64,
    scalar: Simulator,
}

/// Builds a faulted generated system with per-lane armed windows, or
/// `None` when the sampled topology has no effective site for the class.
fn prepare(topo: u64, class: &str, seed: u64, lanes: usize, len: usize) -> Option<Prepared> {
    let sys = generate(&TopoParams::sample(topo)).ok()?;
    let (fault, eff) = injectable_site(&sys, class, seed, CYCLES)?;
    let opt = compile(
        &sys.network,
        &CompileOptions {
            lint: false,
            data_width: MC_DATA_WIDTH,
            nondet_merge: false,
            optimize: true,
            fault: Some(fault.clone()),
        },
    )
    .ok()?;
    let site_name = fault.channel().expect("rail fault").to_string();
    let site = sys
        .network
        .channels()
        .find(|&c| sys.network.channel(c).name == site_name)
        .expect("existing channel");
    let s = &opt.channels[site.index()];
    let o = &opt.channels[sys.output_channel.index()];
    let mut observe: Vec<NetId> = Vec::new();
    for id in [o.vp, o.sp, o.vn, s.vp, s.sp, s.vn, s.sn] {
        if !observe.contains(&id) {
            observe.push(id);
        }
    }
    let (obs, map) = optimize_observed(&opt.netlist, &observe).ok()?;
    let rails: Vec<NetId> = observe
        .iter()
        .map(|&id| map[id.index()].expect("observed rails survive"))
        .collect();
    let tb = NetlistTestbench::with_fault(&sys.network, &obs, MC_DATA_WIDTH, &fault).ok()?;
    assert!(tb.fault_col().is_some(), "rail fault resolves an arm input");
    let (prog, _) = Program::compile_optimized(&obs).ok()?;
    let scalar = Simulator::new(&obs).ok()?;
    let mut schedules = WideHarness::schedules(&sys.network, &sys.env, seed, CYCLES, lanes);
    let mut windows = Vec::with_capacity(lanes);
    for (k, sched) in schedules.iter_mut().enumerate() {
        // Independent per-lane instances: staggered start cycles, clamped
        // to the horizon.
        let start = (eff + k % 5).min(CYCLES - len);
        sched.arm_fault(start, len).expect("window fits");
        windows.push((start, len));
    }
    Some(Prepared {
        tb,
        prog,
        rails,
        schedules,
        windows,
        sys,
        seed,
        scalar,
    })
}

/// Scalar reference: runs trial `k`'s schedule (fault armed) through the
/// gate-level interpreter on the same observed netlist, recording every
/// observed rail each cycle.
fn scalar_trace(p: &Prepared, k: usize) -> Vec<Vec<bool>> {
    let mut sim = p.scalar.clone();
    (0..CYCLES as u64)
        .map(|t| {
            sim.cycle(&p.tb.inputs_at(&p.schedules[k], t))
                .expect("runs");
            p.rails.iter().map(|&r| sim.value(r)).collect()
        })
        .collect()
}

/// Wide path: packs all lanes (fault masks included) and records the same
/// rails per lane per cycle, on the plain or cache-blocked tape.
fn wide_trace<const W: usize>(
    p: &Prepared,
    stim: &PackedStimulus,
    blocked: bool,
) -> Vec<Vec<Vec<bool>>> {
    let mut sim: WideSim<W> = WideSim::from_program(p.prog.clone());
    sim.check_input_slots(stim.slots()).expect("slots");
    let plan = p.prog.block_plan(W, 4096);
    let lanes = p.schedules.len();
    let mut out = vec![Vec::with_capacity(CYCLES); lanes];
    for t in 0..CYCLES {
        if blocked {
            sim.cycle_packed_blocked(stim.slots(), stim.row(t), &plan);
        } else {
            sim.cycle_packed(stim.slots(), stim.row(t));
        }
        for (k, lane_out) in out.iter_mut().enumerate() {
            let (w, b) = (k / LANES, k % LANES);
            lane_out.push(
                p.rails
                    .iter()
                    .map(|&r| sim.word(r, w) >> b & 1 == 1)
                    .collect(),
            );
        }
    }
    out
}

proptest! {
    /// Wide lane *k* under a per-lane fault mask ≡ scalar run of trial
    /// *k* with the same fault — all rails, all cycles, every word width,
    /// plain and blocked tapes, and both stimulus producers.
    #[test]
    fn wide_fault_lane_equals_scalar_faulted_trial(
        topo in 0u64..500,
        class_idx in 0usize..5,
        lanes in 1usize..10,
        len in 1usize..4,
        wsel in 0usize..4,
    ) {
        let class = FAULT_CLASSES[class_idx];
        let Some(p) = prepare(topo, class, topo.wrapping_add(0xfa), lanes, len) else {
            return Err(TestCaseError::Reject);
        };
        let scalar: Vec<Vec<Vec<bool>>> = (0..lanes).map(|k| scalar_trace(&p, k)).collect();
        let width = [1usize, 2, 4, 8][wsel];
        let stim = PackedStimulus::pack(&p.tb, &p.schedules, width).expect("packs");
        // Stimulus-producer equivalence: the fused generate + per-lane
        // arm_fault path (the campaign's streaming producer) builds the
        // identical matrix to packing pre-armed schedules.
        let mut generated = PackedStimulus::generate(
            &p.tb, &p.sys.network, &p.sys.env, p.seed, lanes, CYCLES, width,
        ).expect("generates");
        let col = p.tb.fault_col().expect("fault col");
        for (k, &(start, wl)) in p.windows.iter().enumerate() {
            generated.arm_fault(col, k, start, wl).expect("arms");
        }
        prop_assert_eq!(&generated, &stim);
        for blocked in [false, true] {
            let wide = match width {
                1 => wide_trace::<1>(&p, &stim, blocked),
                2 => wide_trace::<2>(&p, &stim, blocked),
                4 => wide_trace::<4>(&p, &stim, blocked),
                _ => wide_trace::<8>(&p, &stim, blocked),
            };
            for k in 0..lanes {
                prop_assert_eq!(
                    &wide[k], &scalar[k],
                    "lane {} diverged (topo {}, class {}, W={}, blocked={})",
                    k, topo, class, width, blocked
                );
            }
        }
    }
}

/// Locates a file at the workspace root (walking up from this crate).
fn workspace_file(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .map(|a| a.join(name))
        .find(|p| p.is_file())
        .unwrap_or_else(|| panic!("{name} not found above {}", env!("CARGO_MANIFEST_DIR")))
}

/// Pulls `"key": value` out of one JSON point line (hand-rolled, like the
/// writers in this workspace).
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat).unwrap_or_else(|| panic!("{key} in {line}")) + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).expect("terminated");
    rest[..end].trim_matches('"')
}

#[test]
fn empty_fault_campaign_reproduces_bench_pr6_means() {
    // BENCH_pr6.json was produced by `campaign` at its defaults: 1024
    // trials x 2000 cycles, seed 1. Re-running those points through the
    // engine — which now carries the whole fault subsystem (fault-arm
    // inputs, stimulus fault column, generalized pipeline) with *no* fault
    // set — must reproduce every committed mean and standard deviation to
    // the last printed digit.
    let text = std::fs::read_to_string(workspace_file("BENCH_pr6.json")).expect("baseline");
    let mut checked = 0;
    // The bound_checks section also carries "point" keys — campaign points
    // are the lines that additionally report a mean.
    for line in text
        .lines()
        .filter(|l| l.contains("\"point\": ") && l.contains("\"mean\": "))
    {
        let label = field(line, "point");
        let (p_part, tag) = label.split_once('/').expect("label shape");
        let p_i: f64 = p_part
            .strip_prefix("p_i=")
            .expect("label shape")
            .parse()
            .unwrap();
        let config = match tag {
            "early" => Config::ActiveAntiTokens,
            "lazy" => Config::NoEarlyEval,
            other => panic!("unknown config tag {other}"),
        };
        let trials: usize = field(line, "trials").parse().unwrap();
        let cycles: usize = field(line, "cycles").parse().unwrap();
        let exp = ee_prob_experiment(p_i, config, tag, cycles, trials, 1).expect("builds");
        let res = run_experiment(&exp, 2).expect("runs");
        assert_eq!(
            format!("{:.6}", res.stats.mean()),
            field(line, "mean"),
            "{label}: mean drifted from the PR6 baseline"
        );
        assert_eq!(
            format!("{:.6}", res.stats.stddev()),
            field(line, "sd"),
            "{label}: stddev drifted from the PR6 baseline"
        );
        checked += 1;
    }
    assert_eq!(checked, 6, "BENCH_pr6.json carries six campaign points");
}
