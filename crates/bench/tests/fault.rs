//! Fault-injection equivalence and regression tests.
//!
//! 1. **Lane equivalence** (proptest): a wide backend running lane *k*
//!    with a per-lane fault mask must be bit-identical — every observed
//!    rail, every cycle — to a scalar netlist run of trial *k* with the
//!    same fault armed on its schedule, across word widths `W ∈
//!    {1,2,4,8}`, the plain and cache-blocked tape paths, and the
//!    schedule-pack versus fused-generate stimulus producers.
//! 2. **Empty-fault regression**: a campaign with no fault injected must
//!    reproduce the committed `BENCH_pr6.json` means bit-identically —
//!    the PR7 fault plumbing (fault-arm inputs, stimulus fault column,
//!    generalized worker pipeline) is strictly pay-for-what-you-inject.
//!
//! Counterexample seeds shrunk during development are pinned in
//! `proptest-regressions/fault.txt` and replayed before the random phase.

use elastic_bench::exp::{ee_prob_experiment, run_experiment};
use elastic_bench::fault::FAULT_CLASSES;
use elastic_bench::stabilize::PROCESS_CLASSES;
use elastic_bench::{WideHarness, MC_DATA_WIDTH};
use elastic_core::compile::{compile, CompileOptions, FaultInjection, FaultRail};
use elastic_core::fault::FaultProcess;
use elastic_core::gen::{generate, injectable_site, TopoParams};
use elastic_core::systems::Config;
use elastic_core::verify::{NetlistTestbench, PackedStimulus};
use elastic_core::CoreError;
use elastic_netlist::levelize::Program;
use elastic_netlist::opt::optimize_observed;
use elastic_netlist::sim::Simulator;
use elastic_netlist::wide::{WideSim, LANES};
use elastic_netlist::NetId;
use proptest::prelude::*;

const CYCLES: usize = 48;

/// One fully prepared faulted system: observed-cone netlist, testbench
/// with the fault-arm input resolved, tape program, armed schedules and
/// the observed rail set (site V⁺S⁺V⁻S⁻ + output V⁺S⁺V⁻, deduplicated).
struct Prepared {
    tb: NetlistTestbench,
    prog: Program,
    rails: Vec<NetId>,
    schedules: Vec<elastic_core::verify::Schedule>,
    windows: Vec<(usize, usize)>,
    /// `(site, lane, start, len)` of every armed process window
    /// (process-based preparations only).
    process_windows: Vec<(usize, usize, usize, usize)>,
    sys: elastic_core::gen::GeneratedSystem,
    seed: u64,
    scalar: Simulator,
}

/// Builds a faulted generated system with per-lane armed windows, or
/// `None` when the sampled topology has no effective site for the class.
fn prepare(topo: u64, class: &str, seed: u64, lanes: usize, len: usize) -> Option<Prepared> {
    let sys = generate(&TopoParams::sample(topo)).ok()?;
    let (fault, eff) = injectable_site(&sys, class, seed, CYCLES)?;
    let opt = compile(
        &sys.network,
        &CompileOptions {
            lint: false,
            data_width: MC_DATA_WIDTH,
            nondet_merge: false,
            optimize: true,
            fault: Some(fault.clone()),
            faults: vec![],
        },
    )
    .ok()?;
    let site_name = fault.channel().expect("rail fault").to_string();
    let site = sys
        .network
        .channels()
        .find(|&c| sys.network.channel(c).name == site_name)
        .expect("existing channel");
    let s = &opt.channels[site.index()];
    let o = &opt.channels[sys.output_channel.index()];
    let mut observe: Vec<NetId> = Vec::new();
    for id in [o.vp, o.sp, o.vn, s.vp, s.sp, s.vn, s.sn] {
        if !observe.contains(&id) {
            observe.push(id);
        }
    }
    let (obs, map) = optimize_observed(&opt.netlist, &observe).ok()?;
    let rails: Vec<NetId> = observe
        .iter()
        .map(|&id| map[id.index()].expect("observed rails survive"))
        .collect();
    let tb = NetlistTestbench::with_fault(&sys.network, &obs, MC_DATA_WIDTH, &fault).ok()?;
    assert!(tb.fault_col().is_some(), "rail fault resolves an arm input");
    let (prog, _) = Program::compile_optimized(&obs).ok()?;
    let scalar = Simulator::new(&obs).ok()?;
    let mut schedules = WideHarness::schedules(&sys.network, &sys.env, seed, CYCLES, lanes);
    let mut windows = Vec::with_capacity(lanes);
    for (k, sched) in schedules.iter_mut().enumerate() {
        // Independent per-lane instances: staggered start cycles, clamped
        // to the horizon.
        let start = (eff + k % 5).min(CYCLES - len);
        sched.arm_fault(start, len).expect("window fits");
        windows.push((start, len));
    }
    Some(Prepared {
        tb,
        prog,
        rails,
        schedules,
        windows,
        process_windows: Vec::new(),
        sys,
        seed,
        scalar,
    })
}

/// Scalar reference: runs trial `k`'s schedule (fault armed) through the
/// gate-level interpreter on the same observed netlist, recording every
/// observed rail each cycle.
fn scalar_trace(p: &Prepared, k: usize) -> Vec<Vec<bool>> {
    let mut sim = p.scalar.clone();
    (0..CYCLES as u64)
        .map(|t| {
            sim.cycle(&p.tb.inputs_at(&p.schedules[k], t))
                .expect("runs");
            p.rails.iter().map(|&r| sim.value(r)).collect()
        })
        .collect()
}

/// Wide path: packs all lanes (fault masks included) and records the same
/// rails per lane per cycle, on the plain or cache-blocked tape.
fn wide_trace<const W: usize>(
    p: &Prepared,
    stim: &PackedStimulus,
    blocked: bool,
) -> Vec<Vec<Vec<bool>>> {
    let mut sim: WideSim<W> = WideSim::from_program(p.prog.clone());
    sim.check_input_slots(stim.slots()).expect("slots");
    let plan = p.prog.block_plan(W, 4096);
    let lanes = p.schedules.len();
    let mut out = vec![Vec::with_capacity(CYCLES); lanes];
    for t in 0..CYCLES {
        if blocked {
            sim.cycle_packed_blocked(stim.slots(), stim.row(t), &plan);
        } else {
            sim.cycle_packed(stim.slots(), stim.row(t));
        }
        for (k, lane_out) in out.iter_mut().enumerate() {
            let (w, b) = (k / LANES, k % LANES);
            lane_out.push(
                p.rails
                    .iter()
                    .map(|&r| sim.word(r, w) >> b & 1 == 1)
                    .collect(),
            );
        }
    }
    out
}

proptest! {
    /// Wide lane *k* under a per-lane fault mask ≡ scalar run of trial
    /// *k* with the same fault — all rails, all cycles, every word width,
    /// plain and blocked tapes, and both stimulus producers.
    #[test]
    fn wide_fault_lane_equals_scalar_faulted_trial(
        topo in 0u64..500,
        class_idx in 0usize..5,
        lanes in 1usize..10,
        len in 1usize..4,
        wsel in 0usize..4,
    ) {
        let class = FAULT_CLASSES[class_idx];
        let Some(p) = prepare(topo, class, topo.wrapping_add(0xfa), lanes, len) else {
            return Err(TestCaseError::Reject);
        };
        let scalar: Vec<Vec<Vec<bool>>> = (0..lanes).map(|k| scalar_trace(&p, k)).collect();
        let width = [1usize, 2, 4, 8][wsel];
        let stim = PackedStimulus::pack(&p.tb, &p.schedules, width).expect("packs");
        // Stimulus-producer equivalence: the fused generate + per-lane
        // arm_fault path (the campaign's streaming producer) builds the
        // identical matrix to packing pre-armed schedules.
        let mut generated = PackedStimulus::generate(
            &p.tb, &p.sys.network, &p.sys.env, p.seed, lanes, CYCLES, width,
        ).expect("generates");
        let col = p.tb.fault_col().expect("fault col");
        for (k, &(start, wl)) in p.windows.iter().enumerate() {
            generated.arm_fault(col, k, start, wl).expect("arms");
        }
        prop_assert_eq!(&generated, &stim);
        for blocked in [false, true] {
            let wide = match width {
                1 => wide_trace::<1>(&p, &stim, blocked),
                2 => wide_trace::<2>(&p, &stim, blocked),
                4 => wide_trace::<4>(&p, &stim, blocked),
                _ => wide_trace::<8>(&p, &stim, blocked),
            };
            for k in 0..lanes {
                prop_assert_eq!(
                    &wide[k], &scalar[k],
                    "lane {} diverged (topo {}, class {}, W={}, blocked={})",
                    k, topo, class, width, blocked
                );
            }
        }
    }
}

/// Builds a small instance of the named fault-process class on `sys`, or
/// `None` when the sampled topology offers no usable site (mirrors the
/// campaign engine's per-class construction at test scale).
fn test_process(
    sys: &elastic_core::gen::GeneratedSystem,
    class: &str,
    seed: u64,
) -> Option<FaultProcess> {
    let process = match class {
        "periodic" => {
            let (fault, eff) = injectable_site(sys, "rail_flip", seed, CYCLES)?;
            FaultProcess::Periodic {
                fault,
                period: 12,
                duty: 2,
                start: eff.min(CYCLES - 2),
            }
        }
        "sustained" => {
            let (fault, eff) = injectable_site(sys, "stuck_at_0", seed, CYCLES)?;
            FaultProcess::Sustained {
                fault,
                start: eff,
                len: 8.min(CYCLES - eff),
            }
        }
        "correlated" => {
            let (fault, _) = injectable_site(sys, "rail_flip", seed, CYCLES)?;
            let first = fault.channel()?.to_string();
            let second = sys
                .network
                .channels()
                .map(|c| sys.network.channel(c).name.clone())
                .find(|n| *n != first);
            let site2 = match second {
                Some(channel) => FaultInjection::RailFlip {
                    channel,
                    rail: FaultRail::Vp,
                },
                None => FaultInjection::RailFlip {
                    channel: first,
                    rail: FaultRail::Sp,
                },
            };
            FaultProcess::Correlated {
                faults: vec![fault, site2],
                bursts: 2,
                len: 4,
            }
        }
        "byzantine" => {
            let channel = sys
                .network
                .channels()
                .map(|c| sys.network.channel(c))
                .find(|ch| !ch.passive)
                .map(|ch| ch.name.clone())?;
            FaultProcess::Byzantine {
                channel,
                period: 12,
                duty: 2,
            }
        }
        other => panic!("unknown process class {other}"),
    };
    process.validate(&sys.network, CYCLES).ok()?;
    Some(process)
}

/// Prepares a system compiled with one corruption gate per process site,
/// schedules armed with lane *k*'s process-instance windows on every
/// site, and the observed rail set (all site rails + output rails).
fn prepare_process(topo: u64, class: &str, seed: u64, lanes: usize) -> Option<Prepared> {
    let sys = generate(&TopoParams::sample(topo)).ok()?;
    let process = test_process(&sys, class, seed)?;
    let sites = process.sites();
    let opt = compile(
        &sys.network,
        &CompileOptions {
            lint: false,
            data_width: MC_DATA_WIDTH,
            nondet_merge: false,
            optimize: true,
            fault: None,
            faults: sites.clone(),
        },
    )
    .ok()?;
    let o = &opt.channels[sys.output_channel.index()];
    let mut observe: Vec<NetId> = vec![o.vp, o.sp, o.vn];
    for site in &sites {
        let name = site.channel().expect("rail fault").to_string();
        let chan = sys
            .network
            .channels()
            .find(|&c| sys.network.channel(c).name == name)
            .expect("existing channel");
        let s = &opt.channels[chan.index()];
        for id in [s.vp, s.sp, s.vn, s.sn] {
            if !observe.contains(&id) {
                observe.push(id);
            }
        }
    }
    let (obs, map) = optimize_observed(&opt.netlist, &observe).ok()?;
    let rails: Vec<NetId> = observe
        .iter()
        .map(|&id| map[id.index()].expect("observed rails survive"))
        .collect();
    let tb = NetlistTestbench::with_faults(&sys.network, &obs, MC_DATA_WIDTH, &sites).ok()?;
    assert_eq!(tb.fault_cols().len(), sites.len(), "one column per site");
    let (prog, _) = Program::compile_optimized(&obs).ok()?;
    let scalar = Simulator::new(&obs).ok()?;
    let mut schedules = WideHarness::schedules(&sys.network, &sys.env, seed, CYCLES, lanes);
    let mut process_windows = Vec::new();
    for (k, sched) in schedules.iter_mut().enumerate() {
        for (site, site_windows) in process.windows(seed, k, CYCLES).iter().enumerate() {
            for &(start, len) in site_windows {
                sched.arm_fault_site(site, start, len).expect("window fits");
                process_windows.push((site, k, start, len));
            }
        }
    }
    Some(Prepared {
        tb,
        prog,
        rails,
        schedules,
        windows: Vec::new(),
        process_windows,
        sys,
        seed,
        scalar,
    })
}

proptest! {
    /// Wide lane *k* running fault-process instance *k* ≡ scalar run of
    /// trial *k* with the same per-site windows armed on its schedule —
    /// all rails, all cycles, every word width, plain and blocked tapes,
    /// and both stimulus producers — for every process class.
    #[test]
    fn wide_process_lane_equals_scalar_process_trial(
        topo in 0u64..500,
        class_idx in 0usize..4,
        lanes in 1usize..10,
        wsel in 0usize..4,
    ) {
        let class = PROCESS_CLASSES[class_idx];
        let Some(p) = prepare_process(topo, class, topo.wrapping_add(0x9b), lanes) else {
            return Err(TestCaseError::Reject);
        };
        let scalar: Vec<Vec<Vec<bool>>> = (0..lanes).map(|k| scalar_trace(&p, k)).collect();
        let width = [1usize, 2, 4, 8][wsel];
        let stim = PackedStimulus::pack(&p.tb, &p.schedules, width).expect("packs");
        // Stimulus-producer equivalence: the campaign's fused generate +
        // per-site-column arm path builds the identical matrix to packing
        // pre-armed schedules.
        let mut generated = PackedStimulus::generate(
            &p.tb, &p.sys.network, &p.sys.env, p.seed, lanes, CYCLES, width,
        ).expect("generates");
        let cols = p.tb.fault_cols();
        for &(site, lane, start, len) in &p.process_windows {
            generated.arm_fault(cols[site], lane, start, len).expect("arms");
        }
        prop_assert_eq!(&generated, &stim);
        for blocked in [false, true] {
            let wide = match width {
                1 => wide_trace::<1>(&p, &stim, blocked),
                2 => wide_trace::<2>(&p, &stim, blocked),
                4 => wide_trace::<4>(&p, &stim, blocked),
                _ => wide_trace::<8>(&p, &stim, blocked),
            };
            for k in 0..lanes {
                prop_assert_eq!(
                    &wide[k], &scalar[k],
                    "lane {} diverged (topo {}, class {}, W={}, blocked={})",
                    k, topo, class, width, blocked
                );
            }
        }
    }
}

/// A zero-intensity process (periodic, duty 0) expands to no windows on
/// any lane, so the armed stimulus is byte-identical to the fault-free
/// one and every observed rail reproduces the fault-free trace
/// digit-for-digit — the process plumbing is strictly
/// pay-for-what-you-inject, exactly like the `BENCH_pr6.json` regression
/// below for the single-shot machinery.
#[test]
fn zero_intensity_process_is_fault_free_bit_for_bit() {
    /// Output-rail trace of one schedule on a compile of `sys` carrying
    /// `faults` corruption gates (none ever armed).
    fn output_trace(
        sys: &elastic_core::gen::GeneratedSystem,
        faults: Vec<FaultInjection>,
        seed: u64,
    ) -> Option<Vec<Vec<bool>>> {
        let gated = !faults.is_empty();
        let opt = compile(
            &sys.network,
            &CompileOptions {
                lint: false,
                data_width: MC_DATA_WIDTH,
                nondet_merge: false,
                optimize: true,
                fault: None,
                faults: faults.clone(),
            },
        )
        .ok()?;
        let o = &opt.channels[sys.output_channel.index()];
        let observe = [o.vp, o.sp, o.vn];
        let (obs, map) = optimize_observed(&opt.netlist, &observe).ok()?;
        let rails: Vec<NetId> = observe
            .iter()
            .map(|&id| map[id.index()].expect("survives"))
            .collect();
        let tb = if gated {
            NetlistTestbench::with_faults(&sys.network, &obs, MC_DATA_WIDTH, &faults).ok()?
        } else {
            NetlistTestbench::new(&sys.network, &obs, MC_DATA_WIDTH).ok()?
        };
        let sched = WideHarness::schedules(&sys.network, &sys.env, seed, CYCLES, 1).remove(0);
        let mut sim = Simulator::new(&obs).ok()?;
        Some(
            (0..CYCLES as u64)
                .map(|t| {
                    sim.cycle(&tb.inputs_at(&sched, t)).expect("runs");
                    rails.iter().map(|&r| sim.value(r)).collect()
                })
                .collect(),
        )
    }

    let mut checked = 0;
    for topo in 0u64..40 {
        let Ok(sys) = generate(&TopoParams::sample(topo)) else {
            continue;
        };
        let Some((fault, _)) = injectable_site(&sys, "rail_flip", topo, CYCLES) else {
            continue;
        };
        let process = FaultProcess::Periodic {
            fault,
            period: 12,
            duty: 0,
            start: 0,
        };
        process.validate(&sys.network, CYCLES).expect("valid");
        for lane in 0..4 {
            assert!(
                process
                    .windows(topo, lane, CYCLES)
                    .iter()
                    .all(Vec::is_empty),
                "duty 0 must arm nothing"
            );
            assert!(process.merged_windows(topo, lane, CYCLES).is_empty());
        }
        let Some(gated) = output_trace(&sys, process.sites(), topo.wrapping_add(0x9b)) else {
            continue;
        };
        let free =
            output_trace(&sys, vec![], topo.wrapping_add(0x9b)).expect("fault-free compiles");
        assert_eq!(
            gated, free,
            "topo {topo}: a never-armed corruption gate changed an observed rail"
        );
        checked += 1;
        if checked >= 5 {
            return;
        }
    }
    panic!("fewer than 5 topologies yielded a usable zero-intensity process");
}

/// Satellite-6 closure at the packed-stimulus layer: malformed process
/// arming surfaces as typed [`CoreError::FaultSite`] values — wrong
/// column, wrong lane, window past the horizon — never a panic, and the
/// testbench resolves exactly one column per site.
#[test]
fn packed_layer_rejects_bad_process_arming_typed() {
    let p = (0u64..200)
        .find_map(|topo| prepare_process(topo, "byzantine", 0x5e, 2))
        .expect("some topology supports a byzantine process");
    let cols = p.tb.fault_cols();
    assert_eq!(cols.len(), 2, "byzantine resolves two side columns");
    let mut stim =
        PackedStimulus::generate(&p.tb, &p.sys.network, &p.sys.env, p.seed, 2, CYCLES, 1)
            .expect("generates");
    for (err, label) in [
        (stim.arm_fault(cols[1] + 1, 0, 0, 1), "phantom column"),
        (stim.arm_fault(cols[0], 64, 0, 1), "phantom lane"),
        (stim.arm_fault(cols[0], 0, 0, 0), "empty window"),
        (stim.arm_fault(cols[0], 0, CYCLES - 1, 2), "past horizon"),
        (
            stim.arm_fault(cols[0], 0, usize::MAX, 2),
            "overflowing window",
        ),
    ] {
        match err {
            Err(CoreError::FaultSite(_)) => {}
            other => panic!("{label}: expected FaultSite, got {other:?}"),
        }
    }
}

/// Locates a file at the workspace root (walking up from this crate).
fn workspace_file(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .map(|a| a.join(name))
        .find(|p| p.is_file())
        .unwrap_or_else(|| panic!("{name} not found above {}", env!("CARGO_MANIFEST_DIR")))
}

/// Pulls `"key": value` out of one JSON point line (hand-rolled, like the
/// writers in this workspace).
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat).unwrap_or_else(|| panic!("{key} in {line}")) + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).expect("terminated");
    rest[..end].trim_matches('"')
}

#[test]
fn empty_fault_campaign_reproduces_bench_pr6_means() {
    // BENCH_pr6.json was produced by `campaign` at its defaults: 1024
    // trials x 2000 cycles, seed 1. Re-running those points through the
    // engine — which now carries the whole fault subsystem (fault-arm
    // inputs, stimulus fault column, generalized pipeline) with *no* fault
    // set — must reproduce every committed mean and standard deviation to
    // the last printed digit.
    let text = std::fs::read_to_string(workspace_file("BENCH_pr6.json")).expect("baseline");
    let mut checked = 0;
    // The bound_checks section also carries "point" keys — campaign points
    // are the lines that additionally report a mean.
    for line in text
        .lines()
        .filter(|l| l.contains("\"point\": ") && l.contains("\"mean\": "))
    {
        let label = field(line, "point");
        let (p_part, tag) = label.split_once('/').expect("label shape");
        let p_i: f64 = p_part
            .strip_prefix("p_i=")
            .expect("label shape")
            .parse()
            .unwrap();
        let config = match tag {
            "early" => Config::ActiveAntiTokens,
            "lazy" => Config::NoEarlyEval,
            other => panic!("unknown config tag {other}"),
        };
        let trials: usize = field(line, "trials").parse().unwrap();
        let cycles: usize = field(line, "cycles").parse().unwrap();
        let exp = ee_prob_experiment(p_i, config, tag, cycles, trials, 1).expect("builds");
        let res = run_experiment(&exp, 2).expect("runs");
        assert_eq!(
            format!("{:.6}", res.stats.mean()),
            field(line, "mean"),
            "{label}: mean drifted from the PR6 baseline"
        );
        assert_eq!(
            format!("{:.6}", res.stats.stddev()),
            field(line, "sd"),
            "{label}: stddev drifted from the PR6 baseline"
        );
        checked += 1;
    }
    assert_eq!(checked, 6, "BENCH_pr6.json carries six campaign points");
}
