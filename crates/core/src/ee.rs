//! Early-evaluation functions for join controllers.
//!
//! An early-evaluation (EE) function decides, from the *valid* bits of the
//! join inputs and from data bundled with a guard channel, whether the join
//! can fire before all inputs have arrived — e.g. a multiplexer that fires
//! as soon as the select and the selected operand are present.
//!
//! Sect. 4.3 of the paper requires every cofactor of EE with respect to the
//! data inputs to be **positive unate** in the valid bits: decisions are
//! based on the *presence* of inputs, never on their absence. The
//! representation below enforces that by construction: an [`EarlyEval`] is a
//! disjunction of [`EeTerm`]s, each requiring a guard pattern and a positive
//! conjunction of valid inputs.

use crate::error::CoreError;

/// One disjunct of an early-evaluation function: "if the guard data matches
/// `pattern`, fire once the `required` inputs are valid, forwarding the data
/// of input `select`".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EeTerm {
    /// Bits of the guard payload that participate in the match.
    pub guard_mask: u64,
    /// Required value of the masked guard payload.
    pub guard_value: u64,
    /// Indices of join inputs that must be valid for this term to fire
    /// (the guard input itself is always implicitly required).
    pub required: Vec<usize>,
    /// Join input whose payload becomes the output payload.
    pub select: usize,
}

/// An early-evaluation function: a guard input plus a list of terms.
///
/// # Example
///
/// The paper's module `W` multiplexes results from `I`, `F` and `M` under a
/// two-bit opcode `(s1,s2)` bundled with the control channel: `00 → I`,
/// `01 → F`, `1- → M`:
///
/// ```
/// use elastic_core::ee::{EarlyEval, EeTerm};
///
/// // Join inputs: 0 = control (guard), 1 = I, 2 = F, 3 = M.
/// // Guard payload bit 0 is s1, bit 1 is s2.
/// let ee = EarlyEval::new(0, vec![
///     EeTerm { guard_mask: 0b11, guard_value: 0b00, required: vec![1], select: 1 },
///     EeTerm { guard_mask: 0b11, guard_value: 0b10, required: vec![2], select: 2 },
///     EeTerm { guard_mask: 0b01, guard_value: 0b01, required: vec![3], select: 3 },
/// ]);
/// ee.validate(4).unwrap();
/// assert!(ee.is_positive_unate());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EarlyEval {
    /// Index of the guard (control) input whose payload steers the terms.
    pub guard_input: usize,
    /// The disjuncts.
    pub terms: Vec<EeTerm>,
}

impl EarlyEval {
    /// Creates an EE function.
    pub fn new(guard_input: usize, terms: Vec<EeTerm>) -> Self {
        EarlyEval { guard_input, terms }
    }

    /// Validates the function against a join with `num_inputs` inputs.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadEarlyEval`] when an index is out of range, a term
    /// selects an input it does not require, the term list is empty, or two
    /// terms can match the same guard value but select different inputs
    /// (a non-deterministic multiplexer).
    pub fn validate(&self, num_inputs: usize) -> Result<(), CoreError> {
        let fail = |msg: String| Err(CoreError::BadEarlyEval(msg));
        if self.guard_input >= num_inputs {
            return fail(format!("guard input {} out of range", self.guard_input));
        }
        if self.terms.is_empty() {
            return fail("term list is empty".into());
        }
        for (i, t) in self.terms.iter().enumerate() {
            if t.guard_value & !t.guard_mask != 0 {
                return fail(format!("term {i} has guard value bits outside its mask"));
            }
            for &r in &t.required {
                if r >= num_inputs {
                    return fail(format!("term {i} requires input {r} out of range"));
                }
            }
            if t.select >= num_inputs {
                return fail(format!("term {i} selects input {} out of range", t.select));
            }
            if t.select != self.guard_input && !t.required.contains(&t.select) {
                return fail(format!(
                    "term {i} selects input {} without requiring it",
                    t.select
                ));
            }
        }
        // Overlapping guard patterns must agree on the selected input,
        // otherwise the multiplexer is ambiguous.
        for (i, a) in self.terms.iter().enumerate() {
            for b in &self.terms[i + 1..] {
                let common = a.guard_mask & b.guard_mask;
                let compatible = a.guard_value & common == b.guard_value & common;
                if compatible && a.select != b.select {
                    return fail(format!(
                        "terms with overlapping guard patterns select different inputs \
                         ({} vs {})",
                        a.select, b.select
                    ));
                }
            }
        }
        Ok(())
    }

    /// Whether the function is positive unate in the valid bits.
    ///
    /// Always true: the representation only allows positive conjunctions of
    /// valid inputs, which is exactly the paper's Sect. 4.3 constraint. The
    /// method exists so call sites can state the obligation explicitly.
    pub fn is_positive_unate(&self) -> bool {
        true
    }

    /// Evaluates the function: given per-input *effective* valid bits and
    /// the guard payload, returns the first matching term index that can
    /// fire, or `None`.
    ///
    /// The guard input must itself be valid for anything to fire.
    pub fn eval(&self, valid: &[bool], guard_data: u64) -> Option<usize> {
        if !valid.get(self.guard_input).copied().unwrap_or(false) {
            return None;
        }
        self.terms.iter().position(|t| {
            guard_data & t.guard_mask == t.guard_value && t.required.iter().all(|&r| valid[r])
        })
    }

    /// The lazy (conventional) counterpart: fire only when *all* inputs are
    /// valid, regardless of the guard payload. Used when replacing an early
    /// join by a regular join (Table 1's "no early evaluation" row).
    pub fn lazy(num_inputs: usize) -> EarlyEval {
        EarlyEval {
            guard_input: 0,
            terms: vec![EeTerm {
                guard_mask: 0,
                guard_value: 0,
                required: (0..num_inputs).collect(),
                select: 0,
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mux3() -> EarlyEval {
        EarlyEval::new(
            0,
            vec![
                EeTerm {
                    guard_mask: 0b11,
                    guard_value: 0b00,
                    required: vec![1],
                    select: 1,
                },
                EeTerm {
                    guard_mask: 0b11,
                    guard_value: 0b10,
                    required: vec![2],
                    select: 2,
                },
                EeTerm {
                    guard_mask: 0b01,
                    guard_value: 0b01,
                    required: vec![3],
                    select: 3,
                },
            ],
        )
    }

    #[test]
    fn paper_w_function_validates() {
        mux3().validate(4).unwrap();
    }

    #[test]
    fn fires_with_only_selected_input() {
        let ee = mux3();
        // Guard valid, input 1 valid, others missing, opcode 00 -> term 0.
        assert_eq!(ee.eval(&[true, true, false, false], 0b00), Some(0));
        // Opcode s2=1,s1=0 (0b10) needs input 2.
        assert_eq!(ee.eval(&[true, true, false, false], 0b10), None);
        assert_eq!(ee.eval(&[true, false, true, false], 0b10), Some(1));
        // Opcode 1- needs input 3 (mask ignores s2).
        assert_eq!(ee.eval(&[true, false, false, true], 0b11), Some(2));
    }

    #[test]
    fn guard_must_be_valid() {
        let ee = mux3();
        assert_eq!(ee.eval(&[false, true, true, true], 0b00), None);
    }

    #[test]
    fn lazy_requires_all() {
        let ee = EarlyEval::lazy(3);
        ee.validate(3).unwrap();
        assert_eq!(ee.eval(&[true, true, true], 123), Some(0));
        assert_eq!(ee.eval(&[true, false, true], 123), None);
    }

    #[test]
    fn validation_catches_bad_indices() {
        let ee = EarlyEval::new(5, vec![]);
        assert!(matches!(ee.validate(3), Err(CoreError::BadEarlyEval(_))));
        let ee = EarlyEval::new(0, vec![]);
        assert!(ee.validate(3).is_err(), "empty term list");
        let ee = EarlyEval::new(
            0,
            vec![EeTerm {
                guard_mask: 0,
                guard_value: 1,
                required: vec![],
                select: 0,
            }],
        );
        assert!(ee.validate(1).is_err(), "value outside mask");
    }

    #[test]
    fn validation_catches_unrequired_select() {
        let ee = EarlyEval::new(
            0,
            vec![EeTerm {
                guard_mask: 0,
                guard_value: 0,
                required: vec![],
                select: 1,
            }],
        );
        assert!(ee.validate(2).is_err());
    }

    #[test]
    fn validation_catches_ambiguous_overlap() {
        let ee = EarlyEval::new(
            0,
            vec![
                EeTerm {
                    guard_mask: 0b01,
                    guard_value: 0b01,
                    required: vec![1],
                    select: 1,
                },
                EeTerm {
                    guard_mask: 0b10,
                    guard_value: 0b10,
                    required: vec![2],
                    select: 2,
                },
            ],
        );
        // Guard 0b11 matches both terms with different selects.
        assert!(ee.validate(3).is_err());
    }

    #[test]
    fn unateness_is_structural() {
        assert!(mux3().is_positive_unate());
    }
}
