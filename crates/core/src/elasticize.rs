//! The elasticization flow of Sect. 6: converting an ordinary synchronous
//! datapath into an elastic system.
//!
//! The paper describes an automated conversion: (1) every register becomes
//! a pair of latches with independent enables — an elastic buffer in the
//! control layer; (2) every functional block gets a join (or early join) at
//! its inputs and a fork at its outputs, omitted for single connections;
//! (3) variable-latency units get a go/done/ack controller; (4) controllers
//! are wired following the datapath connectivity.
//!
//! [`SyncDatapath`] is the synchronous-side description (registers, blocks,
//! environment ports and wires); [`elasticize`] performs the conversion and
//! returns the [`ElasticNetwork`] control layer.

use std::collections::HashMap;

use crate::ee::EarlyEval;
use crate::error::CoreError;
use crate::network::{CompId, ElasticNetwork};

/// Node kinds in a synchronous datapath description.
#[derive(Debug, Clone, PartialEq)]
pub enum SyncNode {
    /// Environment input port.
    Input,
    /// Environment output port.
    Output,
    /// A register (one pipeline stage of storage), optionally holding an
    /// initial value at reset.
    Register {
        /// Whether the register holds valid data at reset.
        init_valid: bool,
    },
    /// A functional block. `early` designates the inputs-enabling function
    /// when the designer opts into early evaluation for this block — "it is
    /// the designer's responsibility to decide when to use early joins".
    Block {
        /// Number of data inputs.
        inputs: usize,
        /// Optional early-evaluation function over those inputs.
        early: Option<EarlyEval>,
        /// Whether the block has data-dependent (variable) latency and
        /// needs a go/done/ack controller.
        variable_latency: bool,
    },
}

/// Identifier of a node in a [`SyncDatapath`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyncId(usize);

/// A synchronous datapath: nodes plus point-to-point wires. Fan-out is
/// expressed by wiring one node to several consumers; the elasticization
/// inserts the fork controllers.
#[derive(Debug, Clone, Default)]
pub struct SyncDatapath {
    name: String,
    nodes: Vec<(String, SyncNode)>,
    /// (from, to, to_input_port)
    wires: Vec<(SyncId, SyncId, usize)>,
}

impl SyncDatapath {
    /// Creates an empty description.
    pub fn new(name: impl Into<String>) -> Self {
        SyncDatapath {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds a node.
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] if a node with the same name already
    /// exists — node names seed the component names of [`elasticize`], so
    /// a clash here would produce a broken control network.
    pub fn node(&mut self, name: impl Into<String>, kind: SyncNode) -> Result<SyncId, CoreError> {
        let name = name.into();
        if self.nodes.iter().any(|(n, _)| *n == name) {
            return Err(CoreError::DuplicateName(name));
        }
        self.nodes.push((name, kind));
        Ok(SyncId(self.nodes.len() - 1))
    }

    /// Adds an environment input.
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] on a name clash.
    pub fn input(&mut self, name: impl Into<String>) -> Result<SyncId, CoreError> {
        self.node(name, SyncNode::Input)
    }

    /// Adds an environment output.
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] on a name clash.
    pub fn output(&mut self, name: impl Into<String>) -> Result<SyncId, CoreError> {
        self.node(name, SyncNode::Output)
    }

    /// Adds a register — elasticized into an EB controller driving the
    /// latch-pair with independent enables (paper Sect. 6, step 1).
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] on a name clash.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        init_valid: bool,
    ) -> Result<SyncId, CoreError> {
        self.node(name, SyncNode::Register { init_valid })
    }

    /// Adds a combinational single-cycle block.
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] on a name clash.
    pub fn block(&mut self, name: impl Into<String>, inputs: usize) -> Result<SyncId, CoreError> {
        self.node(
            name,
            SyncNode::Block {
                inputs,
                early: None,
                variable_latency: false,
            },
        )
    }

    /// Adds a block with early evaluation on its inputs.
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] on a name clash.
    pub fn early_block(
        &mut self,
        name: impl Into<String>,
        inputs: usize,
        early: EarlyEval,
    ) -> Result<SyncId, CoreError> {
        self.node(
            name,
            SyncNode::Block {
                inputs,
                early: Some(early),
                variable_latency: false,
            },
        )
    }

    /// Adds a variable-latency multi-cycle block (single input) —
    /// elasticized into a go/done/ack controller (paper Sect. 4.4).
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] on a name clash.
    pub fn var_latency_block(&mut self, name: impl Into<String>) -> Result<SyncId, CoreError> {
        self.node(
            name,
            SyncNode::Block {
                inputs: 1,
                early: None,
                variable_latency: true,
            },
        )
    }

    /// Wires `from`'s output to input `port` of `to`.
    pub fn wire(&mut self, from: SyncId, to: SyncId, port: usize) {
        self.wires.push((from, to, port));
    }

    /// Adds a chain of `stages` registers named `<prefix>r0..` between
    /// `from` and input `port` of `to`, carrying `tokens` initial values in
    /// the downstream-most registers — the datapath-level counterpart of
    /// [`ElasticNetwork::add_buffer`]. Returns the names the chain's
    /// endpoint channels will carry after [`elasticize`]
    /// (`"<from>-><prefix>r0"`, `"<prefix>r<last>-><to>"`); a zero-stage
    /// chain wires `from` directly to `to` and both names collapse to
    /// `"<from>-><to>"`.
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] if any register name clashes.
    ///
    /// # Panics
    ///
    /// Panics if `tokens > stages` or an id is out of range.
    pub fn register_chain(
        &mut self,
        prefix: &str,
        from: SyncId,
        to: SyncId,
        port: usize,
        stages: usize,
        tokens: usize,
    ) -> Result<(String, String), CoreError> {
        assert!(tokens <= stages, "one initial value per register at most");
        let from_name = self.nodes[from.0].0.clone();
        let to_name = self.nodes[to.0].0.clone();
        if stages == 0 {
            self.wire(from, to, port);
            let name = format!("{from_name}->{to_name}");
            return Ok((name.clone(), name));
        }
        let mut regs = Vec::with_capacity(stages);
        for j in 0..stages {
            let init = j >= stages - tokens;
            regs.push(self.register(format!("{prefix}r{j}"), init)?);
        }
        self.wire(from, regs[0], 0);
        for w in regs.windows(2) {
            self.wire(w[0], w[1], 0);
        }
        self.wire(regs[stages - 1], to, port);
        Ok((
            format!("{from_name}->{prefix}r0"),
            format!("{prefix}r{}->{to_name}", stages - 1),
        ))
    }
}

/// Converts a synchronous datapath into its elastic control network,
/// following the paper's recipe: EB controllers for registers, join/early
/// join + fork controllers for blocks, VL controllers for variable-latency
/// units, sources/sinks for the environment ports.
///
/// # Errors
///
/// Propagates [`CoreError`] from network construction (bad ports, invalid
/// early-evaluation functions, buffer-free cycles).
pub fn elasticize(dp: &SyncDatapath) -> Result<ElasticNetwork, CoreError> {
    // Per-node component cluster: (input_target, output_source).
    // input_target: component+port offset receiving each wired input.
    struct Cluster {
        /// Component consuming input port i of the sync node.
        input: Option<CompId>,
        /// Component producing the node's output (pre-fork).
        output: Option<CompId>,
        /// Fork distributing the output, if fan-out > 1.
        fork: Option<CompId>,
        next_fork_port: usize,
    }

    let mut net = ElasticNetwork::new(dp.name.clone());

    // Fan-out per node decides whether a fork is inserted.
    let mut fanout: HashMap<usize, usize> = HashMap::new();
    for &(from, _, _) in &dp.wires {
        *fanout.entry(from.0).or_insert(0) += 1;
    }

    // Build per-node component clusters.
    let mut clusters: Vec<Cluster> = Vec::new();
    for (i, (name, kind)) in dp.nodes.iter().enumerate() {
        let fan = fanout.get(&i).copied().unwrap_or(0);
        let mut cluster = match kind {
            SyncNode::Input => {
                let s = net.add_source(name.clone())?;
                Cluster {
                    input: None,
                    output: Some(s),
                    fork: None,
                    next_fork_port: 0,
                }
            }
            SyncNode::Output => {
                let s = net.add_sink(name.clone())?;
                Cluster {
                    input: Some(s),
                    output: None,
                    fork: None,
                    next_fork_port: 0,
                }
            }
            SyncNode::Register { init_valid } => {
                let b = net.add_eb(name.clone(), *init_valid)?;
                Cluster {
                    input: Some(b),
                    output: Some(b),
                    fork: None,
                    next_fork_port: 0,
                }
            }
            SyncNode::Block {
                inputs,
                early,
                variable_latency,
            } => {
                // Join (if needed) feeding an optional VL controller.
                let front = if *inputs > 1 {
                    Some(match early {
                        Some(f) => {
                            net.add_early_join(format!("{name}.join"), *inputs, f.clone())?
                        }
                        None => net.add_join(format!("{name}.join"), *inputs)?,
                    })
                } else {
                    None
                };
                let vl = if *variable_latency {
                    Some(net.add_var_latency(format!("{name}.vl"))?)
                } else {
                    None
                };
                let (input, output) = match (front, vl) {
                    (Some(j), Some(v)) => {
                        net.connect(j, 0, v, 0, format!("{name}.go"))?;
                        (Some(j), Some(v))
                    }
                    (Some(j), None) => (Some(j), Some(j)),
                    (None, Some(v)) => (Some(v), Some(v)),
                    (None, None) => {
                        // A 1-input combinational block is control-transparent;
                        // represent it by a plain join of one input so the
                        // channel structure matches the datapath.
                        let j = net.add_join(format!("{name}.pass"), 1)?;
                        (Some(j), Some(j))
                    }
                };
                Cluster {
                    input,
                    output,
                    fork: None,
                    next_fork_port: 0,
                }
            }
        };
        if fan > 1 {
            let f = net.add_fork(format!("{name}.fork"), fan)?;
            let out = cluster.output.expect("fan-out from a node with no output");
            net.connect(out, 0, f, 0, format!("{name}.fo"))?;
            cluster.fork = Some(f);
        }
        clusters.push(cluster);
    }

    // Wire the clusters.
    for &(from, to, port) in &dp.wires {
        let name = format!("{}->{}", dp.nodes[from.0].0, dp.nodes[to.0].0);
        let dst = clusters[to.0].input.ok_or(CoreError::BadPort {
            comp: CompId(0),
            port,
            input: true,
        })?;
        let (src, sport) = match clusters[from.0].fork {
            Some(f) => {
                let p = clusters[from.0].next_fork_port;
                clusters[from.0].next_fork_port += 1;
                (f, p)
            }
            None => (
                clusters[from.0].output.ok_or(CoreError::BadPort {
                    comp: CompId(0),
                    port,
                    input: false,
                })?,
                0,
            ),
        };
        net.connect(src, sport, dst, port, name)?;
    }

    net.check()?;
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ComponentKind;
    use crate::sim::{BehavSim, EnvConfig, RandomEnv};

    /// in -> reg -> adder(2 inputs: reg, reg2) -> reg3 -> out, with a
    /// constant-side register fed by the same input through a fork.
    fn small_datapath() -> SyncDatapath {
        let mut dp = SyncDatapath::new("adder");
        let i = dp.input("in").unwrap();
        let r1 = dp.register("r1", false).unwrap();
        let r2 = dp.register("r2", false).unwrap();
        let add = dp.block("add", 2).unwrap();
        let r3 = dp.register("r3", false).unwrap();
        let o = dp.output("out").unwrap();
        dp.wire(i, r1, 0);
        dp.wire(r1, add, 0);
        dp.wire(r1, r2, 0);
        dp.wire(r2, add, 1);
        dp.wire(add, r3, 0);
        dp.wire(r3, o, 0);
        dp
    }

    #[test]
    fn registers_become_buffers_blocks_become_joins() {
        let net = elasticize(&small_datapath()).unwrap();
        let kinds: Vec<_> = net
            .components()
            .map(|c| net.component(c).kind.clone())
            .collect();
        let ebs = kinds
            .iter()
            .filter(|k| matches!(k, ComponentKind::Eb { .. }))
            .count();
        let joins = kinds
            .iter()
            .filter(|k| matches!(k, ComponentKind::Join { .. }))
            .count();
        let forks = kinds
            .iter()
            .filter(|k| matches!(k, ComponentKind::Fork { .. }))
            .count();
        assert_eq!(ebs, 3, "three registers");
        assert_eq!(joins, 1, "one two-input block");
        assert_eq!(forks, 1, "r1 fans out twice");
    }

    #[test]
    fn elasticized_datapath_simulates() {
        let net = elasticize(&small_datapath()).unwrap();
        let mut sim = BehavSim::new(&net).unwrap();
        let mut env = RandomEnv::new(3, EnvConfig::default());
        sim.run(&mut env, 400).unwrap();
        let out = net.channel_by_name("r3->out").unwrap();
        let th = sim.report().positive_rate(out);
        // The reconvergent fork has register depth 0 on the direct branch
        // and 1 through r2, so the join alternates: rate 1/2. (The paper's
        // correct-by-construction re-pipelining would insert a buffer on
        // the short branch to recover rate 1.)
        assert!((0.4..0.6).contains(&th), "unbalanced reconvergence: {th}");
    }

    #[test]
    fn balancing_the_reconvergence_restores_full_rate() {
        let mut dp = SyncDatapath::new("balanced");
        let i = dp.input("in").unwrap();
        let r1 = dp.register("r1", false).unwrap();
        let r1b = dp.register("r1b", false).unwrap(); // balance register
        let r2 = dp.register("r2", false).unwrap();
        let add = dp.block("add", 2).unwrap();
        let r3 = dp.register("r3", false).unwrap();
        let o = dp.output("out").unwrap();
        dp.wire(i, r1, 0);
        dp.wire(r1, r1b, 0);
        dp.wire(r1b, add, 0);
        dp.wire(r1, r2, 0);
        dp.wire(r2, add, 1);
        dp.wire(add, r3, 0);
        dp.wire(r3, o, 0);
        let net = elasticize(&dp).unwrap();
        let mut sim = BehavSim::new(&net).unwrap();
        let mut env = RandomEnv::new(3, EnvConfig::default());
        sim.run(&mut env, 400).unwrap();
        let out = net.channel_by_name("r3->out").unwrap();
        let th = sim.report().positive_rate(out);
        assert!(th > 0.9, "balanced pipeline reaches full rate: {th}");
    }

    #[test]
    fn variable_latency_block_gets_vl_controller() {
        let mut dp = SyncDatapath::new("vl");
        let i = dp.input("in").unwrap();
        let r = dp.register("r", false).unwrap();
        let m = dp.var_latency_block("mul").unwrap();
        let o = dp.output("out").unwrap();
        dp.wire(i, r, 0);
        dp.wire(r, m, 0);
        dp.wire(m, o, 0);
        let net = elasticize(&dp).unwrap();
        assert!(net
            .components()
            .any(|c| matches!(net.component(c).kind, ComponentKind::VarLatency)));
    }

    #[test]
    fn early_block_gets_early_join() {
        use crate::ee::EeTerm;
        let mut dp = SyncDatapath::new("mux");
        let sel = dp.input("sel").unwrap();
        let a = dp.input("a").unwrap();
        let b = dp.input("b").unwrap();
        let rs = dp.register("rs", false).unwrap();
        let ra = dp.register("ra", false).unwrap();
        let rb = dp.register("rb", false).unwrap();
        let ee = EarlyEval::new(
            0,
            vec![
                EeTerm {
                    guard_mask: 1,
                    guard_value: 0,
                    required: vec![1],
                    select: 1,
                },
                EeTerm {
                    guard_mask: 1,
                    guard_value: 1,
                    required: vec![2],
                    select: 2,
                },
            ],
        );
        let mux = dp.early_block("mux", 3, ee).unwrap();
        let o = dp.output("out").unwrap();
        dp.wire(sel, rs, 0);
        dp.wire(a, ra, 0);
        dp.wire(b, rb, 0);
        dp.wire(rs, mux, 0);
        dp.wire(ra, mux, 1);
        dp.wire(rb, mux, 2);
        dp.wire(mux, o, 0);
        let net = elasticize(&dp).unwrap();
        let has_ej = net.components().any(|c| {
            matches!(
                &net.component(c).kind,
                ComponentKind::Join { ee: Some(_), .. }
            )
        });
        assert!(has_ej);
    }
}
