//! Seeded random elastic-network generator and tri-backend differential
//! fuzz harness.
//!
//! Every experiment elsewhere in this workspace runs the paper's five fixed
//! configurations. This module opens the scenario-diversity axis: a
//! [`TopoParams`] knob set samples well-formed SELF networks — fork/join
//! density, early-evaluation joins with anti-token counterflow, buffer
//! chains, variable-latency units, token-carrying back edges — that are
//! **live by construction**: every directed cycle of the unit graph passes
//! through a back edge whose buffer chain carries at least one initial
//! token (Sect. 2's liveness condition), and every connection carries at
//! least one elastic buffer, so no buffer-free combinational cycle can
//! form.
//!
//! Each sample is lowered three ways and cross-checked
//! ([`differential_check`]):
//!
//! 1. **behavioural reference + DMG replay** — the behavioural simulator's
//!    per-channel transfer trace is replayed as firings onto an
//!    independently built dual marked graph via
//!    [`elastic_dmg::exec::Replayer`], which enforces per-arc
//!    token/anti-token capacity windows every cycle. The marked-graph
//!    firing rule conserves cycle token sums by construction, so a token
//!    the circuit loses, duplicates or spuriously annihilates surfaces as
//!    an arc marking drifting out of its window;
//! 2. **compiled pipeline** — the same network through the PR-4 execution
//!    pipeline (optimizing compile → levelized, peephole-optimized tape →
//!    packed-stimulus [`WideSim`]), compared rail-for-rail against the
//!    behavioural simulator on every channel, every cycle, every lane;
//! 3. **analytic bound** — the measured throughput of a lazy system must
//!    respect the `min_cycle_ratio` bound of its marked-graph abstraction
//!    ([`crate::dmg_bridge`], paper Sect. 6.1).
//!
//! Failures shrink to a minimal failing [`TopoParams`] with
//! [`shrink_params`]. Harness sensitivity is itself tested: compiling one
//! lowering with a [`FaultInjection`] (e.g. an early join that drops its
//! anti-tokens) must be caught — see the negative tests below and the
//! `fuzz_topo` binary's `--inject` mode.

use elastic_dmg::exec::Replayer;
use elastic_dmg::{ArcId, Dmg, DmgBuilder, NodeId};
use elastic_netlist::levelize::Program;
use elastic_netlist::wide::WideSim;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::channel::{ChanId, ChannelEvent};
use crate::compile::{compile, CompileOptions, FaultInjection};
use crate::dmg_bridge::lazy_throughput_bound;
use crate::ee::{EarlyEval, EeTerm};
use crate::elasticize::{elasticize, SyncDatapath, SyncId, SyncNode};
use crate::error::CoreError;
use crate::network::ElasticNetwork;
use crate::sim::{BehavSim, DataGen, EnvConfig, LatencyDist, SinkCfg, SourceCfg};
use crate::verify::{NetlistTestbench, PackedStimulus, Schedule};

/// Payload width of generated systems (two bits cover every generated
/// early-evaluation guard mask, like the paper example's opcode).
pub const GEN_DATA_WIDTH: usize = 2;

/// Intra-cycle timing slack of the replay accounting, in tokens per arc:
/// an eager fork may deliver a copy before its join consumes the inputs
/// (≤ 1), a variable-latency unit holds up to two tokens between its
/// consumption and emission points, and an early join's pending anti-token
/// kills its victim after the firing that owed it (≤ 1).
const SLACK: i64 = 4;

/// The knob set a topology is sampled from. Structure is drawn
/// deterministically from `structure_seed`; two equal parameter sets
/// generate identical networks.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoParams {
    /// Number of functional units (join/fork clusters); clamped to ≥ 2.
    pub units: usize,
    /// Extra forward connections beyond the spanning backbone.
    pub extra_forward: usize,
    /// Extra token-carrying back edges (ring topologies only).
    pub extra_back: usize,
    /// Close the unit graph into a ring (strongly connected core with a
    /// token-carrying back edge) instead of a DAG.
    pub ring: bool,
    /// Probability that a multi-input unit uses an early-evaluation join.
    pub ee_prob: f64,
    /// Probability that a unit wraps a variable-latency block.
    pub vl_prob: f64,
    /// Probability that a connection's consumer-side boundary uses the
    /// passive anti-token interface (Fig. 7a).
    pub passive_prob: f64,
    /// Maximum elastic-buffer stages per connection (≥ 1).
    pub max_stages: usize,
    /// Source offer probability per idle cycle.
    pub source_rate: f64,
    /// Sink back-pressure probability per cycle.
    pub sink_stop: f64,
    /// Sink anti-token launch probability per cycle.
    pub sink_kill: f64,
    /// Seed for the structural draws.
    pub structure_seed: u64,
}

impl TopoParams {
    /// Samples a parameter set from one master seed, covering the knob
    /// space the fuzz campaign sweeps: small and mid-size unit counts,
    /// rings and DAGs, lazy and early-evaluating joins, stalling and
    /// killing environments.
    pub fn sample(seed: u64) -> TopoParams {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let ring = rng.gen_bool(0.7);
        TopoParams {
            units: rng.gen_range(2..7 + 1),
            extra_forward: rng.gen_range(0..3 + 1),
            extra_back: rng.gen_range(0..2 + 1),
            ring,
            ee_prob: [0.0, 0.5, 1.0][rng.gen_range(0..3)],
            vl_prob: [0.0, 0.3][rng.gen_range(0..2)],
            passive_prob: [0.0, 0.25][rng.gen_range(0..2)],
            max_stages: rng.gen_range(1..3 + 1),
            source_rate: [1.0, 0.8, 0.6][rng.gen_range(0..3)],
            sink_stop: [0.0, 0.2, 0.4][rng.gen_range(0..3)],
            sink_kill: [0.0, 0.0, 0.15][rng.gen_range(0..3)],
            structure_seed: seed,
        }
    }
}

/// One unit-to-unit (or environment) connection: an elastic-buffer chain
/// abstracted as one DMG arc.
#[derive(Debug, Clone)]
pub struct ArcMeta {
    /// Producer-side channel (into the chain's first buffer).
    pub start: ChanId,
    /// Consumer-side channel (out of the chain's last buffer).
    pub end: ChanId,
    /// Elastic buffers on the chain (token capacity `2 × stages`).
    pub stages: usize,
    /// Initial tokens (placed in the downstream-most buffers).
    pub tokens: usize,
    /// The forward DMG arc this chain lowers to.
    pub fwd: ArcId,
}

/// A generated system: the elasticized network, its environment, and the
/// independently lowered DMG reference with the metadata the differential
/// harness needs to replay circuit activity onto it.
#[derive(Debug, Clone)]
pub struct GeneratedSystem {
    /// The parameters the system was generated from.
    pub params: TopoParams,
    /// The elastic control network (built through [`elasticize`]).
    pub network: ElasticNetwork,
    /// Environment distributions.
    pub env: EnvConfig,
    /// The channel whose positive-transfer rate is reported as throughput
    /// (the first sink's input channel).
    pub output_channel: ChanId,
    /// The DMG lowering: one node per unit/source/sink, one forward arc
    /// (plus a bubble capacity arc) per connection.
    pub dmg: Dmg,
    /// Per DMG node (in node-index order): the channel whose activity
    /// (positive transfers + negative transfers + kills) is that node's
    /// firing count — the marked-graph firing rule is identical for
    /// P/N/E firings, so all three event kinds replay as the same firing.
    pub fire_channels: Vec<ChanId>,
    /// Forward-arc metadata, for occupancy cross-checks.
    pub arcs: Vec<ArcMeta>,
    /// Per-arc `(lo, hi)` marking windows for the replayer.
    pub bounds: Vec<(i64, i64)>,
    /// Number of early-evaluation joins.
    pub num_ee: usize,
    /// No early evaluation and no killing sinks: the system is a plain
    /// marked graph and must show zero counterflow.
    pub lazy: bool,
}

impl GeneratedSystem {
    /// Whether the environment is free-flowing (sources always offer,
    /// sinks never stop or kill) — together with `lazy` and `ring`, the
    /// regime in which the min-cycle-ratio bound is asymptotically tight.
    pub fn free_flowing(&self) -> bool {
        self.params.source_rate >= 1.0
            && self.params.sink_stop == 0.0
            && self.params.sink_kill == 0.0
    }
}

/// Generates the system described by `params`.
///
/// Liveness by construction: rings route every cycle through a back edge
/// whose chain carries ≥ 1 initial token; DAGs have no cycles; every
/// connection carries ≥ 1 elastic buffer so no combinational cycle forms.
///
/// # Errors
///
/// Propagates network-construction errors (none expected for in-range
/// parameters — the generator is exercised by proptests).
#[allow(clippy::too_many_lines)]
pub fn generate(params: &TopoParams) -> Result<GeneratedSystem, CoreError> {
    // Unit-level edge of the topology draw.
    struct Edge {
        from: usize,
        to: usize,
        back: bool,
    }
    // Register chain `e{k}r{j}` per edge (`s{i}r{j}` / `k{i}r{j}` per
    // environment link); metadata records the channel names its endpoints
    // will have after elasticization.
    struct Chain {
        from_node: usize, // DMG node index (assigned below)
        to_node: usize,
        start_name: String,
        end_name: String,
        stages: usize,
        tokens: usize,
    }

    let mut rng = StdRng::seed_from_u64(params.structure_seed);
    let n = params.units.max(2);
    let max_stages = params.max_stages.max(1);

    // 1. Unit-level edges. Rings: a Hamiltonian cycle whose closing edge
    //    (and every extra back edge) carries tokens; DAGs: a spanning
    //    forward backbone. Extra forward edges add fork/join density.
    let mut edges: Vec<Edge> = Vec::new();
    if params.ring {
        for i in 0..n {
            edges.push(Edge {
                from: i,
                to: (i + 1) % n,
                back: i == n - 1,
            });
        }
    } else {
        for j in 1..n {
            edges.push(Edge {
                from: rng.gen_range(0..j),
                to: j,
                back: false,
            });
        }
    }
    for _ in 0..params.extra_forward {
        let a = rng.gen_range(0..n - 1);
        let b = rng.gen_range(a + 1..n);
        edges.push(Edge {
            from: a,
            to: b,
            back: false,
        });
    }
    if params.ring {
        for _ in 0..params.extra_back {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..a + 1);
            edges.push(Edge {
                from: a,
                to: b,
                back: true,
            });
        }
    }

    let mut ins: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut outs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (k, e) in edges.iter().enumerate() {
        outs[e.from].push(k);
        ins[e.to].push(k);
    }

    // 2. Environment attachment: rings get one source and one sink on
    //    random units; DAGs close every dangling boundary.
    let mut src_units: Vec<usize> = Vec::new();
    let mut snk_units: Vec<usize> = Vec::new();
    if params.ring {
        src_units.push(rng.gen_range(0..n));
        snk_units.push(rng.gen_range(0..n));
    } else {
        src_units.extend((0..n).filter(|&u| ins[u].is_empty()));
        snk_units.extend((0..n).filter(|&u| outs[u].is_empty()));
    }

    // 3. Per-unit controller choices. Input ports: edges first (in edge
    //    order), then sources.
    let fan_in: Vec<usize> = (0..n)
        .map(|u| ins[u].len() + src_units.iter().filter(|&&s| s == u).count())
        .collect();
    let mut early: Vec<Option<EarlyEval>> = Vec::with_capacity(n);
    let mut has_vl: Vec<bool> = Vec::with_capacity(n);
    let mut num_ee = 0usize;
    for &k in fan_in.iter().take(n) {
        let ee = if k >= 2 && params.ee_prob > 0.0 && rng.gen_bool(params.ee_prob.min(1.0)) {
            num_ee += 1;
            Some(sample_early_eval(&mut rng, k))
        } else {
            None
        };
        early.push(ee);
        has_vl.push(params.vl_prob > 0.0 && rng.gen_bool(params.vl_prob.min(1.0)));
    }

    // 4. Build the synchronous datapath and elasticize it (the Sect. 6
    //    flow): blocks become join(+EE)/fork clusters, registers become
    //    elastic buffers.
    let mut dp = SyncDatapath::new(format!("topo{}", params.structure_seed));
    let blocks: Vec<SyncId> = (0..n)
        .map(|u| {
            dp.node(
                format!("u{u}"),
                SyncNode::Block {
                    inputs: fan_in[u],
                    early: early[u].clone(),
                    variable_latency: has_vl[u],
                },
            )
        })
        .collect::<Result<_, CoreError>>()?;

    // Chains: registers `e{k}r{j}` per edge, `s{i}r{j}` / `k{i}r{j}` per
    // environment link, all through `SyncDatapath::register_chain`.
    let mut chains: Vec<Chain> = Vec::new();
    let mut next_port: Vec<usize> = vec![0; n];

    // DMG node indexing: units 0..n, then sources, then sinks.
    let src_node = |i: usize| n + i;
    let snk_node = |i: usize| n + src_units.len() + i;

    for (k, e) in edges.iter().enumerate() {
        let stages = rng.gen_range(1..max_stages + 1);
        let tokens = if e.back {
            rng.gen_range(1..stages + 1)
        } else {
            rng.gen_range(0..stages + 1)
        };
        let port = next_port[e.to];
        next_port[e.to] += 1;
        let (start_name, end_name) = dp.register_chain(
            &format!("e{k}"),
            blocks[e.from],
            blocks[e.to],
            port,
            stages,
            tokens,
        )?;
        chains.push(Chain {
            from_node: e.from,
            to_node: e.to,
            start_name,
            end_name,
            stages,
            tokens,
        });
    }
    for (i, &u) in src_units.iter().enumerate() {
        let src = dp.input(format!("src{i}"))?;
        let stages = rng.gen_range(1..max_stages + 1);
        let port = next_port[u];
        next_port[u] += 1;
        let (start_name, end_name) =
            dp.register_chain(&format!("s{i}"), src, blocks[u], port, stages, 0)?;
        chains.push(Chain {
            from_node: src_node(i),
            to_node: u,
            start_name,
            end_name,
            stages,
            tokens: 0,
        });
    }
    for (i, &u) in snk_units.iter().enumerate() {
        let snk = dp.output(format!("snk{i}"))?;
        let stages = rng.gen_range(1..max_stages + 1);
        let (start_name, end_name) =
            dp.register_chain(&format!("k{i}"), blocks[u], snk, 0, stages, 0)?;
        chains.push(Chain {
            from_node: u,
            to_node: snk_node(i),
            start_name,
            end_name,
            stages,
            tokens: 0,
        });
    }

    let mut network = elasticize(&dp)?;

    // 5. Passive anti-token boundaries on some unit-to-unit consumer-side
    //    channels (Fig. 7a; Table 1 rows 3–4).
    if params.passive_prob > 0.0 {
        for (k, _) in edges.iter().enumerate() {
            if rng.gen_bool(params.passive_prob.min(1.0)) {
                let end = network
                    .channel_by_name(&chains[k].end_name)
                    .ok_or_else(|| CoreError::Netlist(format!("channel {}", chains[k].end_name)))?;
                network.set_passive(end)?;
            }
        }
    }
    network.check()?;

    // 6. Resolve channel handles and firing-observation channels.
    let chan = |name: &str| -> Result<ChanId, CoreError> {
        network
            .channel_by_name(name)
            .ok_or_else(|| CoreError::Netlist(format!("generated channel {name} missing")))
    };
    let mut fire_channels: Vec<ChanId> = Vec::new();
    for u in 0..n {
        // The cluster's output component: the VL when present, else the
        // join (or the 1-input pass join). Its port-0 output channel sees
        // exactly one activity event per replayed firing.
        let comp_name = if has_vl[u] {
            format!("u{u}.vl")
        } else if fan_in[u] > 1 {
            format!("u{u}.join")
        } else {
            format!("u{u}.pass")
        };
        let comp = network
            .component_by_name(&comp_name)
            .ok_or_else(|| CoreError::Netlist(format!("component {comp_name} missing")))?;
        let fc = network
            .output_channel(comp, 0)
            .ok_or_else(|| CoreError::Netlist(format!("{comp_name} output unwired")))?;
        fire_channels.push(fc);
    }
    for (i, _) in src_units.iter().enumerate() {
        let comp = network
            .component_by_name(&format!("src{i}"))
            .ok_or_else(|| CoreError::Netlist(format!("source src{i} missing")))?;
        fire_channels.push(network.output_channel(comp, 0).expect("source wired"));
    }
    for (i, _) in snk_units.iter().enumerate() {
        let comp = network
            .component_by_name(&format!("snk{i}"))
            .ok_or_else(|| CoreError::Netlist(format!("sink snk{i} missing")))?;
        fire_channels.push(network.input_channel(comp, 0).expect("sink wired"));
    }

    // 7. Independent DMG lowering: nodes for units/sources/sinks, one
    //    forward arc per chain (marking = its initial tokens) plus the
    //    bubble arc carrying the remaining capacity.
    let mut b = DmgBuilder::new();
    let mut node_ids: Vec<NodeId> = Vec::new();
    for (u, e) in early.iter().enumerate().take(n) {
        node_ids.push(if e.is_some() {
            b.early_node(format!("u{u}"))
        } else {
            b.node(format!("u{u}"))
        });
    }
    for (i, _) in src_units.iter().enumerate() {
        node_ids.push(b.node(format!("src{i}")));
    }
    for (i, _) in snk_units.iter().enumerate() {
        node_ids.push(b.node(format!("snk{i}")));
    }
    let mut arcs: Vec<ArcMeta> = Vec::new();
    let mut bounds: Vec<(i64, i64)> = Vec::new();
    for c in &chains {
        let cap = 2 * c.stages as i64;
        let fwd = b.named_arc(
            format!("{}..{}", c.start_name, c.end_name),
            node_ids[c.from_node],
            node_ids[c.to_node],
            c.tokens as i64,
        );
        bounds.push((-cap - SLACK, cap + SLACK));
        b.named_arc(
            format!("{}..{}~bubbles", c.start_name, c.end_name),
            node_ids[c.to_node],
            node_ids[c.from_node],
            cap - c.tokens as i64,
        );
        // The bubble marking mirrors the forward one (`cap − forward`), so
        // its window is the exact mirror image: a chain full of
        // anti-tokens legitimately shows `2 × cap` bubbles.
        bounds.push((-SLACK, 2 * cap + SLACK));
        arcs.push(ArcMeta {
            start: chan(&c.start_name)?,
            end: chan(&c.end_name)?,
            stages: c.stages,
            tokens: c.tokens,
            fwd,
        });
    }
    let dmg = b.build().map_err(|e| CoreError::Netlist(e.to_string()))?;

    // 8. Environment distributions. Payloads are uniform-ish over the
    //    2-bit space so early-evaluation guards are exercised; every VL
    //    unit gets its own latency distribution.
    let mut env = EnvConfig {
        default_source: SourceCfg {
            rate: params.source_rate.clamp(0.0, 1.0),
            data: DataGen::Weighted(vec![(0, 0.4), (1, 0.3), (2, 0.2), (3, 0.1)]),
        },
        default_sink: SinkCfg {
            stop_prob: params.sink_stop.clamp(0.0, 1.0),
            kill_prob: params.sink_kill.clamp(0.0, 1.0),
        },
        default_vl: LatencyDist::fixed(1),
        ..Default::default()
    };
    for (u, &vl) in has_vl.iter().enumerate() {
        if vl {
            let dist = if rng.gen_bool(0.5) {
                LatencyDist::fixed(rng.gen_range(1..3 + 1))
            } else {
                LatencyDist::weighted(vec![(1, 0.6), (rng.gen_range(2..5 + 1), 0.4)])
            };
            env.vls.insert(format!("u{u}.vl"), dist);
        }
    }

    let output_channel = arcs[chains.len() - snk_units.len()..]
        .first()
        .map(|a| a.end)
        .expect("at least one sink");
    Ok(GeneratedSystem {
        params: params.clone(),
        network,
        env,
        output_channel,
        dmg,
        fire_channels,
        arcs,
        bounds,
        num_ee,
        lazy: num_ee == 0 && params.sink_kill == 0.0,
    })
}

/// Samples a valid early-evaluation function for a `k`-input join: two
/// disjoint guard patterns on payload bit 0, at least one of which may fire
/// before every input has arrived.
fn sample_early_eval(rng: &mut StdRng, k: usize) -> EarlyEval {
    let guard = rng.gen_range(0..k);
    let others: Vec<usize> = (0..k).filter(|&i| i != guard).collect();
    // Pattern 0: a random (possibly empty) subset of the other inputs.
    let r0: Vec<usize> = others
        .iter()
        .copied()
        .filter(|_| rng.gen_bool(0.5))
        .collect();
    let select0 = if r0.is_empty() {
        guard
    } else {
        r0[rng.gen_range(0..r0.len())]
    };
    // Pattern 1: all other inputs (the conservative disjunct).
    let select1 = others[rng.gen_range(0..others.len())];
    EarlyEval::new(
        guard,
        vec![
            EeTerm {
                guard_mask: 1,
                guard_value: 0,
                required: r0,
                select: select0,
            },
            EeTerm {
                guard_mask: 1,
                guard_value: 1,
                required: others,
                select: select1,
            },
        ],
    )
}

/// Options of one differential run.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Simulated cycles per lane.
    pub cycles: usize,
    /// Independent schedules run in parallel lanes of the compiled
    /// pipeline (each also simulated behaviourally).
    pub lanes: usize,
    /// Base schedule seed; lane `k` uses `seed + k`.
    pub seed: u64,
    /// Optional deliberate bug in the gate-level lowering (negative
    /// tests).
    pub fault: Option<FaultInjection>,
    /// Injection window `(start, len)` arming a compiled-in rail fault in
    /// every lane of the compiled side. The behavioural reference always
    /// stays fault-free — it is the faithful semantics the rail-exact
    /// cosim compares against, so the first cycle the armed corruption
    /// gate changes a rail value is flagged. Ignored for the structural
    /// [`FaultInjection::DropAntiToken`] (which has no arm wire); when
    /// `None`, a rail fault defaults to a window in the middle of the
    /// horizon.
    pub fault_window: Option<(usize, usize)>,
    /// Cross-check lazy throughput against the min-cycle-ratio bound.
    pub check_bound: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            cycles: 256,
            lanes: 4,
            seed: 1,
            fault: None,
            fault_window: None,
            check_bound: true,
        }
    }
}

/// Outcome summary of one passing differential run.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Mean positive-transfer rate at the output channel across lanes.
    pub throughput: f64,
    /// The min-cycle-ratio bound of the marked-graph abstraction, when
    /// computed.
    pub bound: Option<f64>,
    /// Firings replayed onto the DMG (lane 0).
    pub firings: usize,
    /// Channels in the generated network.
    pub channels: usize,
    /// Components in the generated network.
    pub components: usize,
    /// Early-evaluation joins in the sample.
    pub ee_joins: usize,
}

/// Runs the tri-backend differential on one generated system. See the
/// module docs for the checked properties.
///
/// # Errors
///
/// * [`CoreError::ProtocolViolation`] — the compiled pipeline diverged
///   from the behavioural reference on a channel rail;
/// * [`CoreError::Differential`] — the DMG replay, the occupancy
///   accounting, the counterflow expectations of a lazy system, the
///   token-preservation rate equality or the analytic bound failed;
/// * other variants propagate compilation/simulation failures.
#[allow(clippy::too_many_lines)]
pub fn differential_check(
    sys: &GeneratedSystem,
    opts: &DiffOptions,
) -> Result<DiffReport, CoreError> {
    let net = &sys.network;
    let cycles = opts.cycles.max(1);
    let mut schedules: Vec<Schedule> = (0..opts.lanes.max(1))
        .map(|k| Schedule::random(net, &sys.env, opts.seed.wrapping_add(k as u64), cycles))
        .collect();

    // Side (b): the PR-4 compiled pipeline — optimizing compile (all
    // channel rails are preserved as outputs), levelize + peephole, packed
    // stimulus, bit-parallel execution.
    let compiled = compile(
        net,
        &CompileOptions {
            lint: false,
            data_width: GEN_DATA_WIDTH,
            nondet_merge: false,
            optimize: true,
            fault: opts.fault.clone(),
            faults: vec![],
        },
    )?;
    let (prog, _) = Program::compile_optimized(&compiled.netlist).map_err(CoreError::from)?;
    let mut wide: WideSim<1> = WideSim::from_program(prog);
    let tb = match &opts.fault {
        Some(f) if f.input_name().is_some() => {
            NetlistTestbench::with_fault(net, &compiled.netlist, GEN_DATA_WIDTH, f)?
        }
        _ => NetlistTestbench::new(net, &compiled.netlist, GEN_DATA_WIDTH)?,
    };
    // Rail faults get armed in every lane of the compiled side only; the
    // behavioural lanes replay the same schedules but ignore the arm
    // stream, staying the faithful reference.
    let fault_window = if tb.fault_col().is_some() {
        let (start, len) = opts
            .fault_window
            .unwrap_or((cycles / 4, (cycles / 8).max(1)));
        for s in &mut schedules {
            s.arm_fault(start, len)?;
        }
        Some((start, len))
    } else {
        None
    };
    let stim = PackedStimulus::pack(&tb, &schedules, 1)?;
    wide.check_input_slots(stim.slots())
        .map_err(CoreError::from)?;

    // Side (a): the behavioural reference, one instance per lane, plus the
    // DMG replayer fed from lane 0's transfer trace.
    let mut behavs: Vec<(BehavSim, Schedule)> = schedules
        .iter()
        .map(|s| Ok((BehavSim::new(net)?, s.clone())))
        .collect::<Result<_, CoreError>>()?;
    let mut replayer = Replayer::new(&sys.dmg, sys.bounds.clone())
        .map_err(|e| CoreError::Differential(format!("replayer setup: {e}")))?;
    if let Some((start, len)) = fault_window {
        // The replay is fed from the (clean) behavioural reference, but an
        // armed fault is *expected* to push markings around while active:
        // keep the replayer from attributing that drift to a token bug.
        replayer.tolerate_window(start as u64, (start + len) as u64);
    }
    let node_ids: Vec<NodeId> = sys.dmg.nodes().collect();

    let trace_tail = |r: &Replayer| -> String {
        let dump = r.export_trace();
        let lines: Vec<&str> = dump.lines().collect();
        let from = lines.len().saturating_sub(6);
        lines[from..].join("\n")
    };

    for t in 0..cycles {
        wide.cycle_packed(stim.slots(), stim.row(t));
        for (behav, sched) in &mut behavs {
            behav.step(sched)?;
        }

        // Rail-exact equivalence, every channel, every lane.
        for chan in net.channels() {
            let nets = &compiled.channels[chan.index()];
            for (lane, (behav, _)) in behavs.iter().enumerate() {
                let b = behav.signals(chan);
                let g = (
                    wide.lane(nets.vp, lane),
                    wide.lane(nets.sp, lane),
                    wide.lane(nets.vn, lane),
                    wide.lane(nets.sn, lane),
                );
                if (b.vp, b.sp, b.vn, b.sn) != g {
                    return Err(CoreError::ProtocolViolation {
                        channel: chan,
                        message: format!(
                            "pipeline cosim divergence at cycle {t} on {} lane {lane}: \
                             behavioural {b}, compiled V+={} S+={} V-={} S-={} \
                             (seed {}, dmg trace tail:\n{})",
                            net.channel(chan).name,
                            u8::from(g.0),
                            u8::from(g.1),
                            u8::from(g.2),
                            u8::from(g.3),
                            opts.seed,
                            trace_tail(&replayer),
                        ),
                    });
                }
                if b.vp {
                    for (i, &dn) in nets.data.iter().enumerate() {
                        if wide.lane(dn, lane) != (b.data >> i & 1 == 1) {
                            return Err(CoreError::ProtocolViolation {
                                channel: chan,
                                message: format!(
                                    "pipeline data divergence at cycle {t} on {} lane {lane} \
                                     bit {i} (seed {})",
                                    net.channel(chan).name,
                                    opts.seed
                                ),
                            });
                        }
                    }
                }
            }
        }

        // Lane 0's transfer trace replayed as DMG firings: activity at a
        // node's firing channel (positive transfer, negative transfer or
        // kill — the firing rule is the same for all three) fires the
        // node; capacity windows are checked at the cycle boundary.
        let behav0 = &behavs[0].0;
        for (ni, &fc) in sys.fire_channels.iter().enumerate() {
            match behav0.signals(fc).event() {
                ChannelEvent::PositiveTransfer
                | ChannelEvent::NegativeTransfer
                | ChannelEvent::Kill => {
                    replayer
                        .fire(node_ids[ni])
                        .map_err(|e| CoreError::Differential(format!("replay: {e}")))?;
                }
                _ => {}
            }
        }
        replayer.end_cycle().map_err(|e| {
            CoreError::Differential(format!(
                "dmg replay at cycle {t} (seed {}): {e}; trace tail:\n{}",
                opts.seed,
                trace_tail(&replayer)
            ))
        })?;
    }

    // Post-run token-flow accounting (lane 0).
    let report0 = behavs[0].0.report();
    let activity = |c: ChanId| -> i64 {
        report0
            .get(c)
            .map_or(0, |s| (s.positive + s.negative + s.kills) as i64)
    };
    for am in &sys.arcs {
        let cap = 2 * am.stages as i64;
        let occ = am.tokens as i64 + activity(am.start) - activity(am.end);
        if occ < -cap || occ > cap {
            return Err(CoreError::Differential(format!(
                "chain {} -> {} occupancy {occ} escaped its physical capacity ±{cap} \
                 (token leak or duplication; seed {})",
                net.channel(am.start).name,
                net.channel(am.end).name,
                opts.seed
            )));
        }
        let m = replayer.marking().get(am.fwd);
        if (m - occ).abs() > SLACK {
            return Err(CoreError::Differential(format!(
                "replayed marking {m} for chain {} -> {} diverged from measured \
                 occupancy {occ} beyond slack {SLACK} (seed {})",
                net.channel(am.start).name,
                net.channel(am.end).name,
                opts.seed
            )));
        }
    }

    // A lazy system is a plain marked graph: no anti-token may ever exist.
    if sys.lazy {
        for chan in net.channels() {
            if let Some(s) = report0.get(chan) {
                if s.negative + s.kills > 0 {
                    return Err(CoreError::Differential(format!(
                        "lazy system shows counterflow on {}: {} negative transfers, \
                         {} kills (seed {})",
                        net.channel(chan).name,
                        s.negative,
                        s.kills,
                        opts.seed
                    )));
                }
            }
        }
        if report0.internal_annihilations > 0 {
            return Err(CoreError::Differential(format!(
                "lazy system annihilated {} token pairs internally (seed {})",
                report0.internal_annihilations, opts.seed
            )));
        }
    }

    // Token preservation on strongly connected systems: every connection's
    // activity count matches the output's within the total in-flight
    // storage (paper Sect. 6.1's per-channel throughput equality).
    if sys.params.ring {
        let storage: u64 = sys
            .arcs
            .iter()
            .map(|a| 2 * a.stages as u64 + SLACK as u64)
            .sum();
        let out_act = activity(sys.output_channel).unsigned_abs();
        for am in &sys.arcs {
            let act = activity(am.end).unsigned_abs();
            if act.abs_diff(out_act) > storage {
                return Err(CoreError::Differential(format!(
                    "token preservation violated: activity {act} on {} vs {out_act} at \
                     the output exceeds total storage {storage} (seed {})",
                    net.channel(am.end).name,
                    opts.seed
                )));
            }
        }
    }

    // Side (c): the analytic min-cycle-ratio bound of the marked-graph
    // abstraction. Lazy systems must respect it; early evaluation may beat
    // it (that is the paper's headline effect, not a bug).
    let lane_rates: Vec<f64> = behavs
        .iter()
        .map(|(b, _)| {
            b.report()
                .try_positive_rate(sys.output_channel)
                .unwrap_or(0.0)
        })
        .collect();
    let measured = lane_rates.iter().sum::<f64>() / lane_rates.len() as f64;
    let mut bound = None;
    if opts.check_bound {
        if let Ok(db) = lazy_throughput_bound(net, &sys.env) {
            bound = Some(db.bound);
            if sys.lazy {
                let mean = measured;
                let sd = (lane_rates
                    .iter()
                    .map(|r| (r - mean) * (r - mean))
                    .sum::<f64>()
                    / lane_rates.len() as f64)
                    .sqrt();
                let storage: f64 = sys.arcs.iter().map(|a| 2.0 * a.stages as f64).sum();
                let tol =
                    0.02 + 3.0 * sd / (lane_rates.len() as f64).sqrt() + storage / cycles as f64;
                if measured > db.bound + tol {
                    return Err(CoreError::Differential(format!(
                        "lazy throughput {measured:.4} beats its min-cycle-ratio bound \
                         {:.4} (+{tol:.4} tolerance; critical: {}; seed {})",
                        db.bound,
                        db.critical.join(" -> "),
                        opts.seed
                    )));
                }
            }
        }
    }

    Ok(DiffReport {
        throughput: measured,
        bound,
        firings: replayer.trace().len(),
        channels: net.num_channels(),
        components: net.num_components(),
        ee_joins: sys.num_ee,
    })
}

/// Generates and checks in one step — the per-seed body of the fuzz
/// campaign.
///
/// # Errors
///
/// Propagates [`generate`] and [`differential_check`] failures.
pub fn check_seed(seed: u64, opts: &DiffOptions) -> Result<DiffReport, CoreError> {
    let params = TopoParams::sample(seed);
    let sys = generate(&params)?;
    differential_check(&sys, opts)
}

/// Finds an early join that actually *generates* anti-tokens under the
/// system's environment for the schedule seeded `seed` — run it with the
/// `DiffOptions::seed` of the differential the fault will be injected
/// into, so the probe observes lane 0 of that very run. This is the
/// observability precondition of [`FaultInjection::DropAntiToken`]
/// negative tests: sabotaging a join whose operands always arrive in time
/// is undetectable by construction.
///
/// Generation is detected per cycle as the G-gate signature — the join
/// fires while an input channel carries `V⁻` in the same cycle. Total
/// counterflow counts would be too loose: anti-tokens *absorbed* from
/// downstream (e.g. sink kills) pass through the join on non-firing
/// cycles and survive a dropped G gate unchanged.
pub fn injectable_join(sys: &GeneratedSystem, seed: u64, cycles: usize) -> Option<String> {
    if sys.num_ee == 0 {
        return None;
    }
    let net = &sys.network;
    let joins: Vec<(crate::network::CompId, ChanId, Vec<ChanId>)> = net
        .components()
        .filter(|&c| {
            matches!(
                &net.component(c).kind,
                crate::network::ComponentKind::Join { ee: Some(_), .. }
            )
        })
        .map(|c| {
            let out = net.output_channel(c, 0).expect("join wired");
            let ins = (0..net.component(c).kind.num_inputs())
                .filter_map(|p| net.input_channel(c, p))
                .collect();
            (c, out, ins)
        })
        .collect();
    let mut behav = BehavSim::new(net).ok()?;
    let mut sched = Schedule::random(net, &sys.env, seed, cycles);
    let mut generated = vec![false; joins.len()];
    for _ in 0..cycles {
        behav.step(&mut sched).ok()?;
        for (gi, (_, out, ins)) in joins.iter().enumerate() {
            let fired = matches!(
                behav.signals(*out).event(),
                ChannelEvent::PositiveTransfer | ChannelEvent::Kill
            );
            if fired && ins.iter().any(|&c| behav.signals(c).vn) {
                generated[gi] = true;
            }
        }
    }
    joins
        .iter()
        .zip(&generated)
        .find(|(_, &g)| g)
        .map(|((c, _, _), _)| net.component(*c).name.clone())
}

/// A candidate fault paired with its effectiveness predicate over clean
/// `(vp, sp, vn)` rail samples.
type SiteCandidate = (FaultInjection, fn((bool, bool, bool)) -> bool);

/// Finds an *effective* injection site for the rail-fault class labelled
/// `class` (a [`FaultInjection::label`] string): a channel, rail and start
/// cycle where arming the fault actually changes the rail value, observed
/// from a clean behavioural pre-run of the schedule seeded `seed` — run it
/// with the `DiffOptions::seed` the fault will be injected under, so the
/// probe watches lane 0 of that very differential. This is the
/// observability precondition of the rail-fault negative tests: a stuck-at
/// on a rail already at that value, a lost token on an idle channel or a
/// duplicated one on a busy channel changes nothing and is undetectable by
/// construction.
///
/// Returns the fault plus an effective start cycle, or `None` when the
/// class label is unknown or no channel shows an effective cycle. Channel
/// scan order rotates with `seed` so campaigns spread sites across the
/// topology.
pub fn injectable_site(
    sys: &GeneratedSystem,
    class: &str,
    seed: u64,
    cycles: usize,
) -> Option<(FaultInjection, usize)> {
    use crate::compile::FaultRail;
    let net = &sys.network;
    let chans: Vec<ChanId> = net.channels().collect();
    if chans.is_empty() || cycles < 8 {
        return None;
    }
    let mut behav = BehavSim::new(net).ok()?;
    let mut sched = Schedule::random(net, &sys.env, seed, cycles);
    let mut rails: Vec<Vec<(bool, bool, bool)>> = vec![Vec::with_capacity(cycles); chans.len()];
    for _ in 0..cycles {
        behav.step(&mut sched).ok()?;
        for (i, &c) in chans.iter().enumerate() {
            let s = behav.signals(c);
            rails[i].push((s.vp, s.sp, s.vn));
        }
    }
    // Hit a warmed-up network and leave a recovery tail before the horizon.
    let lo = cycles / 8;
    let hi = (cycles - cycles / 4).max(lo + 1);
    let fault_for = |name: String| -> Option<SiteCandidate> {
        match class {
            "rail_flip" => Some((
                FaultInjection::RailFlip {
                    channel: name,
                    rail: FaultRail::Vp,
                },
                |_| true,
            )),
            "stuck_at_0" => Some((
                FaultInjection::StuckAt {
                    channel: name,
                    rail: FaultRail::Vp,
                    value: false,
                },
                |(vp, _, _)| vp,
            )),
            "stuck_at_1" => Some((
                FaultInjection::StuckAt {
                    channel: name,
                    rail: FaultRail::Sp,
                    value: true,
                },
                |(_, sp, _)| !sp,
            )),
            "duplicate_token" => Some((
                FaultInjection::DuplicateToken { channel: name },
                |(vp, _, _)| !vp,
            )),
            "lose_token" => Some((FaultInjection::LoseToken { channel: name }, |(vp, _, _)| vp)),
            _ => None,
        }
    };
    let offset = (seed % chans.len() as u64) as usize;
    for k in 0..chans.len() {
        let i = (offset + k) % chans.len();
        let name = net.channel(chans[i]).name.clone();
        let (fault, effective) = fault_for(name)?;
        if let Some(t) = (lo..hi.min(rails[i].len())).find(|&t| effective(rails[i][t])) {
            return Some((fault, t));
        }
    }
    None
}

/// Shrinks a failing parameter set to a (locally) minimal one that still
/// fails the differential: each step tries the candidate reductions —
/// fewer units, no extra edges, single-stage chains, no VL/passive/kill
/// noise, a free-flowing environment — and keeps the first that preserves
/// the failure, until none does.
///
/// A candidate that fails with [`CoreError::FaultSite`] is treated as
/// *passing*: the shrunk topology no longer has the named injection site,
/// which is a different failure from the one being minimized.
///
/// Returns `params` unchanged when it does not fail in the first place.
pub fn shrink_params(params: &TopoParams, opts: &DiffOptions) -> TopoParams {
    shrink_params_by(params, |p| match generate(p) {
        Ok(sys) => match differential_check(&sys, opts) {
            Err(CoreError::FaultSite(_)) | Ok(_) => false,
            Err(_) => true,
        },
        Err(_) => false,
    })
}

/// [`shrink_params`] with a caller-supplied failure predicate: keeps any
/// candidate reduction for which `fails` still holds, until none does.
/// The fuzz campaign's inject mode uses this with an *inverted* predicate
/// ("the injected fault is still silently accepted") to minimize a missed
/// injection, which [`shrink_params`]'s fixed differential predicate
/// cannot express.
///
/// Returns `params` unchanged when `fails(params)` is false.
pub fn shrink_params_by(params: &TopoParams, fails: impl Fn(&TopoParams) -> bool) -> TopoParams {
    if !fails(params) {
        return params.clone();
    }
    let mut cur = params.clone();
    loop {
        let mut candidates: Vec<TopoParams> = Vec::new();
        let mut push = |f: &dyn Fn(&mut TopoParams)| {
            let mut c = cur.clone();
            f(&mut c);
            if c != cur {
                candidates.push(c);
            }
        };
        push(&|c| c.units = (c.units / 2).max(2));
        push(&|c| c.units = c.units.saturating_sub(1).max(2));
        push(&|c| c.extra_forward = 0);
        push(&|c| c.extra_back = 0);
        push(&|c| c.max_stages = 1);
        push(&|c| c.vl_prob = 0.0);
        push(&|c| c.passive_prob = 0.0);
        push(&|c| c.sink_kill = 0.0);
        push(&|c| c.sink_stop = 0.0);
        push(&|c| c.source_rate = 1.0);
        push(&|c| c.ee_prob = 0.0);
        match candidates.into_iter().find(|c| fails(c)) {
            Some(smaller) => cur = smaller,
            None => return cur,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        for seed in 0..20u64 {
            let params = TopoParams::sample(seed);
            let a = generate(&params).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let b = generate(&params).unwrap();
            assert_eq!(a.network.num_components(), b.network.num_components());
            assert_eq!(a.network.num_channels(), b.network.num_channels());
            a.network.check().unwrap();
            assert_eq!(a.fire_channels.len(), a.dmg.num_nodes());
            assert_eq!(a.bounds.len(), a.dmg.num_arcs());
            // Every cycle of the lowered DMG carries at least one token:
            // liveness by construction (back edges hold ≥ 1).
            let (cycles, _) = elastic_dmg::analysis::simple_cycles(&a.dmg, 200);
            let m0 = a.dmg.initial_marking();
            for c in &cycles {
                assert!(
                    c.tokens(&m0) >= 1,
                    "seed {seed}: token-free cycle in the DMG lowering"
                );
            }
        }
    }

    #[test]
    fn ring_samples_include_ee_and_counterflow() {
        // The sampled parameter space actually reaches the paper's
        // interesting corner: rings with early-evaluation joins.
        let mut ee_rings = 0;
        for seed in 0..64u64 {
            let p = TopoParams::sample(seed);
            if !p.ring {
                continue;
            }
            let sys = generate(&p).unwrap();
            if sys.num_ee > 0 {
                ee_rings += 1;
            }
        }
        assert!(ee_rings >= 5, "only {ee_rings} EE rings in 64 samples");
    }

    #[test]
    fn differential_passes_on_a_seed_band() {
        let opts = DiffOptions {
            cycles: 160,
            lanes: 2,
            ..Default::default()
        };
        for seed in 0..12u64 {
            let report = check_seed(seed, &opts).unwrap_or_else(|e| {
                let min = shrink_params(&TopoParams::sample(seed), &opts);
                panic!("seed {seed} failed: {e}\nminimal failing params: {min:?}")
            });
            assert!(report.channels > 0 && report.components > 0);
        }
    }

    #[test]
    fn differential_exercises_nontrivial_flow() {
        // At least one seed in the band must actually move tokens and
        // replay a meaningful number of firings — guards against a harness
        // that vacuously passes on dead networks.
        let opts = DiffOptions {
            cycles: 200,
            lanes: 2,
            ..Default::default()
        };
        let mut best = 0usize;
        for seed in 0..8u64 {
            let report = check_seed(seed, &opts).unwrap();
            best = best.max(report.firings);
        }
        assert!(best > 100, "max replayed firings {best}");
    }

    #[test]
    fn dropped_anti_token_is_caught() {
        // The acceptance-criteria negative test: sabotage the gate-level
        // lowering of one early join (its G gates never fire) and assert
        // the differential flags the divergence. The behavioural reference
        // keeps the faithful semantics, so the first wrong V⁻ rail trips
        // the rail-exact cosim.
        let mut caught = 0;
        let mut tried = 0;
        for seed in 0..64u64 {
            let params = TopoParams::sample(seed);
            let sys = generate(&params).unwrap();
            let base = DiffOptions {
                cycles: 300,
                lanes: 2,
                ..Default::default()
            };
            // The fault is observable only when the faithful run actually
            // generates anti-tokens at a join under the very schedules the
            // differential will replay (lane 0 is seeded `base.seed`).
            let Some(join_name) = injectable_join(&sys, base.seed, base.cycles) else {
                continue;
            };
            let opts = DiffOptions {
                fault: Some(FaultInjection::DropAntiToken { join: join_name }),
                ..base
            };
            tried += 1;
            if differential_check(&sys, &opts).is_err() {
                caught += 1;
            }
            if tried == 6 {
                break;
            }
        }
        assert!(
            tried >= 3,
            "sampled too few anti-token-active EE systems ({tried})"
        );
        assert_eq!(
            caught,
            tried,
            "dropped anti-tokens escaped the harness on {}/{tried} systems",
            tried - caught
        );
    }

    #[test]
    fn injected_rail_faults_are_caught_per_class() {
        // For every rail-fault class: find an effective site from the
        // clean pre-run, arm a single-cycle window there, and assert the
        // differential flags the run. The behavioural reference keeps the
        // faithful semantics, so the corrupted rail diverges at exactly
        // the armed effective cycle.
        for class in [
            "rail_flip",
            "stuck_at_0",
            "stuck_at_1",
            "duplicate_token",
            "lose_token",
        ] {
            let mut done = false;
            for seed in 0..16u64 {
                let params = TopoParams::sample(seed);
                let sys = generate(&params).unwrap();
                let base = DiffOptions {
                    cycles: 200,
                    lanes: 2,
                    ..Default::default()
                };
                let Some((fault, start)) = injectable_site(&sys, class, base.seed, base.cycles)
                else {
                    continue;
                };
                let opts = DiffOptions {
                    fault: Some(fault.clone()),
                    fault_window: Some((start, 1)),
                    ..base
                };
                assert!(
                    differential_check(&sys, &opts).is_err(),
                    "{class} at {fault:?} cycle {start} escaped on seed {seed}"
                );
                done = true;
                break;
            }
            assert!(done, "no effective site found for {class} in 16 seeds");
        }
    }

    #[test]
    fn bad_fault_specs_surface_as_fault_site_errors() {
        let params = TopoParams::sample(3);
        let sys = generate(&params).unwrap();
        // Unknown channel: typed error from compilation-time validation.
        let bad_chan = DiffOptions {
            cycles: 50,
            lanes: 1,
            fault: Some(FaultInjection::LoseToken {
                channel: "nope".into(),
            }),
            ..Default::default()
        };
        assert!(matches!(
            differential_check(&sys, &bad_chan),
            Err(CoreError::FaultSite(_))
        ));
        // ... and the shrinker treats it as not-the-failure-in-question.
        assert_eq!(shrink_params(&params, &bad_chan), params);
        // Out-of-horizon window: typed error from schedule arming.
        let (fault, _) = injectable_site(&sys, "rail_flip", 1, 50).expect("site");
        let bad_window = DiffOptions {
            cycles: 50,
            lanes: 1,
            fault: Some(fault),
            fault_window: Some((49, 5)),
            ..Default::default()
        };
        assert!(matches!(
            differential_check(&sys, &bad_window),
            Err(CoreError::FaultSite(_))
        ));
        // Unknown class label.
        assert!(injectable_site(&sys, "melt_the_clock", 1, 50).is_none());
    }

    #[test]
    fn shrinking_reduces_a_failing_params_set() {
        // Shrink against the injected fault: the minimal failing set must
        // still fail and must not be larger than the original.
        let mut found = None;
        for seed in 0..48u64 {
            let params = TopoParams::sample(seed);
            let sys = generate(&params).unwrap();
            if sys.num_ee == 0 || params.units < 4 {
                continue;
            }
            found = Some(params);
            break;
        }
        let params = found.expect("an EE sample with several units");
        // The fault names whichever EE join the shrunk topology still has;
        // use a matching-by-construction fault: sabotage every EE join by
        // regenerating per candidate. Simplest faithful setup: ee_prob 1.0
        // with a fault on the first unit join name pattern is brittle, so
        // drive the shrinker with a semantic failure instead — an
        // impossible bound tolerance is not available, therefore use the
        // fault on unit names that survive shrinking: "u0.join" exists
        // whenever unit 0 has several inputs. Fall back to asserting the
        // no-failure fast path otherwise.
        let opts = DiffOptions {
            cycles: 200,
            lanes: 2,
            fault: Some(FaultInjection::DropAntiToken {
                join: "u0.join".into(),
            }),
            ..Default::default()
        };
        let min = shrink_params(&params, &opts);
        assert!(min.units <= params.units);
        assert!(min.extra_forward <= params.extra_forward);
        // A non-failing input returns unchanged.
        let clean = DiffOptions {
            cycles: 80,
            lanes: 1,
            ..Default::default()
        };
        let same = shrink_params(&TopoParams::sample(0), &clean);
        assert_eq!(same, TopoParams::sample(0));
    }

    #[test]
    fn free_flowing_lazy_ring_tracks_its_bound() {
        // The tightness corner: strongly connected, lazy, free-flowing,
        // fixed latencies — measured throughput must sit at (not just
        // under) the min-cycle-ratio bound.
        let params = TopoParams {
            units: 4,
            extra_forward: 1,
            extra_back: 0,
            ring: true,
            ee_prob: 0.0,
            vl_prob: 0.0,
            passive_prob: 0.0,
            max_stages: 2,
            source_rate: 1.0,
            sink_stop: 0.0,
            sink_kill: 0.0,
            structure_seed: 7,
        };
        let sys = generate(&params).unwrap();
        assert!(sys.lazy && sys.free_flowing());
        let opts = DiffOptions {
            cycles: 1200,
            lanes: 2,
            ..Default::default()
        };
        let report = differential_check(&sys, &opts).unwrap();
        let bound = report.bound.expect("bound computed");
        assert!(
            report.throughput <= bound + 0.02,
            "lazy {} vs bound {bound}",
            report.throughput
        );
        assert!(
            report.throughput >= bound - 0.1,
            "bound should be tight on a free-flowing lazy ring: measured {} vs {bound}",
            report.throughput
        );
    }
}
