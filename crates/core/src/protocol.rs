//! Runtime protocol monitoring.
//!
//! The SELF protocol restricts every channel trace to `(I*R*T)*` — once a
//! sender asserts Valid it must persist, with unchanged data, until the
//! transfer happens (paper Sect. 3). With counterflow there is a symmetric
//! obligation on the negative rails. [`ProtocolMonitor`] checks both
//! persistence properties plus data stability online, one observation per
//! channel per cycle; the model checker proves the same properties
//! exhaustively on the gate-level controllers (Sect. 5).

use crate::channel::{ChanId, ChannelEvent, ChannelSignals};
use crate::error::CoreError;

/// Per-channel trace state for the `(I*R*T)*` language monitor.
#[derive(Debug, Clone, Copy, Default)]
struct ChannelTrace {
    /// Previous cycle was a positive retry: V⁺ must persist.
    retry_pos: bool,
    /// Previous cycle was a negative retry: V⁻ must persist.
    retry_neg: bool,
    /// Data offered during the pending positive retry.
    held_data: u64,
}

/// Online monitor for protocol persistence on every channel.
#[derive(Debug, Clone)]
pub struct ProtocolMonitor {
    traces: Vec<ChannelTrace>,
}

impl ProtocolMonitor {
    /// Creates a monitor for `num_channels` channels.
    pub fn new(num_channels: usize) -> Self {
        ProtocolMonitor {
            traces: vec![ChannelTrace::default(); num_channels],
        }
    }

    /// Feeds one settled cycle of one channel.
    ///
    /// # Errors
    ///
    /// [`CoreError::ProtocolViolation`] when persistence is broken:
    ///
    /// * a positive Retry not followed by Valid (`AG (V⁺∧S⁺ → AX V⁺)`),
    /// * data changing during a Retry,
    /// * a negative Retry not followed by V⁻ (`AG (V⁻∧S⁻ → AX V⁻)`).
    ///
    /// # Panics
    ///
    /// Panics if `chan` is out of range for this monitor.
    pub fn observe(&mut self, chan: ChanId, sig: ChannelSignals) -> Result<(), CoreError> {
        let trace = &mut self.traces[chan.index()];
        if trace.retry_pos {
            if !sig.vp {
                return Err(CoreError::ProtocolViolation {
                    channel: chan,
                    message: "V+ dropped after a retry (persistence)".into(),
                });
            }
            if sig.data != trace.held_data {
                return Err(CoreError::ProtocolViolation {
                    channel: chan,
                    message: format!(
                        "data changed during retry: held {} got {}",
                        trace.held_data, sig.data
                    ),
                });
            }
        }
        // Negative persistence is annihilation-aware: an eager fork's
        // backward anti-token join withdraws V⁻ in the cycle a forward
        // token arrives, because the pair annihilates at the fork's
        // *output* channels instead of as a local kill — the channel then
        // shows the positive event. A withdrawal therefore always
        // coincides with V⁺ high on the same channel (found by the
        // topology fuzzer; see `crate::gen`); V⁻ vanishing with both
        // valid rails low is still a dropped anti-token.
        if trace.retry_neg && !sig.vn && !sig.vp {
            return Err(CoreError::ProtocolViolation {
                channel: chan,
                message: "V- dropped after a negative retry (persistence)".into(),
            });
        }
        trace.retry_pos = matches!(sig.event(), ChannelEvent::Retry);
        trace.retry_neg = matches!(sig.event(), ChannelEvent::NegativeRetry);
        if trace.retry_pos {
            trace.held_data = sig.data;
        }
        Ok(())
    }

    /// Resets all per-channel trace state.
    pub fn reset(&mut self) {
        for t in &mut self.traces {
            *t = ChannelTrace::default();
        }
    }
}

/// Streaming recovery classifier for fault-injection campaigns.
///
/// Where [`ProtocolMonitor`] *aborts* on the first persistence violation,
/// the detector keeps scoring: it feeds on the settled rail quadruple of
/// one channel, cycle by cycle, records every cycle on which the trace
/// breaks a SELF obligation — a channel invariant of eq. (2), positive
/// persistence (`V⁺` dropped after a retry) or annihilation-aware negative
/// persistence — and then resynchronizes its acceptor state so scoring
/// continues on the post-fault trace. A network has *recovered* when the
/// violations simply stop: the observed trace has re-entered the legal
/// `(I*R*T)*` language and stays there. The cycle index of the last
/// violation is the recovery point ([`RecoveryDetector::last_violation`]);
/// a fault whose disturbance persists to the end of the horizon never
/// recovered.
///
/// Data stability is deliberately not checked: the wide fault campaigns
/// observe control rails only.
///
/// # Stabilization under continuous disturbance
///
/// Under a fault *process* (`crate::fault`) the one-shot question "did the
/// violations stop?" is not enough: the process re-injects, possibly while
/// the trace is still mid-recovery from the previous strike. The detector
/// therefore doubles as a **stabilization tracker**: the driver calls
/// [`RecoveryDetector::fault_event`] at every injection-window start,
/// which *retimes* the stabilization clock without erasing the violation
/// history. [`RecoveryDetector::stabilization_time`] then reports the
/// cycles from the **last** fault event to the onset of sustained
/// `(I*R*T)*` conformance (`None` while the trace is still violating near
/// the horizon — non-stabilized), and
/// [`RecoveryDetector::violation_rate`] gives the steady-state violation
/// rate for processes that never quiesce.
#[derive(Debug, Clone, Default)]
pub struct RecoveryDetector {
    cycle: usize,
    retry_pos: bool,
    retry_neg: bool,
    violations: usize,
    last_violation: Option<usize>,
    fault_events: usize,
    last_fault_event: Option<usize>,
}

impl RecoveryDetector {
    /// Creates a detector with no pending obligations.
    pub fn new() -> Self {
        RecoveryDetector::default()
    }

    /// Feeds one settled cycle; returns `true` when this cycle violated an
    /// obligation.
    pub fn observe(&mut self, sig: ChannelSignals) -> bool {
        let bad = sig.check_invariants().is_err()
            || (self.retry_pos && !sig.vp)
            // Annihilation-aware, like the online monitor: V⁻ may withdraw
            // in the cycle a forward token arrives (downstream kill).
            || (self.retry_neg && !sig.vn && !sig.vp);
        if bad {
            self.violations += 1;
            self.last_violation = Some(self.cycle);
            // Resynchronize: drop stale obligations so one corrupt cycle
            // scores once and scoring continues on the post-fault trace.
            self.retry_pos = false;
            self.retry_neg = false;
        } else {
            self.retry_pos = matches!(sig.event(), ChannelEvent::Retry);
            self.retry_neg = matches!(sig.event(), ChannelEvent::NegativeRetry);
        }
        self.cycle += 1;
        bad
    }

    /// Cycles observed so far.
    pub fn cycles(&self) -> usize {
        self.cycle
    }

    /// Total violating cycles.
    pub fn violations(&self) -> usize {
        self.violations
    }

    /// Cycle index of the most recent violation (`None` for a clean trace).
    pub fn last_violation(&self) -> Option<usize> {
        self.last_violation
    }

    /// Whether the trace has settled back into the legal language: no
    /// violation during the final `tail` observed cycles. A clean trace is
    /// trivially recovered.
    pub fn recovered(&self, tail: usize) -> bool {
        match self.last_violation {
            None => true,
            Some(last) => last + tail < self.cycle,
        }
    }

    /// Marks a fault event at the *current* cycle (call it just before
    /// observing the first cycle of an injection window): retimes the
    /// stabilization clock so [`RecoveryDetector::stabilization_time`]
    /// measures from this disturbance, not the first one. Violation counts
    /// and pending obligations are deliberately kept — re-injection during
    /// a recovery tail must not erase the evidence that the tail was never
    /// completed.
    pub fn fault_event(&mut self) {
        self.fault_events += 1;
        self.last_fault_event = Some(self.cycle);
    }

    /// Fault events marked so far.
    pub fn fault_events(&self) -> usize {
        self.fault_events
    }

    /// Cycle index of the most recent fault event.
    pub fn last_fault_event(&self) -> Option<usize> {
        self.last_fault_event
    }

    /// Stabilization time under the observed disturbance: cycles from the
    /// last [`RecoveryDetector::fault_event`] (cycle 0 when none was
    /// marked) to the cycle *after* the last violation — the onset of the
    /// sustained `(I*R*T)*` suffix. Zero when the trace never violated
    /// after the last event; `None` when the trace has not stabilized,
    /// i.e. a violation falls inside the final `tail` cycles
    /// ([`RecoveryDetector::recovered`] is false).
    pub fn stabilization_time(&self, tail: usize) -> Option<u64> {
        if !self.recovered(tail) {
            return None;
        }
        let origin = self.last_fault_event.unwrap_or(0);
        Some(match self.last_violation {
            None => 0,
            Some(last) => ((last + 1).saturating_sub(origin)) as u64,
        })
    }

    /// Steady-state violation rate: violating cycles per observed cycle
    /// (0 for an empty trace) — the residual disturbance level of a
    /// process that never quiesces.
    pub fn violation_rate(&self) -> f64 {
        if self.cycle == 0 {
            0.0
        } else {
            self.violations as f64 / self.cycle as f64
        }
    }
}

/// Classifies a whole trace of channel signals, returning the event string
/// (`T`, `R`, `I`, `N`/`n` for negative transfer/retry, `K` for kill) —
/// useful in tests and the Fig. 2 demo binary.
pub fn trace_string<I: IntoIterator<Item = ChannelSignals>>(signals: I) -> String {
    signals
        .into_iter()
        .map(|s| match s.event() {
            ChannelEvent::PositiveTransfer => 'T',
            ChannelEvent::Retry => 'R',
            ChannelEvent::Idle => 'I',
            ChannelEvent::NegativeTransfer => 'N',
            ChannelEvent::NegativeRetry => 'n',
            ChannelEvent::Kill => 'K',
        })
        .collect()
}

/// Checks that a positive-rail trace string belongs to `(I*R*T)*` — the
/// language of the SELF protocol (Fig. 2). Kills count as transfers for the
/// positive rail (the token left the channel), and negative-rail events are
/// ignored.
pub fn is_self_language(trace: &str) -> bool {
    // State machine: outside a burst (accepts I), or inside a retry burst
    // (accepts R until T).
    let mut in_retry = false;
    for c in trace.chars() {
        match (in_retry, c) {
            (false, 'I' | 'N' | 'n') => {}
            (false, 'T' | 'K') => {}
            (false, 'R') => in_retry = true,
            (true, 'R') => {}
            (true, 'T' | 'K') => in_retry = false,
            (true, _) => return false, // retry burst broken
            (false, _) => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(vp: bool, sp: bool, vn: bool, sn: bool, data: u64) -> ChannelSignals {
        ChannelSignals {
            vp,
            sp,
            vn,
            sn,
            data,
        }
    }

    #[test]
    fn persistence_ok() {
        let mut m = ProtocolMonitor::new(1);
        let c = ChanId(0);
        m.observe(c, sig(true, true, false, false, 7)).unwrap(); // R
        m.observe(c, sig(true, true, false, false, 7)).unwrap(); // R
        m.observe(c, sig(true, false, false, false, 7)).unwrap(); // T
        m.observe(c, sig(false, false, false, false, 0)).unwrap(); // I
    }

    #[test]
    fn dropped_valid_detected() {
        let mut m = ProtocolMonitor::new(1);
        let c = ChanId(0);
        m.observe(c, sig(true, true, false, false, 7)).unwrap();
        let err = m
            .observe(c, sig(false, false, false, false, 0))
            .unwrap_err();
        assert!(matches!(err, CoreError::ProtocolViolation { .. }));
    }

    #[test]
    fn changed_data_detected() {
        let mut m = ProtocolMonitor::new(1);
        let c = ChanId(0);
        m.observe(c, sig(true, true, false, false, 7)).unwrap();
        let err = m.observe(c, sig(true, true, false, false, 8)).unwrap_err();
        assert!(err.to_string().contains("data changed"), "{err}");
    }

    #[test]
    fn negative_persistence() {
        let mut m = ProtocolMonitor::new(1);
        let c = ChanId(0);
        m.observe(c, sig(false, false, true, true, 0)).unwrap(); // neg retry
        let err = m
            .observe(c, sig(false, false, false, false, 0))
            .unwrap_err();
        assert!(err.to_string().contains("V- dropped"), "{err}");
    }

    #[test]
    fn negative_retry_resolved_by_arriving_token_is_legal() {
        // The fork-withdrawal corner the topology fuzzer uncovered: after a
        // negative retry, V⁻ may withdraw in the same cycle a forward token
        // shows up — the anti-token annihilated one combinational level
        // downstream (at the fork's output channels), so the channel sees a
        // positive event instead of a kill.
        let mut m = ProtocolMonitor::new(1);
        let c = ChanId(0);
        m.observe(c, sig(false, false, true, true, 0)).unwrap(); // neg retry
        m.observe(c, sig(true, false, false, false, 3)).unwrap(); // T, anti gone
        m.observe(c, sig(false, false, false, false, 0)).unwrap(); // I
    }

    #[test]
    fn kill_resolves_a_retry_burst() {
        let mut m = ProtocolMonitor::new(1);
        let c = ChanId(0);
        m.observe(c, sig(true, true, false, false, 3)).unwrap(); // R
                                                                 // Next cycle the consumer kills: V+ still offered, V- asserted.
        m.observe(c, sig(true, false, true, false, 3)).unwrap(); // K
        m.observe(c, sig(false, false, false, false, 0)).unwrap(); // I
    }

    #[test]
    fn language_membership() {
        assert!(is_self_language("IIRRTITRT"));
        assert!(is_self_language(""));
        assert!(is_self_language("TTTT"));
        assert!(is_self_language("RK"));
        assert!(!is_self_language("RRI"), "retry burst cannot fall idle");
        assert!(!is_self_language("RIT"));
    }

    #[test]
    fn language_edge_cases() {
        // Empty trace: zero iterations of (I*R*T)*.
        assert!(is_self_language(""));
        // A lone Idle cycle.
        assert!(is_self_language("I"));
        // R without a (yet) matching T is a legal *prefix*: the burst is
        // still awaiting its transfer, and the online monitor only enforces
        // persistence on the following cycle.
        assert!(is_self_language("R"));
        assert!(is_self_language("IIRR"));
        assert!(is_self_language("TR"));
        // A retry burst broken by anything but R/T/K is a violation.
        assert!(!is_self_language("RIT"), "burst fell idle");
        assert!(!is_self_language("RN"), "negative transfer inside burst");
        assert!(!is_self_language("Rn"), "negative retry inside burst");
        // Unknown letters are rejected in either state.
        assert!(!is_self_language("X"));
        assert!(!is_self_language("RX"));
        // Negative-rail events outside a burst are ignored by the
        // positive-rail language.
        assert!(is_self_language("NnINT"));
    }

    #[test]
    fn monitor_reset_clears_pending_obligations() {
        let mut m = ProtocolMonitor::new(1);
        let c = ChanId(0);
        m.observe(c, sig(true, true, false, false, 5)).unwrap(); // R
        m.reset();
        // Without the reset this would be a persistence violation.
        m.observe(c, sig(false, false, false, false, 0)).unwrap();
    }

    #[test]
    fn recovery_detector_clean_trace_is_recovered() {
        let mut d = RecoveryDetector::new();
        for s in [
            sig(false, false, false, false, 0), // I
            sig(true, true, false, false, 1),   // R
            sig(true, false, false, false, 1),  // T
        ] {
            assert!(!d.observe(s));
        }
        assert_eq!(d.violations(), 0);
        assert_eq!(d.last_violation(), None);
        assert!(d.recovered(3));
    }

    #[test]
    fn recovery_detector_scores_and_resynchronizes() {
        let mut d = RecoveryDetector::new();
        d.observe(sig(true, true, false, false, 1)); // R: obligation pending
        assert!(d.observe(sig(false, false, false, false, 0)), "V+ dropped");
        assert_eq!(d.last_violation(), Some(1));
        // Post-fault trace is legal again: no further violations.
        for _ in 0..5 {
            assert!(!d.observe(sig(true, false, false, false, 0)));
        }
        assert_eq!(d.violations(), 1);
        assert!(d.recovered(5), "violation 5 cycles before the end");
        assert!(!d.recovered(6), "tail longer than the quiet suffix");
    }

    #[test]
    fn recovery_detector_flags_invariant_breaks() {
        let mut d = RecoveryDetector::new();
        assert!(d.observe(sig(false, true, true, false, 0)), "V- with S+");
        assert!(d.observe(sig(true, false, false, true, 0)), "V+ with S-");
        assert_eq!(d.violations(), 2);
        assert!(!d.recovered(1), "violation on the final cycle");
    }

    #[test]
    fn recovery_detector_negative_persistence_is_annihilation_aware() {
        let mut d = RecoveryDetector::new();
        d.observe(sig(false, false, true, true, 0)); // negative retry
        assert!(
            !d.observe(sig(true, false, false, false, 0)),
            "withdrawal with arriving token is legal"
        );
        d.observe(sig(false, false, true, true, 0)); // negative retry again
        assert!(
            d.observe(sig(false, false, false, false, 0)),
            "anti-token vanished with both valids low"
        );
    }

    #[test]
    fn stabilization_retimes_on_reinjection_during_tail() {
        // First strike at cycle 1, then a quiet stretch that *looks* like a
        // completed recovery...
        let mut d = RecoveryDetector::new();
        d.observe(sig(true, true, false, false, 1)); // 0: R, obligation
        assert!(d.observe(sig(false, false, false, false, 0))); // 1: V+ drop
        for _ in 0..8 {
            d.observe(sig(false, false, false, false, 0)); // 2..=9 quiet
        }
        assert!(d.recovered(4));
        assert_eq!(d.stabilization_time(4), Some(2), "1 strike, quiet from 2");
        // ...but the process re-injects mid-tail: the tracker must retime
        // to the new event, not keep reporting the first recovery.
        d.fault_event(); // event at cycle 10
        d.observe(sig(true, true, false, false, 2)); // 10: R
        assert!(d.observe(sig(false, false, false, false, 0))); // 11: drop
        assert!(!d.recovered(4), "violation 11 inside a 4-tail at cycle 12");
        assert_eq!(d.stabilization_time(4), None, "mid-recovery: not stable");
        for _ in 0..6 {
            d.observe(sig(false, false, false, false, 0)); // 12..=17 quiet
        }
        assert_eq!(d.violations(), 2, "history survives the retime");
        assert_eq!(d.fault_events(), 1);
        assert_eq!(d.last_fault_event(), Some(10));
        assert_eq!(
            d.stabilization_time(4),
            Some(2),
            "measured from the re-injection at 10 to conformance onset 12"
        );
        assert!((d.violation_rate() - 2.0 / 18.0).abs() < 1e-12);
    }

    #[test]
    fn stabilization_is_zero_when_last_event_causes_no_violation() {
        let mut d = RecoveryDetector::new();
        assert!(d.observe(sig(false, true, true, false, 0))); // 0: invariant
        for _ in 0..9 {
            d.observe(sig(false, false, false, false, 0)); // 1..=9 quiet
        }
        d.fault_event(); // event at 10 that the network masks entirely
        for _ in 0..5 {
            d.observe(sig(false, false, false, false, 0)); // 10..=14 quiet
        }
        assert_eq!(
            d.stabilization_time(3),
            Some(0),
            "no violation after the last event: instantly conformant"
        );
    }

    #[test]
    fn reinjection_keeps_pending_obligations() {
        // A fault event between a retry and its resolution must not erase
        // the persistence obligation.
        let mut d = RecoveryDetector::new();
        d.observe(sig(true, true, false, false, 1)); // 0: R
        d.fault_event();
        assert!(
            d.observe(sig(false, false, false, false, 0)),
            "V+ drop across a fault event still scores"
        );
    }

    #[test]
    fn violation_rate_of_never_quiescing_trace() {
        let mut d = RecoveryDetector::new();
        for _ in 0..10 {
            assert!(d.observe(sig(false, true, true, false, 0)));
        }
        assert_eq!(d.stabilization_time(1), None, "never stabilizes");
        assert!((d.violation_rate() - 1.0).abs() < 1e-12);
        assert_eq!(RecoveryDetector::new().violation_rate(), 0.0);
    }

    #[test]
    fn trace_string_rendering() {
        let t = trace_string([
            sig(false, false, false, false, 0),
            sig(true, true, false, false, 0),
            sig(true, false, false, false, 0),
            sig(true, false, true, false, 0),
            sig(false, false, true, false, 0),
            sig(false, false, true, true, 0),
        ]);
        assert_eq!(t, "IRTKNn");
    }
}
