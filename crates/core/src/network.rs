//! Elastic networks: components wired by dual channels.
//!
//! A network is the control-layer view of an elastic system: sources and
//! sinks abstract the environment, elastic half-buffer stages provide
//! storage, joins/forks synchronize flows, early-evaluation joins generate
//! anti-tokens, and variable-latency units wrap multi-cycle datapath blocks
//! behind a go/done/ack handshake.
//!
//! The same network drives both back-ends: the reference behavioural
//! simulator ([`crate::sim`]) and the gate-level compiler
//! ([`crate::compile`]).

use std::collections::HashMap;
use std::fmt;

use crate::channel::ChanId;
use crate::ee::EarlyEval;
use crate::error::CoreError;

/// Identifier of a component in an [`ElasticNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CompId(pub(crate) u32);

impl CompId {
    /// Dense index of this component.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CompId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// The kind (and static parameters) of a component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComponentKind {
    /// Environment producer: offers tokens on its single output channel
    /// according to the environment policy; absorbs anti-tokens passively
    /// (`S⁻ = ¬V⁺`), annihilating them against its own pending tokens.
    Source,
    /// Environment consumer on a single input channel: accepts or stalls
    /// tokens and may emit anti-tokens (kills) per the environment policy.
    Sink,
    /// Elastic buffer (EB): forward latency one cycle, capacity two tokens
    /// *or* two anti-tokens, with both stop rails registered — the
    /// flip-flop equivalent of the paper's pair of elastic half-buffers,
    /// whose latched V and S signals cut every combinational path
    /// (Sect. 4, Fig. 5).
    Eb {
        /// Whether the buffer powers up holding one token.
        init_token: bool,
        /// Payload of the initial token.
        init_data: u64,
    },
    /// Join: `inputs` input channels, one output. `ee = None` is the lazy
    /// join (fires when all inputs are valid); `Some` is the
    /// early-evaluation join of Fig. 6(c), which generates anti-tokens on
    /// the inputs it fired without.
    Join {
        /// Number of input channels.
        inputs: usize,
        /// Optional early-evaluation function.
        ee: Option<EarlyEval>,
    },
    /// Eager fork: one input, `outputs` output channels. Each output fires
    /// as soon as its consumer is ready; per-output flip-flops remember who
    /// already took the current token (Fig. 4(b)/6(b)).
    Fork {
        /// Number of output channels.
        outputs: usize,
    },
    /// Variable-latency unit (Fig. 7(b)): one input, one output, go/done/ack
    /// handshake around a multi-cycle computation whose latency is drawn by
    /// the environment policy. A busy unit annihilates an arriving
    /// anti-token against its in-flight token; an idle unit lets anti-tokens
    /// flow through backwards.
    VarLatency,
}

impl ComponentKind {
    /// Number of input ports.
    pub fn num_inputs(&self) -> usize {
        match self {
            ComponentKind::Source => 0,
            ComponentKind::Sink | ComponentKind::Eb { .. } | ComponentKind::VarLatency => 1,
            ComponentKind::Join { inputs, .. } => *inputs,
            ComponentKind::Fork { .. } => 1,
        }
    }

    /// Number of output ports.
    pub fn num_outputs(&self) -> usize {
        match self {
            ComponentKind::Sink => 0,
            ComponentKind::Source | ComponentKind::Eb { .. } | ComponentKind::VarLatency => 1,
            ComponentKind::Join { .. } => 1,
            ComponentKind::Fork { outputs } => *outputs,
        }
    }

    /// Whether every combinational rail (forward valid *and* both backward
    /// stop rails) is registered through this component. Only elastic
    /// buffers cut all of them; variable-latency units register V⁺ but pass
    /// the stop rails through, and joins/forks are fully combinational —
    /// so every cycle of the network must contain an [`ComponentKind::Eb`].
    pub fn cuts_forward_path(&self) -> bool {
        matches!(
            self,
            ComponentKind::Source | ComponentKind::Sink | ComponentKind::Eb { .. }
        )
    }
}

/// A component instance: kind plus display name.
#[derive(Debug, Clone)]
pub struct Component {
    /// Static parameters.
    pub kind: ComponentKind,
    /// Display name (used in diagnostics, stats and compiled net names).
    pub name: String,
}

/// A channel instance.
#[derive(Debug, Clone)]
pub struct Channel {
    /// Display name.
    pub name: String,
    /// Producing component and its output-port index.
    pub from: (CompId, usize),
    /// Consuming component and its input-port index.
    pub to: (CompId, usize),
    /// Whether the channel uses the passive anti-token interface of
    /// Fig. 7(a): anti-tokens are stopped at this boundary (`S⁻ = ¬V⁺`) and
    /// wait for a token to kill instead of propagating further upstream.
    pub passive: bool,
}

/// An elastic control network.
///
/// Build with the `add_*` methods and [`ElasticNetwork::connect`], then
/// validate with [`ElasticNetwork::check`] (the simulator and compiler call
/// it for you).
///
/// # Example
///
/// ```
/// use elastic_core::network::ElasticNetwork;
///
/// # fn main() -> Result<(), elastic_core::CoreError> {
/// let mut net = ElasticNetwork::new("pipeline");
/// let src = net.add_source("src")?;
/// let b = net.add_buffer("b", 2, 1)?; // one EB (2 stages), one initial token
/// let snk = net.add_sink("snk")?;
/// net.connect(src, 0, b, 0, "in")?;
/// net.connect(b, 0, snk, 0, "out")?;
/// net.check()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ElasticNetwork {
    name: String,
    components: Vec<Component>,
    channels: Vec<Channel>,
    /// For each component: input-port -> channel (filled by `connect`).
    in_conn: Vec<Vec<Option<ChanId>>>,
    /// For each component: output-port -> channel.
    out_conn: Vec<Vec<Option<ChanId>>>,
    /// `(first stage, last stage)` pairs of buffer chains, so that
    /// connecting *from* a chain's handle attaches to its last stage.
    buffer_alias: Vec<(CompId, CompId)>,
    /// Component name -> id. Enforces name uniqueness at `add` time and
    /// makes `component_by_name` O(1).
    name_index: HashMap<String, u32>,
}

impl ElasticNetwork {
    /// Creates an empty network.
    pub fn new(name: impl Into<String>) -> Self {
        ElasticNetwork {
            name: name.into(),
            components: Vec::new(),
            channels: Vec::new(),
            in_conn: Vec::new(),
            out_conn: Vec::new(),
            buffer_alias: Vec::new(),
            name_index: HashMap::new(),
        }
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a component of arbitrary kind.
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] if a component with the same name
    /// already exists: names key [`ElasticNetwork::component_by_name`] and
    /// the sanitized identifiers of the Verilog/BLIF exporters, so they
    /// must be unique per network.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        kind: ComponentKind,
    ) -> Result<CompId, CoreError> {
        let name = name.into();
        if self.name_index.contains_key(&name) {
            return Err(CoreError::DuplicateName(name));
        }
        let id = CompId(self.components.len() as u32);
        self.in_conn.push(vec![None; kind.num_inputs()]);
        self.out_conn.push(vec![None; kind.num_outputs()]);
        self.name_index.insert(name.clone(), id.0);
        self.components.push(Component { kind, name });
        Ok(id)
    }

    /// Adds an environment source.
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] on a name clash.
    pub fn add_source(&mut self, name: impl Into<String>) -> Result<CompId, CoreError> {
        self.add(name, ComponentKind::Source)
    }

    /// Adds an environment sink.
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] on a name clash.
    pub fn add_sink(&mut self, name: impl Into<String>) -> Result<CompId, CoreError> {
        self.add(name, ComponentKind::Sink)
    }

    /// Adds a single elastic buffer (capacity 2, latency 1).
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] on a name clash.
    pub fn add_eb(
        &mut self,
        name: impl Into<String>,
        init_token: bool,
    ) -> Result<CompId, CoreError> {
        self.add(
            name,
            ComponentKind::Eb {
                init_token,
                init_data: 0,
            },
        )
    }

    /// Adds a chain of `stages` elastic buffers carrying `tokens` initial
    /// tokens, placed in the downstream-most buffers like the paper's
    /// initialized EBs.
    ///
    /// The stages are separate `Eb` components named `<name>.<i>` and wired
    /// internally. The returned handle stands for the whole chain when
    /// passed to [`ElasticNetwork::connect`]: connecting *to* it attaches to
    /// the first stage's input; connecting *from* it attaches to the last
    /// stage's output.
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] if any stage name `<name>.<i>` clashes.
    ///
    /// # Panics
    ///
    /// Panics if `stages == 0` or `tokens > stages`.
    pub fn add_buffer(
        &mut self,
        name: impl Into<String>,
        stages: usize,
        tokens: usize,
    ) -> Result<CompId, CoreError> {
        let name = name.into();
        assert!(stages > 0, "buffer needs at least one stage");
        assert!(tokens <= stages, "one initial token per stage at most");
        let mut ids = Vec::with_capacity(stages);
        for i in 0..stages {
            // Fill tokens from the output end (stages count down).
            let holds = i >= stages - tokens;
            let id = self.add(
                format!("{name}.{i}"),
                ComponentKind::Eb {
                    init_token: holds,
                    init_data: 0,
                },
            )?;
            ids.push(id);
        }
        for w in ids.windows(2) {
            self.connect(w[0], 0, w[1], 0, format!("{name}.int{}", w[0].0))
                .expect("fresh ports cannot clash");
        }
        // Alias bookkeeping: input = first stage, output = last stage.
        self.buffer_alias
            .push((ids[0], *ids.last().expect("non-empty")));
        Ok(ids[0])
    }

    /// Adds a lazy join with `inputs` inputs.
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] on a name clash.
    pub fn add_join(
        &mut self,
        name: impl Into<String>,
        inputs: usize,
    ) -> Result<CompId, CoreError> {
        self.add(name, ComponentKind::Join { inputs, ee: None })
    }

    /// Adds an early-evaluation join.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::BadEarlyEval`] from validation, and
    /// [`CoreError::DuplicateName`] on a name clash.
    pub fn add_early_join(
        &mut self,
        name: impl Into<String>,
        inputs: usize,
        ee: EarlyEval,
    ) -> Result<CompId, CoreError> {
        ee.validate(inputs)?;
        self.add(
            name,
            ComponentKind::Join {
                inputs,
                ee: Some(ee),
            },
        )
    }

    /// Adds an eager fork with `outputs` outputs.
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] on a name clash.
    pub fn add_fork(
        &mut self,
        name: impl Into<String>,
        outputs: usize,
    ) -> Result<CompId, CoreError> {
        self.add(name, ComponentKind::Fork { outputs })
    }

    /// Adds a variable-latency unit.
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] on a name clash.
    pub fn add_var_latency(&mut self, name: impl Into<String>) -> Result<CompId, CoreError> {
        self.add(name, ComponentKind::VarLatency)
    }

    /// Connects output port `out_port` of `from` to input port `in_port` of
    /// `to` with a fresh channel.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadPort`] if a port index is out of range or already
    /// connected; [`CoreError::UnknownComponent`] for bad ids.
    pub fn connect(
        &mut self,
        from: CompId,
        out_port: usize,
        to: CompId,
        in_port: usize,
        name: impl Into<String>,
    ) -> Result<ChanId, CoreError> {
        let from = self.resolve_out(from);
        let to = self.resolve_in(to);
        self.check_comp(from)?;
        self.check_comp(to)?;
        let out_slot = self
            .out_conn
            .get_mut(from.index())
            .and_then(|v| v.get_mut(out_port))
            .ok_or(CoreError::BadPort {
                comp: from,
                port: out_port,
                input: false,
            })?;
        if out_slot.is_some() {
            return Err(CoreError::BadPort {
                comp: from,
                port: out_port,
                input: false,
            });
        }
        let id = ChanId(self.channels.len() as u32);
        *out_slot = Some(id);
        let in_slot = self
            .in_conn
            .get_mut(to.index())
            .and_then(|v| v.get_mut(in_port))
            .ok_or(CoreError::BadPort {
                comp: to,
                port: in_port,
                input: true,
            })?;
        if in_slot.is_some() {
            // roll back the output slot
            self.out_conn[from.index()][out_port] = None;
            return Err(CoreError::BadPort {
                comp: to,
                port: in_port,
                input: true,
            });
        }
        *in_slot = Some(id);
        self.channels.push(Channel {
            name: name.into(),
            from: (from, out_port),
            to: (to, in_port),
            passive: false,
        });
        Ok(id)
    }

    /// Marks a channel as using the passive anti-token interface
    /// (Fig. 7(a)).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownChannel`] for a bad id.
    pub fn set_passive(&mut self, chan: ChanId) -> Result<(), CoreError> {
        self.channels
            .get_mut(chan.index())
            .ok_or(CoreError::UnknownChannel(chan))?
            .passive = true;
        Ok(())
    }

    /// Number of components (buffer chains count one component per stage).
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Component metadata.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn component(&self, id: CompId) -> &Component {
        &self.components[id.index()]
    }

    /// Channel metadata.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn channel(&self, id: ChanId) -> &Channel {
        &self.channels[id.index()]
    }

    /// Iterator over component ids.
    pub fn components(&self) -> impl ExactSizeIterator<Item = CompId> + '_ {
        (0..self.components.len() as u32).map(CompId)
    }

    /// Iterator over channel ids.
    pub fn channels(&self) -> impl ExactSizeIterator<Item = ChanId> + '_ {
        (0..self.channels.len() as u32).map(ChanId)
    }

    /// Looks up a component by name. Names are unique (enforced by
    /// [`ElasticNetwork::add`]), so this is an O(1) index lookup.
    pub fn component_by_name(&self, name: &str) -> Option<CompId> {
        self.name_index.get(name).map(|&i| CompId(i))
    }

    /// Looks up a channel by name (first match).
    pub fn channel_by_name(&self, name: &str) -> Option<ChanId> {
        self.channels
            .iter()
            .position(|c| c.name == name)
            .map(|i| ChanId(i as u32))
    }

    /// Channel connected to an input port, if wired.
    pub fn input_channel(&self, comp: CompId, port: usize) -> Option<ChanId> {
        self.in_conn
            .get(comp.index())
            .and_then(|v| v.get(port))
            .copied()
            .flatten()
    }

    /// Channel connected to an output port, if wired.
    pub fn output_channel(&self, comp: CompId, port: usize) -> Option<ChanId> {
        self.out_conn
            .get(comp.index())
            .and_then(|v| v.get(port))
            .copied()
            .flatten()
    }

    /// Sets the power-up token of an elastic buffer.
    ///
    /// Used by the liveness lint's sabotage tests and the fuzzer's
    /// negative oracle to derive token-starved variants of a network
    /// without rebuilding it.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownComponent`] for a bad id,
    /// [`CoreError::NotABuffer`] if the component is not an
    /// [`ComponentKind::Eb`].
    pub fn set_init_token(&mut self, id: CompId, token: bool) -> Result<(), CoreError> {
        self.check_comp(id)?;
        match &mut self.components[id.index()].kind {
            ComponentKind::Eb { init_token, .. } => {
                *init_token = token;
                Ok(())
            }
            _ => Err(CoreError::NotABuffer(id)),
        }
    }

    /// Validates the network: all ports wired, and no buffer-free cycle.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnconnectedPort`] or [`CoreError::BufferlessCycle`].
    pub fn check(&self) -> Result<(), CoreError> {
        for comp in self.components() {
            for (port, slot) in self.in_conn[comp.index()].iter().enumerate() {
                if slot.is_none() {
                    return Err(CoreError::UnconnectedPort {
                        comp,
                        port,
                        input: true,
                    });
                }
            }
            for (port, slot) in self.out_conn[comp.index()].iter().enumerate() {
                if slot.is_none() {
                    return Err(CoreError::UnconnectedPort {
                        comp,
                        port,
                        input: false,
                    });
                }
            }
        }
        // Cycle check over pass-through (non-registering) components.
        self.check_bufferless_cycles()
    }

    fn check_bufferless_cycles(&self) -> Result<(), CoreError> {
        match self.find_uncut_cycle(ComponentKind::cuts_forward_path) {
            Some(names) => Err(CoreError::BufferlessCycle(names)),
            None => Ok(()),
        }
    }

    /// Checks the token-liveness obligation of paper Sect. 2: every
    /// directed cycle of the network must carry at least one initial token,
    /// or the components on it wait on each other forever. A cycle carries
    /// a token exactly when it passes through an [`ComponentKind::Eb`] with
    /// `init_token` set, so the check looks for a cycle avoiding all of
    /// them. Unlike [`ElasticNetwork::check`] this does not require all
    /// ports to be wired — it is usable mid-construction and by the lint
    /// passes of `elastic_lint`.
    ///
    /// # Errors
    ///
    /// [`CoreError::TokenStarvedCycle`] with the component names of a
    /// token-free cycle.
    pub fn check_token_liveness(&self) -> Result<(), CoreError> {
        let cuts = |k: &ComponentKind| {
            matches!(
                k,
                ComponentKind::Source
                    | ComponentKind::Sink
                    | ComponentKind::Eb {
                        init_token: true,
                        ..
                    }
            )
        };
        match self.find_uncut_cycle(cuts) {
            Some(names) => Err(CoreError::TokenStarvedCycle(names)),
            None => Ok(()),
        }
    }

    /// Finds one directed cycle avoiding every component for which `cuts`
    /// is true, returning the names of the components on it. DFS over
    /// components, following channels forward, where only non-cutting
    /// components propagate the path. Unwired output ports simply end the
    /// path, so the search is usable before [`ElasticNetwork::check`].
    fn find_uncut_cycle(&self, cuts: impl Fn(&ComponentKind) -> bool) -> Option<Vec<String>> {
        const WHITE: u8 = 0;
        const GREY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.components.len();
        let mut colour = vec![WHITE; n];
        for start in 0..n {
            if colour[start] != WHITE || cuts(&self.components[start].kind) {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            let mut path = vec![start];
            colour[start] = GREY;
            while let Some(&mut (v, ref mut cursor)) = stack.last_mut() {
                let outs = &self.out_conn[v];
                if *cursor < outs.len() {
                    let Some(chan) = outs[*cursor] else {
                        *cursor += 1;
                        continue;
                    };
                    *cursor += 1;
                    let w = self.channels[chan.index()].to.0.index();
                    if cuts(&self.components[w].kind) {
                        continue;
                    }
                    match colour[w] {
                        WHITE => {
                            colour[w] = GREY;
                            stack.push((w, 0));
                            path.push(w);
                        }
                        GREY => {
                            let pos = path.iter().position(|&p| p == w).expect("on path");
                            return Some(
                                path[pos..]
                                    .iter()
                                    .map(|&p| self.components[p].name.clone())
                                    .collect(),
                            );
                        }
                        _ => {}
                    }
                } else {
                    colour[v] = BLACK;
                    stack.pop();
                    path.pop();
                }
            }
        }
        None
    }

    fn check_comp(&self, id: CompId) -> Result<(), CoreError> {
        if id.index() >= self.components.len() {
            return Err(CoreError::UnknownComponent(id));
        }
        Ok(())
    }

    fn resolve_out(&self, id: CompId) -> CompId {
        for &(first, last) in &self.buffer_alias {
            if id == first {
                return last;
            }
        }
        id
    }

    fn resolve_in(&self, id: CompId) -> CompId {
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_linear_pipeline() {
        let mut net = ElasticNetwork::new("lin");
        let src = net.add_source("src").unwrap();
        let b1 = net.add_eb("b1", true).unwrap();
        let b2 = net.add_eb("b2", false).unwrap();
        let snk = net.add_sink("snk").unwrap();
        net.connect(src, 0, b1, 0, "c0").unwrap();
        net.connect(b1, 0, b2, 0, "c1").unwrap();
        net.connect(b2, 0, snk, 0, "c2").unwrap();
        net.check().unwrap();
        assert_eq!(net.num_components(), 4);
        assert_eq!(net.num_channels(), 3);
    }

    #[test]
    fn unconnected_port_detected() {
        let mut net = ElasticNetwork::new("bad");
        let src = net.add_source("src").unwrap();
        let snk = net.add_sink("snk").unwrap();
        let _ = src;
        let _ = snk;
        let err = net.check().unwrap_err();
        assert!(matches!(err, CoreError::UnconnectedPort { .. }));
    }

    #[test]
    fn double_connection_rejected() {
        let mut net = ElasticNetwork::new("dup");
        let src = net.add_source("src").unwrap();
        let f = net.add_fork("f", 2).unwrap();
        let snk1 = net.add_sink("s1").unwrap();
        net.connect(src, 0, f, 0, "a").unwrap();
        let err = net.connect(src, 0, snk1, 0, "b").unwrap_err();
        assert!(matches!(err, CoreError::BadPort { input: false, .. }));
    }

    #[test]
    fn bufferless_cycle_detected() {
        // fork -> join -> fork with no buffer: combinational loop.
        let mut net = ElasticNetwork::new("loop");
        let src = net.add_source("src").unwrap();
        let join = net.add_join("j", 2).unwrap();
        let fork = net.add_fork("f", 2).unwrap();
        let snk = net.add_sink("snk").unwrap();
        net.connect(src, 0, join, 0, "in").unwrap();
        net.connect(join, 0, fork, 0, "jf").unwrap();
        net.connect(fork, 0, join, 1, "fb").unwrap();
        net.connect(fork, 1, snk, 0, "out").unwrap();
        let err = net.check().unwrap_err();
        assert!(matches!(err, CoreError::BufferlessCycle(_)), "{err:?}");
    }

    #[test]
    fn buffered_cycle_is_fine() {
        let mut net = ElasticNetwork::new("ring");
        let join = net.add_join("j", 2).unwrap();
        let fork = net.add_fork("f", 2).unwrap();
        let b = net.add_eb("b", true).unwrap();
        let src = net.add_source("src").unwrap();
        let snk = net.add_sink("snk").unwrap();
        net.connect(src, 0, join, 0, "in").unwrap();
        net.connect(join, 0, fork, 0, "jf").unwrap();
        net.connect(fork, 0, b, 0, "fb").unwrap();
        net.connect(b, 0, join, 1, "bj").unwrap();
        net.connect(fork, 1, snk, 0, "out").unwrap();
        net.check().unwrap();
    }

    #[test]
    fn buffer_chain_aliases_last_stage_output() {
        let mut net = ElasticNetwork::new("chain");
        let src = net.add_source("src").unwrap();
        let eb = net.add_buffer("eb", 2, 1).unwrap();
        let snk = net.add_sink("snk").unwrap();
        net.connect(src, 0, eb, 0, "in").unwrap();
        net.connect(eb, 0, snk, 0, "out").unwrap();
        net.check().unwrap();
        // Two stages created, internal channel wired.
        assert_eq!(net.num_components(), 4);
        assert_eq!(net.num_channels(), 3);
        let last = net.component_by_name("eb.1").unwrap();
        match &net.component(last).kind {
            ComponentKind::Eb { init_token, .. } => assert!(*init_token),
            other => panic!("unexpected {other:?}"),
        }
        let first = net.component_by_name("eb.0").unwrap();
        match &net.component(first).kind {
            ComponentKind::Eb { init_token, .. } => assert!(!*init_token),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn token_liveness_flags_starved_ring() {
        // A buffered ring whose only buffer holds no token: structurally
        // fine (check passes) but deadlocked from cycle 0.
        let mut net = ElasticNetwork::new("starved");
        let join = net.add_join("j", 2).unwrap();
        let fork = net.add_fork("f", 2).unwrap();
        let b = net.add_eb("b", false).unwrap();
        let src = net.add_source("src").unwrap();
        let snk = net.add_sink("snk").unwrap();
        net.connect(src, 0, join, 0, "in").unwrap();
        net.connect(join, 0, fork, 0, "jf").unwrap();
        net.connect(fork, 0, b, 0, "fb").unwrap();
        net.connect(b, 0, join, 1, "bj").unwrap();
        net.connect(fork, 1, snk, 0, "out").unwrap();
        net.check().unwrap();
        let err = net.check_token_liveness().unwrap_err();
        let CoreError::TokenStarvedCycle(names) = err else {
            panic!("unexpected error kind");
        };
        assert!(names.contains(&"b".to_string()), "{names:?}");
        // Flipping the token in restores liveness.
        net.set_init_token(b, true).unwrap();
        net.check_token_liveness().unwrap();
    }

    #[test]
    fn token_liveness_usable_before_check() {
        // An unwired output port must not panic the liveness walk.
        let mut net = ElasticNetwork::new("partial");
        let join = net.add_join("j", 2).unwrap();
        let fork = net.add_fork("f", 2).unwrap();
        net.connect(join, 0, fork, 0, "jf").unwrap();
        net.connect(fork, 0, join, 1, "fb").unwrap();
        assert!(net.check().is_err());
        let err = net.check_token_liveness().unwrap_err();
        assert!(matches!(err, CoreError::TokenStarvedCycle(_)));
    }

    #[test]
    fn set_init_token_rejects_non_buffers() {
        let mut net = ElasticNetwork::new("t");
        let src = net.add_source("src").unwrap();
        let err = net.set_init_token(src, true).unwrap_err();
        assert!(matches!(err, CoreError::NotABuffer(_)));
        assert!(net.set_init_token(CompId(99), true).is_err());
    }

    #[test]
    fn passive_marking() {
        let mut net = ElasticNetwork::new("p");
        let src = net.add_source("src").unwrap();
        let snk = net.add_sink("snk").unwrap();
        let c = net.connect(src, 0, snk, 0, "c").unwrap();
        net.set_passive(c).unwrap();
        assert!(net.channel(c).passive);
        assert!(net.set_passive(ChanId(9)).is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut net = ElasticNetwork::new("dupname");
        net.add_source("x").unwrap();
        let err = net.add_sink("x").unwrap_err();
        assert_eq!(err, CoreError::DuplicateName("x".into()));
        // Buffer stages claim `<name>.<i>`, so a clash inside a chain is
        // caught too.
        net.add_eb("c.1", false).unwrap();
        assert!(matches!(
            net.add_buffer("c", 2, 0),
            Err(CoreError::DuplicateName(_))
        ));
        // The failed adds must not have corrupted the lookup index.
        assert_eq!(net.component_by_name("x"), Some(CompId(0)));
    }

    #[test]
    fn lookup_by_name() {
        let mut net = ElasticNetwork::new("n");
        let src = net.add_source("alpha").unwrap();
        let snk = net.add_sink("beta").unwrap();
        let c = net.connect(src, 0, snk, 0, "alpha->beta").unwrap();
        assert_eq!(net.component_by_name("alpha"), Some(src));
        assert_eq!(net.channel_by_name("alpha->beta"), Some(c));
        assert_eq!(net.input_channel(snk, 0), Some(c));
        assert_eq!(net.output_channel(src, 0), Some(c));
    }
}
