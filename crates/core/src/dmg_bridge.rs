//! Performance bounds via the dual-marked-graph abstraction.
//!
//! For a *lazy* elastic system (no early evaluation) the behaviour is a
//! marked graph, and the sustainable throughput is bounded by the minimum
//! cycle ratio `min_C tokens(C)/delay(C)` — the analysis of the paper's
//! reference \[8\]. This module abstracts an [`ElasticNetwork`] into an
//! [`elastic_dmg::Dmg`]: stateful components (buffers, variable-latency
//! units, environment ports) become nodes; combinational joins and forks
//! collapse into the arcs; buffer capacity becomes backward (bubble) arcs.
//!
//! Early evaluation can beat the bound — the measured Table 1 throughput of
//! the active configuration exceeding this bound *is* the paper's headline
//! effect, demonstrated in the `dmg_bound` bench binary.

use elastic_dmg::{Dmg, DmgBuilder, NodeId};

use crate::error::CoreError;
use crate::network::{CompId, ComponentKind, ElasticNetwork};
use crate::sim::EnvConfig;

/// Fixed-point scale for fractional mean latencies (delays are integers in
/// the DMG analysis; 10 gives one decimal digit of precision).
const SCALE: u64 = 10;

/// A throughput bound derived from the marked-graph abstraction.
#[derive(Debug, Clone)]
pub struct DmgBound {
    /// The abstracted graph.
    pub dmg: Dmg,
    /// Upper bound on lazy throughput (transfers per cycle per channel).
    pub bound: f64,
    /// Names of the components on the critical cycle.
    pub critical: Vec<String>,
}

/// Computes the lazy throughput bound of `net` under mean latencies from
/// `env` (variable-latency units contribute their expected latency).
///
/// # Errors
///
/// [`CoreError::Netlist`] wraps DMG analysis failures (e.g. a network that
/// is not strongly connected after abstraction — open systems must be
/// closed through source/sink capacity).
pub fn lazy_throughput_bound(net: &ElasticNetwork, env: &EnvConfig) -> Result<DmgBound, CoreError> {
    net.check()?;
    // Stateful nodes: everything except joins and forks.
    let stateful: Vec<CompId> = net
        .components()
        .filter(|&c| {
            !matches!(
                net.component(c).kind,
                ComponentKind::Join { .. } | ComponentKind::Fork { .. }
            )
        })
        .collect();

    let mut b = DmgBuilder::new();
    let mut node_of: Vec<Option<NodeId>> = vec![None; net.num_components()];
    let mut delays: Vec<u64> = Vec::new();
    for &c in &stateful {
        let name = net.component(c).name.clone();
        let delay = match &net.component(c).kind {
            ComponentKind::VarLatency => {
                let dist = env
                    .vls
                    .get(&name)
                    .cloned()
                    .unwrap_or_else(|| env.default_vl.clone());
                (dist.mean() * SCALE as f64).round().max(1.0) as u64
            }
            _ => SCALE,
        };
        let node = b.node(name);
        // Self-loop: a unit is busy with one token for its whole delay
        // (non-reentrant occupancy), bounding its rate at 1/delay.
        b.named_arc(format!("{}.busy", net.component(c).name), node, node, 1);
        node_of[c.index()] = Some(node);
        delays.push(delay);
    }

    // For every stateful component, walk forward through combinational
    // components to the next stateful ones.
    for &x in &stateful {
        for succ in comb_successors(net, x) {
            let (m, cap) = storage_of(net, succ);
            let nx = node_of[x.index()].expect("stateful");
            let ny = node_of[succ.index()].expect("stateful");
            b.named_arc(
                format!("{}=>{}", net.component(x).name, net.component(succ).name),
                nx,
                ny,
                m,
            );
            b.named_arc(
                format!("{}<={}", net.component(x).name, net.component(succ).name),
                ny,
                nx,
                cap - m,
            );
        }
    }

    let dmg = b.build().map_err(|e| CoreError::Netlist(e.to_string()))?;
    let mcr = elastic_dmg::analysis::min_cycle_ratio(&dmg, &delays)
        .map_err(|e| CoreError::Netlist(e.to_string()))?;
    let critical = mcr
        .cycle
        .arcs()
        .iter()
        .map(|&a| dmg.node_name(dmg.arc_info(a).from).to_string())
        .collect();
    Ok(DmgBound {
        bound: mcr.ratio * SCALE as f64,
        critical,
        dmg,
    })
}

/// Initial tokens and capacity contributed by the *consumer-side* stateful
/// component of an abstract arc.
fn storage_of(net: &ElasticNetwork, comp: CompId) -> (i64, i64) {
    match &net.component(comp).kind {
        ComponentKind::Eb { init_token, .. } => (i64::from(*init_token), 2),
        // A variable-latency unit accepts its next token the cycle its
        // result is taken, so producer and consumer overlap: two stages of
        // decoupling (the done slot plus the busy slot).
        ComponentKind::VarLatency => (0, 2),
        // Environment ports have unbounded slack: model with a generous
        // capacity so they never constrain the cycle ratio.
        ComponentKind::Source | ComponentKind::Sink => (0, 64),
        _ => (0, 1),
    }
}

/// Stateful components reachable from `comp` by crossing only joins/forks.
fn comb_successors(net: &ElasticNetwork, comp: CompId) -> Vec<CompId> {
    let mut out = Vec::new();
    let mut stack = vec![comp];
    let mut first = true;
    let mut seen = vec![false; net.num_components()];
    while let Some(c) = stack.pop() {
        let kind = &net.component(c).kind;
        if !first
            && !matches!(
                kind,
                ComponentKind::Join { .. } | ComponentKind::Fork { .. }
            )
        {
            if !seen[c.index()] {
                seen[c.index()] = true;
                out.push(c);
            }
            continue;
        }
        first = false;
        for p in 0..kind.num_outputs() {
            if let Some(ch) = net.output_channel(c, p) {
                stack.push(net.channel(ch).to.0);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{BehavSim, RandomEnv};
    use crate::systems::{paper_example, Config};

    #[test]
    fn ring_bound_matches_tokens_over_latency() {
        // src -> eb(no token) -> eb(token) -> snk is open; close via a ring:
        // build a 4-buffer ring with one token by hand.
        let mut net = ElasticNetwork::new("ring");
        let j = net.add_join("j", 2).unwrap();
        let b1 = net.add_eb("b1", true).unwrap();
        let b2 = net.add_eb("b2", false).unwrap();
        let f = net.add_fork("f", 2).unwrap();
        let src = net.add_source("src").unwrap();
        let snk = net.add_sink("snk").unwrap();
        net.connect(src, 0, j, 0, "in").unwrap();
        net.connect(j, 0, b1, 0, "c1").unwrap();
        net.connect(b1, 0, b2, 0, "c2").unwrap();
        net.connect(b2, 0, f, 0, "c3").unwrap();
        net.connect(f, 0, snk, 0, "out").unwrap();
        net.connect(f, 1, j, 1, "fb").unwrap();
        let bound = lazy_throughput_bound(&net, &EnvConfig::default()).unwrap();
        // One token on a 2-buffer loop: bound 1/2.
        assert!((bound.bound - 0.5).abs() < 0.01, "bound {}", bound.bound);
        // Simulation respects the bound.
        let mut sim = BehavSim::new(&net).unwrap();
        let mut env = RandomEnv::new(1, EnvConfig::default());
        sim.run(&mut env, 2000).unwrap();
        let out = net.channel_by_name("out").unwrap();
        let th = sim.report().positive_rate(out);
        assert!(
            th <= bound.bound + 0.02,
            "measured {th} vs bound {}",
            bound.bound
        );
        assert!(th > bound.bound - 0.1, "bound should be tight here: {th}");
    }

    #[test]
    fn paper_lazy_configuration_respects_its_bound() {
        let sys = paper_example(Config::NoEarlyEval).unwrap();
        let bound = lazy_throughput_bound(&sys.network, &sys.env_config).unwrap();
        let mut sim = BehavSim::new(&sys.network).unwrap();
        let mut env = RandomEnv::new(5, sys.env_config.clone());
        sim.run(&mut env, 10_000).unwrap();
        let th = sim.report().positive_rate(sys.output_channel);
        assert!(
            th <= bound.bound + 0.03,
            "lazy Th {th} must respect the MG bound {}",
            bound.bound
        );
        // The critical cycle passes through M1 (the slow unit).
        assert!(
            bound.critical.iter().any(|n| n == "M1"),
            "critical cycle {:?}",
            bound.critical
        );
    }

    #[test]
    fn early_evaluation_beats_the_lazy_bound() {
        // The headline effect: the active configuration's measured
        // throughput exceeds what any lazy schedule could achieve.
        let sys = paper_example(Config::ActiveAntiTokens).unwrap();
        let bound = lazy_throughput_bound(&sys.network, &sys.env_config).unwrap();
        let mut sim = BehavSim::new(&sys.network).unwrap();
        let mut env = RandomEnv::new(5, sys.env_config.clone());
        sim.run(&mut env, 10_000).unwrap();
        let th = sim.report().positive_rate(sys.output_channel);
        assert!(
            th > bound.bound,
            "early evaluation must beat the lazy bound: {th} vs {}",
            bound.bound
        );
    }
}
