//! Per-channel transfer statistics, matching the accounting of Table 1.
//!
//! The throughput of a channel is the number of positive transfers plus
//! negative transfers plus kill cycles, divided by elapsed cycles; token
//! preservation on cycles of the underlying DMG makes this quantity equal
//! on every channel of a strongly connected system (paper Sect. 6.1).

use std::fmt;

use crate::channel::{ChanId, ChannelEvent};

/// Event counts observed on one channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Positive transfers (`V⁺ ∧ ¬S⁺ ∧ ¬V⁻`).
    pub positive: u64,
    /// Negative transfers (`V⁻ ∧ ¬S⁻ ∧ ¬V⁺`).
    pub negative: u64,
    /// Kill cycles (`V⁺ ∧ V⁻`).
    pub kills: u64,
    /// Retry cycles on the positive flow.
    pub retries: u64,
    /// Retry cycles on the negative flow.
    pub negative_retries: u64,
    /// Cycles with no activity in either direction.
    pub idle: u64,
}

impl ChannelStats {
    /// Records one classified cycle.
    pub fn record(&mut self, event: ChannelEvent) {
        match event {
            ChannelEvent::PositiveTransfer => self.positive += 1,
            ChannelEvent::NegativeTransfer => self.negative += 1,
            ChannelEvent::Kill => self.kills += 1,
            ChannelEvent::Retry => self.retries += 1,
            ChannelEvent::NegativeRetry => self.negative_retries += 1,
            ChannelEvent::Idle => self.idle += 1,
        }
    }

    /// Total "useful" events — the per-channel throughput numerator.
    pub fn total_activity(&self) -> u64 {
        self.positive + self.negative + self.kills
    }
}

/// Statistics of a whole simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Per-channel counters, indexed by [`ChanId`].
    pub channels: Vec<ChannelStats>,
    /// Channel display names (parallel to `channels`).
    pub names: Vec<String>,
    /// Number of simulated cycles.
    pub cycles: u64,
    /// Annihilations that happened *inside* a buffer stage when a token and
    /// an anti-token entered from opposite sides in the same cycle. They are
    /// not visible as `V⁺ ∧ V⁻` on any channel and are counted separately.
    pub internal_annihilations: u64,
}

impl SimReport {
    /// Per-cycle rate of positive transfers on `chan`.
    ///
    /// # Panics
    ///
    /// Panics if `chan` is out of range; campaigns aggregating reports from
    /// several systems should prefer [`SimReport::try_positive_rate`].
    pub fn positive_rate(&self, chan: ChanId) -> f64 {
        self.try_positive_rate(chan).expect("channel in range")
    }

    /// Checked variant of [`SimReport::positive_rate`]: `None` when `chan`
    /// does not belong to this report.
    pub fn try_positive_rate(&self, chan: ChanId) -> Option<f64> {
        Some(self.rate(self.get(chan)?.positive))
    }

    /// Per-cycle rate of negative transfers on `chan`.
    ///
    /// # Panics
    ///
    /// Panics if `chan` is out of range (see [`SimReport::try_negative_rate`]).
    pub fn negative_rate(&self, chan: ChanId) -> f64 {
        self.try_negative_rate(chan).expect("channel in range")
    }

    /// Checked variant of [`SimReport::negative_rate`].
    pub fn try_negative_rate(&self, chan: ChanId) -> Option<f64> {
        Some(self.rate(self.get(chan)?.negative))
    }

    /// Per-cycle rate of kills on `chan`.
    ///
    /// # Panics
    ///
    /// Panics if `chan` is out of range (see [`SimReport::try_kill_rate`]).
    pub fn kill_rate(&self, chan: ChanId) -> f64 {
        self.try_kill_rate(chan).expect("channel in range")
    }

    /// Checked variant of [`SimReport::kill_rate`].
    pub fn try_kill_rate(&self, chan: ChanId) -> Option<f64> {
        Some(self.rate(self.get(chan)?.kills))
    }

    /// Channel throughput: positive + negative + kills, per cycle
    /// (the quantity the paper reports as `Th`).
    ///
    /// # Panics
    ///
    /// Panics if `chan` is out of range (see [`SimReport::try_throughput`]).
    pub fn throughput(&self, chan: ChanId) -> f64 {
        self.try_throughput(chan).expect("channel in range")
    }

    /// Checked variant of [`SimReport::throughput`].
    pub fn try_throughput(&self, chan: ChanId) -> Option<f64> {
        Some(self.rate(self.get(chan)?.total_activity()))
    }

    fn rate(&self, count: u64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            count as f64 / self.cycles as f64
        }
    }

    /// Stats of one channel, or `None` when `chan` is out of range — the
    /// accessor to use when one report among many comes from a different
    /// system than the channel id (aggregated multi-system campaigns must
    /// not take down the whole run on a stale id).
    pub fn get(&self, chan: ChanId) -> Option<&ChannelStats> {
        self.channels.get(chan.index())
    }

    /// Stats of one channel.
    ///
    /// # Panics
    ///
    /// Panics if `chan` is out of range; see [`SimReport::get`] for the
    /// checked variant.
    pub fn channel(&self, chan: ChanId) -> &ChannelStats {
        self.get(chan).expect("channel in range")
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} cycles", self.cycles)?;
        for (i, (s, name)) in self.channels.iter().zip(&self.names).enumerate() {
            writeln!(
                f,
                "  {name:>16}: +{:.3} -{:.3} x{:.3} (retry {:.3})",
                self.rate(s.positive),
                self.rate(s.negative),
                self.rate(s.kills),
                self.rate(s.retries),
            )?;
            let _ = i;
        }
        if self.internal_annihilations > 0 {
            writeln!(
                f,
                "  internal annihilations: {}",
                self.internal_annihilations
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_rates() {
        let mut r = SimReport {
            channels: vec![ChannelStats::default()],
            names: vec!["c".into()],
            cycles: 10,
            internal_annihilations: 0,
        };
        let c = ChanId(0);
        for e in [
            ChannelEvent::PositiveTransfer,
            ChannelEvent::PositiveTransfer,
            ChannelEvent::Kill,
            ChannelEvent::NegativeTransfer,
            ChannelEvent::Retry,
            ChannelEvent::Idle,
        ] {
            r.channels[0].record(e);
        }
        assert_eq!(r.channel(c).positive, 2);
        assert!((r.throughput(c) - 0.4).abs() < 1e-12);
        assert!((r.positive_rate(c) - 0.2).abs() < 1e-12);
        assert!((r.kill_rate(c) - 0.1).abs() < 1e-12);
        assert!((r.negative_rate(c) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_channel_is_none_not_panic() {
        let r = SimReport {
            channels: vec![ChannelStats::default()],
            names: vec!["c".into()],
            cycles: 10,
            internal_annihilations: 0,
        };
        let bogus = ChanId(7);
        assert!(r.get(bogus).is_none());
        assert_eq!(r.try_positive_rate(bogus), None);
        assert_eq!(r.try_negative_rate(bogus), None);
        assert_eq!(r.try_kill_rate(bogus), None);
        assert_eq!(r.try_throughput(bogus), None);
        assert_eq!(r.try_positive_rate(ChanId(0)), Some(0.0));
    }

    #[test]
    fn zero_cycles_is_zero_rate() {
        let r = SimReport {
            channels: vec![ChannelStats::default()],
            names: vec!["c".into()],
            cycles: 0,
            internal_annihilations: 0,
        };
        assert_eq!(r.throughput(ChanId(0)), 0.0);
    }

    #[test]
    fn display_lists_channels() {
        let r = SimReport {
            channels: vec![ChannelStats {
                positive: 5,
                ..Default::default()
            }],
            names: vec!["S->W".into()],
            cycles: 10,
            internal_annihilations: 2,
        };
        let s = r.to_string();
        assert!(s.contains("S->W"));
        assert!(s.contains("internal annihilations: 2"));
    }
}
