//! Up/down event counter (bsg_misc flow-counter style): two event streams
//! adjust an accumulator held in a loop register.
//!
//! The `count` merge takes the command (guard), the up event (cheap path,
//! one decoupling register), the down event (slow path through a
//! variable-latency reconciliation unit) and the accumulator loop. Up
//! events — the common case — fire without waiting for the reconciler.

use super::{assemble, mux2, CorpusConfig, CorpusSystem, Knobs, Spec};
use crate::elasticize::SyncDatapath;
use crate::error::CoreError;

const SPEC: Spec = Spec {
    design: "flow_counter",
    data_width: 8,
    output: "r_out->out",
    guards: &["cmd"],
    vls: &["dncalc.vl"],
    passive_a: "dncalc->count",
    passive_b: "r_acc->count",
};

/// Builds the flow counter under `config` at the given knobs.
///
/// # Errors
///
/// Propagates construction errors (none expected).
pub fn system(config: CorpusConfig, knobs: &Knobs) -> Result<CorpusSystem, CoreError> {
    let mut dp = SyncDatapath::new(format!("flow_counter_{}", config.tag()));
    let cmd = dp.input("cmd")?;
    let up = dp.input("up")?;
    let dn = dp.input("dn")?;

    // Merge: [guard, up, down, accumulator]; the accumulator is required
    // on both branches, the down path only on the expensive one.
    let count = match config {
        CorpusConfig::Lazy => dp.block("count", 4)?,
        _ => dp.early_block("count", 4, mux2(vec![1, 3], 3, vec![2, 3], 3))?,
    };
    dp.wire(cmd, count, 0);

    // Cheap path: one decoupling register (none under NoBypass).
    dp.register_chain("up", up, count, 1, config.cheap_stages(), 0)?;

    // Slow path: the down-event reconciler is variable-latency.
    let dncalc = dp.var_latency_block("dncalc")?;
    dp.register_chain("dn", dn, dncalc, 0, 1, 0)?;
    dp.wire(dncalc, count, 2);

    // Accumulator loop (initial token) and environment tap.
    let r_acc = dp.register("r_acc", true)?;
    let r_out = dp.register("r_out", false)?;
    let out = dp.output("out")?;
    dp.wire(count, r_acc, 0);
    dp.wire(r_acc, count, 3);
    dp.wire(count, r_out, 0);
    dp.wire(r_out, out, 0);

    assemble(&dp, config, knobs, &SPEC)
}
