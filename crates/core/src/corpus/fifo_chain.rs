//! Two-element FIFO chain with a bypass (bsg_two_fifo style): data either
//! crosses two two-register FIFOs separated by a variable-latency
//! mid-stage, or takes the single-register bypass lane.
//!
//! The route command is the guard: bypassed words (cheap branch) reach the
//! output mux without waiting for the FIFO chain to drain.

use super::{assemble, mux2, CorpusConfig, CorpusSystem, Knobs, Spec};
use crate::elasticize::SyncDatapath;
use crate::error::CoreError;

const SPEC: Spec = Spec {
    design: "fifo_chain",
    data_width: 8,
    output: "r_out->out",
    guards: &["cmd"],
    vls: &["mid.vl"],
    passive_a: "r_g1->outsel",
    passive_b: "bypr0->outsel",
};

/// Builds the FIFO chain under `config` at the given knobs.
///
/// # Errors
///
/// Propagates construction errors (none expected).
pub fn system(config: CorpusConfig, knobs: &Knobs) -> Result<CorpusSystem, CoreError> {
    let mut dp = SyncDatapath::new(format!("fifo_chain_{}", config.tag()));
    let cmd = dp.input("cmd")?;
    let din = dp.input("din")?;

    // Output mux: [guard, bypass, fifo].
    let outsel = match config {
        CorpusConfig::Lazy => dp.block("outsel", 3)?,
        _ => dp.early_block("outsel", 3, mux2(vec![1], 1, vec![2], 2))?,
    };
    dp.wire(cmd, outsel, 0);

    // Bypass lane: one register (none under NoBypass).
    dp.register_chain("byp", din, outsel, 1, config.cheap_stages(), 0)?;

    // FIFO chain: two elements, a variable-latency mid-stage, two more.
    let f0 = dp.register("r_f0", false)?;
    let f1 = dp.register("r_f1", false)?;
    let mid = dp.var_latency_block("mid")?;
    let g0 = dp.register("r_g0", false)?;
    let g1 = dp.register("r_g1", false)?;
    dp.wire(din, f0, 0);
    dp.wire(f0, f1, 0);
    dp.wire(f1, mid, 0);
    dp.wire(mid, g0, 0);
    dp.wire(g0, g1, 0);
    dp.wire(g1, outsel, 2);

    let r_out = dp.register("r_out", false)?;
    let out = dp.output("out")?;
    dp.wire(outsel, r_out, 0);
    dp.wire(r_out, out, 0);

    assemble(&dp, config, knobs, &SPEC)
}
