//! Two-requester round-robin arbiter: a grant stage selects between a
//! fast local requester and a slow remote one, and recycles a grant-history
//! token through a turn register.
//!
//! The priority command is the guard: when it points at the local
//! requester (cheap branch) the grant fires without waiting for the remote
//! request to cross its variable-latency link.

use super::{assemble, mux2, CorpusConfig, CorpusSystem, Knobs, Spec};
use crate::elasticize::SyncDatapath;
use crate::error::CoreError;

const SPEC: Spec = Spec {
    design: "rr_arbiter",
    data_width: 8,
    output: "r_g->out",
    guards: &["cmd"],
    vls: &["remote.vl"],
    passive_a: "remote->grant",
    passive_b: "r_turn->grant",
};

/// Builds the arbiter under `config` at the given knobs.
///
/// # Errors
///
/// Propagates construction errors (none expected).
pub fn system(config: CorpusConfig, knobs: &Knobs) -> Result<CorpusSystem, CoreError> {
    let mut dp = SyncDatapath::new(format!("rr_arbiter_{}", config.tag()));
    let cmd = dp.input("cmd")?;
    let reqa = dp.input("reqa")?;
    let reqb = dp.input("reqb")?;

    // Merge: [guard, local, remote, turn]; the turn token is required on
    // both branches.
    let grant = match config {
        CorpusConfig::Lazy => dp.block("grant", 4)?,
        _ => dp.early_block("grant", 4, mux2(vec![1, 3], 1, vec![2, 3], 2))?,
    };
    dp.wire(cmd, grant, 0);

    // Local requester: one decoupling register (none under NoBypass).
    dp.register_chain("a", reqa, grant, 1, config.cheap_stages(), 0)?;

    // Remote requester: request register, then the variable-latency link.
    let remote = dp.var_latency_block("remote")?;
    dp.register_chain("b", reqb, remote, 0, 1, 0)?;
    dp.wire(remote, grant, 2);

    // Grant history ring (initial token) and the granted output.
    let r_turn = dp.register("r_turn", true)?;
    let r_g = dp.register("r_g", false)?;
    let out = dp.output("out")?;
    dp.wire(grant, r_turn, 0);
    dp.wire(r_turn, grant, 3);
    dp.wire(grant, r_g, 0);
    dp.wire(r_g, out, 0);

    assemble(&dp, config, knobs, &SPEC)
}
