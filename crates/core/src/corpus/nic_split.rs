//! NIC ingress pipeline: packets fork into a header lane (parse) and a
//! payload lane (checksum, variable latency), rejoined before delivery.
//!
//! The packet-type command is the guard: control packets (cheap branch)
//! are forwarded from the header alone; data packets wait for the payload
//! checksum as well.

use super::{assemble, mux2, CorpusConfig, CorpusSystem, Knobs, Spec};
use crate::elasticize::SyncDatapath;
use crate::error::CoreError;

const SPEC: Spec = Spec {
    design: "nic_split",
    data_width: 16,
    output: "r_out->out",
    guards: &["cmd"],
    vls: &["csum.vl"],
    passive_a: "r_p1->rejoin",
    passive_b: "r_h1->rejoin",
};

/// Builds the NIC pipeline under `config` at the given knobs.
///
/// # Errors
///
/// Propagates construction errors (none expected).
pub fn system(config: CorpusConfig, knobs: &Knobs) -> Result<CorpusSystem, CoreError> {
    let mut dp = SyncDatapath::new(format!("nic_split_{}", config.tag()));
    let cmd = dp.input("cmd")?;
    let pkt = dp.input("pkt")?;

    // Rejoin: [guard, header, payload]; control packets need the header
    // only, data packets both lanes.
    let rejoin = match config {
        CorpusConfig::Lazy => dp.block("rejoin", 3)?,
        _ => dp.early_block("rejoin", 3, mux2(vec![1], 1, vec![1, 2], 2))?,
    };
    dp.wire(cmd, rejoin, 0);

    // Header lane: capture register, parse, then a decoupling register
    // (dropped under NoBypass).
    let r_h0 = dp.register("r_h0", false)?;
    let parse = dp.block("parse", 1)?;
    dp.wire(pkt, r_h0, 0);
    dp.wire(r_h0, parse, 0);
    match config {
        CorpusConfig::NoBypass => dp.wire(parse, rejoin, 1),
        _ => {
            let r_h1 = dp.register("r_h1", false)?;
            dp.wire(parse, r_h1, 0);
            dp.wire(r_h1, rejoin, 1);
        }
    }

    // Payload lane: capture register, variable-latency checksum, result
    // register.
    let r_p0 = dp.register("r_p0", false)?;
    let csum = dp.var_latency_block("csum")?;
    let r_p1 = dp.register("r_p1", false)?;
    dp.wire(pkt, r_p0, 0);
    dp.wire(r_p0, csum, 0);
    dp.wire(csum, r_p1, 0);
    dp.wire(r_p1, rejoin, 2);

    let r_out = dp.register("r_out", false)?;
    let out = dp.output("out")?;
    dp.wire(rejoin, r_out, 0);
    dp.wire(r_out, out, 0);

    assemble(&dp, config, knobs, &SPEC)
}
