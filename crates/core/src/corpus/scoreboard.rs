//! Scoreboard ring: an issue stage rotates station tokens through a
//! three-register ring; new operations arrive through a variable-latency
//! fetch stage and are dispatched into the ring.
//!
//! The issue command is the guard: bubbles (cheap branch) just recycle the
//! ring token; dispatches wait for the fetched operation as well.

use super::{assemble, mux2, CorpusConfig, CorpusSystem, Knobs, Spec};
use crate::elasticize::SyncDatapath;
use crate::error::CoreError;

const SPEC: Spec = Spec {
    design: "scoreboard",
    data_width: 8,
    output: "r_out->out",
    guards: &["cmd"],
    vls: &["fetch.vl"],
    passive_a: "r_i0->issue",
    passive_b: "str2->issue",
};

/// Builds the scoreboard ring under `config` at the given knobs.
///
/// # Errors
///
/// Propagates construction errors (none expected).
pub fn system(config: CorpusConfig, knobs: &Knobs) -> Result<CorpusSystem, CoreError> {
    let mut dp = SyncDatapath::new(format!("scoreboard_{}", config.tag()));
    let cmd = dp.input("cmd")?;
    let op = dp.input("op")?;

    // Issue: [guard, new operation, ring token]; bubbles recycle the ring
    // token without a new operation.
    let issue = match config {
        CorpusConfig::Lazy => dp.block("issue", 3)?,
        _ => dp.early_block("issue", 3, mux2(vec![2], 2, vec![1, 2], 1))?,
    };
    dp.wire(cmd, issue, 0);

    // Fetch: variable-latency decode, then a decoupling register (dropped
    // under NoBypass).
    let fetch = dp.var_latency_block("fetch")?;
    dp.wire(op, fetch, 0);
    match config {
        CorpusConfig::NoBypass => dp.wire(fetch, issue, 1),
        _ => {
            let r_i0 = dp.register("r_i0", false)?;
            dp.wire(fetch, r_i0, 0);
            dp.wire(r_i0, issue, 1);
        }
    }

    // Station ring: three registers, one circulating token.
    dp.register_chain("st", issue, issue, 2, 3, 1)?;

    // Environment tap.
    let r_out = dp.register("r_out", false)?;
    let out = dp.output("out")?;
    dp.wire(issue, r_out, 0);
    dp.wire(r_out, out, 0);

    assemble(&dp, config, knobs, &SPEC)
}
