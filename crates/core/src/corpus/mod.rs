//! A benchmark corpus of real-design-shaped synchronous datapaths,
//! elasticized under five Table-1-style control configurations.
//!
//! Each design is described as a [`SyncDatapath`] (the Sect. 6 input
//! format) and converted by [`elasticize`] — the corpus exercises the
//! conversion flow on structures found in production RTL rather than on
//! the paper's single Fig. 9 example:
//!
//! | design | shape | inspiration |
//! |---|---|---|
//! | [`flow_counter`] | up/down event counter with an accumulator loop | bsg_misc flow counters |
//! | [`rr_arbiter`] | two-requester arbiter with a grant-history ring | round-robin arbiters |
//! | [`fifo_chain`] | two two-element FIFOs with a bypass mux | bsg_two_fifo chains |
//! | [`nic_split`] | header/payload split and rejoin | NIC ingress pipelines |
//! | [`mac_loop`] | multiply-accumulate with a clear opcode | DSP MAC units |
//! | [`scoreboard`] | issue stage rotating tokens through stations | scoreboard rings |
//!
//! Every design has one *merge* block where early evaluation applies, a
//! *cheap* input that suffices with probability `ee_prob` (the guard
//! payload convention: `0` = cheap branch, `1` = expensive branch), and a
//! slow path whose delay is set by the `latency` knob — so the whole
//! corpus sweeps on the same two axes as the paper's Table 1.

use crate::channel::ChanId;
use crate::ee::{EarlyEval, EeTerm};
use crate::elasticize::{elasticize, SyncDatapath};
use crate::error::CoreError;
use crate::network::ElasticNetwork;
use crate::sim::{DataGen, EnvConfig, LatencyDist, SourceCfg};

pub mod fifo_chain;
pub mod flow_counter;
pub mod mac_loop;
pub mod nic_split;
pub mod rr_arbiter;
pub mod scoreboard;

/// The five Table-1-style control configurations applied to every design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorpusConfig {
    /// Early-evaluation merge with full anti-token counterflow (row 1).
    Active,
    /// Like [`CorpusConfig::Active`], but the decoupling register on the
    /// design's cheap path is removed (row 2's missing `C` buffer).
    NoBypass,
    /// Passive anti-token interface on the slow-path boundary into the
    /// merge (row 3).
    PassiveA,
    /// Passive anti-token interface on the design's second boundary —
    /// state loop or fast path (row 4).
    PassiveB,
    /// Conventional lazy merge; no anti-tokens anywhere (row 5).
    Lazy,
}

impl CorpusConfig {
    /// All five configurations, Table 1 row order.
    pub fn all() -> [CorpusConfig; 5] {
        [
            CorpusConfig::Active,
            CorpusConfig::NoBypass,
            CorpusConfig::PassiveA,
            CorpusConfig::PassiveB,
            CorpusConfig::Lazy,
        ]
    }

    /// Short machine-readable tag (network names, JSON keys).
    pub fn tag(self) -> &'static str {
        match self {
            CorpusConfig::Active => "active",
            CorpusConfig::NoBypass => "nobypass",
            CorpusConfig::PassiveA => "passive_a",
            CorpusConfig::PassiveB => "passive_b",
            CorpusConfig::Lazy => "lazy",
        }
    }

    /// Human-readable row label.
    pub fn label(self) -> &'static str {
        match self {
            CorpusConfig::Active => "Active anti-tokens",
            CorpusConfig::NoBypass => "No bypass register",
            CorpusConfig::PassiveA => "Passive (slow boundary)",
            CorpusConfig::PassiveB => "Passive (second boundary)",
            CorpusConfig::Lazy => "No early evaluation",
        }
    }

    fn cheap_stages(self) -> usize {
        match self {
            CorpusConfig::NoBypass => 0,
            _ => 1,
        }
    }
}

/// The two environment axes every corpus design is swept on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Knobs {
    /// Probability that the merge's guard selects the cheap branch.
    pub ee_prob: f64,
    /// Slow latency of the design's variable-latency unit(s); each draw is
    /// 1 or `latency` with equal probability.
    pub latency: u32,
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs {
            ee_prob: 0.6,
            latency: 8,
        }
    }
}

/// A built corpus system, ready for simulation, linting and export.
#[derive(Debug, Clone)]
pub struct CorpusSystem {
    /// Design name (one of [`DESIGNS`]).
    pub design: &'static str,
    /// The control configuration it was elasticized under.
    pub config: CorpusConfig,
    /// The elastic control network.
    pub network: ElasticNetwork,
    /// Environment: guard distribution and latency draws per [`Knobs`].
    pub env: EnvConfig,
    /// The channel whose positive-transfer rate is the design throughput.
    pub output_channel: ChanId,
    /// Datapath word width used for gate-level compilation and export.
    pub data_width: usize,
}

/// All corpus design names, build order.
pub const DESIGNS: [&str; 6] = [
    "flow_counter",
    "rr_arbiter",
    "fifo_chain",
    "nic_split",
    "mac_loop",
    "scoreboard",
];

/// Builds one design by name.
///
/// # Errors
///
/// [`CoreError::Netlist`] for an unknown design name; construction errors
/// otherwise (none expected for the fixed topologies).
pub fn build(design: &str, config: CorpusConfig, knobs: &Knobs) -> Result<CorpusSystem, CoreError> {
    match design {
        "flow_counter" => flow_counter::system(config, knobs),
        "rr_arbiter" => rr_arbiter::system(config, knobs),
        "fifo_chain" => fifo_chain::system(config, knobs),
        "nic_split" => nic_split::system(config, knobs),
        "mac_loop" => mac_loop::system(config, knobs),
        "scoreboard" => scoreboard::system(config, knobs),
        other => Err(CoreError::Netlist(format!(
            "unknown corpus design {other:?}"
        ))),
    }
}

/// Every design under every configuration (30 systems) at the given knobs.
///
/// # Errors
///
/// Propagates construction errors.
pub fn all_systems(knobs: &Knobs) -> Result<Vec<CorpusSystem>, CoreError> {
    let mut out = Vec::with_capacity(DESIGNS.len() * 5);
    for design in DESIGNS {
        for config in CorpusConfig::all() {
            out.push(build(design, config, knobs)?);
        }
    }
    Ok(out)
}

/// The corpus-wide two-way merge function under the guard convention
/// (payload bit 0: `0` = cheap, `1` = expensive): the cheap term needs
/// `cheap_required` and forwards `cheap_select`, the expensive term
/// `full_required`/`full_select`. Guard is always join input 0.
fn mux2(
    cheap_required: Vec<usize>,
    cheap_select: usize,
    full_required: Vec<usize>,
    full_select: usize,
) -> EarlyEval {
    EarlyEval::new(
        0,
        vec![
            EeTerm {
                guard_mask: 1,
                guard_value: 0,
                required: cheap_required,
                select: cheap_select,
            },
            EeTerm {
                guard_mask: 1,
                guard_value: 1,
                required: full_required,
                select: full_select,
            },
        ],
    )
}

/// Static description each design hands to [`assemble`].
struct Spec {
    design: &'static str,
    data_width: usize,
    /// Channel observed for throughput.
    output: &'static str,
    /// Source nodes carrying the guard distribution.
    guards: &'static [&'static str],
    /// Variable-latency controller names taking the `latency` knob.
    vls: &'static [&'static str],
    /// Channel made passive under [`CorpusConfig::PassiveA`].
    passive_a: &'static str,
    /// Channel made passive under [`CorpusConfig::PassiveB`].
    passive_b: &'static str,
}

/// Shared tail of every design builder: elasticize, apply passivity,
/// validate (ports + token liveness), attach the knob-driven environment.
fn assemble(
    dp: &SyncDatapath,
    config: CorpusConfig,
    knobs: &Knobs,
    spec: &Spec,
) -> Result<CorpusSystem, CoreError> {
    let mut net = elasticize(dp)?;
    let passive = match config {
        CorpusConfig::PassiveA => Some(spec.passive_a),
        CorpusConfig::PassiveB => Some(spec.passive_b),
        _ => None,
    };
    if let Some(name) = passive {
        let id = net
            .channel_by_name(name)
            .ok_or_else(|| CoreError::Netlist(format!("no passive boundary {name}")))?;
        net.set_passive(id)?;
    }
    net.check_token_liveness()?;

    let mut env = EnvConfig::default();
    for g in spec.guards {
        env.sources.insert(
            (*g).to_string(),
            SourceCfg {
                rate: 1.0,
                data: DataGen::Weighted(vec![(0, knobs.ee_prob), (1, 1.0 - knobs.ee_prob)]),
            },
        );
    }
    for v in spec.vls {
        env.vls.insert(
            (*v).to_string(),
            LatencyDist::weighted(vec![(1, 0.5), (knobs.latency, 0.5)]),
        );
    }

    let output_channel = net
        .channel_by_name(spec.output)
        .ok_or_else(|| CoreError::Netlist(format!("no output channel {}", spec.output)))?;
    Ok(CorpusSystem {
        design: spec.design,
        config,
        network: net,
        env,
        output_channel,
        data_width: spec.data_width,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{BehavSim, RandomEnv};

    fn throughput(sys: &CorpusSystem, cycles: u64, seed: u64) -> f64 {
        let mut sim = BehavSim::new(&sys.network).expect("valid corpus network");
        let mut env = RandomEnv::new(seed, sys.env.clone());
        sim.run(&mut env, cycles).expect("simulates");
        sim.report().positive_rate(sys.output_channel)
    }

    #[test]
    fn every_design_and_config_builds_checks_and_moves_tokens() {
        let knobs = Knobs::default();
        for sys in all_systems(&knobs).unwrap() {
            sys.network.check().unwrap();
            sys.network.check_token_liveness().unwrap();
            let th = throughput(&sys, 400, 11);
            assert!(
                th > 0.02 && th <= 1.0,
                "{} / {}: throughput {th}",
                sys.design,
                sys.config.tag()
            );
        }
    }

    #[test]
    fn early_evaluation_beats_lazy_on_every_design() {
        let knobs = Knobs {
            ee_prob: 0.8,
            latency: 12,
        };
        for design in DESIGNS {
            let active = build(design, CorpusConfig::Active, &knobs).unwrap();
            let lazy = build(design, CorpusConfig::Lazy, &knobs).unwrap();
            let th_a = throughput(&active, 6000, 7);
            let th_l = throughput(&lazy, 6000, 7);
            assert!(
                th_a > th_l,
                "{design}: active {th_a} should beat lazy {th_l}"
            );
        }
    }

    #[test]
    fn passive_boundaries_stop_negative_crossings() {
        let knobs = Knobs::default();
        for design in DESIGNS {
            let sys = build(design, CorpusConfig::PassiveA, &knobs).unwrap();
            let passive: Vec<_> = sys
                .network
                .channels()
                .filter(|&c| sys.network.channel(c).passive)
                .collect();
            assert_eq!(passive.len(), 1, "{design}: one passive boundary");
            let mut sim = BehavSim::new(&sys.network).unwrap();
            let mut env = RandomEnv::new(13, sys.env.clone());
            sim.run(&mut env, 2000).unwrap();
            let r = sim.report();
            assert_eq!(
                r.channel(passive[0]).negative,
                0,
                "{design}: no anti-token crosses the passive boundary"
            );
        }
    }

    #[test]
    fn unknown_design_is_a_typed_error() {
        assert!(build("nonesuch", CorpusConfig::Active, &Knobs::default()).is_err());
    }
}
