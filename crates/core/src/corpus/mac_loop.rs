//! Multiply-accumulate loop (DSP MAC): two operand streams feed a
//! variable-latency multiplier; the accumulate stage folds the product
//! into a loop register, with a clear opcode that resets the sum.
//!
//! The opcode is the guard: clears (cheap branch) complete from the
//! accumulator alone, without waiting for the in-flight product.

use super::{assemble, mux2, CorpusConfig, CorpusSystem, Knobs, Spec};
use crate::elasticize::{SyncDatapath, SyncNode};
use crate::error::CoreError;

const SPEC: Spec = Spec {
    design: "mac_loop",
    data_width: 16,
    output: "r_out->out",
    guards: &["cmd"],
    vls: &["mul.vl"],
    passive_a: "r_p->accum",
    passive_b: "r_acc->accum",
};

/// Builds the MAC loop under `config` at the given knobs.
///
/// # Errors
///
/// Propagates construction errors (none expected).
pub fn system(config: CorpusConfig, knobs: &Knobs) -> Result<CorpusSystem, CoreError> {
    let mut dp = SyncDatapath::new(format!("mac_loop_{}", config.tag()));
    let cmd = dp.input("cmd")?;
    let a = dp.input("a")?;
    let b = dp.input("b")?;

    // Operand capture, then the two-input variable-latency multiplier
    // (elasticized into a join feeding a go/done/ack controller).
    let r_a = dp.register("r_a", false)?;
    let r_b = dp.register("r_b", false)?;
    let mul = dp.node(
        "mul",
        SyncNode::Block {
            inputs: 2,
            early: None,
            variable_latency: true,
        },
    )?;
    dp.wire(a, r_a, 0);
    dp.wire(b, r_b, 0);
    dp.wire(r_a, mul, 0);
    dp.wire(r_b, mul, 1);

    // Accumulate: [guard, product, accumulator]; clears skip the product.
    let accum = match config {
        CorpusConfig::Lazy => dp.block("accum", 3)?,
        _ => dp.early_block("accum", 3, mux2(vec![2], 2, vec![1, 2], 2))?,
    };
    dp.wire(cmd, accum, 0);

    // Product register between multiplier and accumulate (dropped under
    // NoBypass).
    match config {
        CorpusConfig::NoBypass => dp.wire(mul, accum, 1),
        _ => {
            let r_p = dp.register("r_p", false)?;
            dp.wire(mul, r_p, 0);
            dp.wire(r_p, accum, 1);
        }
    }

    // Accumulator loop (initial token) and environment tap.
    let r_acc = dp.register("r_acc", true)?;
    let r_out = dp.register("r_out", false)?;
    let out = dp.output("out")?;
    dp.wire(accum, r_acc, 0);
    dp.wire(r_acc, accum, 2);
    dp.wire(accum, r_out, 0);
    dp.wire(r_out, out, 0);

    assemble(&dp, config, knobs, &SPEC)
}
