//! Ready-made elastic systems, including the paper's example (Fig. 9) in
//! all five Table 1 configurations.
//!
//! The example datapath has five units: `S` (dispatch, not pipelined), `I`
//! (1-stage integer path), `F` (3-stage pipeline), `M` (two variable-latency
//! multi-cycle units `M1`, `M2` delivering into a register) and `W` (a
//! result multiplexer realized as an early-evaluation join). `S` forks every
//! operation to `I`, `F` and `M` and sends the opcode through register `C`
//! to `W`; `W` selects one result according to the opcode (probabilities
//! 0.6/0.3/0.1 for I/F/M) and its output, after a 3-register chain, both
//! leaves the system and loops back to `S` — closing the strongly connected
//! system that makes per-channel throughput a single number.

use std::collections::HashMap;

use crate::channel::ChanId;
use crate::dsl::Dsl;
use crate::ee::{EarlyEval, EeTerm};
use crate::error::CoreError;
use crate::network::ElasticNetwork;
use crate::sim::{DataGen, EnvConfig, LatencyDist, SinkCfg, SourceCfg};

/// The five control configurations of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Config {
    /// Early-evaluation join with full anti-token counterflow (row 1).
    ActiveAntiTokens,
    /// Like row 1, but without the bypass buffer `C` on `S → W` (row 2).
    NoBufferSw,
    /// Passive anti-token interface on the `F3 → W` boundary (row 3).
    PassiveF3W,
    /// Passive anti-token interface on the `M → W` boundary (row 4).
    PassiveM2W,
    /// Conventional lazy join for `W`; no anti-tokens anywhere (row 5).
    NoEarlyEval,
}

impl Config {
    /// All five configurations in Table 1 row order.
    pub fn all() -> [Config; 5] {
        [
            Config::ActiveAntiTokens,
            Config::NoBufferSw,
            Config::PassiveF3W,
            Config::PassiveM2W,
            Config::NoEarlyEval,
        ]
    }

    /// Table 1 row label.
    pub fn label(self) -> &'static str {
        match self {
            Config::ActiveAntiTokens => "Active anti-tokens",
            Config::NoBufferSw => "No buffer (S->W)",
            Config::PassiveF3W => "Passive (F3->W)",
            Config::PassiveM2W => "Passive (M2->W)",
            Config::NoEarlyEval => "No early evaluation",
        }
    }
}

/// The channels reported in Table 1 (plus the environment interfaces).
#[derive(Debug, Clone, Copy)]
pub struct PaperChannels {
    /// Between the second and third F-pipeline registers.
    pub f2_f3: ChanId,
    /// Between the last F register and `W`.
    pub f3_w: ChanId,
    /// Between `S`'s M-operand register and `M1`.
    pub s_m1: ChanId,
    /// Between the two variable-latency units.
    pub m1_m2: ChanId,
    /// Between `M2` and `M`'s output register.
    pub m2_w: ChanId,
    /// Between `M`'s output register and `W` (the passive boundary of
    /// row 4; unlabeled in Table 1).
    pub mo_w: ChanId,
    /// Environment input (`Din → S`).
    pub din: ChanId,
    /// Environment output (last W register to `Dout`).
    pub dout: ChanId,
}

/// A built example system: network, environment and channels of interest.
#[derive(Debug, Clone)]
pub struct PaperSystem {
    /// The elastic control network.
    pub network: ElasticNetwork,
    /// The environment distributions of Sect. 6.1.
    pub env_config: EnvConfig,
    /// The channel whose positive-transfer rate is the system throughput
    /// (the `Dout` interface).
    pub output_channel: ChanId,
    /// The Table 1 channels.
    pub channels: PaperChannels,
    /// The configuration this system was built for.
    pub config: Config,
}

/// Opcode encoding: bit 0 is `s1`, bit 1 is `s2`; `00 → I`, `01(s2=1,s1=0)
/// encoded as 0b10 → F`, `s1=1 → M` (paper Sect. 6).
pub fn w_early_eval() -> EarlyEval {
    EarlyEval::new(
        0,
        vec![
            EeTerm {
                guard_mask: 0b11,
                guard_value: 0b00,
                required: vec![1],
                select: 1,
            },
            EeTerm {
                guard_mask: 0b11,
                guard_value: 0b10,
                required: vec![2],
                select: 2,
            },
            EeTerm {
                guard_mask: 0b01,
                guard_value: 0b01,
                required: vec![3],
                select: 3,
            },
        ],
    )
}

/// The opcode distribution: `I` 0.6, `F` 0.3, `M` 0.1.
pub fn opcode_distribution() -> DataGen {
    DataGen::Weighted(vec![(0b00, 0.6), (0b10, 0.3), (0b01, 0.05), (0b11, 0.05)])
}

/// The Sect. 6.1 environment for the Fig. 9 example: always-ready
/// interfaces, the opcode distribution on `Din` and the measured latency
/// distributions for `M1`/`M2`.
pub fn paper_env() -> EnvConfig {
    let mut env = EnvConfig {
        default_source: SourceCfg {
            rate: 1.0,
            data: opcode_distribution(),
        },
        default_sink: SinkCfg {
            stop_prob: 0.0,
            kill_prob: 0.0,
        },
        default_vl: LatencyDist::fixed(1),
        sources: HashMap::new(),
        sinks: HashMap::new(),
        vls: HashMap::new(),
    };
    env.vls.insert(
        "M1".into(),
        LatencyDist::weighted(vec![(2, 0.8), (10, 0.2)]),
    );
    env.vls
        .insert("M2".into(), LatencyDist::weighted(vec![(1, 0.5), (2, 0.5)]));
    env
}

/// Builds the example system of Fig. 9 in the given configuration.
///
/// # Errors
///
/// Propagates network construction errors (none expected for the fixed
/// topology; early-evaluation validation runs on the fly).
pub fn paper_example(config: Config) -> Result<PaperSystem, CoreError> {
    let c_depth = match config {
        Config::NoBufferSw => 0,
        _ => 1,
    };
    build_paper(config, c_depth, format!("fig9_{config:?}"))
}

/// Fig. 9 with a parameterized opcode-bypass chain `C` of `c_depth`
/// registers on `S -> W` (`0` reproduces Table 1 row 2's direct wire) —
/// the topology family swept by the `sweep_buffer` ablation.
///
/// # Errors
///
/// Propagates network construction errors.
pub fn paper_example_with_c_depth(
    config: Config,
    c_depth: usize,
) -> Result<PaperSystem, CoreError> {
    build_paper(config, c_depth, format!("fig9_c{c_depth}"))
}

fn build_paper(config: Config, c_depth: usize, name: String) -> Result<PaperSystem, CoreError> {
    let mut d = Dsl::new(name);

    // S: dispatch = join(new operand, write-back) then fork to the three
    // execution paths and the opcode register C. The write-back port stays
    // open until the W chain exists.
    let din = d.source("Din")?;
    let (s, [p_din, p_wb]) = d.open_join::<2>("S")?;
    d.drive(p_din, din.label("Din->S"))?;
    let [to_i, to_f, to_m, to_c] = d.fork::<4>("Sfork", s.label("S->Sfork"))?;

    // I path: one operand register, I itself is unpipelined (combinational).
    let i = d.buffer("EBi", 1, 0, to_i.label("S->I"))?;

    // F path: three pipeline registers F1, F2, F3.
    let f1 = d.buffer("F1", 1, 0, to_f.label("S->F1"))?;
    let f2 = d.buffer("F2", 1, 0, f1.label("F1->F2"))?;
    let f3 = d.buffer("F3", 1, 0, f2.label("F2->F3"))?;

    // M path: operand register, M1, M2, output register.
    let sm = d.buffer("EBsm", 1, 0, to_m.label("S->EBsm"))?;
    let m1 = d.var_latency("M1", sm.label("S->M1"))?;
    let m2 = d.var_latency("M2", m1.label("M1->M2"))?;
    let mo = d.buffer("EBmo", 1, 0, m2.label("M2->W"))?;

    // Control path: opcode through the C chain (direct wire at depth 0).
    let ctrl = if c_depth == 0 {
        to_c.label("S->W")
    } else {
        d.buffer("C", c_depth, 0, to_c.label("S->C"))?.label("C->W")
    };

    // W: the result multiplexer, with passivity per configuration.
    let f3w = f3.label("F3->W");
    let f3w = if config == Config::PassiveF3W {
        f3w.passive()
    } else {
        f3w
    };
    let mow = mo.label("Mo->W");
    let mow = if config == Config::PassiveM2W {
        mow.passive()
    } else {
        mow
    };
    let ee = match config {
        Config::NoEarlyEval => EarlyEval::lazy(4),
        _ => w_early_eval(),
    };
    let w = d.early_join::<4>("W", ee, [ctrl, i.label("I->W"), f3w, mow])?;

    // W output chain: three registers holding the initial tokens, then a
    // fork to the environment and back to S.
    let w1 = d.buffer("W1", 1, 1, w.label("W->W1"))?;
    let w2 = d.buffer("W2", 1, 1, w1.label("W1->W2"))?;
    let w3 = d.buffer("W3", 1, 1, w2.label("W2->W3"))?;
    let [to_env, wb] = d.fork::<2>("Wfork", w3.label("W3->Wfork"))?;
    let c_dout = d.sink("Dout", to_env.label("W->Dout"))?;
    d.drive(p_wb, wb.label("W->S"))?;

    let net = d.finish()?;
    let chan = |n: &str| net.channel_by_name(n).expect("constructed above");

    Ok(PaperSystem {
        output_channel: c_dout,
        channels: PaperChannels {
            f2_f3: chan("F2->F3"),
            f3_w: chan("F3->W"),
            s_m1: chan("S->M1"),
            m1_m2: chan("M1->M2"),
            m2_w: chan("M2->W"),
            mo_w: chan("Mo->W"),
            din: chan("Din->S"),
            dout: c_dout,
        },
        network: net,
        env_config: paper_env(),
        config,
    })
}

/// The seed's imperative construction of [`paper_example`]'s network, kept
/// verbatim as the reference the DSL build is proven isomorphic to (see
/// `tests/proptests.rs`). Not meant for new code — use [`paper_example`].
///
/// # Errors
///
/// Propagates network construction errors.
#[allow(clippy::too_many_lines)]
#[doc(hidden)]
pub fn paper_example_imperative(config: Config) -> Result<ElasticNetwork, CoreError> {
    let mut net = ElasticNetwork::new(format!("fig9_{config:?}"));

    let din = net.add_source("Din")?;
    let dout = net.add_sink("Dout")?;

    let s_join = net.add_join("S", 2)?;
    let s_fork = net.add_fork("Sfork", 4)?;
    net.connect(din, 0, s_join, 0, "Din->S")?;
    net.connect(s_join, 0, s_fork, 0, "S->Sfork")?;

    let eb_i = net.add_buffer("EBi", 1, 0)?;
    net.connect(s_fork, 0, eb_i, 0, "S->I")?;

    let f1 = net.add_buffer("F1", 1, 0)?;
    let f2 = net.add_buffer("F2", 1, 0)?;
    let f3 = net.add_buffer("F3", 1, 0)?;
    net.connect(s_fork, 1, f1, 0, "S->F1")?;
    net.connect(f1, 0, f2, 0, "F1->F2")?;
    net.connect(f2, 0, f3, 0, "F2->F3")?;

    let eb_sm = net.add_buffer("EBsm", 1, 0)?;
    let m1 = net.add_var_latency("M1")?;
    let m2 = net.add_var_latency("M2")?;
    let eb_mo = net.add_buffer("EBmo", 1, 0)?;
    net.connect(s_fork, 2, eb_sm, 0, "S->EBsm")?;
    net.connect(eb_sm, 0, m1, 0, "S->M1")?;
    net.connect(m1, 0, m2, 0, "M1->M2")?;
    net.connect(m2, 0, eb_mo, 0, "M2->W")?;

    let w = net.add_early_join(
        "W",
        4,
        match config {
            Config::NoEarlyEval => EarlyEval::lazy(4),
            _ => w_early_eval(),
        },
    )?;
    match config {
        Config::NoBufferSw => {
            net.connect(s_fork, 3, w, 0, "S->W")?;
        }
        _ => {
            let c = net.add_buffer("C", 1, 0)?;
            net.connect(s_fork, 3, c, 0, "S->C")?;
            net.connect(c, 0, w, 0, "C->W")?;
        }
    }
    net.connect(eb_i, 0, w, 1, "I->W")?;
    let c_f3_w = net.connect(f3, 0, w, 2, "F3->W")?;
    let c_mo_w = net.connect(eb_mo, 0, w, 3, "Mo->W")?;

    let w1 = net.add_buffer("W1", 1, 1)?;
    let w2 = net.add_buffer("W2", 1, 1)?;
    let w3 = net.add_buffer("W3", 1, 1)?;
    let wf = net.add_fork("Wfork", 2)?;
    net.connect(w, 0, w1, 0, "W->W1")?;
    net.connect(w1, 0, w2, 0, "W1->W2")?;
    net.connect(w2, 0, w3, 0, "W2->W3")?;
    net.connect(w3, 0, wf, 0, "W3->Wfork")?;
    net.connect(wf, 0, dout, 0, "W->Dout")?;
    net.connect(wf, 1, s_join, 1, "W->S")?;

    match config {
        Config::PassiveF3W => net.set_passive(c_f3_w)?,
        Config::PassiveM2W => net.set_passive(c_mo_w)?,
        _ => {}
    }

    net.check()?;
    Ok(net)
}

/// A linear elastic pipeline: source, `stages` single-register buffers
/// carrying `tokens` initial tokens, sink. Returns the network plus the
/// input and output channel ids — the Fig. 3 structure.
///
/// # Errors
///
/// Propagates construction errors (none expected).
pub fn linear_pipeline(
    stages: usize,
    tokens: usize,
) -> Result<(ElasticNetwork, ChanId, ChanId), CoreError> {
    let mut d = Dsl::new("linear");
    let mut ch = d.source("src")?;
    for i in 0..stages {
        ch = d.eb(&format!("b{i}"), i < tokens, ch.label(format!("c{i}")))?;
    }
    let cout = d.sink("snk", ch.label("out"))?;
    let net = d.finish()?;
    let cin = net.channel_by_name("c0").unwrap_or(cout);
    Ok((net, cin, cout))
}

/// The seed's imperative construction of [`linear_pipeline`], kept as the
/// isomorphism reference (see `tests/proptests.rs`).
///
/// # Errors
///
/// Propagates network construction errors.
#[doc(hidden)]
pub fn linear_pipeline_imperative(
    stages: usize,
    tokens: usize,
) -> Result<ElasticNetwork, CoreError> {
    let mut net = ElasticNetwork::new("linear");
    let src = net.add_source("src")?;
    let snk = net.add_sink("snk")?;
    let mut prev = src;
    for i in 0..stages {
        let b = net.add_eb(format!("b{i}"), i < tokens)?;
        net.connect(prev, 0, b, 0, format!("c{i}"))?;
        prev = b;
    }
    net.connect(prev, 0, snk, 0, "out")?;
    net.check()?;
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{BehavSim, RandomEnv};

    fn run(config: Config, cycles: u64, seed: u64) -> (PaperSystem, crate::stats::SimReport) {
        let sys = paper_example(config).unwrap();
        let mut sim = BehavSim::new(&sys.network).unwrap();
        let mut env = RandomEnv::new(seed, sys.env_config.clone());
        sim.run(&mut env, cycles).unwrap();
        (sys, sim.report())
    }

    #[test]
    fn all_configs_build_and_run() {
        for config in Config::all() {
            let (sys, r) = run(config, 500, 1);
            let th = r.positive_rate(sys.output_channel);
            assert!(th > 0.05 && th < 1.0, "{config:?} throughput {th}");
        }
    }

    #[test]
    fn lazy_throughput_tracks_m1_occupancy() {
        // Without early evaluation every operation waits for M; M1's mean
        // latency is 3.6 cycles, so Th ≈ 1/3.6 = 0.277.
        let (sys, r) = run(Config::NoEarlyEval, 10_000, 7);
        let th = r.positive_rate(sys.output_channel);
        assert!((0.2..0.32).contains(&th), "lazy Th {th}");
        // No anti-token activity anywhere.
        for c in sys.network.channels() {
            assert_eq!(r.channel(c).negative, 0, "{}", sys.network.channel(c).name);
            assert_eq!(r.channel(c).kills, 0, "{}", sys.network.channel(c).name);
        }
    }

    #[test]
    fn early_evaluation_beats_lazy() {
        let (sys_a, ra) = run(Config::ActiveAntiTokens, 10_000, 7);
        let (sys_l, rl) = run(Config::NoEarlyEval, 10_000, 7);
        let th_a = ra.positive_rate(sys_a.output_channel);
        let th_l = rl.positive_rate(sys_l.output_channel);
        assert!(
            th_a > th_l * 1.15,
            "early evaluation should win clearly: active {th_a} vs lazy {th_l}"
        );
    }

    #[test]
    fn active_config_shows_counterflow_on_m_branch() {
        let (sys, r) = run(Config::ActiveAntiTokens, 10_000, 7);
        let ch = &sys.channels;
        // Anti-tokens travel backwards across Mo->W and M2->W, abort inside
        // M2/M1, and the survivors kill at the S->M1 register boundary.
        assert!(
            r.channel(ch.mo_w).negative > 100,
            "{:?}",
            r.channel(ch.mo_w)
        );
        assert!(r.channel(ch.m2_w).negative > 50, "{:?}", r.channel(ch.m2_w));
        assert!(
            r.channel(ch.s_m1).kills > 0,
            "kills at the latch boundary: {:?}",
            r.channel(ch.s_m1)
        );
        // Anti-token flow thins out on the way upstream: some abort
        // in-flight computations inside M2 and M1, the survivors kill at
        // the S->M1 latch boundary (the paper reports the same thinning
        // between M2->W and M1->M2; our VL units also absorb inside M1,
        // see EXPERIMENTS.md).
        let mo_neg = r.channel(ch.mo_w).negative;
        let m2_neg = r.channel(ch.m2_w).negative;
        let m1_neg = r.channel(ch.m1_m2).negative;
        let sm1 = r.channel(ch.s_m1).kills + r.channel(ch.s_m1).negative;
        assert!(mo_neg >= m2_neg, "mo {mo_neg} >= m2 {m2_neg}");
        assert!(m2_neg >= m1_neg, "m2 {m2_neg} >= m1 {m1_neg}");
        assert!(m1_neg >= sm1, "m1 {m1_neg} >= s_m1 {sm1}");
        assert!(sm1 > 0, "survivors kill at the latch boundary");
    }

    #[test]
    fn passive_f3_boundary_stops_backward_flow_into_f() {
        let (sys, r) = run(Config::PassiveF3W, 10_000, 7);
        let ch = &sys.channels;
        assert_eq!(
            r.channel(ch.f3_w).negative,
            0,
            "no anti-token crosses F3->W"
        );
        assert_eq!(r.channel(ch.f2_f3).negative, 0);
        assert_eq!(r.channel(ch.f2_f3).kills, 0, "F keeps computing everything");
        // The M branch still uses active counterflow in this configuration.
        assert!(r.channel(ch.m2_w).negative > 50);
    }

    #[test]
    fn passive_m_boundary_degrades_toward_lazy() {
        let (sys_p, rp) = run(Config::PassiveM2W, 10_000, 7);
        let (sys_a, ra) = run(Config::ActiveAntiTokens, 10_000, 7);
        let (sys_l, rl) = run(Config::NoEarlyEval, 10_000, 7);
        let th_p = rp.positive_rate(sys_p.output_channel);
        let th_a = ra.positive_rate(sys_a.output_channel);
        let th_l = rl.positive_rate(sys_l.output_channel);
        // With M shielded from anti-tokens, M1 is again the bottleneck.
        assert!(th_p < th_a, "passive M {th_p} < active {th_a}");
        assert!(th_p < th_l * 1.25, "passive M {th_p} close to lazy {th_l}");
        // And nothing negative crosses into the M units.
        assert_eq!(rp.channel(sys_p.channels.m2_w).negative, 0);
        assert_eq!(rp.channel(sys_p.channels.m1_m2).negative, 0);
        assert_eq!(rp.channel(sys_p.channels.s_m1).kills, 0);
    }

    #[test]
    fn no_buffer_config_loses_throughput() {
        let (sys_a, ra) = run(Config::ActiveAntiTokens, 10_000, 7);
        let (sys_n, rn) = run(Config::NoBufferSw, 10_000, 7);
        let th_a = ra.positive_rate(sys_a.output_channel);
        let th_n = rn.positive_rate(sys_n.output_channel);
        assert!(
            th_n < th_a,
            "removing the C buffer hurts: no-buffer {th_n} vs active {th_a}"
        );
    }

    #[test]
    fn throughput_is_equal_on_all_channels() {
        // Th = positive + negative + kills is the same on every channel
        // (token preservation on the SCDMG cycles) — checked on the
        // environment interfaces and the Table 1 channels.
        let (sys, r) = run(Config::ActiveAntiTokens, 10_000, 3);
        let th_out = r.throughput(sys.channels.dout);
        for c in [
            sys.channels.din,
            sys.channels.s_m1,
            sys.channels.f2_f3,
            sys.channels.mo_w,
        ] {
            let th = r.throughput(c);
            assert!(
                (th - th_out).abs() < 0.02,
                "channel {} Th {th} vs output {th_out}",
                sys.network.channel(c).name
            );
        }
    }

    #[test]
    fn linear_pipeline_builder() {
        let (net, cin, cout) = linear_pipeline(4, 2).unwrap();
        assert_eq!(net.num_channels(), 5);
        assert_ne!(cin, cout);
    }
}
