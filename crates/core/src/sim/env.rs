//! Environment models: who offers tokens, who stops or kills them, and how
//! long variable-latency units take.
//!
//! The paper's Verilog testbench "incorporates statements to randomly
//! generate the values of the control signals according to the probability
//! distributions defined by the user" and "random delays for the
//! variable-latency units" (Sect. 6.1). [`RandomEnv`] is that testbench.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::network::CompId;

/// Decides the per-cycle behaviour of sources, sinks and variable-latency
/// units during behavioural simulation — the programmable face of the
/// paper's randomized testbench (Sect. 6.1). Implemented by [`RandomEnv`]
/// (fresh draws every cycle) and by `crate::verify::Schedule` (pre-recorded
/// streams replayable against the gate-level back-ends).
///
/// Components are identified both by id and by display name so
/// configurations can be written against stable names.
pub trait Environment {
    /// Called when `comp` (a source) is idle: return `Some(payload)` to
    /// offer a new token this cycle.
    fn source_offer(&mut self, comp: CompId, name: &str, time: u64) -> Option<u64>;

    /// Whether the sink stops (back-pressures) this cycle.
    fn sink_stop(&mut self, comp: CompId, name: &str, time: u64) -> bool;

    /// Whether the sink launches an anti-token this cycle (ignored while a
    /// previous anti-token is still pending — persistence is enforced by
    /// the simulator).
    fn sink_kill(&mut self, comp: CompId, name: &str, time: u64) -> bool;

    /// Latency draw for a variable-latency unit accepting a token now.
    /// Values are clamped to at least 1 by the simulator.
    fn vl_latency(&mut self, comp: CompId, name: &str, time: u64) -> u32;
}

/// Payload generator for sources.
#[derive(Debug, Clone, PartialEq)]
pub enum DataGen {
    /// Always the same value.
    Const(u64),
    /// 0, 1, 2, ... (handy for checking FIFO order).
    Counter,
    /// Alternating 0/1 — the producers of the paper's Fig. 8(b) correctness
    /// testbench.
    Alternate,
    /// Weighted choice among values (used for the opcode distribution of
    /// the paper's example: 0.6/0.3/0.1).
    Weighted(Vec<(u64, f64)>),
}

impl DataGen {
    /// Draws the next payload. `seq` is the per-source sequence counter the
    /// stateful generators ([`DataGen::Counter`], [`DataGen::Alternate`])
    /// advance; stateless generators leave it untouched. Shared between
    /// [`RandomEnv`] and the pre-generated schedules of
    /// [`crate::verify::Schedule`], so both testbenches sample the same
    /// distributions (paper Sect. 6.1).
    pub fn sample(&self, rng: &mut StdRng, seq: &mut u64) -> u64 {
        match self {
            DataGen::Const(v) => *v,
            DataGen::Counter => {
                let v = *seq;
                *seq += 1;
                v
            }
            DataGen::Alternate => {
                let v = *seq % 2;
                *seq += 1;
                v
            }
            DataGen::Weighted(choices) => weighted_draw(choices, rng).map_or(0, |i| choices[i].0),
        }
    }
}

/// Draws an index from `choices` proportionally to the weights, ignoring
/// entries whose weight is not a positive finite number.
///
/// Degenerate distributions never panic (the old code hit `gen_range` on
/// an empty `0.0..0.0` range when every weight was zero): an empty list
/// returns `None`, and a non-empty list with no usable weight falls back
/// deterministically to `Some(0)` — the first entry — so simulations stay
/// reproducible.
fn weighted_draw<T>(choices: &[(T, f64)], rng: &mut StdRng) -> Option<usize> {
    let usable = |w: f64| w.is_finite() && w > 0.0;
    let total: f64 = choices.iter().map(|&(_, w)| w).filter(|&w| usable(w)).sum();
    if !(total.is_finite() && total > 0.0) {
        // Degenerate distribution: deterministic fallback to the first
        // entry (if any) so simulations stay reproducible.
        return if choices.is_empty() { None } else { Some(0) };
    }
    let mut x = rng.gen_range(0.0..total);
    let mut last = None;
    for (i, &(_, w)) in choices.iter().enumerate() {
        if !usable(w) {
            continue;
        }
        if x < w {
            return Some(i);
        }
        x -= w;
        last = Some(i);
    }
    // Floating-point slop can exhaust the loop; the last usable entry is
    // the right owner of the residual mass.
    last
}

/// Per-source configuration: how often the environment offers a token and
/// which payload it carries (the paper's "probability distributions defined
/// by the user", Sect. 6.1).
#[derive(Debug, Clone, PartialEq)]
pub struct SourceCfg {
    /// Probability of offering a token on an idle cycle.
    pub rate: f64,
    /// Payload generator.
    pub data: DataGen,
}

impl Default for SourceCfg {
    fn default() -> Self {
        SourceCfg {
            rate: 1.0,
            data: DataGen::Const(0),
        }
    }
}

/// Per-sink configuration: back-pressure and anti-token launch rates. A
/// non-zero `kill_prob` makes the consumer emit the negative tokens of
/// Sect. 2 that travel upstream and annihilate work in flight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinkCfg {
    /// Probability of stopping on any cycle.
    pub stop_prob: f64,
    /// Probability of launching an anti-token on any cycle (when none is
    /// pending).
    pub kill_prob: f64,
}

impl Default for SinkCfg {
    fn default() -> Self {
        SinkCfg {
            stop_prob: 0.0,
            kill_prob: 0.0,
        }
    }
}

/// A weighted latency distribution for variable-latency units — e.g. the
/// paper's cached multiplier `M1` taking 2 cycles with probability 0.8 and
/// 10 with probability 0.2 (Sect. 6.1).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyDist {
    /// `(latency, weight)` pairs; weights need not sum to 1.
    pub choices: Vec<(u32, f64)>,
}

impl LatencyDist {
    /// Single fixed latency.
    pub fn fixed(latency: u32) -> Self {
        LatencyDist {
            choices: vec![(latency, 1.0)],
        }
    }

    /// Weighted mixture, e.g. the paper's `M1`: 2 or 10 cycles with
    /// probabilities 0.8 / 0.2.
    pub fn weighted(choices: Vec<(u32, f64)>) -> Self {
        LatencyDist { choices }
    }

    /// Expected latency. Degenerate weight sets (empty, all zero/negative)
    /// fall back to the first latency, or 1 for an empty distribution,
    /// mirroring the sampling fallback.
    pub fn mean(&self) -> f64 {
        let usable = |w: f64| w.is_finite() && w > 0.0;
        let total: f64 = self
            .choices
            .iter()
            .map(|&(_, w)| w)
            .filter(|&w| usable(w))
            .sum();
        if !(total.is_finite() && total > 0.0) {
            return self.choices.first().map_or(1.0, |&(l, _)| f64::from(l));
        }
        self.choices
            .iter()
            .filter(|&&(_, w)| usable(w))
            .map(|&(l, w)| f64::from(l) * w)
            .sum::<f64>()
            / total
    }

    fn sample(&self, rng: &mut StdRng) -> u32 {
        weighted_draw(&self.choices, rng).map_or(1, |i| self.choices[i].0)
    }
}

impl Default for LatencyDist {
    fn default() -> Self {
        LatencyDist::fixed(1)
    }
}

/// Configuration of a [`RandomEnv`]: per-component overrides keyed by
/// component display name, with defaults for unnamed components.
#[derive(Debug, Clone, Default)]
pub struct EnvConfig {
    /// Source overrides by name.
    pub sources: HashMap<String, SourceCfg>,
    /// Sink overrides by name.
    pub sinks: HashMap<String, SinkCfg>,
    /// Variable-latency overrides by name.
    pub vls: HashMap<String, LatencyDist>,
    /// Default source behaviour (always offer, payload 0).
    pub default_source: SourceCfg,
    /// Default sink behaviour (always accept, never kill).
    pub default_sink: SinkCfg,
    /// Default latency (1 cycle).
    pub default_vl: LatencyDist,
}

/// Seeded random environment implementing the paper's testbench behaviour.
#[derive(Debug, Clone)]
pub struct RandomEnv {
    rng: StdRng,
    cfg: EnvConfig,
    counters: HashMap<CompId, u64>,
}

impl RandomEnv {
    /// Creates a reproducible environment.
    pub fn new(seed: u64, cfg: EnvConfig) -> Self {
        RandomEnv {
            rng: StdRng::seed_from_u64(seed),
            cfg,
            counters: HashMap::new(),
        }
    }

    fn gen_data(&mut self, comp: CompId, gen: &DataGen) -> u64 {
        gen.sample(&mut self.rng, self.counters.entry(comp).or_insert(0))
    }
}

impl Environment for RandomEnv {
    fn source_offer(&mut self, comp: CompId, name: &str, _time: u64) -> Option<u64> {
        let cfg = self
            .cfg
            .sources
            .get(name)
            .unwrap_or(&self.cfg.default_source)
            .clone();
        if cfg.rate >= 1.0 || self.rng.gen_bool(cfg.rate.clamp(0.0, 1.0)) {
            Some(self.gen_data(comp, &cfg.data))
        } else {
            None
        }
    }

    fn sink_stop(&mut self, _comp: CompId, name: &str, _time: u64) -> bool {
        let cfg = self
            .cfg
            .sinks
            .get(name)
            .copied()
            .unwrap_or(self.cfg.default_sink);
        cfg.stop_prob > 0.0 && self.rng.gen_bool(cfg.stop_prob.clamp(0.0, 1.0))
    }

    fn sink_kill(&mut self, _comp: CompId, name: &str, _time: u64) -> bool {
        let cfg = self
            .cfg
            .sinks
            .get(name)
            .copied()
            .unwrap_or(self.cfg.default_sink);
        cfg.kill_prob > 0.0 && self.rng.gen_bool(cfg.kill_prob.clamp(0.0, 1.0))
    }

    fn vl_latency(&mut self, _comp: CompId, name: &str, _time: u64) -> u32 {
        let dist = self
            .cfg
            .vls
            .get(name)
            .cloned()
            .unwrap_or_else(|| self.cfg.default_vl.clone());
        dist.sample(&mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_distribution_mean() {
        let m1 = LatencyDist::weighted(vec![(2, 0.8), (10, 0.2)]);
        assert!((m1.mean() - 3.6).abs() < 1e-12);
        assert_eq!(LatencyDist::fixed(4).mean(), 4.0);
    }

    #[test]
    fn latency_samples_come_from_support() {
        let m2 = LatencyDist::weighted(vec![(1, 0.5), (2, 0.5)]);
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen1 = false;
        let mut seen2 = false;
        for _ in 0..100 {
            match m2.sample(&mut rng) {
                1 => seen1 = true,
                2 => seen2 = true,
                other => panic!("impossible latency {other}"),
            }
        }
        assert!(seen1 && seen2);
    }

    #[test]
    fn weighted_data_matches_probabilities_roughly() {
        let mut env = RandomEnv::new(
            42,
            EnvConfig {
                default_source: SourceCfg {
                    rate: 1.0,
                    data: DataGen::Weighted(vec![(0, 0.6), (1, 0.3), (2, 0.1)]),
                },
                ..Default::default()
            },
        );
        let mut counts = [0u32; 3];
        for t in 0..10_000 {
            let v = env.source_offer(CompId(0), "s", t).unwrap();
            counts[v as usize] += 1;
        }
        assert!((counts[0] as f64 / 10_000.0 - 0.6).abs() < 0.03);
        assert!((counts[1] as f64 / 10_000.0 - 0.3).abs() < 0.03);
        assert!((counts[2] as f64 / 10_000.0 - 0.1).abs() < 0.03);
    }

    #[test]
    fn zero_weight_distribution_does_not_panic() {
        // Regression: gen_range(0.0..0.0) used to panic on an empty range
        // when every weight was zero. The fallback is deterministic: the
        // first entry.
        let gen = DataGen::Weighted(vec![(7, 0.0), (9, 0.0)]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seq = 0;
        for _ in 0..10 {
            assert_eq!(gen.sample(&mut rng, &mut seq), 7);
        }
        // An empty choice list degrades to payload 0.
        let empty = DataGen::Weighted(vec![]);
        assert_eq!(empty.sample(&mut rng, &mut seq), 0);
    }

    #[test]
    fn negative_and_nan_weights_are_ignored() {
        // Negative weights used to corrupt the cumulative walk (x -= w
        // grows x); now only positive finite weights carry mass.
        let gen = DataGen::Weighted(vec![(1, -5.0), (2, 1.0), (3, f64::NAN)]);
        let mut rng = StdRng::seed_from_u64(11);
        let mut seq = 0;
        for _ in 0..50 {
            assert_eq!(gen.sample(&mut rng, &mut seq), 2);
        }
        // All-negative falls back to the first entry.
        let neg = DataGen::Weighted(vec![(4, -1.0), (5, -2.0)]);
        assert_eq!(neg.sample(&mut rng, &mut seq), 4);
    }

    #[test]
    fn degenerate_latency_distribution_is_safe() {
        let zero = LatencyDist::weighted(vec![(6, 0.0), (8, 0.0)]);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(zero.sample(&mut rng), 6);
        assert_eq!(zero.mean(), 6.0);
        let empty = LatencyDist::weighted(vec![]);
        assert_eq!(empty.sample(&mut rng), 1);
        assert_eq!(empty.mean(), 1.0);
        // Mixed: the negative entry contributes nothing to the mean.
        let mixed = LatencyDist::weighted(vec![(2, 1.0), (100, -1.0)]);
        assert_eq!(mixed.mean(), 2.0);
    }

    #[test]
    fn alternate_generator_toggles() {
        let mut env = RandomEnv::new(
            1,
            EnvConfig {
                default_source: SourceCfg {
                    rate: 1.0,
                    data: DataGen::Alternate,
                },
                ..Default::default()
            },
        );
        let seq: Vec<u64> = (0..6)
            .map(|t| env.source_offer(CompId(0), "p", t).unwrap())
            .collect();
        assert_eq!(seq, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn source_rate_zero_never_offers() {
        let mut env = RandomEnv::new(
            1,
            EnvConfig {
                default_source: SourceCfg {
                    rate: 0.0,
                    data: DataGen::Const(9),
                },
                ..Default::default()
            },
        );
        for t in 0..50 {
            assert!(env.source_offer(CompId(0), "s", t).is_none());
        }
    }

    #[test]
    fn per_name_overrides_apply() {
        let mut cfg = EnvConfig::default();
        cfg.sinks.insert(
            "x".into(),
            SinkCfg {
                stop_prob: 1.0,
                kill_prob: 0.0,
            },
        );
        let mut env = RandomEnv::new(1, cfg);
        assert!(env.sink_stop(CompId(0), "x", 0));
        assert!(!env.sink_stop(CompId(1), "other", 0));
    }
}
