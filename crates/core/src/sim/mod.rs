//! Reference (behavioural) simulator for elastic networks.
//!
//! The simulator evaluates, cycle by cycle, the boolean control equations of
//! every controller — the same equations the gate-level compiler emits — and
//! advances the component state. Within a cycle all four channel rails
//! settle to a fixpoint (valid rails ripple forward, stop rails backward),
//! which terminates because [`ElasticNetwork::check`] rejects buffer-free
//! cycles.
//!
//! Passive channels (Fig. 7a) are handled at the signal level: after every
//! evaluation pass the interface forces `S⁻ = ¬V⁺` on them, and producers
//! never see their `V⁻` in backward-propagation logic — anti-tokens wait at
//! the boundary and annihilate with the next arriving token.
//!
//! Environment behaviour (source offers, sink stops and kills,
//! variable-latency draws) is factored behind the [`Environment`] trait;
//! [`RandomEnv`] reproduces the paper's randomized testbench.

mod env;

pub use env::{DataGen, EnvConfig, Environment, LatencyDist, RandomEnv, SinkCfg, SourceCfg};

use crate::channel::{ChanId, ChannelSignals};
use crate::compile::{FaultInjection, FaultRail};
use crate::error::CoreError;
use crate::fault::FaultProcess;
use crate::network::{CompId, ComponentKind, ElasticNetwork};
use crate::protocol::ProtocolMonitor;
use crate::stats::{ChannelStats, SimReport};

/// Runtime state of one component.
#[derive(Debug, Clone, PartialEq)]
enum CompState {
    Source {
        offering: bool,
        data: u64,
    },
    Sink {
        stop_now: bool,
        killing: bool,
        received: Vec<u64>,
    },
    Eb {
        v: bool,
        vs: bool,
        nv: bool,
        nvs: bool,
        data: u64,
        data_skid: u64,
    },
    Join {
        pend: Vec<bool>,
    },
    Fork {
        done: Vec<bool>,
    },
    Vl {
        phase: VlPhase,
        data: u64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VlPhase {
    Idle,
    Busy { left: u32 },
    Done,
}

/// Cycle-accurate behavioural simulator — the executable semantics of the
/// paper's controller library (Sect. 4): elastic buffers, lazy joins,
/// eager forks, early-evaluation joins with anti-token generation
/// (Sect. 4.2–4.3), passive interfaces (Fig. 7a) and variable-latency
/// go/done/ack units (Sect. 4.4).
///
/// For statistical experiments over many random schedules prefer the
/// compiled bit-parallel backend (`elastic_netlist::wide::WideSimulator`
/// driven through `crate::verify::NetlistTestbench`), which this simulator
/// cross-validates (see `crate::verify::cosim_check_wide`).
///
/// # Example
///
/// ```
/// use elastic_core::network::ElasticNetwork;
/// use elastic_core::sim::{BehavSim, EnvConfig, RandomEnv};
///
/// # fn main() -> Result<(), elastic_core::CoreError> {
/// let mut net = ElasticNetwork::new("demo");
/// let src = net.add_source("src").unwrap();
/// let eb = net.add_buffer("eb", 2, 0).unwrap();
/// let snk = net.add_sink("snk").unwrap();
/// net.connect(src, 0, eb, 0, "in")?;
/// let out = net.connect(eb, 0, snk, 0, "out")?;
/// let mut sim = BehavSim::new(&net)?;
/// let mut env = RandomEnv::new(7, EnvConfig::default());
/// sim.run(&mut env, 100)?;
/// assert!(sim.report().positive_rate(out) > 0.9, "free-flowing pipeline");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BehavSim {
    net: ElasticNetwork,
    state: Vec<CompState>,
    sig: Vec<ChannelSignals>,
    stats: Vec<ChannelStats>,
    monitor: ProtocolMonitor,
    check_protocol: bool,
    internal_annihilations: u64,
    time: u64,
    /// Armed rail-fault sites, one entry per distinct channel rail.
    faults: Vec<ArmedFault>,
}

/// An armed rail-fault site: `(fault, site channel, rail, windows)` where
/// the rail is corrupted while `start <= time < end` for any
/// `(start, end)` window, mirroring the compiled corruption gates
/// (`crate::compile`).
type ArmedFault = (FaultInjection, ChanId, FaultRail, Vec<(u64, u64)>);

impl BehavSim {
    /// Builds a simulator over a validated copy of the network.
    ///
    /// # Errors
    ///
    /// Propagates [`ElasticNetwork::check`] failures.
    pub fn new(net: &ElasticNetwork) -> Result<Self, CoreError> {
        net.check()?;
        let state = net
            .components()
            .map(|c| match &net.component(c).kind {
                ComponentKind::Source => CompState::Source {
                    offering: false,
                    data: 0,
                },
                ComponentKind::Sink => CompState::Sink {
                    stop_now: false,
                    killing: false,
                    received: Vec::new(),
                },
                ComponentKind::Eb {
                    init_token,
                    init_data,
                } => CompState::Eb {
                    v: *init_token,
                    vs: false,
                    nv: false,
                    nvs: false,
                    data: *init_data,
                    data_skid: 0,
                },
                ComponentKind::Join { inputs, .. } => CompState::Join {
                    pend: vec![false; *inputs],
                },
                ComponentKind::Fork { outputs } => CompState::Fork {
                    done: vec![false; *outputs],
                },
                ComponentKind::VarLatency => CompState::Vl {
                    phase: VlPhase::Idle,
                    data: 0,
                },
            })
            .collect();
        let nch = net.num_channels();
        Ok(BehavSim {
            net: net.clone(),
            state,
            sig: vec![ChannelSignals::default(); nch],
            stats: vec![ChannelStats::default(); nch],
            monitor: ProtocolMonitor::new(nch),
            check_protocol: true,
            internal_annihilations: 0,
            time: 0,
            faults: Vec::new(),
        })
    }

    /// Arms a transient rail fault: while `start <= time < start + len` the
    /// targeted rail of the named channel is corrupted after every
    /// settlement pass — the behavioural mirror of the corruption gate the
    /// compiler splices in for the same [`FaultInjection`]. The two
    /// backends apply the *same fault specification*; they are not
    /// guaranteed bit-identical under an active fault, because controllers
    /// feed back their raw (pre-corruption) rail values internally at
    /// slightly different points.
    ///
    /// Injecting a fault usually also means disabling the erroring monitor
    /// ([`BehavSim::set_check_protocol`]) and scoring the trace with
    /// [`crate::protocol::RecoveryDetector`] instead.
    ///
    /// # Errors
    ///
    /// [`CoreError::FaultSite`] when the fault names a channel this network
    /// does not have, the window is empty, or the fault is the structural
    /// [`FaultInjection::DropAntiToken`] (a compile-time sabotage with no
    /// behavioural counterpart — inject it via
    /// [`crate::compile::CompileOptions::fault`]).
    pub fn inject_fault(
        &mut self,
        fault: FaultInjection,
        start: u64,
        len: u64,
    ) -> Result<(), CoreError> {
        if len == 0 {
            return Err(CoreError::FaultSite("empty injection window".into()));
        }
        let end = start.saturating_add(len);
        self.arm_site(fault, vec![(start, end)])
    }

    /// Arms a whole [`FaultProcess`]: validates it eagerly against this
    /// network and the `cycles` horizon, then arms every site with its
    /// deterministic `(seed, lane)` window expansion — the behavioural
    /// counterpart of compiling with
    /// [`crate::compile::CompileOptions::faults`] `= process.sites()` and
    /// arming the trailing stimulus columns with
    /// [`FaultProcess::windows`]. Calling it repeatedly composes processes
    /// on disjoint channel rails.
    ///
    /// # Errors
    ///
    /// [`CoreError::FaultProcess`] / [`CoreError::FaultSite`] from
    /// [`FaultProcess::validate`], and [`CoreError::FaultProcess`] when a
    /// site collides with an already-armed channel rail.
    pub fn inject_process(
        &mut self,
        process: &FaultProcess,
        seed: u64,
        lane: usize,
        cycles: usize,
    ) -> Result<(), CoreError> {
        process.validate(&self.net, cycles)?;
        for (site, windows) in process
            .sites()
            .into_iter()
            .zip(process.windows(seed, lane, cycles))
        {
            self.arm_site(
                site,
                windows
                    .into_iter()
                    .map(|(s, l)| (s as u64, (s + l) as u64))
                    .collect(),
            )?;
        }
        Ok(())
    }

    /// Arms one corruption site with a list of `(start, end)` windows.
    fn arm_site(
        &mut self,
        fault: FaultInjection,
        windows: Vec<(u64, u64)>,
    ) -> Result<(), CoreError> {
        let Some(site) = fault.channel() else {
            return Err(CoreError::FaultSite(
                "drop-anti-token is a compile-time sabotage, not a behavioural rail fault".into(),
            ));
        };
        let chan = self
            .net
            .channels()
            .find(|&c| self.net.channel(c).name == site)
            .ok_or_else(|| CoreError::FaultSite(format!("no channel named {site:?} to corrupt")))?;
        let rail = fault.rail().expect("rail faults target a rail");
        if self
            .faults
            .iter()
            .any(|&(_, c, r, _)| c == chan && r == rail)
        {
            return Err(CoreError::FaultProcess(format!(
                "channel {site:?} rail {} is already armed: overlapping windows on one rail \
                 must share a single site",
                rail.label()
            )));
        }
        self.faults.push((fault, chan, rail, windows));
        Ok(())
    }

    /// Disarms every pending rail fault.
    pub fn clear_fault(&mut self) {
        self.faults.clear();
    }

    /// Disables the runtime protocol monitor (kept on by default; only worth
    /// disabling in throughput micro-benchmarks).
    pub fn set_check_protocol(&mut self, on: bool) {
        self.check_protocol = on;
    }

    /// Completed cycles.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// The settled signals of the last completed cycle: the four SELF rails
    /// `(V⁺, S⁺, V⁻, S⁻)` of the dual channel (paper Sect. 3, Fig. 5) plus
    /// the forward payload.
    ///
    /// # Panics
    ///
    /// Panics if `chan` is out of range.
    pub fn signals(&self, chan: ChanId) -> ChannelSignals {
        self.sig[chan.index()]
    }

    /// Data values accepted so far by a sink, in arrival order — the
    /// observation stream of the paper's Fig. 8(b) data-correctness
    /// testbench (consumers must see the produced sequence with deletions
    /// only, never reordering or duplication).
    ///
    /// Returns an empty slice for non-sink components.
    pub fn sink_received(&self, comp: CompId) -> &[u64] {
        match &self.state[comp.index()] {
            CompState::Sink { received, .. } => received,
            _ => &[],
        }
    }

    /// Statistics accumulated so far: per-channel positive/negative
    /// transfer, retry and kill counts — the raw material of the paper's
    /// Table 1 columns and the throughput plots of Sect. 6.1.
    pub fn report(&self) -> SimReport {
        SimReport {
            channels: self.stats.clone(),
            names: self
                .net
                .channels()
                .map(|c| self.net.channel(c).name.clone())
                .collect(),
            cycles: self.time,
            internal_annihilations: self.internal_annihilations,
        }
    }

    /// Runs `cycles` cycles under `env`.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`BehavSim::step`].
    pub fn run(&mut self, env: &mut dyn Environment, cycles: u64) -> Result<(), CoreError> {
        for _ in 0..cycles {
            self.step(env)?;
        }
        Ok(())
    }

    /// Simulates one cycle: refresh environment decisions, settle the four
    /// rails, record statistics, advance component state.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoFixpoint`] if the rails fail to settle (implementation
    /// bug) and [`CoreError::ProtocolViolation`] from the runtime monitor.
    pub fn step(&mut self, env: &mut dyn Environment) -> Result<(), CoreError> {
        self.refresh_env(env);
        self.settle()?;
        self.observe()?;
        self.update(env);
        self.time += 1;
        Ok(())
    }

    fn refresh_env(&mut self, env: &mut dyn Environment) {
        for comp in self.net.components() {
            let name = self.net.component(comp).name.clone();
            match &mut self.state[comp.index()] {
                CompState::Source { offering, data } if !*offering => {
                    if let Some(d) = env.source_offer(comp, &name, self.time) {
                        *offering = true;
                        *data = d;
                    }
                }
                CompState::Sink {
                    stop_now, killing, ..
                } => {
                    *stop_now = env.sink_stop(comp, &name, self.time);
                    if !*killing && env.sink_kill(comp, &name, self.time) {
                        *killing = true;
                    }
                }
                _ => {}
            }
        }
    }

    fn settle(&mut self) -> Result<(), CoreError> {
        for s in &mut self.sig {
            *s = ChannelSignals::default();
        }
        let budget = self.net.num_components() + self.net.num_channels() + 4;
        let comps: Vec<CompId> = self.net.components().collect();
        let passive: Vec<ChanId> = self
            .net
            .channels()
            .filter(|&c| self.net.channel(c).passive)
            .collect();
        for _ in 0..budget {
            let before = self.sig.clone();
            for &comp in &comps {
                self.eval_component(comp);
            }
            // Armed rail faults: corrupt each settled rail whose site has
            // an active window, like the compiled corruption gates between
            // producer and consumers. Every pass re-evaluates the raw
            // value, so the corruption is stable across passes.
            for (fault, chan, rail, windows) in &self.faults {
                if windows.iter().any(|&(s, e)| (s..e).contains(&self.time)) {
                    let s = &mut self.sig[chan.index()];
                    match rail {
                        FaultRail::Vp => s.vp = fault.corrupt(s.vp, true),
                        FaultRail::Sp => s.sp = fault.corrupt(s.sp, true),
                        FaultRail::Vn => s.vn = fault.corrupt(s.vn, true),
                    }
                }
            }
            // Passive anti-token interfaces force S⁻ = ¬V⁺ at the boundary.
            for &chan in &passive {
                let s = &mut self.sig[chan.index()];
                s.sn = !s.vp;
            }
            if before == self.sig {
                return Ok(());
            }
        }
        Err(CoreError::NoFixpoint)
    }

    /// `V⁻` for the producer's *backward-propagation* logic (an anti-token
    /// entering the producer's storage or FSM): masked to zero on passive
    /// channels, where anti-tokens must wait at the boundary. The kill
    /// condition `V⁺ ∧ V⁻` stays channel-local and uses the raw value.
    fn backward_vn(&self, chan: ChanId) -> bool {
        if self.net.channel(chan).passive {
            false
        } else {
            self.sig[chan.index()].vn
        }
    }

    #[allow(clippy::too_many_lines)]
    fn eval_component(&mut self, comp: CompId) {
        let kind = self.net.component(comp).kind.clone();
        match kind {
            ComponentKind::Source => {
                let c = self.net.output_channel(comp, 0).expect("wired");
                let (offering, data) = match &self.state[comp.index()] {
                    CompState::Source { offering, data } => (*offering, *data),
                    _ => unreachable!(),
                };
                let s = &mut self.sig[c.index()];
                s.vp = offering;
                if offering {
                    s.data = data;
                }
                // Passive anti-token interface toward the environment.
                s.sn = !offering;
            }
            ComponentKind::Sink => {
                let a = self.net.input_channel(comp, 0).expect("wired");
                let (stop_now, killing) = match &self.state[comp.index()] {
                    CompState::Sink {
                        stop_now, killing, ..
                    } => (*stop_now, *killing),
                    _ => unreachable!(),
                };
                let s = &mut self.sig[a.index()];
                s.vn = killing;
                s.sp = stop_now && !killing;
            }
            ComponentKind::Eb { .. } => {
                // The EB registers all four rails: V⁺/V⁻ from the main
                // slots, S⁺/S⁻ from the skid slots — no combinational path
                // crosses the buffer in either direction, mirroring the
                // latched V and S of the paper's EHB pair.
                let a = self.net.input_channel(comp, 0).expect("wired");
                let b = self.net.output_channel(comp, 0).expect("wired");
                let (v, vs, nv, nvs, data) = match &self.state[comp.index()] {
                    CompState::Eb {
                        v,
                        vs,
                        nv,
                        nvs,
                        data,
                        ..
                    } => (*v, *vs, *nv, *nvs, *data),
                    _ => unreachable!(),
                };
                {
                    let sb = &mut self.sig[b.index()];
                    sb.vp = v;
                    if v {
                        sb.data = data;
                    }
                    sb.sn = nvs;
                }
                {
                    let sa = &mut self.sig[a.index()];
                    sa.vn = nv;
                    sa.sp = vs;
                }
            }
            ComponentKind::Join { inputs, ee } => {
                let ins: Vec<ChanId> = (0..inputs)
                    .map(|i| self.net.input_channel(comp, i).expect("wired"))
                    .collect();
                let b = self.net.output_channel(comp, 0).expect("wired");
                let pend = match &self.state[comp.index()] {
                    CompState::Join { pend } => pend.clone(),
                    _ => unreachable!(),
                };
                let vp_in: Vec<bool> = ins.iter().map(|&c| self.sig[c.index()].vp).collect();
                let vpeff: Vec<bool> = vp_in.iter().zip(&pend).map(|(&vi, &p)| vi && !p).collect();
                let any_pend = pend.iter().any(|&p| p);
                let (enabled, select) = match &ee {
                    Some(f) => {
                        let guard_data = self.sig[ins[f.guard_input].index()].data;
                        match f.eval(&vpeff, guard_data) {
                            Some(t) => (true, f.terms[t].select),
                            None => (false, 0),
                        }
                    }
                    None => (vpeff.iter().all(|&vi| vi), 0),
                };
                let vp_b = enabled && !any_pend;
                let data_b = self.sig[ins[select].index()].data;
                let sp_b = self.sig[b.index()].sp;
                let vn_b = self.backward_vn(b);
                // Output transfer or output kill both consume the inputs.
                let fire = vp_b && !sp_b;
                let absorb = vn_b && !vp_b && !any_pend;
                {
                    let sb = &mut self.sig[b.index()];
                    sb.vp = vp_b;
                    if vp_b {
                        sb.data = data_b;
                    }
                    sb.sn = !absorb && !vp_b;
                }
                for (i, &a) in ins.iter().enumerate() {
                    let g = fire && !vpeff[i]; // anti-token generation (G gates)
                    let vn_a = pend[i] || g;
                    let sa = &mut self.sig[a.index()];
                    sa.vn = vn_a;
                    sa.sp = !fire && !vn_a;
                }
            }
            ComponentKind::Fork { outputs } => {
                let a = self.net.input_channel(comp, 0).expect("wired");
                let outs: Vec<ChanId> = (0..outputs)
                    .map(|i| self.net.output_channel(comp, i).expect("wired"))
                    .collect();
                let done = match &self.state[comp.index()] {
                    CompState::Fork { done } => done.clone(),
                    _ => unreachable!(),
                };
                let vp_a = self.sig[a.index()].vp;
                let data_a = self.sig[a.index()].data;
                let sn_a = self.sig[a.index()].sn;
                for (i, &b) in outs.iter().enumerate() {
                    let sb = &mut self.sig[b.index()];
                    sb.vp = vp_a && !done[i];
                    if sb.vp {
                        sb.data = data_a;
                    }
                }
                // Which output copies are resolved (already done, transfer,
                // or killed by a consumer anti-token)?
                let mut all_res = true;
                let mut all_vn = true;
                for (i, &b) in outs.iter().enumerate() {
                    let s = self.sig[b.index()];
                    let t = s.vp && !s.sp && !s.vn;
                    let k = s.vp && s.vn;
                    if !(done[i] || t || k) {
                        all_res = false;
                    }
                    if !self.backward_vn(b) {
                        all_vn = false;
                    }
                }
                // Backward lazy join of anti-tokens (pure counterflow case).
                let vn_a = all_vn && !vp_a;
                let consumed_neg = vn_a && !sn_a;
                {
                    let sa = &mut self.sig[a.index()];
                    sa.vn = vn_a;
                    sa.sp = !all_res && !vn_a;
                }
                for &b in &outs {
                    let vp_b = self.sig[b.index()].vp;
                    let sb = &mut self.sig[b.index()];
                    sb.sn = !consumed_neg && !vp_b;
                }
            }
            ComponentKind::VarLatency => {
                let a = self.net.input_channel(comp, 0).expect("wired");
                let b = self.net.output_channel(comp, 0).expect("wired");
                let (phase, data) = match &self.state[comp.index()] {
                    CompState::Vl { phase, data } => (*phase, *data),
                    _ => unreachable!(),
                };
                let idle = phase == VlPhase::Idle;
                let done = phase == VlPhase::Done;
                let vn_b = self.backward_vn(b);
                // Anti-tokens pass through an idle unit; a busy unit absorbs
                // them (annihilating the in-flight token); a done unit kills
                // at the output channel.
                let vn_a = vn_b && idle;
                let sn_a = self.sig[a.index()].sn;
                let sp_b = self.sig[b.index()].sp;
                // Accept a new token when idle, or in the same cycle the
                // finished result leaves (ack overlaps the next go, so the
                // unit sustains one token per `latency` cycles).
                let out_resolving = done && !sp_b;
                let can_accept = idle || out_resolving;
                {
                    let sa = &mut self.sig[a.index()];
                    sa.vn = vn_a;
                    sa.sp = !can_accept && !vn_a;
                }
                let sa = self.sig[a.index()];
                let resolved_at_a = sa.vn && (sa.vp || !sn_a);
                let sn_b = if idle { vn_b && !resolved_at_a } else { false };
                {
                    let sb = &mut self.sig[b.index()];
                    sb.vp = done;
                    if done {
                        sb.data = data;
                    }
                    sb.sn = sn_b && !done;
                }
            }
        }
    }

    fn observe(&mut self) -> Result<(), CoreError> {
        for chan in self.net.channels() {
            let s = self.sig[chan.index()];
            if self.check_protocol {
                if let Err(msg) = s.check_invariants() {
                    return Err(CoreError::ProtocolViolation {
                        channel: chan,
                        message: msg.to_string(),
                    });
                }
                self.monitor.observe(chan, s)?;
            }
            self.stats[chan.index()].record(s.event());
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn update(&mut self, env: &mut dyn Environment) {
        for comp in self.net.components() {
            let kind = self.net.component(comp).kind.clone();
            let name = self.net.component(comp).name.clone();
            match kind {
                ComponentKind::Source => {
                    let c = self.net.output_channel(comp, 0).expect("wired");
                    let s = self.sig[c.index()];
                    if let CompState::Source { offering, .. } = &mut self.state[comp.index()] {
                        let transferred = s.vp && !s.sp && !s.vn;
                        let killed = s.vp && s.vn;
                        if transferred || killed {
                            *offering = false;
                        }
                    }
                }
                ComponentKind::Sink => {
                    let a = self.net.input_channel(comp, 0).expect("wired");
                    let s = self.sig[a.index()];
                    if let CompState::Sink {
                        killing, received, ..
                    } = &mut self.state[comp.index()]
                    {
                        if s.vp && !s.sp && !s.vn {
                            received.push(s.data);
                        }
                        if *killing {
                            let kill = s.vn && s.vp;
                            let neg_t = s.vn && !s.sn && !s.vp;
                            if kill || neg_t {
                                *killing = false;
                            }
                        }
                    }
                }
                ComponentKind::Eb { .. } => {
                    let a = self.net.input_channel(comp, 0).expect("wired");
                    let b = self.net.output_channel(comp, 0).expect("wired");
                    let sa = self.sig[a.index()];
                    let sb = self.sig[b.index()];
                    let vn_b = self.backward_vn(b);
                    if let CompState::Eb {
                        v,
                        vs,
                        nv,
                        nvs,
                        data,
                        data_skid,
                    } = &mut self.state[comp.index()]
                    {
                        let t_in = sa.vp && !sa.sp && !sa.vn;
                        let tn_in = vn_b && !sb.sn && !sb.vp;
                        if t_in && tn_in {
                            // A token and an anti-token entered the empty
                            // buffer from opposite sides: annihilate.
                            self.internal_annihilations += 1;
                        }
                        let t_enter = t_in && !tn_in;
                        let tn_enter = tn_in && !t_in;
                        // Positive side: the main slot departs on transfer
                        // or kill (the consumer's invariant gate clears S⁺
                        // during a kill), then refills from skid or input.
                        let out_gone = *v && !sb.sp;
                        let freed = !*v || out_gone;
                        let new_v = (*v && !out_gone) || (freed && (*vs || t_enter));
                        let new_vs = (*vs || t_enter) && !freed;
                        if freed && *vs {
                            *data = *data_skid;
                        } else if freed && t_enter {
                            *data = sa.data;
                        }
                        if t_enter && !freed {
                            *data_skid = sa.data;
                        }
                        // Negative side: the mirror image.
                        let ngone = *nv && !sa.sn;
                        let nfreed = !*nv || ngone;
                        let new_nv = (*nv && !ngone) || (nfreed && (*nvs || tn_enter));
                        let new_nvs = (*nvs || tn_enter) && !nfreed;
                        *v = new_v;
                        *vs = new_vs;
                        *nv = new_nv;
                        *nvs = new_nvs;
                    }
                }
                ComponentKind::Join { inputs, .. } => {
                    let ins: Vec<ChanId> = (0..inputs)
                        .map(|i| self.net.input_channel(comp, i).expect("wired"))
                        .collect();
                    let b = self.net.output_channel(comp, 0).expect("wired");
                    let sb = self.sig[b.index()];
                    let vn_b = self.backward_vn(b);
                    let any_pend = match &self.state[comp.index()] {
                        CompState::Join { pend } => pend.iter().any(|&p| p),
                        _ => unreachable!(),
                    };
                    let absorb = vn_b && !sb.vp && !any_pend;
                    let resolutions: Vec<(bool, bool)> = ins
                        .iter()
                        .map(|&a| {
                            let sa = self.sig[a.index()];
                            let t_n = sa.vn && !sa.sn && !sa.vp;
                            let k = sa.vn && sa.vp;
                            (sa.vn, t_n || k)
                        })
                        .collect();
                    if let CompState::Join { pend } = &mut self.state[comp.index()] {
                        for (i, p) in pend.iter_mut().enumerate() {
                            let (vn_now, resolved) = resolutions[i];
                            let owed = *p || vn_now || absorb;
                            *p = owed && !resolved;
                        }
                    }
                }
                ComponentKind::Fork { outputs } => {
                    let a = self.net.input_channel(comp, 0).expect("wired");
                    let outs: Vec<ChanId> = (0..outputs)
                        .map(|i| self.net.output_channel(comp, i).expect("wired"))
                        .collect();
                    let vp_a = self.sig[a.index()].vp;
                    let res: Vec<bool> = outs
                        .iter()
                        .enumerate()
                        .map(|(i, &bch)| {
                            let s = self.sig[bch.index()];
                            let t = s.vp && !s.sp && !s.vn;
                            let k = s.vp && s.vn;
                            let done_i = match &self.state[comp.index()] {
                                CompState::Fork { done } => done[i],
                                _ => unreachable!(),
                            };
                            done_i || t || k
                        })
                        .collect();
                    let consumed = vp_a && res.iter().all(|&r| r);
                    if let CompState::Fork { done } = &mut self.state[comp.index()] {
                        for (d, &r) in done.iter_mut().zip(&res) {
                            *d = r && !consumed;
                        }
                    }
                }
                ComponentKind::VarLatency => {
                    let a = self.net.input_channel(comp, 0).expect("wired");
                    let b = self.net.output_channel(comp, 0).expect("wired");
                    let sa = self.sig[a.index()];
                    let sb = self.sig[b.index()];
                    let vn_b = self.backward_vn(b);
                    let t_in = sa.vp && !sa.sp && !sa.vn;
                    if let CompState::Vl { phase, data } = &mut self.state[comp.index()] {
                        // Launch state for a token accepted this cycle: the
                        // result becomes visible `latency` cycles later.
                        let launch = |data_slot: &mut u64, env: &mut dyn Environment| {
                            *data_slot = sa.data;
                            let lat = env.vl_latency(comp, &name, self.time).max(1);
                            if lat == 1 {
                                VlPhase::Done
                            } else {
                                VlPhase::Busy { left: lat - 1 }
                            }
                        };
                        *phase = match *phase {
                            VlPhase::Idle => {
                                if t_in {
                                    launch(data, env)
                                } else {
                                    VlPhase::Idle
                                }
                            }
                            VlPhase::Busy { left } => {
                                if vn_b {
                                    VlPhase::Idle // computation aborted by anti-token
                                } else if left <= 1 {
                                    VlPhase::Done
                                } else {
                                    VlPhase::Busy { left: left - 1 }
                                }
                            }
                            VlPhase::Done => {
                                if sb.vp && !sb.sp {
                                    // Result left (transfer or kill): start
                                    // the next computation immediately when a
                                    // token entered in the same cycle.
                                    if t_in {
                                        launch(data, env)
                                    } else {
                                        VlPhase::Idle
                                    }
                                } else {
                                    VlPhase::Done
                                }
                            }
                        };
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelEvent;
    use crate::ee::{EarlyEval, EeTerm};

    /// src -> eb(2 stages) -> snk.
    fn pipeline(tokens: usize) -> (ElasticNetwork, ChanId, ChanId) {
        let mut net = ElasticNetwork::new("lin");
        let src = net.add_source("src").unwrap();
        let eb = net.add_buffer("eb", 2, tokens).unwrap();
        let snk = net.add_sink("snk").unwrap();
        let cin = net.connect(src, 0, eb, 0, "in").unwrap();
        let cout = net.connect(eb, 0, snk, 0, "out").unwrap();
        (net, cin, cout)
    }

    #[test]
    fn free_flow_reaches_full_throughput() {
        let (net, cin, cout) = pipeline(0);
        let mut sim = BehavSim::new(&net).unwrap();
        let mut env = RandomEnv::new(3, EnvConfig::default());
        sim.run(&mut env, 200).unwrap();
        let r = sim.report();
        assert!(
            r.positive_rate(cin) > 0.95,
            "in rate {}",
            r.positive_rate(cin)
        );
        assert!(
            r.positive_rate(cout) > 0.95,
            "out rate {}",
            r.positive_rate(cout)
        );
    }

    #[test]
    fn latency_through_buffer_is_one_cycle_per_stage() {
        let (net, _cin, cout) = pipeline(0);
        let mut sim = BehavSim::new(&net).unwrap();
        let mut env = RandomEnv::new(3, EnvConfig::default());
        // Cycle 0: token enters stage 0. Cycle 1: moves to stage 1.
        // Cycle 2: leaves on the output channel.
        sim.step(&mut env).unwrap();
        assert_eq!(sim.signals(cout).event(), ChannelEvent::Idle);
        sim.step(&mut env).unwrap();
        assert_eq!(sim.signals(cout).event(), ChannelEvent::Idle);
        sim.step(&mut env).unwrap();
        assert_eq!(sim.signals(cout).event(), ChannelEvent::PositiveTransfer);
    }

    #[test]
    fn backpressure_stalls_without_losing_tokens() {
        let (net, cin, cout) = pipeline(0);
        let mut sim = BehavSim::new(&net).unwrap();
        let mut cfg = EnvConfig::default();
        cfg.sinks.insert(
            "snk".into(),
            SinkCfg {
                stop_prob: 1.0,
                kill_prob: 0.0,
            },
        );
        let mut env = RandomEnv::new(3, cfg);
        sim.run(&mut env, 50).unwrap();
        let r = sim.report();
        // Two EBs of capacity 2: exactly four tokens entered, none left.
        assert_eq!(r.channel(cin).positive, 4);
        assert_eq!(r.channel(cout).positive, 0);
        assert!(r.channel(cout).retries > 40);
    }

    #[test]
    fn sink_kill_annihilates_tokens() {
        let (net, _cin, cout) = pipeline(2);
        let mut sim = BehavSim::new(&net).unwrap();
        let mut cfg = EnvConfig::default();
        cfg.sources.insert(
            "src".into(),
            SourceCfg {
                rate: 0.0,
                data: DataGen::Const(0),
            },
        );
        cfg.sinks.insert(
            "snk".into(),
            SinkCfg {
                stop_prob: 0.0,
                kill_prob: 1.0,
            },
        );
        let mut env = RandomEnv::new(3, cfg);
        sim.run(&mut env, 10).unwrap();
        let r = sim.report();
        // The two initial tokens are killed on the output channel; further
        // anti-tokens travel backwards into the empty pipeline and stop at
        // the source interface.
        assert_eq!(r.channel(cout).kills, 2);
        assert!(r.channel(cout).negative >= 1);
    }

    #[test]
    fn data_payloads_travel_in_order() {
        let (net, _cin, _cout) = pipeline(0);
        let snk = net.component_by_name("snk").unwrap();
        let mut sim = BehavSim::new(&net).unwrap();
        let mut cfg = EnvConfig::default();
        cfg.sources.insert(
            "src".into(),
            SourceCfg {
                rate: 1.0,
                data: DataGen::Counter,
            },
        );
        let mut env = RandomEnv::new(3, cfg);
        sim.run(&mut env, 20).unwrap();
        let got = sim.sink_received(snk);
        assert!(got.len() >= 10);
        for (i, &d) in got.iter().enumerate() {
            assert_eq!(d, i as u64, "FIFO order and no loss/duplication");
        }
    }

    #[test]
    fn lazy_join_waits_for_all_inputs() {
        let mut net = ElasticNetwork::new("join");
        let s1 = net.add_source("s1").unwrap();
        let s2 = net.add_source("s2").unwrap();
        let b1 = net.add_eb("b1", false).unwrap();
        let b2 = net.add_eb("b2", false).unwrap();
        let j = net.add_join("j", 2).unwrap();
        let snk = net.add_sink("snk").unwrap();
        net.connect(s1, 0, b1, 0, "a1").unwrap();
        net.connect(s2, 0, b2, 0, "a2").unwrap();
        net.connect(b1, 0, j, 0, "j1").unwrap();
        net.connect(b2, 0, j, 1, "j2").unwrap();
        let out = net.connect(j, 0, snk, 0, "out").unwrap();
        let mut sim = BehavSim::new(&net).unwrap();
        let mut cfg = EnvConfig::default();
        // s2 only offers half the time: join throughput tracks the slow one.
        cfg.sources.insert(
            "s2".into(),
            SourceCfg {
                rate: 0.5,
                data: DataGen::Const(0),
            },
        );
        let mut env = RandomEnv::new(5, cfg);
        sim.run(&mut env, 2000).unwrap();
        let r = sim.report();
        let th = r.positive_rate(out);
        assert!((0.4..0.6).contains(&th), "join rate {th}");
    }

    #[test]
    fn eager_fork_lets_fast_branch_run_ahead_one_token() {
        let mut net = ElasticNetwork::new("fork");
        let src = net.add_source("src").unwrap();
        let f = net.add_fork("f", 2).unwrap();
        let fast = net.add_sink("fast").unwrap();
        let slow = net.add_sink("slow").unwrap();
        net.connect(src, 0, f, 0, "in").unwrap();
        let cf = net.connect(f, 0, fast, 0, "cf").unwrap();
        let cs = net.connect(f, 1, slow, 0, "cs").unwrap();
        let mut sim = BehavSim::new(&net).unwrap();
        let mut cfg = EnvConfig::default();
        cfg.sinks.insert(
            "slow".into(),
            SinkCfg {
                stop_prob: 1.0,
                kill_prob: 0.0,
            },
        );
        let mut env = RandomEnv::new(5, cfg);
        sim.run(&mut env, 30).unwrap();
        let r = sim.report();
        // Eager: the fast branch gets the first token immediately even
        // though the slow branch never accepts; then the fork blocks.
        assert_eq!(r.channel(cf).positive, 1);
        assert_eq!(r.channel(cs).positive, 0);
        assert!(r.channel(cs).retries > 20);
    }

    /// Builds the EJ test harness: guard and s1 always offer; the EE
    /// function always selects input 1, so input 2's tokens are never used
    /// as data. Returns `(network, c2, j2, out)`.
    fn ej_harness() -> (ElasticNetwork, ChanId, ChanId, ChanId) {
        let mut net = ElasticNetwork::new("ej");
        let gs = net.add_source("guard").unwrap();
        let s1 = net.add_source("s1").unwrap();
        let s2 = net.add_source("s2").unwrap();
        let bg = net.add_eb("bg", false).unwrap();
        let b1 = net.add_eb("b1", false).unwrap();
        let b2 = net.add_eb("b2", false).unwrap();
        let ee = EarlyEval::new(
            0,
            vec![EeTerm {
                guard_mask: 1,
                guard_value: 0,
                required: vec![1],
                select: 1,
            }],
        );
        let j = net.add_early_join("w", 3, ee).unwrap();
        let snk = net.add_sink("snk").unwrap();
        net.connect(gs, 0, bg, 0, "cg").unwrap();
        net.connect(s1, 0, b1, 0, "c1").unwrap();
        let c2 = net.connect(s2, 0, b2, 0, "c2").unwrap();
        net.connect(bg, 0, j, 0, "jg").unwrap();
        net.connect(b1, 0, j, 1, "j1").unwrap();
        let j2 = net.connect(b2, 0, j, 2, "j2").unwrap();
        let out = net.connect(j, 0, snk, 0, "out").unwrap();
        (net, c2, j2, out)
    }

    #[test]
    fn early_join_generates_anti_tokens_that_kill_late_tokens() {
        // s2 offers only half the time: early fires race ahead of branch 2,
        // leaving anti-tokens behind that annihilate the late arrivals.
        let (net, c2, j2, out) = ej_harness();
        let mut sim = BehavSim::new(&net).unwrap();
        let mut cfg = EnvConfig::default();
        cfg.sources.insert(
            "s2".into(),
            SourceCfg {
                rate: 0.5,
                data: DataGen::Const(0),
            },
        );
        let mut env = RandomEnv::new(5, cfg);
        sim.run(&mut env, 4000).unwrap();
        let r = sim.report();
        // Token conservation: every operation consumes one branch-2 token,
        // either as data or as a kill victim, so the long-run rate tracks
        // s2's rate — the early join buys decoupling, not rate.
        let th = r.positive_rate(out);
        assert!((0.42..0.58).contains(&th), "out rate {th}");
        assert!(
            r.channel(j2).negative > 100,
            "anti-tokens flow on j2: {:?}",
            r.channel(j2)
        );
        let kills = r.channel(j2).kills + r.channel(c2).kills;
        assert!(kills > 100, "late tokens are annihilated: {kills}");
        // Conservation: every fire consumes one branch-2 token, either as a
        // j2 transfer (data) or through exactly one annihilation somewhere
        // on the branch. Allow a few units of in-flight slack.
        let fires = r.channel(out).positive;
        let consumed = r.channel(j2).positive
            + r.channel(j2).kills
            + r.channel(c2).kills
            + r.internal_annihilations;
        assert!(
            fires.abs_diff(consumed) <= 3,
            "fires {fires} vs branch-2 consumption {consumed}"
        );
    }

    #[test]
    fn early_join_blocks_when_anti_token_storage_is_exhausted() {
        // s2 never offers: the first two early fires park anti-tokens in
        // b2's two slots, the third parks one in the EJ's pending
        // flip-flop, and the B-gate then blocks further fires — bounded
        // counterflow storage, exactly the behaviour the paper's B gate
        // enforces ("it would be possible to extend the approach to store
        // multiple anti-tokens at every controller", Conclusions).
        let (net, _c2, j2, out) = ej_harness();
        let mut sim = BehavSim::new(&net).unwrap();
        let mut cfg = EnvConfig::default();
        cfg.sources.insert(
            "s2".into(),
            SourceCfg {
                rate: 0.0,
                data: DataGen::Const(0),
            },
        );
        let mut env = RandomEnv::new(5, cfg);
        sim.run(&mut env, 100).unwrap();
        let r = sim.report();
        assert_eq!(r.channel(out).positive, 3, "three fires, then blocked");
        assert_eq!(r.channel(j2).negative, 2, "two anti-tokens entered b2");
        assert!(r.channel(j2).negative_retries > 90, "the next one waits");
    }

    #[test]
    fn early_join_consumes_present_unneeded_inputs() {
        // s2 offers every cycle: its tokens are consumed by the fires as
        // ordinary transfers (no anti-tokens are ever generated).
        let (net, c2, j2, out) = ej_harness();
        let mut sim = BehavSim::new(&net).unwrap();
        let mut env = RandomEnv::new(5, EnvConfig::default());
        sim.run(&mut env, 200).unwrap();
        let r = sim.report();
        assert!(r.positive_rate(out) > 0.9);
        assert_eq!(r.channel(j2).kills, 0);
        assert_eq!(r.channel(c2).kills, 0);
        assert_eq!(r.channel(j2).negative, 0);
        assert!(
            r.channel(j2).positive > 190,
            "branch-2 tokens consumed as data"
        );
    }

    #[test]
    fn variable_latency_unit_delays_tokens() {
        let mut net = ElasticNetwork::new("vl");
        let src = net.add_source("src").unwrap();
        let b = net.add_eb("b", false).unwrap();
        let vl = net.add_var_latency("m").unwrap();
        let snk = net.add_sink("snk").unwrap();
        net.connect(src, 0, b, 0, "in").unwrap();
        net.connect(b, 0, vl, 0, "bm").unwrap();
        let out = net.connect(vl, 0, snk, 0, "out").unwrap();
        let mut sim = BehavSim::new(&net).unwrap();
        let mut cfg = EnvConfig::default();
        cfg.vls.insert("m".into(), LatencyDist::fixed(4));
        let mut env = RandomEnv::new(9, cfg);
        sim.run(&mut env, 400).unwrap();
        let th = sim.report().positive_rate(out);
        // One token per 4 cycles (plus handoff overhead cannot exceed 1/4).
        assert!((0.2..=0.26).contains(&th), "vl throughput {th}");
    }

    #[test]
    fn protocol_monitor_accepts_long_random_runs() {
        let (net, _cin, _cout) = pipeline(1);
        let mut sim = BehavSim::new(&net).unwrap();
        let mut cfg = EnvConfig::default();
        cfg.sources.insert(
            "src".into(),
            SourceCfg {
                rate: 0.6,
                data: DataGen::Counter,
            },
        );
        cfg.sinks.insert(
            "snk".into(),
            SinkCfg {
                stop_prob: 0.4,
                kill_prob: 0.1,
            },
        );
        let mut env = RandomEnv::new(11, cfg);
        // Any invariant or persistence violation would error out here.
        sim.run(&mut env, 5000).unwrap();
    }

    #[test]
    fn fault_site_validation_is_typed_per_variant() {
        let (net, _cin, _cout) = pipeline(0);
        let mut sim = BehavSim::new(&net).unwrap();
        // Unknown channel: every rail-fault variant is a typed error.
        for fault in [
            FaultInjection::RailFlip {
                channel: "nope".into(),
                rail: FaultRail::Vp,
            },
            FaultInjection::StuckAt {
                channel: "nope".into(),
                rail: FaultRail::Sp,
                value: true,
            },
            FaultInjection::DuplicateToken {
                channel: "nope".into(),
            },
            FaultInjection::LoseToken {
                channel: "nope".into(),
            },
        ] {
            assert!(
                matches!(
                    sim.inject_fault(fault.clone(), 0, 1),
                    Err(CoreError::FaultSite(_))
                ),
                "{fault:?} on a nonexistent channel must be FaultSite"
            );
        }
        // Empty window on a valid channel.
        assert!(matches!(
            sim.inject_fault(
                FaultInjection::RailFlip {
                    channel: "out".into(),
                    rail: FaultRail::Vp,
                },
                3,
                0
            ),
            Err(CoreError::FaultSite(_))
        ));
        // The structural sabotage has no behavioural counterpart.
        assert!(matches!(
            sim.inject_fault(FaultInjection::DropAntiToken { join: "j".into() }, 0, 1),
            Err(CoreError::FaultSite(_))
        ));
    }

    #[test]
    fn stuck_at_forces_rail_during_window_only() {
        let (net, _cin, cout) = pipeline(0);
        let mut sim = BehavSim::new(&net).unwrap();
        sim.set_check_protocol(false);
        sim.inject_fault(
            FaultInjection::StuckAt {
                channel: "out".into(),
                rail: FaultRail::Sp,
                value: true,
            },
            5,
            4,
        )
        .unwrap();
        let mut env = RandomEnv::new(3, EnvConfig::default());
        for t in 0..20u64 {
            sim.step(&mut env).unwrap();
            let s = sim.signals(cout);
            if (5..9).contains(&t) {
                assert!(s.sp, "S+ stuck high inside the window (t={t})");
            } else if t >= 10 {
                assert!(!s.sp, "free-flowing sink never stops outside (t={t})");
            }
        }
    }

    #[test]
    fn lose_token_suppresses_a_flowing_valid() {
        let (net, _cin, cout) = pipeline(0);
        let mut clean = BehavSim::new(&net).unwrap();
        let mut faulty = clean.clone();
        faulty.set_check_protocol(false);
        faulty
            .inject_fault(
                FaultInjection::LoseToken {
                    channel: "out".into(),
                },
                6,
                1,
            )
            .unwrap();
        let mut env_c = RandomEnv::new(3, EnvConfig::default());
        let mut env_f = RandomEnv::new(3, EnvConfig::default());
        for t in 0..12u64 {
            clean.step(&mut env_c).unwrap();
            faulty.step(&mut env_f).unwrap();
            if t == 6 {
                assert!(clean.signals(cout).vp, "clean run offers a token");
                assert!(!faulty.signals(cout).vp, "faulted run lost it");
            }
        }
        // One fewer token was delivered downstream.
        let snk = net.component_by_name("snk").unwrap();
        assert_eq!(
            clean.sink_received(snk).len(),
            faulty.sink_received(snk).len() + 1
        );
    }

    #[test]
    fn duplicate_token_asserts_valid_on_idle_channel() {
        let (net, _cin, cout) = pipeline(0);
        let mut sim = BehavSim::new(&net).unwrap();
        sim.set_check_protocol(false);
        let mut cfg = EnvConfig::default();
        cfg.sources.insert(
            "src".into(),
            SourceCfg {
                rate: 0.0,
                data: DataGen::Const(0),
            },
        );
        sim.inject_fault(
            FaultInjection::DuplicateToken {
                channel: "out".into(),
            },
            4,
            1,
        )
        .unwrap();
        let mut env = RandomEnv::new(3, cfg);
        for t in 0..8u64 {
            sim.step(&mut env).unwrap();
            assert_eq!(
                sim.signals(cout).vp,
                t == 4,
                "spurious token exactly in the window (t={t})"
            );
        }
    }

    #[test]
    fn rail_flip_inverts_for_one_cycle() {
        let (net, _cin, cout) = pipeline(0);
        let mut sim = BehavSim::new(&net).unwrap();
        sim.set_check_protocol(false);
        sim.inject_fault(
            FaultInjection::RailFlip {
                channel: "out".into(),
                rail: FaultRail::Vp,
            },
            5,
            1,
        )
        .unwrap();
        let mut env = RandomEnv::new(3, EnvConfig::default());
        // Free flow: vp is high every cycle from t=2 on, except the flip.
        for t in 0..10u64 {
            sim.step(&mut env).unwrap();
            if t >= 2 {
                assert_eq!(sim.signals(cout).vp, t != 5, "t={t}");
            }
        }
    }

    #[test]
    fn passive_channel_blocks_backward_propagation() {
        // src -> b1 -> b2 -> snk with killing sink; the b2->snk channel
        // passive: anti-tokens must wait there instead of entering b2.
        let mut net = ElasticNetwork::new("passive");
        let src = net.add_source("src").unwrap();
        let b1 = net.add_eb("b1", false).unwrap();
        let b2 = net.add_eb("b2", false).unwrap();
        let snk = net.add_sink("snk").unwrap();
        let c1 = net.connect(src, 0, b1, 0, "c1").unwrap();
        let c2 = net.connect(b1, 0, b2, 0, "c2").unwrap();
        let c3 = net.connect(b2, 0, snk, 0, "c3").unwrap();
        net.set_passive(c3).unwrap();
        let mut sim = BehavSim::new(&net).unwrap();
        let mut cfg = EnvConfig::default();
        cfg.sources.insert(
            "src".into(),
            SourceCfg {
                rate: 0.3,
                data: DataGen::Const(0),
            },
        );
        cfg.sinks.insert(
            "snk".into(),
            SinkCfg {
                stop_prob: 0.0,
                kill_prob: 0.5,
            },
        );
        let mut env = RandomEnv::new(13, cfg);
        sim.run(&mut env, 2000).unwrap();
        let r = sim.report();
        assert_eq!(r.channel(c2).negative, 0, "no anti-token crosses c2");
        assert_eq!(r.channel(c1).negative, 0);
        assert!(
            r.channel(c3).kills > 100,
            "kills happen at the passive boundary"
        );
        assert_eq!(
            r.channel(c3).negative,
            0,
            "anti-tokens never cross c3 either"
        );
    }
}
