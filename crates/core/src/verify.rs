//! Verification harnesses reproducing Sect. 5 / Fig. 8 of the paper.
//!
//! Three layers:
//!
//! 1. **Co-simulation** — the behavioural simulator and the compiled gate
//!    netlist run the same pre-generated environment schedule and must agree
//!    on every channel rail every cycle ([`cosim_check`]).
//! 2. **Protocol model checking** (Fig. 8(a)) — the compiled netlist with
//!    its nondeterministic environment inputs is explored exhaustively and
//!    the paper's four CTL properties are checked per channel
//!    ([`paper_properties`], [`check_network_properties`]).
//! 3. **Data correctness** (Fig. 8(b)) — producers emit alternating 0/1
//!    payloads into an acyclic netlist whose consumers nondeterministically
//!    accept or kill; consumers must always observe an alternating stream
//!    (exercised by the integration tests via sink data recording).

use std::collections::HashMap;

use elastic_mc::{
    check_fair, netlist_kripke, parse, BridgeOptions, ConvergenceReport, Kripke, NetlistKripke,
};
use elastic_netlist::sim::Simulator;
use elastic_netlist::wide::{WideSimulator, LANES};
use elastic_netlist::NetId;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::compile::{compile, sanitize, CompileOptions, FaultInjection};
use crate::error::CoreError;
use crate::network::{CompId, ComponentKind, ElasticNetwork};
use crate::sim::{BehavSim, DataGen, EnvConfig, Environment};

/// A pre-generated environment schedule, replayable both by the behavioural
/// simulator (as an [`Environment`]) and by the netlist testbench (as
/// primary-input values). One entry per cycle per component.
#[derive(Debug, Clone)]
pub struct Schedule {
    offers: HashMap<String, Vec<Option<u64>>>,
    stops: HashMap<String, Vec<bool>>,
    kills: HashMap<String, Vec<bool>>,
    finishes: HashMap<String, Vec<bool>>,
    /// Per-cycle arming of the netlist's compiled-in fault gate, if any.
    /// Empty (the default) means the fault stays dormant: the arm input is
    /// driven low every cycle and the corruption gate passes the raw rail
    /// through.
    fault: Vec<bool>,
    /// Arm streams of the additional fault sites (site 1, 2, …) of a
    /// multi-site compilation ([`crate::compile::CompileOptions::faults`]).
    /// Site 0 is [`Schedule::fault`]; missing streams read as unarmed.
    more_faults: Vec<Vec<bool>>,
    cycles: usize,
}

impl Schedule {
    /// Generates a random schedule for `net` using the probabilities in
    /// `cfg`. Source payloads are drawn from the configured
    /// [`crate::sim::DataGen`] (e.g. the paper's 0.6/0.3/0.1 opcode
    /// distribution, Sect. 6.1). Variable-latency completion streams are
    /// Bernoulli with rate `1/mean(latency)` — any stream is a legal delay
    /// behaviour, and both back-ends interpret the *same* stream, so
    /// equivalence is exact.
    pub fn random(net: &ElasticNetwork, cfg: &EnvConfig, seed: u64, cycles: usize) -> Schedule {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = Schedule {
            offers: HashMap::new(),
            stops: HashMap::new(),
            kills: HashMap::new(),
            finishes: HashMap::new(),
            fault: Vec::new(),
            more_faults: Vec::new(),
            cycles,
        };
        for comp in net.components() {
            let name = net.component(comp).name.clone();
            match &net.component(comp).kind {
                ComponentKind::Source => {
                    let c = cfg
                        .sources
                        .get(&name)
                        .unwrap_or(&cfg.default_source)
                        .clone();
                    let mut seq = 0u64;
                    let stream = (0..cycles)
                        .map(|_| {
                            if c.rate >= 1.0 || rng.gen_bool(c.rate.clamp(0.0, 1.0)) {
                                Some(c.data.sample(&mut rng, &mut seq))
                            } else {
                                None
                            }
                        })
                        .collect();
                    s.offers.insert(name, stream);
                }
                ComponentKind::Sink => {
                    let c = cfg.sinks.get(&name).copied().unwrap_or(cfg.default_sink);
                    s.stops.insert(
                        name.clone(),
                        (0..cycles)
                            .map(|_| c.stop_prob > 0.0 && rng.gen_bool(c.stop_prob.min(1.0)))
                            .collect(),
                    );
                    s.kills.insert(
                        name,
                        (0..cycles)
                            .map(|_| c.kill_prob > 0.0 && rng.gen_bool(c.kill_prob.min(1.0)))
                            .collect(),
                    );
                }
                ComponentKind::VarLatency => {
                    let dist = cfg
                        .vls
                        .get(&name)
                        .cloned()
                        .unwrap_or_else(|| cfg.default_vl.clone());
                    let p = (1.0 / dist.mean()).clamp(0.05, 1.0);
                    s.finishes
                        .insert(name, (0..cycles).map(|_| rng.gen_bool(p)).collect());
                }
                _ => {}
            }
        }
        s
    }

    /// Horizon of the schedule in cycles.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// The payload the named source offers at cycle `t`, if any. These
    /// per-cycle accessors let testbenches drive a compiled netlist's
    /// primary inputs from the same stream the behavioural simulator
    /// replays through [`Environment`].
    pub fn offer_at(&self, name: &str, t: u64) -> Option<u64> {
        self.offers
            .get(name)
            .and_then(|v| v.get(t as usize).copied().flatten())
    }

    /// Whether the named sink back-pressures (stop) at cycle `t`.
    pub fn stop_at(&self, name: &str, t: u64) -> bool {
        Schedule::bit(&self.stops, name, t)
    }

    /// Whether the named sink launches an anti-token (kill) at cycle `t`.
    pub fn kill_at(&self, name: &str, t: u64) -> bool {
        Schedule::bit(&self.kills, name, t)
    }

    /// Whether the named variable-latency unit raises `finish` at cycle `t`.
    pub fn finish_at(&self, name: &str, t: u64) -> bool {
        Schedule::bit(&self.finishes, name, t)
    }

    /// Arms the compiled-in fault gate for `len` cycles starting at cycle
    /// `start`. Only meaningful when the netlist was compiled with
    /// [`crate::compile::CompileOptions::fault`] set to a rail fault — a
    /// schedule replayed against a fault-free netlist simply has no arm
    /// input to drive.
    ///
    /// # Errors
    ///
    /// [`CoreError::FaultSite`] when the window is empty or extends past
    /// the schedule horizon.
    pub fn arm_fault(&mut self, start: usize, len: usize) -> Result<(), CoreError> {
        self.arm_fault_site(0, start, len)
    }

    /// Arms fault site `site` (site 0 = the [`Self::arm_fault`] stream, the
    /// primary [`crate::compile::CompileOptions::fault`]; sites 1, 2, … are
    /// the [`crate::compile::CompileOptions::faults`] extras, in order) for
    /// `len` cycles starting at `start`. Multi-site fault processes arm each
    /// of their sites independently this way.
    ///
    /// # Errors
    ///
    /// [`CoreError::FaultSite`] when the window is empty or extends past
    /// the schedule horizon.
    pub fn arm_fault_site(
        &mut self,
        site: usize,
        start: usize,
        len: usize,
    ) -> Result<(), CoreError> {
        if len == 0 {
            return Err(CoreError::FaultSite("empty injection window".into()));
        }
        let end = start
            .checked_add(len)
            .filter(|&e| e <= self.cycles)
            .ok_or_else(|| {
                CoreError::FaultSite(format!(
                    "injection window {start}+{len} exceeds the {}-cycle horizon",
                    self.cycles
                ))
            })?;
        let stream = if site == 0 {
            &mut self.fault
        } else {
            if self.more_faults.len() < site {
                self.more_faults.resize(site, Vec::new());
            }
            &mut self.more_faults[site - 1]
        };
        if stream.is_empty() {
            *stream = vec![false; self.cycles];
        }
        for slot in &mut stream[start..end] {
            *slot = true;
        }
        Ok(())
    }

    /// Whether the compiled-in fault gate is armed at cycle `t`.
    pub fn fault_at(&self, t: u64) -> bool {
        self.fault.get(t as usize).copied().unwrap_or(false)
    }

    /// Whether fault site `site` (0-based, site 0 = [`Self::fault_at`]) is
    /// armed at cycle `t`.
    pub fn fault_site_at(&self, site: usize, t: u64) -> bool {
        if site == 0 {
            return self.fault_at(t);
        }
        self.more_faults
            .get(site - 1)
            .and_then(|v| v.get(t as usize).copied())
            .unwrap_or(false)
    }

    fn offer(&self, name: &str, t: u64) -> Option<u64> {
        self.offer_at(name, t)
    }

    fn bit(map: &HashMap<String, Vec<bool>>, name: &str, t: u64) -> bool {
        map.get(name)
            .and_then(|v| v.get(t as usize).copied())
            .unwrap_or(false)
    }
}

impl Environment for Schedule {
    fn source_offer(&mut self, _comp: CompId, name: &str, time: u64) -> Option<u64> {
        self.offer(name, time)
    }

    fn sink_stop(&mut self, _comp: CompId, name: &str, time: u64) -> bool {
        Schedule::bit(&self.stops, name, time)
    }

    fn sink_kill(&mut self, _comp: CompId, name: &str, time: u64) -> bool {
        Schedule::bit(&self.kills, name, time)
    }

    fn vl_latency(&mut self, _comp: CompId, name: &str, time: u64) -> u32 {
        // Latency = distance to the next asserted finish bit, inclusive.
        let Some(stream) = self.finishes.get(name) else {
            return 1;
        };
        let start = time as usize;
        for (i, &f) in stream.iter().enumerate().skip(start) {
            if f {
                return (i - start + 1) as u32;
            }
        }
        // No completion scheduled within the horizon: effectively stuck.
        (stream.len() - start + 1) as u32
    }
}

/// Handles to the environment-facing primary inputs of a compiled network:
/// one `offer`/`din*` group per source, `stop`/`kill` per sink and `finish`
/// per variable-latency unit — the nondeterministic closure of Sect. 5,
/// resolved against the rail-naming convention of [`crate::compile`].
///
/// A testbench translates a [`Schedule`] into per-cycle primary-input
/// assignments, either for one scalar simulator run ([`Self::inputs_at`])
/// or for up to 64 schedules at once packed into the lanes of a
/// [`WideSimulator`] ([`Self::wide_inputs_at`]).
#[derive(Debug, Clone)]
pub struct NetlistTestbench {
    srcs: Vec<(String, NetId, Vec<NetId>)>,
    sinks: Vec<(String, NetId, NetId)>,
    vls: Vec<(String, NetId)>,
    /// The `fault.<channel>.<rail>` arm input of a fault-compiled netlist.
    /// Always the **last** input column, so a fault-free compilation's
    /// stimulus layout is byte-identical to one that never heard of faults.
    fault: Option<NetId>,
    /// Arm inputs of the additional fault sites of a multi-site
    /// compilation, in site order: their columns trail the primary fault
    /// column, so a single-site layout is unchanged. Non-empty only when
    /// `fault` is `Some`.
    more_faults: Vec<NetId>,
}

impl NetlistTestbench {
    /// Resolves the input handles of `compiled` (a compilation of `net`
    /// with `data_width` payload bits).
    ///
    /// # Errors
    ///
    /// [`elastic_netlist::NetlistError::UnknownName`] (via
    /// [`CoreError::Netlist`] conversion) when the compiled netlist does not
    /// follow the expected naming, e.g. because `data_width` differs from
    /// the compilation options.
    pub fn new(
        net: &ElasticNetwork,
        nl: &elastic_netlist::Netlist,
        data_width: usize,
    ) -> Result<Self, CoreError> {
        let mut srcs: Vec<(String, NetId, Vec<NetId>)> = Vec::new();
        let mut sinks: Vec<(String, NetId, NetId)> = Vec::new();
        let mut vls: Vec<(String, NetId)> = Vec::new();
        for comp in net.components() {
            let raw = net.component(comp).name.clone();
            let name = sanitize(&raw);
            match &net.component(comp).kind {
                ComponentKind::Source => {
                    let offer = nl.find(&format!("{name}.offer"))?;
                    let dins = (0..data_width)
                        .map(|i| nl.find(&format!("{name}.din{i}")))
                        .collect::<Result<Vec<_>, _>>()?;
                    srcs.push((raw, offer, dins));
                }
                ComponentKind::Sink => {
                    let stop = nl.find(&format!("{name}.stop"))?;
                    let kill = nl.find(&format!("{name}.kill"))?;
                    sinks.push((raw, stop, kill));
                }
                ComponentKind::VarLatency => {
                    let fin = nl.find(&format!("{name}.finish"))?;
                    vls.push((raw, fin));
                }
                _ => {}
            }
        }
        Ok(NetlistTestbench {
            srcs,
            sinks,
            vls,
            fault: None,
            more_faults: Vec::new(),
        })
    }

    /// Like [`Self::new`], additionally resolving the arm input of the
    /// fault the netlist was compiled with
    /// ([`crate::compile::CompileOptions::fault`]). For
    /// [`FaultInjection::DropAntiToken`] — a structural sabotage with no
    /// arm wire — this is identical to [`Self::new`].
    ///
    /// # Errors
    ///
    /// [`CoreError::FaultSite`] when the netlist has no arm input for
    /// `fault` (i.e. it was compiled fault-free or with a different fault),
    /// plus everything [`Self::new`] reports.
    pub fn with_fault(
        net: &ElasticNetwork,
        nl: &elastic_netlist::Netlist,
        data_width: usize,
        fault: &FaultInjection,
    ) -> Result<Self, CoreError> {
        let mut tb = NetlistTestbench::new(net, nl, data_width)?;
        if let Some(name) = fault.input_name() {
            let id = nl.find(&name).map_err(|_| {
                CoreError::FaultSite(format!(
                    "netlist has no fault-arm input {name:?}; compile with this fault first"
                ))
            })?;
            tb.fault = Some(id);
        }
        Ok(tb)
    }

    /// Like [`Self::with_fault`] for a multi-site fault list: resolves one
    /// arm input per rail fault, in site order. Site *i*'s stimulus column
    /// is `fault_cols()[i]`, matching [`Schedule::arm_fault_site`] indices.
    /// Structural faults ([`FaultInjection::DropAntiToken`]) have no arm
    /// wire and are skipped, exactly as in [`Self::with_fault`].
    ///
    /// # Errors
    ///
    /// [`CoreError::FaultSite`] when any listed fault has no arm input in
    /// the netlist, plus everything [`Self::new`] reports.
    pub fn with_faults(
        net: &ElasticNetwork,
        nl: &elastic_netlist::Netlist,
        data_width: usize,
        faults: &[FaultInjection],
    ) -> Result<Self, CoreError> {
        let mut tb = NetlistTestbench::new(net, nl, data_width)?;
        for fault in faults {
            let Some(name) = fault.input_name() else {
                continue;
            };
            let id = nl.find(&name).map_err(|_| {
                CoreError::FaultSite(format!(
                    "netlist has no fault-arm input {name:?}; compile with this fault first"
                ))
            })?;
            if tb.fault.is_none() {
                tb.fault = Some(id);
            } else {
                tb.more_faults.push(id);
            }
        }
        Ok(tb)
    }

    /// The packed-stimulus column of the fault-arm input, if one was
    /// resolved: always the last column, after every source, sink and
    /// variable-latency group.
    pub fn fault_col(&self) -> Option<usize> {
        self.fault?;
        let n = self
            .srcs
            .iter()
            .map(|(_, _, dins)| 1 + dins.len())
            .sum::<usize>()
            + 2 * self.sinks.len()
            + self.vls.len();
        Some(n)
    }

    /// The packed-stimulus columns of every resolved fault-arm input, in
    /// site order (column *i* is [`Schedule`] fault site *i*). Empty for a
    /// fault-free testbench; `fault_cols()[0] == fault_col().unwrap()`
    /// otherwise.
    pub fn fault_cols(&self) -> Vec<usize> {
        let Some(base) = self.fault_col() else {
            return Vec::new();
        };
        (base..=base + self.more_faults.len()).collect()
    }

    /// Primary-input assignments for cycle `t` of one schedule.
    pub fn inputs_at(&self, schedule: &Schedule, t: u64) -> Vec<(NetId, bool)> {
        let mut inputs: Vec<(NetId, bool)> = Vec::new();
        for (name, offer, dins) in &self.srcs {
            let o = schedule.offer_at(name, t);
            inputs.push((*offer, o.is_some()));
            for (i, &din) in dins.iter().enumerate() {
                inputs.push((din, o.is_some_and(|d| d >> i & 1 == 1)));
            }
        }
        for (name, stop, kill) in &self.sinks {
            inputs.push((*stop, schedule.stop_at(name, t)));
            inputs.push((*kill, schedule.kill_at(name, t)));
        }
        for (name, fin) in &self.vls {
            inputs.push((*fin, schedule.finish_at(name, t)));
        }
        if let Some(arm) = self.fault {
            inputs.push((arm, schedule.fault_at(t)));
            for (i, &extra) in self.more_faults.iter().enumerate() {
                inputs.push((extra, schedule.fault_site_at(i + 1, t)));
            }
        }
        inputs
    }

    /// Lane-packed primary-input assignments for cycle `t`: bit `k` of each
    /// mask drives lane `k` from `schedules[k]`.
    ///
    /// # Panics
    ///
    /// Panics if more than [`LANES`] schedules are supplied.
    pub fn wide_inputs_at(&self, schedules: &[Schedule], t: u64) -> Vec<(NetId, u64)> {
        assert!(
            schedules.len() <= LANES,
            "at most {LANES} schedules per wide run"
        );
        let pack = |f: &dyn Fn(&Schedule) -> bool| -> u64 {
            schedules
                .iter()
                .enumerate()
                .fold(0u64, |m, (k, s)| m | u64::from(f(s)) << k)
        };
        let mut inputs: Vec<(NetId, u64)> = Vec::new();
        for (name, offer, dins) in &self.srcs {
            // One schedule lookup per lane; the offer and payload-bit masks
            // all derive from it (this runs every cycle of the Monte-Carlo
            // hot path).
            let mut offer_mask = 0u64;
            let mut din_masks = vec![0u64; dins.len()];
            for (k, s) in schedules.iter().enumerate() {
                if let Some(d) = s.offer_at(name, t) {
                    offer_mask |= 1 << k;
                    for (i, m) in din_masks.iter_mut().enumerate() {
                        *m |= (d >> i & 1) << k;
                    }
                }
            }
            inputs.push((*offer, offer_mask));
            for (&din, &m) in dins.iter().zip(&din_masks) {
                inputs.push((din, m));
            }
        }
        for (name, stop, kill) in &self.sinks {
            inputs.push((*stop, pack(&|s| s.stop_at(name, t))));
            inputs.push((*kill, pack(&|s| s.kill_at(name, t))));
        }
        for (name, fin) in &self.vls {
            inputs.push((*fin, pack(&|s| s.finish_at(name, t))));
        }
        if let Some(arm) = self.fault {
            inputs.push((arm, pack(&|s| s.fault_at(t))));
            for (i, &extra) in self.more_faults.iter().enumerate() {
                inputs.push((extra, pack(&|s| s.fault_site_at(i + 1, t))));
            }
        }
        inputs
    }
}

/// A dense, pre-packed stimulus matrix for the bit-parallel Monte-Carlo hot
/// path: one `cycles × input-slots` table of lane-word groups, built once
/// per shard from up to `width × 64` [`Schedule`]s and then streamed into
/// [`elastic_netlist::wide::WideSim::cycle_packed`] by raw slot index — no
/// per-cycle heap allocation, no per-lane `HashMap` lookups and no `NetId`
/// validation inside the simulation loop.
///
/// Lane `l` of every row carries schedule `schedules[l]`; word `l / 64`,
/// bit `l % 64`. Rows reproduce [`NetlistTestbench::wide_inputs_at`]
/// bit-for-bit (asserted by unit and property tests), the testbench input
/// order is preserved, and `slots[i]` is the dense arena index of the
/// testbench's `i`-th input net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedStimulus {
    cycles: usize,
    width: usize,
    slots: Vec<u32>,
    /// Row-major: `words[(t * slots.len() + i) * width + w]` is lane word
    /// `w` of input `i` at cycle `t`.
    words: Vec<u64>,
}

/// `1 / 2^53`: the scale of the rand shim's 53-bit unit-interval draw.
const UNIT_53: f64 = 1.0 / (1u64 << 53) as f64;

/// Integer-threshold Bernoulli, bit-identical to the rand shim's
/// `gen_bool(p)` (which tests `((r >> 11) as f64) * 2⁻⁵³ < p`).
///
/// Let `m = r >> 11 < 2^53`. Both `m as f64` and the `2⁻⁵³` scaling are
/// exact, so `gen_bool` accepts iff `m < p·2^53` as reals; `p·2^53` is
/// itself exact for any `p ∈ [0, 1]` (a power-of-two scaling never
/// rounds), hence `m < p·2^53 ⇔ m < ⌈p·2^53⌉` over the integers. One
/// shift and one integer compare per draw, no float conversion — this is
/// the hot-loop form used by [`PackedStimulus::generate`], asserted
/// equivalent in `bool_draw_matches_gen_bool`.
struct BoolDraw {
    threshold: u64,
}

impl BoolDraw {
    fn new(p: f64) -> BoolDraw {
        debug_assert!((0.0..=1.0).contains(&p));
        BoolDraw {
            threshold: (p * (1u64 << 53) as f64).ceil() as u64,
        }
    }

    #[inline]
    fn draw(&self, rng: &mut StdRng) -> bool {
        (rng.next_u64() >> 11) < self.threshold
    }
}

/// Cycle-block size of the fused generator's inner loops: per block, each
/// lane's RNG state is pulled onto the stack once for `GEN_BLOCK`
/// consecutive draws and the lane bits accumulate in a block-local buffer
/// (≤ `GEN_BLOCK × 8` bytes per stream, L1-resident) before one store per
/// cycle lands them in the stimulus matrix.
const GEN_BLOCK: usize = 64;

/// Fills one Bernoulli input column (a sink's stop/kill or a VL unit's
/// finish stream) for one 64-lane word group, cycle-blocked as described on
/// [`GEN_BLOCK`]. `cell(t)` maps a cycle to the column's word index for
/// this group. Per-lane draw order is cycle-sequential (blocks advance in
/// order and each lane runs a whole block before the next lane), so every
/// lane consumes its RNG exactly like the one-schedule-at-a-time path.
fn fill_bool_stream(
    words: &mut [u64],
    rngs: &mut [StdRng],
    b: &BoolDraw,
    cycles: usize,
    cell: impl Fn(usize) -> usize,
) {
    let mut buf = [0u64; GEN_BLOCK];
    let mut t0 = 0;
    while t0 < cycles {
        let bl = GEN_BLOCK.min(cycles - t0);
        buf.fill(0);
        for (k, slot) in rngs.iter_mut().enumerate() {
            let mut rng = slot.clone();
            let mut bw = 0u64;
            for i in 0..bl {
                bw |= u64::from(b.draw(&mut rng)) << i;
            }
            buf[k] = bw;
            *slot = rng;
        }
        // buf[k] bit i = lane k, cycle t0+i; transpose to cycle-major rows.
        transpose64(&mut buf);
        for (i, &a) in buf[..bl].iter().enumerate() {
            words[cell(t0 + i)] = a;
        }
        t0 += bl;
    }
}

/// In-place 64×64 bit-matrix transpose (Hacker's Delight 7-3): output row
/// `i` bit `k` = input row `k` bit `i`. Turns the generator's lane-major
/// draw buffers into the stimulus matrix's cycle-major lane words in
/// ~6·64 word operations per 4096 bits — instead of one read-modify-write
/// per drawn bit.
fn transpose64(a: &mut [u64; GEN_BLOCK]) {
    let mut j = 32usize;
    let mut m = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            // Swap the high `j` bits of row k with the low `j` bits of row
            // k+j (the LSB-first orientation of Hacker's Delight 7-3).
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Pre-resolved source payload generator for the fused stimulus path:
/// the per-draw work of `weighted_draw` (re-summing the weight total,
/// re-filtering unusable entries, dynamic dispatch into the RNG) is hoisted
/// to construction, keeping the draw itself to one `next_u64` and a short
/// float walk with **exactly** the original's FP semantics and RNG
/// consumption (including the degenerate-distribution early return that
/// draws nothing).
enum SrcPlan<'a> {
    /// Const/Counter/Alternate (no RNG) — delegate to [`DataGen::sample`].
    Exact(&'a DataGen),
    /// Degenerate weighted distribution: deterministic value, **no draw**.
    Fixed(u64),
    /// Weighted distribution, compiled to integer mantissa cutoffs: a draw
    /// with top-53-bit mantissa `m` selects `values[#cuts ≤ m]`.
    Walk { cuts: Vec<u64>, values: Vec<u64> },
}

/// The entry index `weighted_draw` picks for a raw mantissa `m`, replicated
/// operation for operation: `rng.gen_range(0.0..total)` is start + unit ×
/// (end − start) clamped below the open upper bound, followed by the
/// first-hit subtractive walk with last-usable-entry fallback.
fn walk_select(m: u64, total: f64, entries: &[(u64, f64)]) -> usize {
    let v = m as f64 * UNIT_53 * total;
    let mut x = if v < total {
        v
    } else {
        total.next_down().max(0.0)
    };
    for (i, &(_, w)) in entries.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    entries.len() - 1
}

impl<'a> SrcPlan<'a> {
    fn new(data: &'a DataGen) -> SrcPlan<'a> {
        let DataGen::Weighted(choices) = data else {
            return SrcPlan::Exact(data);
        };
        let usable = |w: f64| w.is_finite() && w > 0.0;
        let total: f64 = choices.iter().map(|&(_, w)| w).filter(|&w| usable(w)).sum();
        if !(total.is_finite() && total > 0.0) {
            // weighted_draw returns before touching the RNG here: an empty
            // list maps to payload 0, anything else to the first entry.
            return SrcPlan::Fixed(choices.first().map_or(0, |c| c.0));
        }
        let entries: Vec<(u64, f64)> = choices
            .iter()
            .filter(|&&(_, w)| usable(w))
            .copied()
            .collect();
        // The selected index is monotone non-decreasing in the mantissa
        // (every step of `walk_select` — two multiplications, the clamp,
        // and the running subtraction — preserves ordering), so each
        // boundary is an exact integer cutoff recoverable by binary search
        // over the 2^53 mantissa values. This moves all floating-point off
        // the per-draw path: a draw is one shift plus `entries.len() - 1`
        // integer compares.
        let cuts: Vec<u64> = (0..entries.len() - 1)
            .map(|i| {
                // Smallest m with walk_select(m) > i; 2^53 when unreachable.
                let (mut lo, mut hi) = (0u64, 1u64 << 53);
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if walk_select(mid, total, &entries) > i {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                lo
            })
            .collect();
        SrcPlan::Walk {
            cuts,
            values: entries.into_iter().map(|(v, _)| v).collect(),
        }
    }

    #[inline]
    fn draw(&self, rng: &mut StdRng, seq: &mut u64) -> u64 {
        match self {
            SrcPlan::Exact(d) => d.sample(rng, seq),
            SrcPlan::Fixed(v) => *v,
            SrcPlan::Walk { cuts, values } => {
                let m = rng.next_u64() >> 11;
                let mut idx = 0usize;
                for &c in cuts {
                    idx += usize::from(m >= c);
                }
                values[idx]
            }
        }
    }
}

impl PackedStimulus {
    /// Packs `schedules` into a dense stimulus matrix with `width` lane
    /// words per input (capacity `width × 64` schedules).
    ///
    /// # Errors
    ///
    /// [`CoreError::ScheduleBatch`] when the batch is empty, exceeds the
    /// lane capacity, or mixes cycle horizons.
    pub fn pack(
        tb: &NetlistTestbench,
        schedules: &[Schedule],
        width: usize,
    ) -> Result<PackedStimulus, CoreError> {
        let lanes = schedules.len();
        if lanes == 0 {
            return Err(CoreError::ScheduleBatch("empty schedule batch".into()));
        }
        if lanes > width * LANES {
            return Err(CoreError::ScheduleBatch(format!(
                "{lanes} schedules exceed the {}-lane capacity of a {width}-word backend",
                width * LANES
            )));
        }
        let cycles = schedules[0].cycles;
        if let Some(bad) = schedules.iter().find(|s| s.cycles != cycles) {
            return Err(CoreError::ScheduleBatch(format!(
                "mixed horizons: {cycles} vs {}",
                bad.cycles
            )));
        }
        let mut slots: Vec<u32> = Vec::new();
        for (_, offer, dins) in &tb.srcs {
            slots.push(offer.index() as u32);
            slots.extend(dins.iter().map(|d| d.index() as u32));
        }
        for (_, stop, kill) in &tb.sinks {
            slots.push(stop.index() as u32);
            slots.push(kill.index() as u32);
        }
        for (_, fin) in &tb.vls {
            slots.push(fin.index() as u32);
        }
        if let Some(arm) = tb.fault {
            slots.push(arm.index() as u32);
            slots.extend(tb.more_faults.iter().map(|f| f.index() as u32));
        }
        let n = slots.len();
        let mut words = vec![0u64; cycles * n * width];
        // One stream lookup per (component, lane) — the per-(cycle × lane)
        // string hashing of the unpacked path happens once, here, at pack
        // time.
        let cell = |t: usize, col: usize, w: usize| (t * n + col) * width + w;
        let mut col = 0usize;
        for (name, _, dins) in &tb.srcs {
            for (lane, sched) in schedules.iter().enumerate() {
                let (w, bit) = (lane / LANES, lane % LANES);
                let Some(stream) = sched.offers.get(name) else {
                    continue;
                };
                for (t, &offer) in stream.iter().take(cycles).enumerate() {
                    if let Some(d) = offer {
                        words[cell(t, col, w)] |= 1 << bit;
                        for j in 0..dins.len() {
                            if d >> j & 1 == 1 {
                                words[cell(t, col + 1 + j, w)] |= 1 << bit;
                            }
                        }
                    }
                }
            }
            col += 1 + dins.len();
        }
        for (name, _, _) in &tb.sinks {
            for (lane, sched) in schedules.iter().enumerate() {
                let (w, bit) = (lane / LANES, lane % LANES);
                for (stream, c) in [
                    (sched.stops.get(name), col),
                    (sched.kills.get(name), col + 1),
                ] {
                    let Some(stream) = stream else { continue };
                    for (t, &v) in stream.iter().take(cycles).enumerate() {
                        if v {
                            words[cell(t, c, w)] |= 1 << bit;
                        }
                    }
                }
            }
            col += 2;
        }
        for (name, _) in &tb.vls {
            for (lane, sched) in schedules.iter().enumerate() {
                let (w, bit) = (lane / LANES, lane % LANES);
                let Some(stream) = sched.finishes.get(name) else {
                    continue;
                };
                for (t, &v) in stream.iter().take(cycles).enumerate() {
                    if v {
                        words[cell(t, col, w)] |= 1 << bit;
                    }
                }
            }
            col += 1;
        }
        if tb.fault.is_some() {
            for site in 0..=tb.more_faults.len() {
                for (lane, sched) in schedules.iter().enumerate() {
                    let (w, bit) = (lane / LANES, lane % LANES);
                    let stream = if site == 0 {
                        Some(&sched.fault)
                    } else {
                        sched.more_faults.get(site - 1)
                    };
                    let Some(stream) = stream else { continue };
                    for (t, &v) in stream.iter().take(cycles).enumerate() {
                        if v {
                            words[cell(t, col, w)] |= 1 << bit;
                        }
                    }
                }
                col += 1;
            }
        }
        debug_assert_eq!(col, n);
        Ok(PackedStimulus {
            cycles,
            width,
            slots,
            words,
        })
    }

    /// Generates `lanes` random schedules seeded `seed..seed + lanes`
    /// (wrapping at `u64::MAX`) **directly into packed form**, fusing
    /// [`Schedule::random`] and [`PackedStimulus::pack`] into one pass.
    ///
    /// This is the streaming Monte-Carlo engine's stimulus producer. The
    /// two-step path materializes per-component `HashMap<String, Vec<bool>>`
    /// streams per lane and then re-reads them bit by bit at pack time;
    /// profiling shows that bookkeeping dominates the whole campaign
    /// (stimulus ≈ 25× the tape-execution cost on the Fig. 9 example). The
    /// fused path holds one RNG per lane of a 64-lane word group and makes
    /// **exactly the same draw calls in the same per-lane order** as
    /// [`Schedule::random`] — same `gen_bool` short-circuits, same
    /// [`DataGen::sample`] calls, same per-component stream order — so the
    /// packed words are bit-identical to
    /// `PackedStimulus::pack(tb, &[Schedule::random(net, cfg, seed + j,
    /// cycles), …], width)` (asserted by unit and property tests), while
    /// skipping every allocation and string hash in between.
    ///
    /// # Errors
    ///
    /// [`CoreError::ScheduleBatch`] when `lanes` is zero or exceeds the
    /// `width × 64` lane capacity.
    ///
    /// # Panics
    ///
    /// Panics if `tb` was not resolved against (a compilation of) `net`:
    /// the testbench must list exactly `net`'s sources, sinks and
    /// variable-latency units, in component order.
    pub fn generate(
        tb: &NetlistTestbench,
        net: &ElasticNetwork,
        cfg: &EnvConfig,
        seed: u64,
        lanes: usize,
        cycles: usize,
        width: usize,
    ) -> Result<PackedStimulus, CoreError> {
        if lanes == 0 {
            return Err(CoreError::ScheduleBatch("empty schedule batch".into()));
        }
        if lanes > width * LANES {
            return Err(CoreError::ScheduleBatch(format!(
                "{lanes} schedules exceed the {}-lane capacity of a {width}-word backend",
                width * LANES
            )));
        }
        let mut slots: Vec<u32> = Vec::new();
        for (_, offer, dins) in &tb.srcs {
            slots.push(offer.index() as u32);
            slots.extend(dins.iter().map(|d| d.index() as u32));
        }
        for (_, stop, kill) in &tb.sinks {
            slots.push(stop.index() as u32);
            slots.push(kill.index() as u32);
        }
        for (_, fin) in &tb.vls {
            slots.push(fin.index() as u32);
        }
        if let Some(arm) = tb.fault {
            slots.push(arm.index() as u32);
            slots.extend(tb.more_faults.iter().map(|f| f.index() as u32));
        }
        let n = slots.len();
        let mut words = vec![0u64; cycles * n * width];
        // Column base of the i-th source / sink / VL group, in the packed
        // input order (sources first, then sinks, then VLs).
        let mut col = 0usize;
        let src_base: Vec<usize> = tb
            .srcs
            .iter()
            .map(|(_, _, dins)| {
                let base = col;
                col += 1 + dins.len();
                base
            })
            .collect();
        let sink_base: Vec<usize> = tb
            .sinks
            .iter()
            .map(|_| {
                let base = col;
                col += 2;
                base
            })
            .collect();
        let vl_base: Vec<usize> = tb
            .vls
            .iter()
            .map(|_| {
                let base = col;
                col += 1;
                base
            })
            .collect();
        // The fault-arm columns (if any) stay all-zero: freshly generated
        // schedules are unarmed, matching `Schedule::random`. Campaigns arm
        // per-lane windows afterwards with [`Self::arm_fault`].
        if tb.fault.is_some() {
            col += 1 + tb.more_faults.len();
        }
        debug_assert_eq!(col, n);

        let cell = |t: usize, col: usize, w: usize| (t * n + col) * width + w;
        // One 64-lane word group at a time: 64 independent per-lane RNG
        // streams advanced component-major (all of component A's cycles,
        // then component B's), exactly like 64 separate `Schedule::random`
        // calls — the streams never interact, so interleaving lanes within
        // a cycle is free.
        for g in 0..lanes.div_ceil(LANES) {
            let glen = LANES.min(lanes - g * LANES);
            let mut rngs: Vec<StdRng> = (0..glen)
                .map(|k| StdRng::seed_from_u64(seed.wrapping_add((g * LANES + k) as u64)))
                .collect();
            let (mut src_i, mut sink_i, mut vl_i) = (0, 0, 0);
            for comp in net.components() {
                let name = net.component(comp).name.as_str();
                match &net.component(comp).kind {
                    ComponentKind::Source => {
                        let (tb_name, _, dins) = &tb.srcs[src_i];
                        debug_assert_eq!(tb_name, name, "testbench/network source order");
                        let c = cfg.sources.get(name).unwrap_or(&cfg.default_source);
                        let base_col = src_base[src_i];
                        let offer = if c.rate >= 1.0 {
                            None
                        } else {
                            Some(BoolDraw::new(c.rate.clamp(0.0, 1.0)))
                        };
                        let plan = SrcPlan::new(&c.data);
                        let mut seq = [0u64; LANES];
                        // Cycle blocks, lanes outer: each lane's RNG state
                        // is copied to the stack for GEN_BLOCK consecutive
                        // draws (registers, not a round-trip through the
                        // `rngs` vec per draw); lane-major bit buffers are
                        // transposed to cycle-major words once per block.
                        let mut buf_offer = [0u64; GEN_BLOCK];
                        let mut buf_din = vec![[0u64; GEN_BLOCK]; dins.len()];
                        let mut dw = vec![0u64; dins.len()];
                        let mut t0 = 0;
                        while t0 < cycles {
                            let bl = GEN_BLOCK.min(cycles - t0);
                            buf_offer.fill(0);
                            for a in buf_din.iter_mut() {
                                a.fill(0);
                            }
                            for (k, slot) in rngs.iter_mut().enumerate() {
                                let mut rng = slot.clone();
                                let mut sq = seq[k];
                                let mut ow = 0u64;
                                dw.fill(0);
                                match (&offer, &plan) {
                                    // Hot path (the campaign shape): an
                                    // always-offering source with a compiled
                                    // weighted walk and at most two data
                                    // bits. No per-cycle Option check, and
                                    // the bit-planes accumulate in registers
                                    // instead of through the `dw` slice.
                                    (None, SrcPlan::Walk { cuts, values }) if dw.len() <= 2 => {
                                        let (mut d0, mut d1) = (0u64, 0u64);
                                        for i in 0..bl {
                                            let m = rng.next_u64() >> 11;
                                            let mut idx = 0usize;
                                            for &c in cuts.iter() {
                                                idx += usize::from(m >= c);
                                            }
                                            let d = values[idx];
                                            d0 |= (d & 1) << i;
                                            d1 |= (d >> 1 & 1) << i;
                                        }
                                        ow = if bl == 64 { !0 } else { (1 << bl) - 1 };
                                        if let Some(m) = dw.first_mut() {
                                            *m = d0;
                                        }
                                        if let Some(m) = dw.get_mut(1) {
                                            *m = d1;
                                        }
                                    }
                                    _ => {
                                        for i in 0..bl {
                                            if offer.as_ref().is_none_or(|b| b.draw(&mut rng)) {
                                                let d = plan.draw(&mut rng, &mut sq);
                                                ow |= 1 << i;
                                                for (j, m) in dw.iter_mut().enumerate() {
                                                    *m |= (d >> j & 1) << i;
                                                }
                                            }
                                        }
                                    }
                                }
                                buf_offer[k] = ow;
                                for (j, &m) in dw.iter().enumerate() {
                                    buf_din[j][k] = m;
                                }
                                *slot = rng;
                                seq[k] = sq;
                            }
                            transpose64(&mut buf_offer);
                            for a in buf_din.iter_mut() {
                                transpose64(a);
                            }
                            for (i, &o) in buf_offer[..bl].iter().enumerate() {
                                let base = cell(t0 + i, base_col, g);
                                words[base] = o;
                                for (j, a) in buf_din.iter().enumerate() {
                                    words[base + (j + 1) * width] = a[i];
                                }
                            }
                            t0 += bl;
                        }
                        src_i += 1;
                    }
                    ComponentKind::Sink => {
                        debug_assert_eq!(&tb.sinks[sink_i].0, name, "testbench/network sink order");
                        let c = cfg.sinks.get(name).copied().unwrap_or(cfg.default_sink);
                        let base_col = sink_base[sink_i];
                        // Stops stream first, then kills — matching the
                        // collect order (and so the RNG order) of
                        // `Schedule::random`. A zero probability draws
                        // nothing at all, also matching.
                        for (off, p) in [(0, c.stop_prob), (1, c.kill_prob)] {
                            if p <= 0.0 {
                                continue;
                            }
                            let b = BoolDraw::new(p.min(1.0));
                            fill_bool_stream(&mut words, &mut rngs, &b, cycles, |t| {
                                cell(t, base_col + off, g)
                            });
                        }
                        sink_i += 1;
                    }
                    ComponentKind::VarLatency => {
                        debug_assert_eq!(&tb.vls[vl_i].0, name, "testbench/network VL order");
                        let dist = cfg.vls.get(name).unwrap_or(&cfg.default_vl);
                        let b = BoolDraw::new((1.0 / dist.mean()).clamp(0.05, 1.0));
                        let base_col = vl_base[vl_i];
                        fill_bool_stream(&mut words, &mut rngs, &b, cycles, |t| {
                            cell(t, base_col, g)
                        });
                        vl_i += 1;
                    }
                    _ => {}
                }
            }
        }
        Ok(PackedStimulus {
            cycles,
            width,
            slots,
            words,
        })
    }

    /// Horizon of the packed schedules, in cycles.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Lane words per input (the `W` of the target backend).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Dense arena slot of every input column, in testbench input order.
    /// Validate once against the target simulator with
    /// [`elastic_netlist::wide::WideSim::check_input_slots`].
    pub fn slots(&self) -> &[u32] {
        &self.slots
    }

    /// The stimulus row of cycle `t`: `slots.len() × width` lane words,
    /// ready for [`elastic_netlist::wide::WideSim::cycle_packed`].
    ///
    /// # Panics
    ///
    /// Panics if `t >= cycles`.
    pub fn row(&self, t: usize) -> &[u64] {
        let stride = self.slots.len() * self.width;
        &self.words[t * stride..(t + 1) * stride]
    }

    /// Arms the fault column `col` (from
    /// [`NetlistTestbench::fault_col`]) for lane `lane` over the window
    /// `start..start + len` — each packed trial gets its own independent
    /// fault instance this way. Bit-identical to arming the corresponding
    /// [`Schedule`] with [`Schedule::arm_fault`] before packing.
    ///
    /// # Errors
    ///
    /// [`CoreError::FaultSite`] when the column or lane does not exist, the
    /// window is empty, or it extends past the packed horizon.
    pub fn arm_fault(
        &mut self,
        col: usize,
        lane: usize,
        start: usize,
        len: usize,
    ) -> Result<(), CoreError> {
        let n = self.slots.len();
        if col >= n {
            return Err(CoreError::FaultSite(format!(
                "no stimulus column {col} (the matrix has {n})"
            )));
        }
        if lane >= self.width * LANES {
            return Err(CoreError::FaultSite(format!(
                "lane {lane} exceeds the {}-lane capacity",
                self.width * LANES
            )));
        }
        if len == 0 {
            return Err(CoreError::FaultSite("empty injection window".into()));
        }
        let end = start
            .checked_add(len)
            .filter(|&e| e <= self.cycles)
            .ok_or_else(|| {
                CoreError::FaultSite(format!(
                    "injection window {start}+{len} exceeds the {}-cycle horizon",
                    self.cycles
                ))
            })?;
        let (w, bit) = (lane / LANES, lane % LANES);
        for t in start..end {
            self.words[(t * n + col) * self.width + w] |= 1 << bit;
        }
        Ok(())
    }
}

/// Runs the behavioural simulator and the compiled netlist side by side
/// under the same [`Schedule`] and compares all four rails of every channel
/// on every cycle.
///
/// # Errors
///
/// Returns the first divergence as [`CoreError::ProtocolViolation`], or
/// propagates simulation/compilation errors.
pub fn cosim_check(
    net: &ElasticNetwork,
    schedule: &Schedule,
    data_width: usize,
) -> Result<(), CoreError> {
    let mut behav = BehavSim::new(net)?;
    let mut sched_env = schedule.clone();
    let compiled = compile(
        net,
        &CompileOptions {
            lint: false,
            data_width,
            nondet_merge: false,
            optimize: false,
            fault: None,
            faults: vec![],
        },
    )?;
    let nl = &compiled.netlist;
    let mut gates = Simulator::new(nl)?;
    let tb = NetlistTestbench::new(net, nl, data_width)?;

    for t in 0..schedule.cycles as u64 {
        gates.cycle(&tb.inputs_at(schedule, t))?;
        behav.step(&mut sched_env)?;

        // Compare every rail.
        for chan in net.channels() {
            let b = behav.signals(chan);
            let nets = &compiled.channels[chan.index()];
            let g = (
                gates.value(nets.vp),
                gates.value(nets.sp),
                gates.value(nets.vn),
                gates.value(nets.sn),
            );
            if (b.vp, b.sp, b.vn, b.sn) != g {
                return Err(CoreError::ProtocolViolation {
                    channel: chan,
                    message: format!(
                        "co-simulation divergence at cycle {t} on {}: behavioural {b}, \
                         gates V+={} S+={} V-={} S-={}",
                        net.channel(chan).name,
                        u8::from(g.0),
                        u8::from(g.1),
                        u8::from(g.2),
                        u8::from(g.3),
                    ),
                });
            }
            if b.vp && data_width > 0 {
                for (i, &dn) in nets.data.iter().enumerate() {
                    let gb = gates.value(dn);
                    let bb = b.data >> i & 1 == 1;
                    if gb != bb {
                        return Err(CoreError::ProtocolViolation {
                            channel: chan,
                            message: format!(
                                "data divergence at cycle {t} on {} bit {i}",
                                net.channel(chan).name
                            ),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Three-way co-simulation of the bit-parallel backend: runs up to 64
/// [`Schedule`]s at once through a [`WideSimulator`], the behavioural
/// simulator once per lane, and the scalar gate-level [`Simulator`] on
/// lane 0, comparing all four rails (and payload bits on valid cycles) of
/// every channel, every cycle, in every lane.
///
/// This is the compiled-backend extension of the paper's Fig. 8
/// verification story: the wide backend must be indistinguishable from the
/// reference interpreters before its Monte-Carlo statistics (Table 1,
/// Figs. 5–7, 9) can be trusted.
///
/// # Errors
///
/// Returns the first divergence as [`CoreError::ProtocolViolation`] naming
/// the cycle, channel and lane, or propagates simulation/compilation
/// errors.
///
/// # Panics
///
/// Panics if `schedules` is empty, holds more than 64 entries, or mixes
/// horizons.
#[allow(clippy::too_many_lines)]
pub fn cosim_check_wide(
    net: &ElasticNetwork,
    schedules: &[Schedule],
    data_width: usize,
) -> Result<(), CoreError> {
    assert!(
        !schedules.is_empty() && schedules.len() <= LANES,
        "1..={LANES} schedules required"
    );
    assert!(
        schedules.iter().all(|s| s.cycles == schedules[0].cycles),
        "schedules must share one horizon"
    );
    let compiled = compile(
        net,
        &CompileOptions {
            lint: false,
            data_width,
            nondet_merge: false,
            optimize: false,
            fault: None,
            faults: vec![],
        },
    )?;
    let nl = &compiled.netlist;
    let tb = NetlistTestbench::new(net, nl, data_width)?;
    let mut wide = WideSimulator::new(nl)?;
    let mut scalar = Simulator::new(nl)?;
    let mut behavs: Vec<(BehavSim, Schedule)> = schedules
        .iter()
        .map(|s| Ok((BehavSim::new(net)?, s.clone())))
        .collect::<Result<_, CoreError>>()?;

    let diverged = |t: u64, chan, lane: usize, what: &str| CoreError::ProtocolViolation {
        channel: chan,
        message: format!(
            "wide co-simulation divergence at cycle {t} on {} lane {lane}: {what}",
            net.channel(chan).name
        ),
    };

    for t in 0..schedules[0].cycles as u64 {
        wide.cycle(&tb.wide_inputs_at(schedules, t))?;
        scalar.cycle(&tb.inputs_at(&schedules[0], t))?;
        for (behav, sched) in &mut behavs {
            behav.step(sched)?;
        }
        for chan in net.channels() {
            let nets = &compiled.channels[chan.index()];
            // Lane 0 must bit-match the scalar gate-level interpreter on
            // every rail net.
            for (rail, id) in [
                ("vp", nets.vp),
                ("sp", nets.sp),
                ("vn", nets.vn),
                ("sn", nets.sn),
            ] {
                if wide.value_lane(id, 0) != scalar.value(id) {
                    return Err(diverged(t, chan, 0, &format!("{rail} != scalar gates")));
                }
            }
            // Every lane must match its behavioural run.
            for (lane, (behav, _)) in behavs.iter().enumerate() {
                let b = behav.signals(chan);
                let g = (
                    wide.value_lane(nets.vp, lane),
                    wide.value_lane(nets.sp, lane),
                    wide.value_lane(nets.vn, lane),
                    wide.value_lane(nets.sn, lane),
                );
                if (b.vp, b.sp, b.vn, b.sn) != g {
                    return Err(diverged(
                        t,
                        chan,
                        lane,
                        &format!(
                            "behavioural {b}, wide V+={} S+={} V-={} S-={}",
                            u8::from(g.0),
                            u8::from(g.1),
                            u8::from(g.2),
                            u8::from(g.3)
                        ),
                    ));
                }
                if b.vp {
                    for (i, &dn) in nets.data.iter().enumerate() {
                        if wide.value_lane(dn, lane) != (b.data >> i & 1 == 1) {
                            return Err(diverged(t, chan, lane, &format!("data bit {i}")));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// The four CTL properties of Sect. 5 for one channel, over the rail-net
/// naming convention of the compiler.
pub fn paper_properties(channel_name: &str) -> [(String, String); 4] {
    let c = sanitize(channel_name);
    [
        (
            "Retry+".to_string(),
            format!("AG ({c}.vp & {c}.sp -> AX {c}.vp)"),
        ),
        (
            "Retry-".to_string(),
            format!("AG ({c}.vn & {c}.sn -> AX {c}.vn)"),
        ),
        (
            "Invariant".to_string(),
            format!("AG ((!{c}.vn | !{c}.sp) & (!{c}.vp | !{c}.sn))"),
        ),
        (
            "Liveness".to_string(),
            format!("AG AF (({c}.vp & !{c}.sp) | ({c}.vn & !{c}.sn))"),
        ),
    ]
}

/// Result of model-checking one property on one channel.
#[derive(Debug, Clone)]
pub struct PropertyResult {
    /// Channel display name.
    pub channel: String,
    /// Property short name (`Retry+`, `Retry-`, `Invariant`, `Liveness`).
    pub property: String,
    /// The CTL formula that was checked.
    pub formula: String,
    /// Whether it holds in all initial states.
    pub holds: bool,
}

/// Compiles `net` and exhaustively model-checks the paper's four properties
/// on every channel, under fairness constraints making every environment
/// input recur (offers, accepts and completions happen infinitely often,
/// kills stay finite).
///
/// Returns one [`PropertyResult`] per (channel, property) pair plus the
/// explored state-space size.
///
/// # Errors
///
/// Propagates compilation and model-checking errors (including the input
/// budget when the environment is too wide for exhaustive exploration).
pub fn check_network_properties(
    net: &ElasticNetwork,
    opts: BridgeOptions,
) -> Result<(Vec<PropertyResult>, usize), CoreError> {
    let compiled = compile(net, &CompileOptions::default())?;
    let kripke = build_kripke(net, &compiled.netlist, opts)?;
    let mut results = Vec::new();
    for chan in net.channels() {
        let cname = net.channel(chan).name.clone();
        for (prop, formula) in paper_properties(&cname) {
            let f = parse(&formula).map_err(|e| CoreError::Netlist(e.to_string()))?;
            let holds = check_fair(&kripke, &f)
                .map_err(|e| CoreError::Netlist(e.to_string()))?
                .holds();
            results.push(PropertyResult {
                channel: cname.clone(),
                property: prop,
                formula,
                holds,
            });
        }
    }
    let states = kripke.num_states();
    Ok((results, states))
}

/// Exhaustive self-stabilization check: compiles `net` with the corruption
/// gates of `process` (every site becomes a free `fault.<channel>.<rail>`
/// arm input) and asks, by explicit-state exploration, whether the
/// protocol re-enters its legal `(I*R*T)*` state set from **every**
/// fault-reachable state once the arms go quiet — the convergence half of
/// a self-stabilization proof; closure holds by construction since the
/// legal set is the arm-low reachable set. `horizon` is only used to
/// validate the process spec (the state-space analysis is horizon-free).
///
/// # Errors
///
/// [`CoreError::FaultProcess`] / [`CoreError::FaultSite`] for an invalid
/// process, compilation errors, and [`CoreError::Netlist`] wrapping the
/// model checker's budget errors when the faulted environment is too wide
/// for exhaustive exploration. `data_width` is the compiled payload width
/// (early-evaluation guards dictate a minimum; 0 for pure control
/// checking) — every data bit is another free environment input, so keep
/// it minimal.
pub fn check_network_convergence(
    net: &ElasticNetwork,
    process: &crate::fault::FaultProcess,
    horizon: usize,
    data_width: usize,
    opts: BridgeOptions,
) -> Result<ConvergenceReport, CoreError> {
    process.validate(net, horizon)?;
    let compiled = compile(
        net,
        &CompileOptions {
            faults: process.sites(),
            data_width,
            ..CompileOptions::default()
        },
    )?;
    let kripke = netlist_kripke(&compiled.netlist, &[], opts)
        .map_err(|e| CoreError::Netlist(e.to_string()))?;
    Ok(kripke.convergence_report())
}

/// Builds the Kripke structure of a compiled network with the standard
/// fairness constraints: every source offers infinitely often, every sink
/// is non-stopping and non-killing infinitely often, and every
/// variable-latency unit finishes infinitely often.
fn build_kripke(
    net: &ElasticNetwork,
    nl: &elastic_netlist::Netlist,
    opts: BridgeOptions,
) -> Result<NetlistKripke, CoreError> {
    // Fairness nets must exist by name; add helper nets for negated
    // conditions (e.g. "not stopping") before bridging.
    let mut nl = nl.clone();
    let mut fairness: Vec<String> = Vec::new();
    for comp in net.components() {
        let name = sanitize(&net.component(comp).name);
        match &net.component(comp).kind {
            ComponentKind::Source => fairness.push(format!("{name}.offer")),
            ComponentKind::Sink => {
                let stop = nl.find(&format!("{name}.stop"))?;
                let go = nl.not(stop);
                let gname = format!("{name}.accepting");
                nl.set_name(go, &gname)?;
                fairness.push(gname);
                let kill = nl.find(&format!("{name}.kill"))?;
                let nk = nl.not(kill);
                let nkname = format!("{name}.benign");
                nl.set_name(nk, &nkname)?;
                fairness.push(nkname);
            }
            ComponentKind::VarLatency => fairness.push(format!("{name}.finish")),
            _ => {}
        }
    }
    let fair_refs: Vec<&str> = fairness.iter().map(String::as_str).collect();
    netlist_kripke(&nl, &fair_refs, opts).map_err(|e| CoreError::Netlist(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SinkCfg, SourceCfg};
    use crate::systems::linear_pipeline;

    fn stress_cfg() -> EnvConfig {
        EnvConfig {
            default_source: SourceCfg {
                rate: 0.7,
                // Uniform over the 2-bit payload space so the data rails are
                // exercised (schedules honor the configured DataGen).
                data: crate::sim::DataGen::Weighted(vec![
                    (0, 0.25),
                    (1, 0.25),
                    (2, 0.25),
                    (3, 0.25),
                ]),
            },
            default_sink: SinkCfg {
                stop_prob: 0.3,
                kill_prob: 0.15,
            },
            ..Default::default()
        }
    }

    #[test]
    fn cosim_linear_pipeline() {
        let (net, _, _) = linear_pipeline(3, 1).unwrap();
        let sched = Schedule::random(&net, &stress_cfg(), 11, 600);
        cosim_check(&net, &sched, 2).unwrap();
    }

    #[test]
    fn cosim_join_fork_network() {
        let mut net = ElasticNetwork::new("jf");
        let s1 = net.add_source("s1").unwrap();
        let s2 = net.add_source("s2").unwrap();
        let b1 = net.add_eb("b1", false).unwrap();
        let b2 = net.add_eb("b2", true).unwrap();
        let j = net.add_join("j", 2).unwrap();
        let bj = net.add_eb("bj", false).unwrap();
        let f = net.add_fork("f", 2).unwrap();
        let k1 = net.add_sink("k1").unwrap();
        let k2 = net.add_sink("k2").unwrap();
        net.connect(s1, 0, b1, 0, "c1").unwrap();
        net.connect(s2, 0, b2, 0, "c2").unwrap();
        net.connect(b1, 0, j, 0, "j1").unwrap();
        net.connect(b2, 0, j, 1, "j2").unwrap();
        net.connect(j, 0, bj, 0, "jo").unwrap();
        net.connect(bj, 0, f, 0, "fi").unwrap();
        net.connect(f, 0, k1, 0, "o1").unwrap();
        net.connect(f, 1, k2, 0, "o2").unwrap();
        let sched = Schedule::random(&net, &stress_cfg(), 23, 800);
        cosim_check(&net, &sched, 1).unwrap();
    }

    #[test]
    fn cosim_early_join_with_vl() {
        use crate::ee::{EarlyEval, EeTerm};
        let mut net = ElasticNetwork::new("ejvl");
        let g = net.add_source("g").unwrap();
        let s1 = net.add_source("s1").unwrap();
        let bg = net.add_eb("bg", false).unwrap();
        let b1 = net.add_eb("b1", false).unwrap();
        let vl = net.add_var_latency("vl").unwrap();
        let ee = EarlyEval::new(
            0,
            vec![
                EeTerm {
                    guard_mask: 1,
                    guard_value: 0,
                    required: vec![],
                    select: 0,
                },
                EeTerm {
                    guard_mask: 1,
                    guard_value: 1,
                    required: vec![1],
                    select: 1,
                },
            ],
        );
        let j = net.add_early_join("w", 2, ee).unwrap();
        let snk = net.add_sink("snk").unwrap();
        net.connect(g, 0, bg, 0, "cg").unwrap();
        net.connect(s1, 0, b1, 0, "c1").unwrap();
        net.connect(b1, 0, vl, 0, "bv").unwrap();
        net.connect(bg, 0, j, 0, "jg").unwrap();
        net.connect(vl, 0, j, 1, "jv").unwrap();
        net.connect(j, 0, snk, 0, "out").unwrap();
        let sched = Schedule::random(&net, &stress_cfg(), 31, 800);
        cosim_check(&net, &sched, 1).unwrap();
    }

    #[test]
    fn cosim_paper_example_all_configs() {
        use crate::systems::{paper_example, Config};
        for config in Config::all() {
            let sys = paper_example(config).unwrap();
            let sched = Schedule::random(&sys.network, &sys.env_config, 5, 400);
            cosim_check(&sys.network, &sched, 2).unwrap_or_else(|e| panic!("{config:?}: {e}"));
        }
    }

    #[test]
    fn wide_cosim_fig6_controllers() {
        // The Fig. 6 / Fig. 8(a) model-checked controllers: short pipelines
        // with and without initial tokens. 16 lanes of independent
        // schedules; lane 0 is additionally checked against the scalar
        // gate-level interpreter inside cosim_check_wide.
        for (stages, tokens) in [(1usize, 0usize), (2, 1)] {
            let (net, _, _) = linear_pipeline(stages, tokens).unwrap();
            let scheds: Vec<Schedule> = (0..16)
                .map(|k| Schedule::random(&net, &stress_cfg(), 100 + k, 400))
                .collect();
            cosim_check_wide(&net, &scheds, 1).unwrap_or_else(|e| panic!("{stages} stages: {e}"));
        }
    }

    #[test]
    fn wide_cosim_fig8_pipeline_full_64_lanes() {
        // The Fig. 8(b) data-correctness pipeline under a killing
        // environment, with every one of the 64 lanes holding a distinct
        // schedule.
        let (net, _, _) = linear_pipeline(3, 1).unwrap();
        let scheds: Vec<Schedule> = (0..64)
            .map(|k| Schedule::random(&net, &stress_cfg(), 7000 + k, 300))
            .collect();
        cosim_check_wide(&net, &scheds, 2).unwrap();
    }

    #[test]
    fn wide_cosim_paper_example_all_configs() {
        use crate::systems::{paper_example, Config};
        for config in Config::all() {
            let sys = paper_example(config).unwrap();
            let scheds: Vec<Schedule> = (0..8)
                .map(|k| Schedule::random(&sys.network, &sys.env_config, 40 + k, 250))
                .collect();
            cosim_check_wide(&sys.network, &scheds, 2)
                .unwrap_or_else(|e| panic!("{config:?}: {e}"));
        }
    }

    #[test]
    fn packed_stimulus_matches_wide_inputs_at() {
        // The packed matrix must reproduce the per-cycle packing of
        // `wide_inputs_at` bit for bit, in the same input order — on a
        // system exercising all three stream kinds (sources with payloads,
        // sinks, variable-latency units).
        use crate::ee::{EarlyEval, EeTerm};
        let mut net = ElasticNetwork::new("stim");
        let g = net.add_source("g").unwrap();
        let s1 = net.add_source("s1").unwrap();
        let bg = net.add_eb("bg", false).unwrap();
        let b1 = net.add_eb("b1", false).unwrap();
        let vl = net.add_var_latency("vl").unwrap();
        let ee = EarlyEval::new(
            0,
            vec![
                EeTerm {
                    guard_mask: 1,
                    guard_value: 0,
                    required: vec![],
                    select: 0,
                },
                EeTerm {
                    guard_mask: 1,
                    guard_value: 1,
                    required: vec![1],
                    select: 1,
                },
            ],
        );
        let j = net.add_early_join("w", 2, ee).unwrap();
        let snk = net.add_sink("snk").unwrap();
        net.connect(g, 0, bg, 0, "cg").unwrap();
        net.connect(s1, 0, b1, 0, "c1").unwrap();
        net.connect(b1, 0, vl, 0, "bv").unwrap();
        net.connect(bg, 0, j, 0, "jg").unwrap();
        net.connect(vl, 0, j, 1, "jv").unwrap();
        net.connect(j, 0, snk, 0, "out").unwrap();
        let compiled = compile(
            &net,
            &CompileOptions {
                lint: false,
                data_width: 2,
                nondet_merge: false,
                optimize: false,
                fault: None,
                faults: vec![],
            },
        )
        .unwrap();
        let tb = NetlistTestbench::new(&net, &compiled.netlist, 2).unwrap();
        let cycles = 40usize;
        let scheds: Vec<Schedule> = (0..10)
            .map(|k| Schedule::random(&net, &stress_cfg(), 900 + k, cycles))
            .collect();
        let stim = PackedStimulus::pack(&tb, &scheds, 1).unwrap();
        assert_eq!(stim.cycles(), cycles);
        for t in 0..cycles as u64 {
            let reference = tb.wide_inputs_at(&scheds, t);
            let row = stim.row(t as usize);
            assert_eq!(reference.len(), stim.slots().len());
            for (i, &(net_id, mask)) in reference.iter().enumerate() {
                assert_eq!(stim.slots()[i], net_id.index() as u32, "column {i}");
                assert_eq!(row[i], mask, "cycle {t} input {i}");
            }
        }
        // Width 2: lanes past 63 spill into the second word; the first word
        // of a 64-schedule prefix is unchanged.
        let wide_scheds: Vec<Schedule> = (0..80)
            .map(|k| Schedule::random(&net, &stress_cfg(), 2000 + k, 16))
            .collect();
        let two = PackedStimulus::pack(&tb, &wide_scheds, 2).unwrap();
        let one = PackedStimulus::pack(&tb, &wide_scheds[..64], 1).unwrap();
        let spill = PackedStimulus::pack(&tb, &wide_scheds[64..], 1).unwrap();
        for t in 0..16 {
            for i in 0..two.slots().len() {
                assert_eq!(two.row(t)[i * 2], one.row(t)[i], "word 0 cycle {t}");
                assert_eq!(two.row(t)[i * 2 + 1], spill.row(t)[i], "word 1 cycle {t}");
            }
        }
    }

    #[test]
    fn packed_stimulus_rejects_bad_batches() {
        let (net, _, _) = linear_pipeline(1, 0).unwrap();
        let compiled = compile(&net, &CompileOptions::default()).unwrap();
        let tb = NetlistTestbench::new(&net, &compiled.netlist, 0).unwrap();
        let cfg = EnvConfig::default();
        assert!(matches!(
            PackedStimulus::pack(&tb, &[], 1),
            Err(CoreError::ScheduleBatch(_))
        ));
        let too_many: Vec<Schedule> = (0..65)
            .map(|k| Schedule::random(&net, &cfg, k, 5))
            .collect();
        assert!(matches!(
            PackedStimulus::pack(&tb, &too_many, 1),
            Err(CoreError::ScheduleBatch(_))
        ));
        PackedStimulus::pack(&tb, &too_many, 2).unwrap();
        let mixed = [
            Schedule::random(&net, &cfg, 1, 5),
            Schedule::random(&net, &cfg, 2, 6),
        ];
        assert!(matches!(
            PackedStimulus::pack(&tb, &mixed, 1),
            Err(CoreError::ScheduleBatch(_))
        ));
    }

    #[test]
    fn generate_matches_pack_of_random_schedules() {
        // The fused generator must be bit-identical to the two-step
        // Schedule::random → pack path for every stream kind and every RNG
        // branch: full-rate and sub-rate sources, zero and non-zero
        // stop/kill probabilities, configured and default VL distributions,
        // and partial final word groups.
        use crate::systems::{paper_example, Config};
        let sys = paper_example(Config::ActiveAntiTokens).unwrap();
        let compiled = compile(
            &sys.network,
            &CompileOptions {
                lint: false,
                data_width: 2,
                nondet_merge: false,
                optimize: false,
                fault: None,
                faults: vec![],
            },
        )
        .unwrap();
        let tb = NetlistTestbench::new(&sys.network, &compiled.netlist, 2).unwrap();
        for (cfg, tag) in [(sys.env_config.clone(), "paper"), (stress_cfg(), "stress")] {
            // 150 lanes: two full words and a 22-lane partial on width 3,
            // seeds wrapping near u64::MAX.
            for seed in [0u64, 424242, u64::MAX - 10] {
                let scheds: Vec<Schedule> = (0..150)
                    .map(|k| Schedule::random(&sys.network, &cfg, seed.wrapping_add(k), 37))
                    .collect();
                let packed = PackedStimulus::pack(&tb, &scheds, 3).unwrap();
                let fused =
                    PackedStimulus::generate(&tb, &sys.network, &cfg, seed, 150, 37, 3).unwrap();
                assert_eq!(packed, fused, "{tag} seed {seed}");
            }
        }
        // Degenerate counts mirror pack's errors.
        assert!(matches!(
            PackedStimulus::generate(&tb, &sys.network, &sys.env_config, 1, 0, 10, 1),
            Err(CoreError::ScheduleBatch(_))
        ));
        assert!(matches!(
            PackedStimulus::generate(&tb, &sys.network, &sys.env_config, 1, 65, 10, 1),
            Err(CoreError::ScheduleBatch(_))
        ));
    }

    #[test]
    fn generate_matches_pack_for_stateful_datagens() {
        // Counter/Alternate payloads advance a per-(lane, source) sequence
        // counter; the fused generator must track one counter per lane.
        let (net, _, _) = linear_pipeline(2, 1).unwrap();
        let compiled = compile(
            &net,
            &CompileOptions {
                lint: false,
                data_width: 2,
                nondet_merge: false,
                optimize: false,
                fault: None,
                faults: vec![],
            },
        )
        .unwrap();
        let tb = NetlistTestbench::new(&net, &compiled.netlist, 2).unwrap();
        for data in [crate::sim::DataGen::Counter, crate::sim::DataGen::Alternate] {
            let cfg = EnvConfig {
                default_source: SourceCfg {
                    rate: 0.6,
                    data: data.clone(),
                },
                default_sink: SinkCfg {
                    stop_prob: 0.2,
                    kill_prob: 0.0,
                },
                ..Default::default()
            };
            let scheds: Vec<Schedule> = (0..70)
                .map(|k| Schedule::random(&net, &cfg, 50 + k, 25))
                .collect();
            let packed = PackedStimulus::pack(&tb, &scheds, 2).unwrap();
            let fused = PackedStimulus::generate(&tb, &net, &cfg, 50, 70, 25, 2).unwrap();
            assert_eq!(packed, fused, "{data:?}");
        }
    }

    #[test]
    fn optimized_compile_keeps_rails_cycle_exact() {
        // The CompileOptions::optimize knob: remapped rails must report the
        // same four-rail trace as the raw compilation, cycle by cycle, and
        // the optimized netlist must actually be smaller.
        use crate::systems::{paper_example, Config};
        for config in [Config::ActiveAntiTokens, Config::NoEarlyEval] {
            let sys = paper_example(config).unwrap();
            let raw = compile(
                &sys.network,
                &CompileOptions {
                    lint: false,
                    data_width: 2,
                    nondet_merge: false,
                    optimize: false,
                    fault: None,
                    faults: vec![],
                },
            )
            .unwrap();
            let opt = compile(
                &sys.network,
                &CompileOptions {
                    lint: false,
                    data_width: 2,
                    nondet_merge: false,
                    optimize: true,
                    fault: None,
                    faults: vec![],
                },
            )
            .unwrap();
            assert!(
                opt.netlist.len() < raw.netlist.len(),
                "{config:?}: {} !< {}",
                opt.netlist.len(),
                raw.netlist.len()
            );
            let tb_raw = NetlistTestbench::new(&sys.network, &raw.netlist, 2).unwrap();
            let tb_opt = NetlistTestbench::new(&sys.network, &opt.netlist, 2).unwrap();
            let sched = Schedule::random(&sys.network, &sys.env_config, 77, 300);
            let mut sim_raw = Simulator::new(&raw.netlist).unwrap();
            let mut sim_opt = Simulator::new(&opt.netlist).unwrap();
            for t in 0..300u64 {
                sim_raw.cycle(&tb_raw.inputs_at(&sched, t)).unwrap();
                sim_opt.cycle(&tb_opt.inputs_at(&sched, t)).unwrap();
                for chan in sys.network.channels() {
                    let (r, o) = (&raw.channels[chan.index()], &opt.channels[chan.index()]);
                    for (rail, (rr, oo)) in [
                        ("vp", (r.vp, o.vp)),
                        ("sp", (r.sp, o.sp)),
                        ("vn", (r.vn, o.vn)),
                        ("sn", (r.sn, o.sn)),
                    ] {
                        assert_eq!(
                            sim_raw.value(rr),
                            sim_opt.value(oo),
                            "{config:?} cycle {t} {} {rail}",
                            sys.network.channel(chan).name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn paper_properties_have_expected_shape() {
        let props = paper_properties("a->b");
        assert_eq!(props.len(), 4);
        assert!(props[0].1.contains("a__b.vp"));
        assert!(props[3].1.contains("AG AF"));
    }

    #[test]
    fn model_check_single_buffer() {
        let (net, _, _) = linear_pipeline(1, 0).unwrap();
        let (results, states) = check_network_properties(&net, BridgeOptions::default()).unwrap();
        assert!(states > 4);
        for r in &results {
            assert!(
                r.holds,
                "{} on {} failed: {}",
                r.property, r.channel, r.formula
            );
        }
    }

    #[test]
    fn model_check_two_buffer_pipeline() {
        let (net, _, _) = linear_pipeline(2, 1).unwrap();
        let (results, _) = check_network_properties(&net, BridgeOptions::default()).unwrap();
        for r in &results {
            assert!(r.holds, "{} on {} failed", r.property, r.channel);
        }
    }

    #[test]
    fn fault_arm_window_validation() {
        let (net, _, _) = linear_pipeline(1, 0).unwrap();
        let mut s = Schedule::random(&net, &EnvConfig::default(), 3, 20);
        assert!(matches!(s.arm_fault(5, 0), Err(CoreError::FaultSite(_))));
        assert!(matches!(s.arm_fault(15, 6), Err(CoreError::FaultSite(_))));
        assert!(matches!(
            s.arm_fault(usize::MAX, 2),
            Err(CoreError::FaultSite(_))
        ));
        s.arm_fault(5, 3).unwrap();
        assert!(!s.fault_at(4) && s.fault_at(5) && s.fault_at(7) && !s.fault_at(8));
        // Exactly-at-horizon windows are legal.
        s.arm_fault(18, 2).unwrap();
        assert!(s.fault_at(19));
    }

    #[test]
    fn fault_testbench_resolution() {
        use crate::compile::FaultRail;
        let (net, _, _) = linear_pipeline(2, 1).unwrap();
        let fault = FaultInjection::RailFlip {
            channel: "c1".into(),
            rail: FaultRail::Vp,
        };
        let plain = compile(&net, &CompileOptions::default()).unwrap();
        // A fault-free netlist has no arm input to resolve.
        assert!(matches!(
            NetlistTestbench::with_fault(&net, &plain.netlist, 0, &fault),
            Err(CoreError::FaultSite(_))
        ));
        let faulty = compile(
            &net,
            &CompileOptions {
                lint: false,
                data_width: 0,
                nondet_merge: false,
                optimize: false,
                fault: Some(fault.clone()),
                faults: vec![],
            },
        )
        .unwrap();
        let tb = NetlistTestbench::with_fault(&net, &faulty.netlist, 0, &fault).unwrap();
        // Arm column is last: source offer + sink stop/kill, then the arm.
        assert_eq!(tb.fault_col(), Some(3));
        // DropAntiToken has no arm wire; with_fault degrades to new().
        let drop = FaultInjection::DropAntiToken { join: "x".into() };
        let tb2 = NetlistTestbench::with_fault(&net, &plain.netlist, 0, &drop).unwrap();
        assert_eq!(tb2.fault_col(), None);
    }

    #[test]
    fn packed_fault_column_matches_armed_schedules() {
        use crate::compile::FaultRail;
        let (net, _, _) = linear_pipeline(2, 0).unwrap();
        let fault = FaultInjection::StuckAt {
            channel: "c1".into(),
            rail: FaultRail::Sp,
            value: true,
        };
        let compiled = compile(
            &net,
            &CompileOptions {
                lint: false,
                data_width: 2,
                nondet_merge: false,
                optimize: false,
                fault: Some(fault.clone()),
                faults: vec![],
            },
        )
        .unwrap();
        let tb = NetlistTestbench::with_fault(&net, &compiled.netlist, 2, &fault).unwrap();
        let col = tb.fault_col().unwrap();
        let cycles = 30usize;
        // Lane k gets the window (k, 3): arm schedules, pack, and compare
        // against generate + post-generation arming.
        let cfg = stress_cfg();
        let mut scheds: Vec<Schedule> = (0..70)
            .map(|k| Schedule::random(&net, &cfg, 600 + k, cycles))
            .collect();
        for (k, s) in scheds.iter_mut().enumerate() {
            s.arm_fault(k % 20, 3).unwrap();
        }
        let packed = PackedStimulus::pack(&tb, &scheds, 2).unwrap();
        let mut fused = PackedStimulus::generate(&tb, &net, &cfg, 600, 70, cycles, 2).unwrap();
        for k in 0..70 {
            fused.arm_fault(col, k, k % 20, 3).unwrap();
        }
        assert_eq!(packed, fused);
        // The per-cycle input paths agree too.
        for t in 0..cycles as u64 {
            let reference = tb.wide_inputs_at(&scheds[..64], t);
            let row = packed.row(t as usize);
            for (i, &(net_id, mask)) in reference.iter().enumerate() {
                assert_eq!(packed.slots()[i], net_id.index() as u32);
                assert_eq!(row[i * 2], mask, "cycle {t} input {i}");
            }
            let scalar = tb.inputs_at(&scheds[0], t);
            assert_eq!(scalar.len(), packed.slots().len());
            assert_eq!(scalar[col].1, scheds[0].fault_at(t));
        }
        // arm_fault window/site validation on the packed matrix.
        assert!(matches!(
            fused.arm_fault(col + 1, 0, 0, 1),
            Err(CoreError::FaultSite(_))
        ));
        assert!(matches!(
            fused.arm_fault(col, 128, 0, 1),
            Err(CoreError::FaultSite(_))
        ));
        assert!(matches!(
            fused.arm_fault(col, 0, 0, 0),
            Err(CoreError::FaultSite(_))
        ));
        assert!(matches!(
            fused.arm_fault(col, 0, cycles - 1, 2),
            Err(CoreError::FaultSite(_))
        ));
    }
}
