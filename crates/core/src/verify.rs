//! Verification harnesses reproducing Sect. 5 / Fig. 8 of the paper.
//!
//! Three layers:
//!
//! 1. **Co-simulation** — the behavioural simulator and the compiled gate
//!    netlist run the same pre-generated environment schedule and must agree
//!    on every channel rail every cycle ([`cosim_check`]).
//! 2. **Protocol model checking** (Fig. 8(a)) — the compiled netlist with
//!    its nondeterministic environment inputs is explored exhaustively and
//!    the paper's four CTL properties are checked per channel
//!    ([`paper_properties`], [`check_network_properties`]).
//! 3. **Data correctness** (Fig. 8(b)) — producers emit alternating 0/1
//!    payloads into an acyclic netlist whose consumers nondeterministically
//!    accept or kill; consumers must always observe an alternating stream
//!    (exercised by the integration tests via sink data recording).

use std::collections::HashMap;

use elastic_mc::{check_fair, netlist_kripke, parse, BridgeOptions, Kripke, NetlistKripke};
use elastic_netlist::sim::Simulator;
use elastic_netlist::NetId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::compile::{compile, sanitize, CompileOptions};
use crate::error::CoreError;
use crate::network::{CompId, ComponentKind, ElasticNetwork};
use crate::sim::{BehavSim, EnvConfig, Environment};

/// A pre-generated environment schedule, replayable both by the behavioural
/// simulator (as an [`Environment`]) and by the netlist testbench (as
/// primary-input values). One entry per cycle per component.
#[derive(Debug, Clone)]
pub struct Schedule {
    offers: HashMap<String, Vec<Option<u64>>>,
    stops: HashMap<String, Vec<bool>>,
    kills: HashMap<String, Vec<bool>>,
    finishes: HashMap<String, Vec<bool>>,
    cycles: usize,
}

impl Schedule {
    /// Generates a random schedule for `net` using the probabilities in
    /// `cfg`. Variable-latency completion streams are Bernoulli with rate
    /// `1/mean(latency)` — any stream is a legal delay behaviour, and both
    /// back-ends interpret the *same* stream, so equivalence is exact.
    pub fn random(net: &ElasticNetwork, cfg: &EnvConfig, seed: u64, cycles: usize) -> Schedule {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = Schedule {
            offers: HashMap::new(),
            stops: HashMap::new(),
            kills: HashMap::new(),
            finishes: HashMap::new(),
            cycles,
        };
        for comp in net.components() {
            let name = net.component(comp).name.clone();
            match &net.component(comp).kind {
                ComponentKind::Source => {
                    let c = cfg
                        .sources
                        .get(&name)
                        .unwrap_or(&cfg.default_source)
                        .clone();
                    let data_bits = 2u64;
                    let stream = (0..cycles)
                        .map(|_| {
                            if c.rate >= 1.0 || rng.gen_bool(c.rate.clamp(0.0, 1.0)) {
                                Some(rng.gen_range(0..1 << data_bits))
                            } else {
                                None
                            }
                        })
                        .collect();
                    s.offers.insert(name, stream);
                }
                ComponentKind::Sink => {
                    let c = cfg.sinks.get(&name).copied().unwrap_or(cfg.default_sink);
                    s.stops.insert(
                        name.clone(),
                        (0..cycles)
                            .map(|_| c.stop_prob > 0.0 && rng.gen_bool(c.stop_prob.min(1.0)))
                            .collect(),
                    );
                    s.kills.insert(
                        name,
                        (0..cycles)
                            .map(|_| c.kill_prob > 0.0 && rng.gen_bool(c.kill_prob.min(1.0)))
                            .collect(),
                    );
                }
                ComponentKind::VarLatency => {
                    let dist = cfg
                        .vls
                        .get(&name)
                        .cloned()
                        .unwrap_or_else(|| cfg.default_vl.clone());
                    let p = (1.0 / dist.mean()).clamp(0.05, 1.0);
                    s.finishes
                        .insert(name, (0..cycles).map(|_| rng.gen_bool(p)).collect());
                }
                _ => {}
            }
        }
        s
    }

    fn offer(&self, name: &str, t: u64) -> Option<u64> {
        self.offers
            .get(name)
            .and_then(|v| v.get(t as usize).copied().flatten())
    }

    fn bit(map: &HashMap<String, Vec<bool>>, name: &str, t: u64) -> bool {
        map.get(name)
            .and_then(|v| v.get(t as usize).copied())
            .unwrap_or(false)
    }
}

impl Environment for Schedule {
    fn source_offer(&mut self, _comp: CompId, name: &str, time: u64) -> Option<u64> {
        self.offer(name, time)
    }

    fn sink_stop(&mut self, _comp: CompId, name: &str, time: u64) -> bool {
        Schedule::bit(&self.stops, name, time)
    }

    fn sink_kill(&mut self, _comp: CompId, name: &str, time: u64) -> bool {
        Schedule::bit(&self.kills, name, time)
    }

    fn vl_latency(&mut self, _comp: CompId, name: &str, time: u64) -> u32 {
        // Latency = distance to the next asserted finish bit, inclusive.
        let Some(stream) = self.finishes.get(name) else {
            return 1;
        };
        let start = time as usize;
        for (i, &f) in stream.iter().enumerate().skip(start) {
            if f {
                return (i - start + 1) as u32;
            }
        }
        // No completion scheduled within the horizon: effectively stuck.
        (stream.len() - start + 1) as u32
    }
}

/// Runs the behavioural simulator and the compiled netlist side by side
/// under the same [`Schedule`] and compares all four rails of every channel
/// on every cycle.
///
/// # Errors
///
/// Returns the first divergence as [`CoreError::ProtocolViolation`], or
/// propagates simulation/compilation errors.
#[allow(clippy::too_many_lines)]
pub fn cosim_check(
    net: &ElasticNetwork,
    schedule: &Schedule,
    data_width: usize,
) -> Result<(), CoreError> {
    let mut behav = BehavSim::new(net)?;
    let mut sched_env = schedule.clone();
    let compiled = compile(
        net,
        &CompileOptions {
            data_width,
            nondet_merge: false,
        },
    )?;
    let nl = &compiled.netlist;
    let mut gates = Simulator::new(nl)?;

    // Primary-input handles.
    let mut src_inputs: Vec<(String, NetId, Vec<NetId>)> = Vec::new();
    let mut sink_inputs: Vec<(String, NetId, NetId)> = Vec::new();
    let mut vl_inputs: Vec<(String, NetId)> = Vec::new();
    for comp in net.components() {
        let raw = net.component(comp).name.clone();
        let name = sanitize(&raw);
        match &net.component(comp).kind {
            ComponentKind::Source => {
                let offer = nl.find(&format!("{name}.offer"))?;
                let dins = (0..data_width)
                    .map(|i| nl.find(&format!("{name}.din{i}")))
                    .collect::<Result<Vec<_>, _>>()?;
                src_inputs.push((raw, offer, dins));
            }
            ComponentKind::Sink => {
                let stop = nl.find(&format!("{name}.stop"))?;
                let kill = nl.find(&format!("{name}.kill"))?;
                sink_inputs.push((raw, stop, kill));
            }
            ComponentKind::VarLatency => {
                let fin = nl.find(&format!("{name}.finish"))?;
                vl_inputs.push((raw, fin));
            }
            _ => {}
        }
    }

    for t in 0..schedule.cycles as u64 {
        // Drive the netlist inputs from the schedule.
        let mut inputs: Vec<(NetId, bool)> = Vec::new();
        for (name, offer, dins) in &src_inputs {
            let o = schedule.offer(name, t);
            inputs.push((*offer, o.is_some()));
            for (i, &din) in dins.iter().enumerate() {
                inputs.push((din, o.is_some_and(|d| d >> i & 1 == 1)));
            }
        }
        for (name, stop, kill) in &sink_inputs {
            inputs.push((*stop, Schedule::bit(&schedule.stops, name, t)));
            inputs.push((*kill, Schedule::bit(&schedule.kills, name, t)));
        }
        for (name, fin) in &vl_inputs {
            inputs.push((*fin, Schedule::bit(&schedule.finishes, name, t)));
        }
        gates.cycle(&inputs)?;
        behav.step(&mut sched_env)?;

        // Compare every rail.
        for chan in net.channels() {
            let b = behav.signals(chan);
            let nets = &compiled.channels[chan.index()];
            let g = (
                gates.value(nets.vp),
                gates.value(nets.sp),
                gates.value(nets.vn),
                gates.value(nets.sn),
            );
            if (b.vp, b.sp, b.vn, b.sn) != g {
                return Err(CoreError::ProtocolViolation {
                    channel: chan,
                    message: format!(
                        "co-simulation divergence at cycle {t} on {}: behavioural {b}, \
                         gates V+={} S+={} V-={} S-={}",
                        net.channel(chan).name,
                        u8::from(g.0),
                        u8::from(g.1),
                        u8::from(g.2),
                        u8::from(g.3),
                    ),
                });
            }
            if b.vp && data_width > 0 {
                for (i, &dn) in nets.data.iter().enumerate() {
                    let gb = gates.value(dn);
                    let bb = b.data >> i & 1 == 1;
                    if gb != bb {
                        return Err(CoreError::ProtocolViolation {
                            channel: chan,
                            message: format!(
                                "data divergence at cycle {t} on {} bit {i}",
                                net.channel(chan).name
                            ),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// The four CTL properties of Sect. 5 for one channel, over the rail-net
/// naming convention of the compiler.
pub fn paper_properties(channel_name: &str) -> [(String, String); 4] {
    let c = sanitize(channel_name);
    [
        (
            "Retry+".to_string(),
            format!("AG ({c}.vp & {c}.sp -> AX {c}.vp)"),
        ),
        (
            "Retry-".to_string(),
            format!("AG ({c}.vn & {c}.sn -> AX {c}.vn)"),
        ),
        (
            "Invariant".to_string(),
            format!("AG ((!{c}.vn | !{c}.sp) & (!{c}.vp | !{c}.sn))"),
        ),
        (
            "Liveness".to_string(),
            format!("AG AF (({c}.vp & !{c}.sp) | ({c}.vn & !{c}.sn))"),
        ),
    ]
}

/// Result of model-checking one property on one channel.
#[derive(Debug, Clone)]
pub struct PropertyResult {
    /// Channel display name.
    pub channel: String,
    /// Property short name (`Retry+`, `Retry-`, `Invariant`, `Liveness`).
    pub property: String,
    /// The CTL formula that was checked.
    pub formula: String,
    /// Whether it holds in all initial states.
    pub holds: bool,
}

/// Compiles `net` and exhaustively model-checks the paper's four properties
/// on every channel, under fairness constraints making every environment
/// input recur (offers, accepts and completions happen infinitely often,
/// kills stay finite).
///
/// Returns one [`PropertyResult`] per (channel, property) pair plus the
/// explored state-space size.
///
/// # Errors
///
/// Propagates compilation and model-checking errors (including the input
/// budget when the environment is too wide for exhaustive exploration).
pub fn check_network_properties(
    net: &ElasticNetwork,
    opts: BridgeOptions,
) -> Result<(Vec<PropertyResult>, usize), CoreError> {
    let compiled = compile(net, &CompileOptions::default())?;
    let kripke = build_kripke(net, &compiled.netlist, opts)?;
    let mut results = Vec::new();
    for chan in net.channels() {
        let cname = net.channel(chan).name.clone();
        for (prop, formula) in paper_properties(&cname) {
            let f = parse(&formula).map_err(|e| CoreError::Netlist(e.to_string()))?;
            let holds = check_fair(&kripke, &f)
                .map_err(|e| CoreError::Netlist(e.to_string()))?
                .holds();
            results.push(PropertyResult {
                channel: cname.clone(),
                property: prop,
                formula,
                holds,
            });
        }
    }
    let states = kripke.num_states();
    Ok((results, states))
}

/// Builds the Kripke structure of a compiled network with the standard
/// fairness constraints: every source offers infinitely often, every sink
/// is non-stopping and non-killing infinitely often, and every
/// variable-latency unit finishes infinitely often.
fn build_kripke(
    net: &ElasticNetwork,
    nl: &elastic_netlist::Netlist,
    opts: BridgeOptions,
) -> Result<NetlistKripke, CoreError> {
    // Fairness nets must exist by name; add helper nets for negated
    // conditions (e.g. "not stopping") before bridging.
    let mut nl = nl.clone();
    let mut fairness: Vec<String> = Vec::new();
    for comp in net.components() {
        let name = sanitize(&net.component(comp).name);
        match &net.component(comp).kind {
            ComponentKind::Source => fairness.push(format!("{name}.offer")),
            ComponentKind::Sink => {
                let stop = nl.find(&format!("{name}.stop"))?;
                let go = nl.not(stop);
                let gname = format!("{name}.accepting");
                nl.set_name(go, &gname)?;
                fairness.push(gname);
                let kill = nl.find(&format!("{name}.kill"))?;
                let nk = nl.not(kill);
                let nkname = format!("{name}.benign");
                nl.set_name(nk, &nkname)?;
                fairness.push(nkname);
            }
            ComponentKind::VarLatency => fairness.push(format!("{name}.finish")),
            _ => {}
        }
    }
    let fair_refs: Vec<&str> = fairness.iter().map(String::as_str).collect();
    netlist_kripke(&nl, &fair_refs, opts).map_err(|e| CoreError::Netlist(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SinkCfg, SourceCfg};
    use crate::systems::linear_pipeline;

    fn stress_cfg() -> EnvConfig {
        EnvConfig {
            default_source: SourceCfg {
                rate: 0.7,
                data: crate::sim::DataGen::Const(0),
            },
            default_sink: SinkCfg {
                stop_prob: 0.3,
                kill_prob: 0.15,
            },
            ..Default::default()
        }
    }

    #[test]
    fn cosim_linear_pipeline() {
        let (net, _, _) = linear_pipeline(3, 1).unwrap();
        let sched = Schedule::random(&net, &stress_cfg(), 11, 600);
        cosim_check(&net, &sched, 2).unwrap();
    }

    #[test]
    fn cosim_join_fork_network() {
        let mut net = ElasticNetwork::new("jf");
        let s1 = net.add_source("s1");
        let s2 = net.add_source("s2");
        let b1 = net.add_eb("b1", false);
        let b2 = net.add_eb("b2", true);
        let j = net.add_join("j", 2);
        let bj = net.add_eb("bj", false);
        let f = net.add_fork("f", 2);
        let k1 = net.add_sink("k1");
        let k2 = net.add_sink("k2");
        net.connect(s1, 0, b1, 0, "c1").unwrap();
        net.connect(s2, 0, b2, 0, "c2").unwrap();
        net.connect(b1, 0, j, 0, "j1").unwrap();
        net.connect(b2, 0, j, 1, "j2").unwrap();
        net.connect(j, 0, bj, 0, "jo").unwrap();
        net.connect(bj, 0, f, 0, "fi").unwrap();
        net.connect(f, 0, k1, 0, "o1").unwrap();
        net.connect(f, 1, k2, 0, "o2").unwrap();
        let sched = Schedule::random(&net, &stress_cfg(), 23, 800);
        cosim_check(&net, &sched, 1).unwrap();
    }

    #[test]
    fn cosim_early_join_with_vl() {
        use crate::ee::{EarlyEval, EeTerm};
        let mut net = ElasticNetwork::new("ejvl");
        let g = net.add_source("g");
        let s1 = net.add_source("s1");
        let bg = net.add_eb("bg", false);
        let b1 = net.add_eb("b1", false);
        let vl = net.add_var_latency("vl");
        let ee = EarlyEval::new(
            0,
            vec![
                EeTerm {
                    guard_mask: 1,
                    guard_value: 0,
                    required: vec![],
                    select: 0,
                },
                EeTerm {
                    guard_mask: 1,
                    guard_value: 1,
                    required: vec![1],
                    select: 1,
                },
            ],
        );
        let j = net.add_early_join("w", 2, ee).unwrap();
        let snk = net.add_sink("snk");
        net.connect(g, 0, bg, 0, "cg").unwrap();
        net.connect(s1, 0, b1, 0, "c1").unwrap();
        net.connect(b1, 0, vl, 0, "bv").unwrap();
        net.connect(bg, 0, j, 0, "jg").unwrap();
        net.connect(vl, 0, j, 1, "jv").unwrap();
        net.connect(j, 0, snk, 0, "out").unwrap();
        let sched = Schedule::random(&net, &stress_cfg(), 31, 800);
        cosim_check(&net, &sched, 1).unwrap();
    }

    #[test]
    fn cosim_paper_example_all_configs() {
        use crate::systems::{paper_example, Config};
        for config in Config::all() {
            let sys = paper_example(config).unwrap();
            let sched = Schedule::random(&sys.network, &sys.env_config, 5, 400);
            cosim_check(&sys.network, &sched, 2).unwrap_or_else(|e| panic!("{config:?}: {e}"));
        }
    }

    #[test]
    fn paper_properties_have_expected_shape() {
        let props = paper_properties("a->b");
        assert_eq!(props.len(), 4);
        assert!(props[0].1.contains("a__b.vp"));
        assert!(props[3].1.contains("AG AF"));
    }

    #[test]
    fn model_check_single_buffer() {
        let (net, _, _) = linear_pipeline(1, 0).unwrap();
        let (results, states) = check_network_properties(&net, BridgeOptions::default()).unwrap();
        assert!(states > 4);
        for r in &results {
            assert!(
                r.holds,
                "{} on {} failed: {}",
                r.property, r.channel, r.formula
            );
        }
    }

    #[test]
    fn model_check_two_buffer_pipeline() {
        let (net, _, _) = linear_pipeline(2, 1).unwrap();
        let (results, _) = check_network_properties(&net, BridgeOptions::default()).unwrap();
        for r in &results {
            assert!(r.holds, "{} on {} failed", r.property, r.channel);
        }
    }
}
