//! Verification harnesses reproducing Sect. 5 / Fig. 8 of the paper.
//!
//! Three layers:
//!
//! 1. **Co-simulation** — the behavioural simulator and the compiled gate
//!    netlist run the same pre-generated environment schedule and must agree
//!    on every channel rail every cycle ([`cosim_check`]).
//! 2. **Protocol model checking** (Fig. 8(a)) — the compiled netlist with
//!    its nondeterministic environment inputs is explored exhaustively and
//!    the paper's four CTL properties are checked per channel
//!    ([`paper_properties`], [`check_network_properties`]).
//! 3. **Data correctness** (Fig. 8(b)) — producers emit alternating 0/1
//!    payloads into an acyclic netlist whose consumers nondeterministically
//!    accept or kill; consumers must always observe an alternating stream
//!    (exercised by the integration tests via sink data recording).

use std::collections::HashMap;

use elastic_mc::{check_fair, netlist_kripke, parse, BridgeOptions, Kripke, NetlistKripke};
use elastic_netlist::sim::Simulator;
use elastic_netlist::wide::{WideSimulator, LANES};
use elastic_netlist::NetId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::compile::{compile, sanitize, CompileOptions};
use crate::error::CoreError;
use crate::network::{CompId, ComponentKind, ElasticNetwork};
use crate::sim::{BehavSim, EnvConfig, Environment};

/// A pre-generated environment schedule, replayable both by the behavioural
/// simulator (as an [`Environment`]) and by the netlist testbench (as
/// primary-input values). One entry per cycle per component.
#[derive(Debug, Clone)]
pub struct Schedule {
    offers: HashMap<String, Vec<Option<u64>>>,
    stops: HashMap<String, Vec<bool>>,
    kills: HashMap<String, Vec<bool>>,
    finishes: HashMap<String, Vec<bool>>,
    cycles: usize,
}

impl Schedule {
    /// Generates a random schedule for `net` using the probabilities in
    /// `cfg`. Source payloads are drawn from the configured
    /// [`crate::sim::DataGen`] (e.g. the paper's 0.6/0.3/0.1 opcode
    /// distribution, Sect. 6.1). Variable-latency completion streams are
    /// Bernoulli with rate `1/mean(latency)` — any stream is a legal delay
    /// behaviour, and both back-ends interpret the *same* stream, so
    /// equivalence is exact.
    pub fn random(net: &ElasticNetwork, cfg: &EnvConfig, seed: u64, cycles: usize) -> Schedule {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = Schedule {
            offers: HashMap::new(),
            stops: HashMap::new(),
            kills: HashMap::new(),
            finishes: HashMap::new(),
            cycles,
        };
        for comp in net.components() {
            let name = net.component(comp).name.clone();
            match &net.component(comp).kind {
                ComponentKind::Source => {
                    let c = cfg
                        .sources
                        .get(&name)
                        .unwrap_or(&cfg.default_source)
                        .clone();
                    let mut seq = 0u64;
                    let stream = (0..cycles)
                        .map(|_| {
                            if c.rate >= 1.0 || rng.gen_bool(c.rate.clamp(0.0, 1.0)) {
                                Some(c.data.sample(&mut rng, &mut seq))
                            } else {
                                None
                            }
                        })
                        .collect();
                    s.offers.insert(name, stream);
                }
                ComponentKind::Sink => {
                    let c = cfg.sinks.get(&name).copied().unwrap_or(cfg.default_sink);
                    s.stops.insert(
                        name.clone(),
                        (0..cycles)
                            .map(|_| c.stop_prob > 0.0 && rng.gen_bool(c.stop_prob.min(1.0)))
                            .collect(),
                    );
                    s.kills.insert(
                        name,
                        (0..cycles)
                            .map(|_| c.kill_prob > 0.0 && rng.gen_bool(c.kill_prob.min(1.0)))
                            .collect(),
                    );
                }
                ComponentKind::VarLatency => {
                    let dist = cfg
                        .vls
                        .get(&name)
                        .cloned()
                        .unwrap_or_else(|| cfg.default_vl.clone());
                    let p = (1.0 / dist.mean()).clamp(0.05, 1.0);
                    s.finishes
                        .insert(name, (0..cycles).map(|_| rng.gen_bool(p)).collect());
                }
                _ => {}
            }
        }
        s
    }

    /// Horizon of the schedule in cycles.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// The payload the named source offers at cycle `t`, if any. These
    /// per-cycle accessors let testbenches drive a compiled netlist's
    /// primary inputs from the same stream the behavioural simulator
    /// replays through [`Environment`].
    pub fn offer_at(&self, name: &str, t: u64) -> Option<u64> {
        self.offers
            .get(name)
            .and_then(|v| v.get(t as usize).copied().flatten())
    }

    /// Whether the named sink back-pressures (stop) at cycle `t`.
    pub fn stop_at(&self, name: &str, t: u64) -> bool {
        Schedule::bit(&self.stops, name, t)
    }

    /// Whether the named sink launches an anti-token (kill) at cycle `t`.
    pub fn kill_at(&self, name: &str, t: u64) -> bool {
        Schedule::bit(&self.kills, name, t)
    }

    /// Whether the named variable-latency unit raises `finish` at cycle `t`.
    pub fn finish_at(&self, name: &str, t: u64) -> bool {
        Schedule::bit(&self.finishes, name, t)
    }

    fn offer(&self, name: &str, t: u64) -> Option<u64> {
        self.offer_at(name, t)
    }

    fn bit(map: &HashMap<String, Vec<bool>>, name: &str, t: u64) -> bool {
        map.get(name)
            .and_then(|v| v.get(t as usize).copied())
            .unwrap_or(false)
    }
}

impl Environment for Schedule {
    fn source_offer(&mut self, _comp: CompId, name: &str, time: u64) -> Option<u64> {
        self.offer(name, time)
    }

    fn sink_stop(&mut self, _comp: CompId, name: &str, time: u64) -> bool {
        Schedule::bit(&self.stops, name, time)
    }

    fn sink_kill(&mut self, _comp: CompId, name: &str, time: u64) -> bool {
        Schedule::bit(&self.kills, name, time)
    }

    fn vl_latency(&mut self, _comp: CompId, name: &str, time: u64) -> u32 {
        // Latency = distance to the next asserted finish bit, inclusive.
        let Some(stream) = self.finishes.get(name) else {
            return 1;
        };
        let start = time as usize;
        for (i, &f) in stream.iter().enumerate().skip(start) {
            if f {
                return (i - start + 1) as u32;
            }
        }
        // No completion scheduled within the horizon: effectively stuck.
        (stream.len() - start + 1) as u32
    }
}

/// Handles to the environment-facing primary inputs of a compiled network:
/// one `offer`/`din*` group per source, `stop`/`kill` per sink and `finish`
/// per variable-latency unit — the nondeterministic closure of Sect. 5,
/// resolved against the rail-naming convention of [`crate::compile`].
///
/// A testbench translates a [`Schedule`] into per-cycle primary-input
/// assignments, either for one scalar simulator run ([`Self::inputs_at`])
/// or for up to 64 schedules at once packed into the lanes of a
/// [`WideSimulator`] ([`Self::wide_inputs_at`]).
#[derive(Debug, Clone)]
pub struct NetlistTestbench {
    srcs: Vec<(String, NetId, Vec<NetId>)>,
    sinks: Vec<(String, NetId, NetId)>,
    vls: Vec<(String, NetId)>,
}

impl NetlistTestbench {
    /// Resolves the input handles of `compiled` (a compilation of `net`
    /// with `data_width` payload bits).
    ///
    /// # Errors
    ///
    /// [`elastic_netlist::NetlistError::UnknownName`] (via
    /// [`CoreError::Netlist`] conversion) when the compiled netlist does not
    /// follow the expected naming, e.g. because `data_width` differs from
    /// the compilation options.
    pub fn new(
        net: &ElasticNetwork,
        nl: &elastic_netlist::Netlist,
        data_width: usize,
    ) -> Result<Self, CoreError> {
        let mut srcs: Vec<(String, NetId, Vec<NetId>)> = Vec::new();
        let mut sinks: Vec<(String, NetId, NetId)> = Vec::new();
        let mut vls: Vec<(String, NetId)> = Vec::new();
        for comp in net.components() {
            let raw = net.component(comp).name.clone();
            let name = sanitize(&raw);
            match &net.component(comp).kind {
                ComponentKind::Source => {
                    let offer = nl.find(&format!("{name}.offer"))?;
                    let dins = (0..data_width)
                        .map(|i| nl.find(&format!("{name}.din{i}")))
                        .collect::<Result<Vec<_>, _>>()?;
                    srcs.push((raw, offer, dins));
                }
                ComponentKind::Sink => {
                    let stop = nl.find(&format!("{name}.stop"))?;
                    let kill = nl.find(&format!("{name}.kill"))?;
                    sinks.push((raw, stop, kill));
                }
                ComponentKind::VarLatency => {
                    let fin = nl.find(&format!("{name}.finish"))?;
                    vls.push((raw, fin));
                }
                _ => {}
            }
        }
        Ok(NetlistTestbench { srcs, sinks, vls })
    }

    /// Primary-input assignments for cycle `t` of one schedule.
    pub fn inputs_at(&self, schedule: &Schedule, t: u64) -> Vec<(NetId, bool)> {
        let mut inputs: Vec<(NetId, bool)> = Vec::new();
        for (name, offer, dins) in &self.srcs {
            let o = schedule.offer_at(name, t);
            inputs.push((*offer, o.is_some()));
            for (i, &din) in dins.iter().enumerate() {
                inputs.push((din, o.is_some_and(|d| d >> i & 1 == 1)));
            }
        }
        for (name, stop, kill) in &self.sinks {
            inputs.push((*stop, schedule.stop_at(name, t)));
            inputs.push((*kill, schedule.kill_at(name, t)));
        }
        for (name, fin) in &self.vls {
            inputs.push((*fin, schedule.finish_at(name, t)));
        }
        inputs
    }

    /// Lane-packed primary-input assignments for cycle `t`: bit `k` of each
    /// mask drives lane `k` from `schedules[k]`.
    ///
    /// # Panics
    ///
    /// Panics if more than [`LANES`] schedules are supplied.
    pub fn wide_inputs_at(&self, schedules: &[Schedule], t: u64) -> Vec<(NetId, u64)> {
        assert!(
            schedules.len() <= LANES,
            "at most {LANES} schedules per wide run"
        );
        let pack = |f: &dyn Fn(&Schedule) -> bool| -> u64 {
            schedules
                .iter()
                .enumerate()
                .fold(0u64, |m, (k, s)| m | u64::from(f(s)) << k)
        };
        let mut inputs: Vec<(NetId, u64)> = Vec::new();
        for (name, offer, dins) in &self.srcs {
            // One schedule lookup per lane; the offer and payload-bit masks
            // all derive from it (this runs every cycle of the Monte-Carlo
            // hot path).
            let mut offer_mask = 0u64;
            let mut din_masks = vec![0u64; dins.len()];
            for (k, s) in schedules.iter().enumerate() {
                if let Some(d) = s.offer_at(name, t) {
                    offer_mask |= 1 << k;
                    for (i, m) in din_masks.iter_mut().enumerate() {
                        *m |= (d >> i & 1) << k;
                    }
                }
            }
            inputs.push((*offer, offer_mask));
            for (&din, &m) in dins.iter().zip(&din_masks) {
                inputs.push((din, m));
            }
        }
        for (name, stop, kill) in &self.sinks {
            inputs.push((*stop, pack(&|s| s.stop_at(name, t))));
            inputs.push((*kill, pack(&|s| s.kill_at(name, t))));
        }
        for (name, fin) in &self.vls {
            inputs.push((*fin, pack(&|s| s.finish_at(name, t))));
        }
        inputs
    }
}

/// A dense, pre-packed stimulus matrix for the bit-parallel Monte-Carlo hot
/// path: one `cycles × input-slots` table of lane-word groups, built once
/// per shard from up to `width × 64` [`Schedule`]s and then streamed into
/// [`elastic_netlist::wide::WideSim::cycle_packed`] by raw slot index — no
/// per-cycle heap allocation, no per-lane `HashMap` lookups and no `NetId`
/// validation inside the simulation loop.
///
/// Lane `l` of every row carries schedule `schedules[l]`; word `l / 64`,
/// bit `l % 64`. Rows reproduce [`NetlistTestbench::wide_inputs_at`]
/// bit-for-bit (asserted by unit and property tests), the testbench input
/// order is preserved, and `slots[i]` is the dense arena index of the
/// testbench's `i`-th input net.
#[derive(Debug, Clone)]
pub struct PackedStimulus {
    cycles: usize,
    width: usize,
    slots: Vec<u32>,
    /// Row-major: `words[(t * slots.len() + i) * width + w]` is lane word
    /// `w` of input `i` at cycle `t`.
    words: Vec<u64>,
}

impl PackedStimulus {
    /// Packs `schedules` into a dense stimulus matrix with `width` lane
    /// words per input (capacity `width × 64` schedules).
    ///
    /// # Errors
    ///
    /// [`CoreError::ScheduleBatch`] when the batch is empty, exceeds the
    /// lane capacity, or mixes cycle horizons.
    pub fn pack(
        tb: &NetlistTestbench,
        schedules: &[Schedule],
        width: usize,
    ) -> Result<PackedStimulus, CoreError> {
        let lanes = schedules.len();
        if lanes == 0 {
            return Err(CoreError::ScheduleBatch("empty schedule batch".into()));
        }
        if lanes > width * LANES {
            return Err(CoreError::ScheduleBatch(format!(
                "{lanes} schedules exceed the {}-lane capacity of a {width}-word backend",
                width * LANES
            )));
        }
        let cycles = schedules[0].cycles;
        if let Some(bad) = schedules.iter().find(|s| s.cycles != cycles) {
            return Err(CoreError::ScheduleBatch(format!(
                "mixed horizons: {cycles} vs {}",
                bad.cycles
            )));
        }
        let mut slots: Vec<u32> = Vec::new();
        for (_, offer, dins) in &tb.srcs {
            slots.push(offer.index() as u32);
            slots.extend(dins.iter().map(|d| d.index() as u32));
        }
        for (_, stop, kill) in &tb.sinks {
            slots.push(stop.index() as u32);
            slots.push(kill.index() as u32);
        }
        for (_, fin) in &tb.vls {
            slots.push(fin.index() as u32);
        }
        let n = slots.len();
        let mut words = vec![0u64; cycles * n * width];
        // One stream lookup per (component, lane) — the per-(cycle × lane)
        // string hashing of the unpacked path happens once, here, at pack
        // time.
        let cell = |t: usize, col: usize, w: usize| (t * n + col) * width + w;
        let mut col = 0usize;
        for (name, _, dins) in &tb.srcs {
            for (lane, sched) in schedules.iter().enumerate() {
                let (w, bit) = (lane / LANES, lane % LANES);
                let Some(stream) = sched.offers.get(name) else {
                    continue;
                };
                for (t, &offer) in stream.iter().take(cycles).enumerate() {
                    if let Some(d) = offer {
                        words[cell(t, col, w)] |= 1 << bit;
                        for j in 0..dins.len() {
                            if d >> j & 1 == 1 {
                                words[cell(t, col + 1 + j, w)] |= 1 << bit;
                            }
                        }
                    }
                }
            }
            col += 1 + dins.len();
        }
        for (name, _, _) in &tb.sinks {
            for (lane, sched) in schedules.iter().enumerate() {
                let (w, bit) = (lane / LANES, lane % LANES);
                for (stream, c) in [
                    (sched.stops.get(name), col),
                    (sched.kills.get(name), col + 1),
                ] {
                    let Some(stream) = stream else { continue };
                    for (t, &v) in stream.iter().take(cycles).enumerate() {
                        if v {
                            words[cell(t, c, w)] |= 1 << bit;
                        }
                    }
                }
            }
            col += 2;
        }
        for (name, _) in &tb.vls {
            for (lane, sched) in schedules.iter().enumerate() {
                let (w, bit) = (lane / LANES, lane % LANES);
                let Some(stream) = sched.finishes.get(name) else {
                    continue;
                };
                for (t, &v) in stream.iter().take(cycles).enumerate() {
                    if v {
                        words[cell(t, col, w)] |= 1 << bit;
                    }
                }
            }
            col += 1;
        }
        debug_assert_eq!(col, n);
        Ok(PackedStimulus {
            cycles,
            width,
            slots,
            words,
        })
    }

    /// Horizon of the packed schedules, in cycles.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Lane words per input (the `W` of the target backend).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Dense arena slot of every input column, in testbench input order.
    /// Validate once against the target simulator with
    /// [`elastic_netlist::wide::WideSim::check_input_slots`].
    pub fn slots(&self) -> &[u32] {
        &self.slots
    }

    /// The stimulus row of cycle `t`: `slots.len() × width` lane words,
    /// ready for [`elastic_netlist::wide::WideSim::cycle_packed`].
    ///
    /// # Panics
    ///
    /// Panics if `t >= cycles`.
    pub fn row(&self, t: usize) -> &[u64] {
        let stride = self.slots.len() * self.width;
        &self.words[t * stride..(t + 1) * stride]
    }
}

/// Runs the behavioural simulator and the compiled netlist side by side
/// under the same [`Schedule`] and compares all four rails of every channel
/// on every cycle.
///
/// # Errors
///
/// Returns the first divergence as [`CoreError::ProtocolViolation`], or
/// propagates simulation/compilation errors.
pub fn cosim_check(
    net: &ElasticNetwork,
    schedule: &Schedule,
    data_width: usize,
) -> Result<(), CoreError> {
    let mut behav = BehavSim::new(net)?;
    let mut sched_env = schedule.clone();
    let compiled = compile(
        net,
        &CompileOptions {
            data_width,
            nondet_merge: false,
            optimize: false,
            fault: None,
        },
    )?;
    let nl = &compiled.netlist;
    let mut gates = Simulator::new(nl)?;
    let tb = NetlistTestbench::new(net, nl, data_width)?;

    for t in 0..schedule.cycles as u64 {
        gates.cycle(&tb.inputs_at(schedule, t))?;
        behav.step(&mut sched_env)?;

        // Compare every rail.
        for chan in net.channels() {
            let b = behav.signals(chan);
            let nets = &compiled.channels[chan.index()];
            let g = (
                gates.value(nets.vp),
                gates.value(nets.sp),
                gates.value(nets.vn),
                gates.value(nets.sn),
            );
            if (b.vp, b.sp, b.vn, b.sn) != g {
                return Err(CoreError::ProtocolViolation {
                    channel: chan,
                    message: format!(
                        "co-simulation divergence at cycle {t} on {}: behavioural {b}, \
                         gates V+={} S+={} V-={} S-={}",
                        net.channel(chan).name,
                        u8::from(g.0),
                        u8::from(g.1),
                        u8::from(g.2),
                        u8::from(g.3),
                    ),
                });
            }
            if b.vp && data_width > 0 {
                for (i, &dn) in nets.data.iter().enumerate() {
                    let gb = gates.value(dn);
                    let bb = b.data >> i & 1 == 1;
                    if gb != bb {
                        return Err(CoreError::ProtocolViolation {
                            channel: chan,
                            message: format!(
                                "data divergence at cycle {t} on {} bit {i}",
                                net.channel(chan).name
                            ),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Three-way co-simulation of the bit-parallel backend: runs up to 64
/// [`Schedule`]s at once through a [`WideSimulator`], the behavioural
/// simulator once per lane, and the scalar gate-level [`Simulator`] on
/// lane 0, comparing all four rails (and payload bits on valid cycles) of
/// every channel, every cycle, in every lane.
///
/// This is the compiled-backend extension of the paper's Fig. 8
/// verification story: the wide backend must be indistinguishable from the
/// reference interpreters before its Monte-Carlo statistics (Table 1,
/// Figs. 5–7, 9) can be trusted.
///
/// # Errors
///
/// Returns the first divergence as [`CoreError::ProtocolViolation`] naming
/// the cycle, channel and lane, or propagates simulation/compilation
/// errors.
///
/// # Panics
///
/// Panics if `schedules` is empty, holds more than 64 entries, or mixes
/// horizons.
#[allow(clippy::too_many_lines)]
pub fn cosim_check_wide(
    net: &ElasticNetwork,
    schedules: &[Schedule],
    data_width: usize,
) -> Result<(), CoreError> {
    assert!(
        !schedules.is_empty() && schedules.len() <= LANES,
        "1..={LANES} schedules required"
    );
    assert!(
        schedules.iter().all(|s| s.cycles == schedules[0].cycles),
        "schedules must share one horizon"
    );
    let compiled = compile(
        net,
        &CompileOptions {
            data_width,
            nondet_merge: false,
            optimize: false,
            fault: None,
        },
    )?;
    let nl = &compiled.netlist;
    let tb = NetlistTestbench::new(net, nl, data_width)?;
    let mut wide = WideSimulator::new(nl)?;
    let mut scalar = Simulator::new(nl)?;
    let mut behavs: Vec<(BehavSim, Schedule)> = schedules
        .iter()
        .map(|s| Ok((BehavSim::new(net)?, s.clone())))
        .collect::<Result<_, CoreError>>()?;

    let diverged = |t: u64, chan, lane: usize, what: &str| CoreError::ProtocolViolation {
        channel: chan,
        message: format!(
            "wide co-simulation divergence at cycle {t} on {} lane {lane}: {what}",
            net.channel(chan).name
        ),
    };

    for t in 0..schedules[0].cycles as u64 {
        wide.cycle(&tb.wide_inputs_at(schedules, t))?;
        scalar.cycle(&tb.inputs_at(&schedules[0], t))?;
        for (behav, sched) in &mut behavs {
            behav.step(sched)?;
        }
        for chan in net.channels() {
            let nets = &compiled.channels[chan.index()];
            // Lane 0 must bit-match the scalar gate-level interpreter on
            // every rail net.
            for (rail, id) in [
                ("vp", nets.vp),
                ("sp", nets.sp),
                ("vn", nets.vn),
                ("sn", nets.sn),
            ] {
                if wide.value_lane(id, 0) != scalar.value(id) {
                    return Err(diverged(t, chan, 0, &format!("{rail} != scalar gates")));
                }
            }
            // Every lane must match its behavioural run.
            for (lane, (behav, _)) in behavs.iter().enumerate() {
                let b = behav.signals(chan);
                let g = (
                    wide.value_lane(nets.vp, lane),
                    wide.value_lane(nets.sp, lane),
                    wide.value_lane(nets.vn, lane),
                    wide.value_lane(nets.sn, lane),
                );
                if (b.vp, b.sp, b.vn, b.sn) != g {
                    return Err(diverged(
                        t,
                        chan,
                        lane,
                        &format!(
                            "behavioural {b}, wide V+={} S+={} V-={} S-={}",
                            u8::from(g.0),
                            u8::from(g.1),
                            u8::from(g.2),
                            u8::from(g.3)
                        ),
                    ));
                }
                if b.vp {
                    for (i, &dn) in nets.data.iter().enumerate() {
                        if wide.value_lane(dn, lane) != (b.data >> i & 1 == 1) {
                            return Err(diverged(t, chan, lane, &format!("data bit {i}")));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// The four CTL properties of Sect. 5 for one channel, over the rail-net
/// naming convention of the compiler.
pub fn paper_properties(channel_name: &str) -> [(String, String); 4] {
    let c = sanitize(channel_name);
    [
        (
            "Retry+".to_string(),
            format!("AG ({c}.vp & {c}.sp -> AX {c}.vp)"),
        ),
        (
            "Retry-".to_string(),
            format!("AG ({c}.vn & {c}.sn -> AX {c}.vn)"),
        ),
        (
            "Invariant".to_string(),
            format!("AG ((!{c}.vn | !{c}.sp) & (!{c}.vp | !{c}.sn))"),
        ),
        (
            "Liveness".to_string(),
            format!("AG AF (({c}.vp & !{c}.sp) | ({c}.vn & !{c}.sn))"),
        ),
    ]
}

/// Result of model-checking one property on one channel.
#[derive(Debug, Clone)]
pub struct PropertyResult {
    /// Channel display name.
    pub channel: String,
    /// Property short name (`Retry+`, `Retry-`, `Invariant`, `Liveness`).
    pub property: String,
    /// The CTL formula that was checked.
    pub formula: String,
    /// Whether it holds in all initial states.
    pub holds: bool,
}

/// Compiles `net` and exhaustively model-checks the paper's four properties
/// on every channel, under fairness constraints making every environment
/// input recur (offers, accepts and completions happen infinitely often,
/// kills stay finite).
///
/// Returns one [`PropertyResult`] per (channel, property) pair plus the
/// explored state-space size.
///
/// # Errors
///
/// Propagates compilation and model-checking errors (including the input
/// budget when the environment is too wide for exhaustive exploration).
pub fn check_network_properties(
    net: &ElasticNetwork,
    opts: BridgeOptions,
) -> Result<(Vec<PropertyResult>, usize), CoreError> {
    let compiled = compile(net, &CompileOptions::default())?;
    let kripke = build_kripke(net, &compiled.netlist, opts)?;
    let mut results = Vec::new();
    for chan in net.channels() {
        let cname = net.channel(chan).name.clone();
        for (prop, formula) in paper_properties(&cname) {
            let f = parse(&formula).map_err(|e| CoreError::Netlist(e.to_string()))?;
            let holds = check_fair(&kripke, &f)
                .map_err(|e| CoreError::Netlist(e.to_string()))?
                .holds();
            results.push(PropertyResult {
                channel: cname.clone(),
                property: prop,
                formula,
                holds,
            });
        }
    }
    let states = kripke.num_states();
    Ok((results, states))
}

/// Builds the Kripke structure of a compiled network with the standard
/// fairness constraints: every source offers infinitely often, every sink
/// is non-stopping and non-killing infinitely often, and every
/// variable-latency unit finishes infinitely often.
fn build_kripke(
    net: &ElasticNetwork,
    nl: &elastic_netlist::Netlist,
    opts: BridgeOptions,
) -> Result<NetlistKripke, CoreError> {
    // Fairness nets must exist by name; add helper nets for negated
    // conditions (e.g. "not stopping") before bridging.
    let mut nl = nl.clone();
    let mut fairness: Vec<String> = Vec::new();
    for comp in net.components() {
        let name = sanitize(&net.component(comp).name);
        match &net.component(comp).kind {
            ComponentKind::Source => fairness.push(format!("{name}.offer")),
            ComponentKind::Sink => {
                let stop = nl.find(&format!("{name}.stop"))?;
                let go = nl.not(stop);
                let gname = format!("{name}.accepting");
                nl.set_name(go, &gname)?;
                fairness.push(gname);
                let kill = nl.find(&format!("{name}.kill"))?;
                let nk = nl.not(kill);
                let nkname = format!("{name}.benign");
                nl.set_name(nk, &nkname)?;
                fairness.push(nkname);
            }
            ComponentKind::VarLatency => fairness.push(format!("{name}.finish")),
            _ => {}
        }
    }
    let fair_refs: Vec<&str> = fairness.iter().map(String::as_str).collect();
    netlist_kripke(&nl, &fair_refs, opts).map_err(|e| CoreError::Netlist(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SinkCfg, SourceCfg};
    use crate::systems::linear_pipeline;

    fn stress_cfg() -> EnvConfig {
        EnvConfig {
            default_source: SourceCfg {
                rate: 0.7,
                // Uniform over the 2-bit payload space so the data rails are
                // exercised (schedules honor the configured DataGen).
                data: crate::sim::DataGen::Weighted(vec![
                    (0, 0.25),
                    (1, 0.25),
                    (2, 0.25),
                    (3, 0.25),
                ]),
            },
            default_sink: SinkCfg {
                stop_prob: 0.3,
                kill_prob: 0.15,
            },
            ..Default::default()
        }
    }

    #[test]
    fn cosim_linear_pipeline() {
        let (net, _, _) = linear_pipeline(3, 1).unwrap();
        let sched = Schedule::random(&net, &stress_cfg(), 11, 600);
        cosim_check(&net, &sched, 2).unwrap();
    }

    #[test]
    fn cosim_join_fork_network() {
        let mut net = ElasticNetwork::new("jf");
        let s1 = net.add_source("s1");
        let s2 = net.add_source("s2");
        let b1 = net.add_eb("b1", false);
        let b2 = net.add_eb("b2", true);
        let j = net.add_join("j", 2);
        let bj = net.add_eb("bj", false);
        let f = net.add_fork("f", 2);
        let k1 = net.add_sink("k1");
        let k2 = net.add_sink("k2");
        net.connect(s1, 0, b1, 0, "c1").unwrap();
        net.connect(s2, 0, b2, 0, "c2").unwrap();
        net.connect(b1, 0, j, 0, "j1").unwrap();
        net.connect(b2, 0, j, 1, "j2").unwrap();
        net.connect(j, 0, bj, 0, "jo").unwrap();
        net.connect(bj, 0, f, 0, "fi").unwrap();
        net.connect(f, 0, k1, 0, "o1").unwrap();
        net.connect(f, 1, k2, 0, "o2").unwrap();
        let sched = Schedule::random(&net, &stress_cfg(), 23, 800);
        cosim_check(&net, &sched, 1).unwrap();
    }

    #[test]
    fn cosim_early_join_with_vl() {
        use crate::ee::{EarlyEval, EeTerm};
        let mut net = ElasticNetwork::new("ejvl");
        let g = net.add_source("g");
        let s1 = net.add_source("s1");
        let bg = net.add_eb("bg", false);
        let b1 = net.add_eb("b1", false);
        let vl = net.add_var_latency("vl");
        let ee = EarlyEval::new(
            0,
            vec![
                EeTerm {
                    guard_mask: 1,
                    guard_value: 0,
                    required: vec![],
                    select: 0,
                },
                EeTerm {
                    guard_mask: 1,
                    guard_value: 1,
                    required: vec![1],
                    select: 1,
                },
            ],
        );
        let j = net.add_early_join("w", 2, ee).unwrap();
        let snk = net.add_sink("snk");
        net.connect(g, 0, bg, 0, "cg").unwrap();
        net.connect(s1, 0, b1, 0, "c1").unwrap();
        net.connect(b1, 0, vl, 0, "bv").unwrap();
        net.connect(bg, 0, j, 0, "jg").unwrap();
        net.connect(vl, 0, j, 1, "jv").unwrap();
        net.connect(j, 0, snk, 0, "out").unwrap();
        let sched = Schedule::random(&net, &stress_cfg(), 31, 800);
        cosim_check(&net, &sched, 1).unwrap();
    }

    #[test]
    fn cosim_paper_example_all_configs() {
        use crate::systems::{paper_example, Config};
        for config in Config::all() {
            let sys = paper_example(config).unwrap();
            let sched = Schedule::random(&sys.network, &sys.env_config, 5, 400);
            cosim_check(&sys.network, &sched, 2).unwrap_or_else(|e| panic!("{config:?}: {e}"));
        }
    }

    #[test]
    fn wide_cosim_fig6_controllers() {
        // The Fig. 6 / Fig. 8(a) model-checked controllers: short pipelines
        // with and without initial tokens. 16 lanes of independent
        // schedules; lane 0 is additionally checked against the scalar
        // gate-level interpreter inside cosim_check_wide.
        for (stages, tokens) in [(1usize, 0usize), (2, 1)] {
            let (net, _, _) = linear_pipeline(stages, tokens).unwrap();
            let scheds: Vec<Schedule> = (0..16)
                .map(|k| Schedule::random(&net, &stress_cfg(), 100 + k, 400))
                .collect();
            cosim_check_wide(&net, &scheds, 1).unwrap_or_else(|e| panic!("{stages} stages: {e}"));
        }
    }

    #[test]
    fn wide_cosim_fig8_pipeline_full_64_lanes() {
        // The Fig. 8(b) data-correctness pipeline under a killing
        // environment, with every one of the 64 lanes holding a distinct
        // schedule.
        let (net, _, _) = linear_pipeline(3, 1).unwrap();
        let scheds: Vec<Schedule> = (0..64)
            .map(|k| Schedule::random(&net, &stress_cfg(), 7000 + k, 300))
            .collect();
        cosim_check_wide(&net, &scheds, 2).unwrap();
    }

    #[test]
    fn wide_cosim_paper_example_all_configs() {
        use crate::systems::{paper_example, Config};
        for config in Config::all() {
            let sys = paper_example(config).unwrap();
            let scheds: Vec<Schedule> = (0..8)
                .map(|k| Schedule::random(&sys.network, &sys.env_config, 40 + k, 250))
                .collect();
            cosim_check_wide(&sys.network, &scheds, 2)
                .unwrap_or_else(|e| panic!("{config:?}: {e}"));
        }
    }

    #[test]
    fn packed_stimulus_matches_wide_inputs_at() {
        // The packed matrix must reproduce the per-cycle packing of
        // `wide_inputs_at` bit for bit, in the same input order — on a
        // system exercising all three stream kinds (sources with payloads,
        // sinks, variable-latency units).
        use crate::ee::{EarlyEval, EeTerm};
        let mut net = ElasticNetwork::new("stim");
        let g = net.add_source("g");
        let s1 = net.add_source("s1");
        let bg = net.add_eb("bg", false);
        let b1 = net.add_eb("b1", false);
        let vl = net.add_var_latency("vl");
        let ee = EarlyEval::new(
            0,
            vec![
                EeTerm {
                    guard_mask: 1,
                    guard_value: 0,
                    required: vec![],
                    select: 0,
                },
                EeTerm {
                    guard_mask: 1,
                    guard_value: 1,
                    required: vec![1],
                    select: 1,
                },
            ],
        );
        let j = net.add_early_join("w", 2, ee).unwrap();
        let snk = net.add_sink("snk");
        net.connect(g, 0, bg, 0, "cg").unwrap();
        net.connect(s1, 0, b1, 0, "c1").unwrap();
        net.connect(b1, 0, vl, 0, "bv").unwrap();
        net.connect(bg, 0, j, 0, "jg").unwrap();
        net.connect(vl, 0, j, 1, "jv").unwrap();
        net.connect(j, 0, snk, 0, "out").unwrap();
        let compiled = compile(
            &net,
            &CompileOptions {
                data_width: 2,
                nondet_merge: false,
                optimize: false,
                fault: None,
            },
        )
        .unwrap();
        let tb = NetlistTestbench::new(&net, &compiled.netlist, 2).unwrap();
        let cycles = 40usize;
        let scheds: Vec<Schedule> = (0..10)
            .map(|k| Schedule::random(&net, &stress_cfg(), 900 + k, cycles))
            .collect();
        let stim = PackedStimulus::pack(&tb, &scheds, 1).unwrap();
        assert_eq!(stim.cycles(), cycles);
        for t in 0..cycles as u64 {
            let reference = tb.wide_inputs_at(&scheds, t);
            let row = stim.row(t as usize);
            assert_eq!(reference.len(), stim.slots().len());
            for (i, &(net_id, mask)) in reference.iter().enumerate() {
                assert_eq!(stim.slots()[i], net_id.index() as u32, "column {i}");
                assert_eq!(row[i], mask, "cycle {t} input {i}");
            }
        }
        // Width 2: lanes past 63 spill into the second word; the first word
        // of a 64-schedule prefix is unchanged.
        let wide_scheds: Vec<Schedule> = (0..80)
            .map(|k| Schedule::random(&net, &stress_cfg(), 2000 + k, 16))
            .collect();
        let two = PackedStimulus::pack(&tb, &wide_scheds, 2).unwrap();
        let one = PackedStimulus::pack(&tb, &wide_scheds[..64], 1).unwrap();
        let spill = PackedStimulus::pack(&tb, &wide_scheds[64..], 1).unwrap();
        for t in 0..16 {
            for i in 0..two.slots().len() {
                assert_eq!(two.row(t)[i * 2], one.row(t)[i], "word 0 cycle {t}");
                assert_eq!(two.row(t)[i * 2 + 1], spill.row(t)[i], "word 1 cycle {t}");
            }
        }
    }

    #[test]
    fn packed_stimulus_rejects_bad_batches() {
        let (net, _, _) = linear_pipeline(1, 0).unwrap();
        let compiled = compile(&net, &CompileOptions::default()).unwrap();
        let tb = NetlistTestbench::new(&net, &compiled.netlist, 0).unwrap();
        let cfg = EnvConfig::default();
        assert!(matches!(
            PackedStimulus::pack(&tb, &[], 1),
            Err(CoreError::ScheduleBatch(_))
        ));
        let too_many: Vec<Schedule> = (0..65)
            .map(|k| Schedule::random(&net, &cfg, k, 5))
            .collect();
        assert!(matches!(
            PackedStimulus::pack(&tb, &too_many, 1),
            Err(CoreError::ScheduleBatch(_))
        ));
        PackedStimulus::pack(&tb, &too_many, 2).unwrap();
        let mixed = [
            Schedule::random(&net, &cfg, 1, 5),
            Schedule::random(&net, &cfg, 2, 6),
        ];
        assert!(matches!(
            PackedStimulus::pack(&tb, &mixed, 1),
            Err(CoreError::ScheduleBatch(_))
        ));
    }

    #[test]
    fn optimized_compile_keeps_rails_cycle_exact() {
        // The CompileOptions::optimize knob: remapped rails must report the
        // same four-rail trace as the raw compilation, cycle by cycle, and
        // the optimized netlist must actually be smaller.
        use crate::systems::{paper_example, Config};
        for config in [Config::ActiveAntiTokens, Config::NoEarlyEval] {
            let sys = paper_example(config).unwrap();
            let raw = compile(
                &sys.network,
                &CompileOptions {
                    data_width: 2,
                    nondet_merge: false,
                    optimize: false,
                    fault: None,
                },
            )
            .unwrap();
            let opt = compile(
                &sys.network,
                &CompileOptions {
                    data_width: 2,
                    nondet_merge: false,
                    optimize: true,
                    fault: None,
                },
            )
            .unwrap();
            assert!(
                opt.netlist.len() < raw.netlist.len(),
                "{config:?}: {} !< {}",
                opt.netlist.len(),
                raw.netlist.len()
            );
            let tb_raw = NetlistTestbench::new(&sys.network, &raw.netlist, 2).unwrap();
            let tb_opt = NetlistTestbench::new(&sys.network, &opt.netlist, 2).unwrap();
            let sched = Schedule::random(&sys.network, &sys.env_config, 77, 300);
            let mut sim_raw = Simulator::new(&raw.netlist).unwrap();
            let mut sim_opt = Simulator::new(&opt.netlist).unwrap();
            for t in 0..300u64 {
                sim_raw.cycle(&tb_raw.inputs_at(&sched, t)).unwrap();
                sim_opt.cycle(&tb_opt.inputs_at(&sched, t)).unwrap();
                for chan in sys.network.channels() {
                    let (r, o) = (&raw.channels[chan.index()], &opt.channels[chan.index()]);
                    for (rail, (rr, oo)) in [
                        ("vp", (r.vp, o.vp)),
                        ("sp", (r.sp, o.sp)),
                        ("vn", (r.vn, o.vn)),
                        ("sn", (r.sn, o.sn)),
                    ] {
                        assert_eq!(
                            sim_raw.value(rr),
                            sim_opt.value(oo),
                            "{config:?} cycle {t} {} {rail}",
                            sys.network.channel(chan).name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn paper_properties_have_expected_shape() {
        let props = paper_properties("a->b");
        assert_eq!(props.len(), 4);
        assert!(props[0].1.contains("a__b.vp"));
        assert!(props[3].1.contains("AG AF"));
    }

    #[test]
    fn model_check_single_buffer() {
        let (net, _, _) = linear_pipeline(1, 0).unwrap();
        let (results, states) = check_network_properties(&net, BridgeOptions::default()).unwrap();
        assert!(states > 4);
        for r in &results {
            assert!(
                r.holds,
                "{} on {} failed: {}",
                r.property, r.channel, r.formula
            );
        }
    }

    #[test]
    fn model_check_two_buffer_pipeline() {
        let (net, _, _) = linear_pipeline(2, 1).unwrap();
        let (results, _) = check_network_properties(&net, BridgeOptions::default()).unwrap();
        for r in &results {
            assert!(r.holds, "{} on {} failed", r.property, r.channel);
        }
    }
}
