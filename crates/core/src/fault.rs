//! Fault *processes*: deterministic, seeded stochastic disturbance over a
//! whole run, generalizing the one-shot [`FaultInjection`] window of the
//! recovery campaigns.
//!
//! A process is a recipe with two halves:
//!
//! * [`FaultProcess::sites`] — the corruption gates it needs. Each site is
//!   one rail-level [`FaultInjection`]; compiling with
//!   [`crate::compile::CompileOptions::faults`] splices one gate and one
//!   `fault.<channel>.<rail>` arm input per site, in site order.
//! * [`FaultProcess::windows`] — the deterministic seeded expansion of the
//!   process into per-site arm windows for one trial (`lane`). The same
//!   `(seed, lane, cycles)` triple always yields the same windows, so the
//!   behavioural simulator, the packed wide tape and the DMG replayer's
//!   tolerance windows all see *the same* disturbance — bit-identity
//!   between backends survives fault injection.
//!
//! The classes mirror the self-stabilization literature: `Periodic`
//! re-injection (duty-cycled single site), `Sustained` stuck-at intervals,
//! `Correlated` multi-site bursts (several channels struck in the same
//! window), and a `Byzantine` channel adversary that presents *different*
//! rail values to the producer and consumer sides of one channel — spliced
//! as two independent corruption gates (forward valid lies to the
//! consumer, forward stop lies to the producer) armed from per-side
//! stimulus columns with a half-period phase shift, so the two channel
//! ends hold mutually inconsistent protocol views while armed.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::compile::{FaultInjection, FaultRail};
use crate::error::CoreError;
use crate::network::ElasticNetwork;

/// Per-lane stagger of process window starts: lane `k`'s windows shift by
/// `k % PROCESS_STAGGER` cycles, so packed trials run genuinely
/// independent process instances (same convention as the PR-7 recovery
/// campaign's per-lane windows).
pub const PROCESS_STAGGER: usize = 4;

/// A deterministic fault process emitting disturbance over a whole run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultProcess {
    /// Re-inject `fault` every `period` cycles, armed for `duty` cycles per
    /// period — a duty-cycled single-site disturbance. `duty == 0` is a
    /// legal zero-intensity process (no windows at all), the control case
    /// of the stabilization campaigns.
    Periodic {
        /// The rail fault re-injected each period.
        fault: FaultInjection,
        /// Cycle distance between consecutive injection starts.
        period: usize,
        /// Armed cycles per period (the intensity; must not exceed
        /// `period`).
        duty: usize,
        /// First injection start cycle (before per-lane stagger).
        start: usize,
    },
    /// One long stuck-at interval — the sustained-disturbance regime. Only
    /// [`FaultInjection::StuckAt`] sites make sense here: a flip held for a
    /// whole interval is just an inverted channel, not a stuck rail.
    Sustained {
        /// The stuck-at fault held for the interval.
        fault: FaultInjection,
        /// Interval start cycle (before per-lane stagger).
        start: usize,
        /// Interval length in cycles.
        len: usize,
    },
    /// `bursts` windows, each striking **all** listed sites in the same
    /// `len`-cycle window — the multi-site correlated regime. Burst starts
    /// are seeded and stratified: burst `b` lands inside the `b`-th of
    /// `bursts` equal strata of the horizon, so disturbance spreads over
    /// the run while staying deterministic per `(seed, lane)`.
    Correlated {
        /// The rail faults struck together (distinct channel rails).
        faults: Vec<FaultInjection>,
        /// Number of burst windows over the horizon.
        bursts: usize,
        /// Length of each burst window in cycles.
        len: usize,
    },
    /// A Byzantine adversary on one channel: while armed, the consumer sees
    /// a flipped forward valid (`V⁺`) and the producer a flipped forward
    /// stop (`S⁺`) — with the two arm streams phase-shifted by half a
    /// period, the two channel ends disagree about the very same
    /// handshake. Expands to two [`FaultInjection::RailFlip`] sites.
    Byzantine {
        /// Display name of the attacked channel.
        channel: String,
        /// Cycle distance between consecutive lie windows (≥ 2, so the two
        /// sides can actually be armed at different times).
        period: usize,
        /// Armed cycles per period and side (must not exceed `period`).
        duty: usize,
    },
}

impl FaultProcess {
    /// Short class label for campaign reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultProcess::Periodic { .. } => "periodic",
            FaultProcess::Sustained { .. } => "sustained",
            FaultProcess::Correlated { .. } => "correlated",
            FaultProcess::Byzantine { .. } => "byzantine",
        }
    }

    /// The corruption-gate sites this process arms, in site order. Site
    /// `i`'s arm stream is window list `i` of [`Self::windows`], schedule
    /// fault site `i` ([`crate::verify::Schedule::arm_fault_site`]) and
    /// stimulus column `fault_cols()[i]`.
    pub fn sites(&self) -> Vec<FaultInjection> {
        match self {
            FaultProcess::Periodic { fault, .. } | FaultProcess::Sustained { fault, .. } => {
                vec![fault.clone()]
            }
            FaultProcess::Correlated { faults, .. } => faults.clone(),
            FaultProcess::Byzantine { channel, .. } => vec![
                FaultInjection::RailFlip {
                    channel: channel.clone(),
                    rail: FaultRail::Vp,
                },
                FaultInjection::RailFlip {
                    channel: channel.clone(),
                    rail: FaultRail::Sp,
                },
            ],
        }
    }

    /// Eagerly validates the process against a network and a horizon —
    /// every entry point (behavioural injection, compile splicing, packed
    /// arming, replay tolerance) runs this first, so a malformed spec is a
    /// typed error before any work happens.
    ///
    /// # Errors
    ///
    /// * [`CoreError::FaultSite`] — a site names a channel the network does
    ///   not have (same error the compiler would raise);
    /// * [`CoreError::FaultProcess`] — structural sites in a process, two
    ///   sites on the same channel rail (overlapping windows on one rail),
    ///   an intensity exceeding its window (`duty > period`, a burst longer
    ///   than its stratum, a sustained interval past the horizon), a
    ///   non-stuck-at sustained fault, a degenerate period, or a Byzantine
    ///   adversary on a passive channel (which has no producer-side stop to
    ///   corrupt — only one side rail exists, so it cannot be lied to from
    ///   both ends).
    pub fn validate(&self, net: &ElasticNetwork, cycles: usize) -> Result<(), CoreError> {
        let mut seen: Vec<(String, FaultRail)> = Vec::new();
        for site in self.sites() {
            let Some(chan) = site.channel() else {
                return Err(CoreError::FaultProcess(format!(
                    "structural fault {:?} cannot ride a fault process; only rail sites are armed",
                    site.label()
                )));
            };
            if !net.channels().any(|c| net.channel(c).name == chan) {
                return Err(CoreError::FaultSite(format!(
                    "no channel named {chan:?} to corrupt"
                )));
            }
            let rail = site.rail().expect("rail faults target a rail");
            let key = (chan.to_string(), rail);
            if seen.contains(&key) {
                return Err(CoreError::FaultProcess(format!(
                    "two sites on channel {chan:?} rail {}: overlapping windows on one rail \
                     must share a single site",
                    rail.label()
                )));
            }
            seen.push(key);
        }
        match self {
            FaultProcess::Periodic {
                period,
                duty,
                start,
                ..
            } => {
                check_duty_cycle("periodic", *period, *duty, *start, cycles)?;
            }
            FaultProcess::Sustained { fault, start, len } => {
                if !matches!(fault, FaultInjection::StuckAt { .. }) {
                    return Err(CoreError::FaultProcess(format!(
                        "sustained intervals hold a stuck-at rail; {:?} is not a stuck-at fault",
                        fault.label()
                    )));
                }
                if *len == 0 {
                    return Err(CoreError::FaultProcess(
                        "zero-length sustained interval".into(),
                    ));
                }
                if start.checked_add(*len).is_none_or(|e| e > cycles) {
                    return Err(CoreError::FaultProcess(format!(
                        "sustained interval {start}+{len} exceeds the {cycles}-cycle horizon"
                    )));
                }
            }
            FaultProcess::Correlated {
                faults,
                bursts,
                len,
            } => {
                if faults.is_empty() {
                    return Err(CoreError::FaultProcess(
                        "a correlated burst needs at least one site".into(),
                    ));
                }
                if let Some(stratum) = cycles.checked_div(*bursts) {
                    if *len == 0 {
                        return Err(CoreError::FaultProcess("zero-length burst window".into()));
                    }
                    if *len > stratum {
                        return Err(CoreError::FaultProcess(format!(
                            "burst length {len} exceeds the {stratum}-cycle stratum of \
                             {bursts} bursts over {cycles} cycles"
                        )));
                    }
                }
            }
            FaultProcess::Byzantine {
                channel,
                period,
                duty,
            } => {
                if *period < 2 {
                    return Err(CoreError::FaultProcess(
                        "a byzantine adversary needs a period of at least two cycles \
                         to arm the two sides at different times"
                            .into(),
                    ));
                }
                check_duty_cycle("byzantine", *period, *duty, 0, cycles)?;
                if let Some(c) = net.channels().find(|&c| net.channel(c).name == *channel) {
                    if net.channel(c).passive {
                        return Err(CoreError::FaultProcess(format!(
                            "channel {channel:?} is passive: its producer-side stop is a \
                             synthesized boundary inverter, so there are not two independent \
                             side rails to lie on"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Deterministic seeded expansion into per-site arm windows for trial
    /// `lane` over a `cycles` horizon: `windows()[site]` is a list of
    /// `(start, len)` pairs for [`Self::sites`]`()[site]`. Starts carry the
    /// per-lane [`PROCESS_STAGGER`] shift (and, for `Correlated`, a seeded
    /// stratified draw), clamped to the horizon; the expansion depends on
    /// nothing but `(seed, lane, cycles)`, so every backend reproduces it.
    pub fn windows(&self, seed: u64, lane: usize, cycles: usize) -> Vec<Vec<(usize, usize)>> {
        let stagger = lane % PROCESS_STAGGER;
        let clamp = |start: usize, len: usize| start.min(cycles.saturating_sub(len));
        match self {
            FaultProcess::Periodic {
                period,
                duty,
                start,
                ..
            } => {
                vec![periodic_windows(
                    clamp(start.saturating_add(stagger), *duty),
                    *period,
                    *duty,
                    cycles,
                )]
            }
            FaultProcess::Sustained { start, len, .. } => {
                vec![vec![(clamp(start.saturating_add(stagger), *len), *len)]]
            }
            FaultProcess::Correlated {
                faults,
                bursts,
                len,
            } => {
                let mut shared: Vec<(usize, usize)> = Vec::with_capacity(*bursts);
                if *bursts > 0 && *len > 0 {
                    let stratum = cycles / *bursts;
                    for b in 0..*bursts {
                        // One RNG per (lane, burst): burst starts are
                        // independent across lanes and across bursts, but a
                        // fixed function of the campaign seed.
                        let mut rng = StdRng::seed_from_u64(
                            seed.wrapping_add((lane as u64) << 20)
                                .wrapping_add(b as u64),
                        );
                        let slack = (stratum.saturating_sub(*len) + 1) as u64;
                        let off = (rng.next_u64() % slack) as usize;
                        shared.push((clamp(b * stratum + off, *len), *len));
                    }
                }
                faults.iter().map(|_| shared.clone()).collect()
            }
            FaultProcess::Byzantine { period, duty, .. } => {
                // Per-side phase shift of half a period: while one side's
                // gate is armed the other's usually is not, so the two
                // channel ends see inconsistent rails.
                let s0 = clamp(stagger, *duty);
                let s1 = clamp(stagger + period / 2, *duty);
                vec![
                    periodic_windows(s0, *period, *duty, cycles),
                    periodic_windows(s1, *period, *duty, cycles),
                ]
            }
        }
    }

    /// Union of all site windows as sorted, merged `(start, end)` cycle
    /// ranges (end exclusive) — the disturbance intervals a DMG replay
    /// must tolerate (`Replayer::tolerate_windows` in `elastic_dmg`) and
    /// the fault events a stabilization tracker retimes on.
    pub fn merged_windows(&self, seed: u64, lane: usize, cycles: usize) -> Vec<(u64, u64)> {
        let mut spans: Vec<(u64, u64)> = self
            .windows(seed, lane, cycles)
            .into_iter()
            .flatten()
            .map(|(s, l)| (s as u64, (s + l) as u64))
            .collect();
        spans.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(spans.len());
        for (s, e) in spans {
            if s >= e {
                continue;
            }
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        merged
    }
}

/// Shared duty-cycle validation of the periodic process shapes.
fn check_duty_cycle(
    what: &str,
    period: usize,
    duty: usize,
    start: usize,
    cycles: usize,
) -> Result<(), CoreError> {
    if period == 0 {
        return Err(CoreError::FaultProcess(format!(
            "{what} process with a zero-cycle period"
        )));
    }
    if duty > period {
        return Err(CoreError::FaultProcess(format!(
            "intensity {duty} exceeds the {period}-cycle window of a {what} process"
        )));
    }
    if duty > 0 && start.checked_add(duty).is_none_or(|e| e > cycles) {
        return Err(CoreError::FaultProcess(format!(
            "first {what} window {start}+{duty} exceeds the {cycles}-cycle horizon"
        )));
    }
    Ok(())
}

/// The window list of a duty-cycled periodic arm stream: `duty` cycles
/// every `period` cycles from `start`, dropping windows that no longer fit
/// the horizon. `duty == 0` yields no windows.
fn periodic_windows(
    start: usize,
    period: usize,
    duty: usize,
    cycles: usize,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    if duty == 0 || period == 0 {
        return out;
    }
    let mut s = start;
    while s + duty <= cycles {
        out.push((s, duty));
        match s.checked_add(period) {
            Some(next) => s = next,
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::linear_pipeline;

    fn flip(chan: &str) -> FaultInjection {
        FaultInjection::RailFlip {
            channel: chan.into(),
            rail: FaultRail::Vp,
        }
    }

    fn stuck(chan: &str) -> FaultInjection {
        FaultInjection::StuckAt {
            channel: chan.into(),
            rail: FaultRail::Vp,
            value: false,
        }
    }

    #[test]
    fn periodic_expansion_is_deterministic_and_staggered() {
        let (net, _, _) = linear_pipeline(2, 1).unwrap();
        let p = FaultProcess::Periodic {
            fault: flip("c1"),
            period: 10,
            duty: 2,
            start: 3,
        };
        p.validate(&net, 40).unwrap();
        let w0 = p.windows(7, 0, 40);
        assert_eq!(w0, vec![vec![(3, 2), (13, 2), (23, 2), (33, 2)]]);
        // Lane 1 staggers by one cycle; lane 4 wraps back to lane 0's phase.
        assert_eq!(p.windows(7, 1, 40)[0][0], (4, 2));
        assert_eq!(p.windows(7, 4, 40), w0);
        // Seed does not matter for the non-random classes.
        assert_eq!(p.windows(999, 0, 40), w0);
    }

    #[test]
    fn zero_intensity_periodic_has_no_windows() {
        let (net, _, _) = linear_pipeline(2, 1).unwrap();
        let p = FaultProcess::Periodic {
            fault: flip("c1"),
            period: 8,
            duty: 0,
            start: 0,
        };
        p.validate(&net, 64).unwrap();
        assert!(p.windows(1, 0, 64)[0].is_empty());
        assert!(p.merged_windows(1, 0, 64).is_empty());
    }

    #[test]
    fn periodic_intensity_over_window_is_typed() {
        let (net, _, _) = linear_pipeline(2, 1).unwrap();
        let p = FaultProcess::Periodic {
            fault: flip("c1"),
            period: 4,
            duty: 5,
            start: 0,
        };
        assert!(matches!(
            p.validate(&net, 64),
            Err(CoreError::FaultProcess(_))
        ));
        let p = FaultProcess::Periodic {
            fault: flip("c1"),
            period: 0,
            duty: 0,
            start: 0,
        };
        assert!(matches!(
            p.validate(&net, 64),
            Err(CoreError::FaultProcess(_))
        ));
    }

    #[test]
    fn sustained_requires_stuck_at_and_fitting_interval() {
        let (net, _, _) = linear_pipeline(2, 1).unwrap();
        let ok = FaultProcess::Sustained {
            fault: stuck("c1"),
            start: 5,
            len: 10,
        };
        ok.validate(&net, 32).unwrap();
        assert_eq!(ok.windows(0, 0, 32), vec![vec![(5, 10)]]);
        let wrong_class = FaultProcess::Sustained {
            fault: flip("c1"),
            start: 5,
            len: 10,
        };
        assert!(matches!(
            wrong_class.validate(&net, 32),
            Err(CoreError::FaultProcess(_))
        ));
        let too_long = FaultProcess::Sustained {
            fault: stuck("c1"),
            start: 30,
            len: 10,
        };
        assert!(matches!(
            too_long.validate(&net, 32),
            Err(CoreError::FaultProcess(_))
        ));
    }

    #[test]
    fn correlated_bursts_are_stratified_and_shared_across_sites() {
        let (net, _, _) = linear_pipeline(3, 1).unwrap();
        let p = FaultProcess::Correlated {
            faults: vec![flip("c1"), stuck("c2")],
            bursts: 4,
            len: 3,
        };
        p.validate(&net, 64).unwrap();
        let w = p.windows(42, 2, 64);
        assert_eq!(w.len(), 2, "one window list per site");
        assert_eq!(w[0], w[1], "correlated sites share the burst windows");
        assert_eq!(w[0].len(), 4);
        for (b, &(s, l)) in w[0].iter().enumerate() {
            assert_eq!(l, 3);
            assert!(s >= b * 16 && s + l <= (b + 1) * 16, "burst {b} at {s}");
        }
        // Deterministic in (seed, lane); different across lanes.
        assert_eq!(p.windows(42, 2, 64), w);
        assert_ne!(p.windows(43, 2, 64), w);
    }

    #[test]
    fn correlated_rejects_rail_overlap_and_oversized_bursts() {
        let (net, _, _) = linear_pipeline(3, 1).unwrap();
        // DuplicateToken and LoseToken both target V⁺ of the channel.
        let overlap = FaultProcess::Correlated {
            faults: vec![
                FaultInjection::DuplicateToken {
                    channel: "c1".into(),
                },
                FaultInjection::LoseToken {
                    channel: "c1".into(),
                },
            ],
            bursts: 1,
            len: 2,
        };
        assert!(matches!(
            overlap.validate(&net, 64),
            Err(CoreError::FaultProcess(_))
        ));
        let oversized = FaultProcess::Correlated {
            faults: vec![flip("c1")],
            bursts: 4,
            len: 17,
        };
        assert!(matches!(
            oversized.validate(&net, 64),
            Err(CoreError::FaultProcess(_))
        ));
        let empty = FaultProcess::Correlated {
            faults: vec![],
            bursts: 1,
            len: 1,
        };
        assert!(matches!(
            empty.validate(&net, 64),
            Err(CoreError::FaultProcess(_))
        ));
        let unknown = FaultProcess::Correlated {
            faults: vec![flip("nope")],
            bursts: 1,
            len: 1,
        };
        assert!(matches!(
            unknown.validate(&net, 64),
            Err(CoreError::FaultSite(_))
        ));
        let structural = FaultProcess::Correlated {
            faults: vec![FaultInjection::DropAntiToken { join: "j".into() }],
            bursts: 1,
            len: 1,
        };
        assert!(matches!(
            structural.validate(&net, 64),
            Err(CoreError::FaultProcess(_))
        ));
    }

    #[test]
    fn byzantine_expands_to_two_phase_shifted_sides() {
        let (net, _, _) = linear_pipeline(2, 1).unwrap();
        let p = FaultProcess::Byzantine {
            channel: "c1".into(),
            period: 8,
            duty: 2,
        };
        p.validate(&net, 32).unwrap();
        let sites = p.sites();
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].rail(), Some(FaultRail::Vp));
        assert_eq!(sites[1].rail(), Some(FaultRail::Sp));
        let w = p.windows(0, 0, 32);
        assert_eq!(w[0], vec![(0, 2), (8, 2), (16, 2), (24, 2)]);
        assert_eq!(w[1], vec![(4, 2), (12, 2), (20, 2), (28, 2)]);
        // While side 0 is armed side 1 never is: the two channel ends
        // disagree rather than seeing one consistent corruption.
        for &(s0, l0) in &w[0] {
            for &(s1, l1) in &w[1] {
                assert!(s0 + l0 <= s1 || s1 + l1 <= s0, "sides overlap");
            }
        }
        assert_eq!(p.merged_windows(0, 0, 32).len(), 8);
    }

    #[test]
    fn byzantine_needs_two_real_sides() {
        let (mut net, _, cout) = linear_pipeline(2, 1).unwrap();
        let one_cycle = FaultProcess::Byzantine {
            channel: "c1".into(),
            period: 1,
            duty: 1,
        };
        assert!(matches!(
            one_cycle.validate(&net, 32),
            Err(CoreError::FaultProcess(_))
        ));
        let name = net.channel(cout).name.clone();
        net.set_passive(cout).unwrap();
        let passive = FaultProcess::Byzantine {
            channel: name,
            period: 8,
            duty: 2,
        };
        assert!(matches!(
            passive.validate(&net, 32),
            Err(CoreError::FaultProcess(_))
        ));
    }

    #[test]
    fn merged_windows_union_overlapping_spans() {
        let (net, _, _) = linear_pipeline(2, 1).unwrap();
        let p = FaultProcess::Byzantine {
            channel: "c1".into(),
            period: 2,
            duty: 2,
        };
        p.validate(&net, 8).unwrap();
        // duty == period: both sides are always armed → one solid span.
        assert_eq!(p.merged_windows(0, 0, 8), vec![(0, 8)]);
    }
}
