use std::fmt;

use crate::channel::ChanId;
use crate::network::CompId;

/// Errors from building or simulating elastic networks.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A component id referenced an index outside the network.
    UnknownComponent(CompId),
    /// A channel id referenced an index outside the network.
    UnknownChannel(ChanId),
    /// A port was connected more than once, or the port index is out of
    /// range for the component.
    BadPort {
        /// Component whose port is at fault.
        comp: CompId,
        /// The port index.
        port: usize,
        /// Whether it is an input port.
        input: bool,
    },
    /// After building, some port was left unconnected.
    UnconnectedPort {
        /// Component whose port is dangling.
        comp: CompId,
        /// The port index.
        port: usize,
        /// Whether it is an input port.
        input: bool,
    },
    /// A cycle of components exists with no elastic buffer stage on it —
    /// composing the controllers would create a combinational cycle.
    BufferlessCycle(Vec<String>),
    /// A cycle of components carries no initial token: every directed cycle
    /// of an elastic network needs at least one token to be live (paper
    /// Sect. 2), so this topology deadlocks at power-up.
    TokenStarvedCycle(Vec<String>),
    /// A component was added with a name that is already taken in the same
    /// network/datapath. Names key `component_by_name`, elasticization
    /// clustering and export sanitization, so they must be unique.
    DuplicateName(String),
    /// A buffer-only mutation (e.g. [`crate::network::ElasticNetwork::set_init_token`])
    /// was applied to a component that is not an elastic buffer.
    NotABuffer(CompId),
    /// An early-evaluation function failed validation.
    BadEarlyEval(String),
    /// Signal evaluation failed to converge (controller implementation bug).
    NoFixpoint,
    /// A protocol violation was observed at runtime on a channel.
    ProtocolViolation {
        /// Offending channel.
        channel: ChanId,
        /// What was violated.
        message: String,
    },
    /// A Monte-Carlo schedule batch was unusable: empty, larger than the
    /// backend's lane capacity, or mixing cycle horizons.
    ScheduleBatch(String),
    /// A differential fuzz check failed: the DMG reference replay, the
    /// compiled pipeline and/or the analytic throughput bound disagree on a
    /// generated topology (`crate::gen`).
    Differential(String),
    /// A fault-injection site was invalid: the named channel/join does not
    /// exist, the rail cannot be faulted, or the requested injection window
    /// falls outside the simulated horizon.
    FaultSite(String),
    /// A fault *process* specification was invalid: overlapping windows on
    /// the same rail, a Byzantine adversary arming only one channel side,
    /// or an intensity that exceeds the window/horizon it must fit in
    /// (`crate::fault`).
    FaultProcess(String),
    /// Underlying netlist error (compilation only).
    Netlist(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownComponent(c) => write!(f, "unknown component id {}", c.index()),
            CoreError::UnknownChannel(c) => write!(f, "unknown channel id {}", c.index()),
            CoreError::BadPort { comp, port, input } => write!(
                f,
                "component {} {} port {port} is out of range or already connected",
                comp.index(),
                if *input { "input" } else { "output" }
            ),
            CoreError::UnconnectedPort { comp, port, input } => write!(
                f,
                "component {} {} port {port} is not connected",
                comp.index(),
                if *input { "input" } else { "output" }
            ),
            CoreError::BufferlessCycle(names) => {
                write!(
                    f,
                    "combinational (buffer-free) cycle through: {}",
                    names.join(" -> ")
                )
            }
            CoreError::TokenStarvedCycle(names) => {
                write!(
                    f,
                    "token-starved cycle (no initial token) through: {}",
                    names.join(" -> ")
                )
            }
            CoreError::DuplicateName(name) => {
                write!(f, "duplicate component name {name:?}")
            }
            CoreError::NotABuffer(c) => {
                write!(f, "component {} is not an elastic buffer", c.index())
            }
            CoreError::BadEarlyEval(msg) => write!(f, "invalid early-evaluation function: {msg}"),
            CoreError::NoFixpoint => write!(f, "signal evaluation did not converge"),
            CoreError::ProtocolViolation { channel, message } => {
                write!(
                    f,
                    "protocol violation on channel {}: {message}",
                    channel.index()
                )
            }
            CoreError::ScheduleBatch(msg) => write!(f, "bad schedule batch: {msg}"),
            CoreError::Differential(msg) => write!(f, "differential check failed: {msg}"),
            CoreError::FaultSite(msg) => write!(f, "invalid fault site: {msg}"),
            CoreError::FaultProcess(msg) => write!(f, "invalid fault process: {msg}"),
            CoreError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<elastic_netlist::NetlistError> for CoreError {
    fn from(e: elastic_netlist::NetlistError) -> Self {
        CoreError::Netlist(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase() {
        for e in [
            CoreError::NoFixpoint,
            CoreError::BadEarlyEval("x".into()),
            CoreError::BufferlessCycle(vec!["a".into()]),
            CoreError::FaultSite("x".into()),
            CoreError::FaultProcess("x".into()),
            CoreError::DuplicateName("x".into()),
        ] {
            assert!(e.to_string().chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_trait() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<CoreError>();
    }
}
