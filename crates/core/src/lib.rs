//! Synchronous elastic circuits with early evaluation and token counterflow.
//!
//! This crate implements the contribution of Cortadella & Kishinevsky,
//! *"Synchronous Elastic Circuits with Early Evaluation and Token
//! Counterflow"* (DAC 2007):
//!
//! * the **SELF protocol** — Valid/Stop channels with Transfer / Idle /
//!   Retry states and persistent senders ([`protocol`]),
//! * **dual channels** carrying a positive token flow `(V⁺,S⁺)` forward and
//!   a negative anti-token flow `(V⁻,S⁻)` backward, annihilating on contact
//!   ([`channel`]),
//! * the **elastic controller library**: elastic half-buffers and buffers,
//!   lazy joins, eager forks, their counterflow duals, the early-evaluation
//!   join that *generates* anti-tokens, passive anti-token interfaces and
//!   variable-latency (go/done/ack) controllers ([`network`], [`sim`]),
//! * a **compiler to gate-level netlists** ([`compile`]) for area reports,
//!   export and model checking,
//! * the **elasticization flow** of Sect. 6 ([`elasticize`]) and the paper's
//!   example system with all Table 1 configurations ([`systems`]),
//! * verification harnesses reproducing Fig. 8 ([`verify`]).
//!
//! # Quickstart
//!
//! ```
//! use elastic_core::systems::{paper_example, Config};
//! use elastic_core::sim::{BehavSim, RandomEnv};
//!
//! # fn main() -> Result<(), elastic_core::CoreError> {
//! let system = paper_example(Config::ActiveAntiTokens)?;
//! let mut sim = BehavSim::new(&system.network)?;
//! let mut env = RandomEnv::new(1, system.env_config.clone());
//! sim.run(&mut env, 1000)?;
//! let th = sim.report().throughput(system.output_channel);
//! assert!(th > 0.0 && th <= 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod error;

pub mod channel;
pub mod compile;
pub mod corpus;
pub mod dmg_bridge;
pub mod dsl;
pub mod ee;
pub mod elasticize;
pub mod fault;
pub mod gen;
pub mod network;
pub mod protocol;
pub mod sim;
pub mod stats;
pub mod systems;
pub mod verify;

pub use channel::{ChanId, ChannelEvent, ChannelSignals};
pub use ee::{EarlyEval, EeTerm};
pub use error::CoreError;
pub use network::{CompId, Component, ComponentKind, ElasticNetwork};
