//! Typed combinator DSL over [`ElasticNetwork`]: channels as move-semantics
//! values, controllers as arity-typed modules.
//!
//! The imperative builder ([`ElasticNetwork::connect`] on raw
//! [`CompId`]/port pairs) discovers wiring mistakes late: a double-connected
//! output surfaces as a [`CoreError::BadPort`] at the offending call, a
//! dangling port only at [`ElasticNetwork::check`] time, and the lint layer
//! (E103/E104) later still. This module makes both states unrepresentable
//! at the source level:
//!
//! * a [`Chan`] is the *value of an unconnected producer port*. It is
//!   move-only (no `Clone`/`Copy`), every combinator consumes it, and the
//!   borrow checker rejects connecting it twice at compile time;
//! * a [`Port`] is the *obligation to drive one consumer port*
//!   ([`Dsl::drive`]); joins with feedback edges hand them out explicitly
//!   ([`Dsl::open_join`]) so rings are closed declaratively;
//! * a [`Module`] packages a reusable sub-circuit with const-generic
//!   input/output arity — [`Module::then`] (sequential), [`par`]
//!   (side-by-side) and [`Dsl::ring`] (token-carrying feedback) compose
//!   them with the arities checked by the compiler.
//!
//! Components are auto-named per kind (`eb0`, `join1`, …) when given an
//! empty name; channels default to the elasticizer's `"<from>-><to>"`
//! convention and can be pinned with [`Chan::label`]. [`Dsl::finish`] runs
//! [`ElasticNetwork::check`] *and*
//! [`ElasticNetwork::check_token_liveness`], so a leaked `Chan` or an
//! undriven `Port` still cannot escape as a silently broken network.
//!
//! ```
//! use elastic_core::dsl::Dsl;
//!
//! # fn main() -> Result<(), elastic_core::CoreError> {
//! let mut d = Dsl::new("pipeline");
//! let src = d.source("src")?;
//! let b = d.buffer("b", 2, 1, src)?;
//! d.sink("snk", b)?;
//! let net = d.finish()?;
//! assert_eq!(net.num_components(), 4);
//! # Ok(())
//! # }
//! ```

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::channel::ChanId;
use crate::ee::EarlyEval;
use crate::error::CoreError;
use crate::network::{CompId, ElasticNetwork};

/// An unconnected producer port, as a linear (move-only) value.
///
/// Produced by every [`Dsl`] combinator that creates an output; consumed by
/// exactly one downstream combinator. Dropping one leaves a dangling output
/// that [`Dsl::finish`] reports as [`CoreError::UnconnectedPort`].
#[derive(Debug)]
#[must_use = "an elastic channel must be consumed by exactly one consumer"]
pub struct Chan {
    comp: CompId,
    port: usize,
    /// Logical producer name, for the default `"<from>-><to>"` channel name.
    src: String,
    label: Option<String>,
    passive: bool,
}

impl Chan {
    /// Pins the channel's name instead of the default `"<from>-><to>"`.
    pub fn label(mut self, name: impl Into<String>) -> Chan {
        self.label = Some(name.into());
        self
    }

    /// Marks the channel as a passive anti-token boundary (Fig. 7a):
    /// anti-tokens are stopped here and wait to annihilate instead of
    /// propagating upstream.
    pub fn passive(mut self) -> Chan {
        self.passive = true;
        self
    }
}

/// An undriven consumer port: the obligation to connect exactly one
/// producer, discharged by [`Dsl::drive`]. Handed out by
/// [`Dsl::open_join`]/[`Dsl::open_early_join`]/[`Dsl::open_buffer`] so
/// feedback edges (rings) can be closed after their driver exists.
#[derive(Debug)]
#[must_use = "an open input port must be driven"]
pub struct Port {
    comp: CompId,
    port: usize,
    /// Logical consumer name, for the default channel name.
    dst: String,
}

/// The builder context: wraps an [`ElasticNetwork`] under construction,
/// auto-names components, and wires [`Chan`]s to consumers.
#[derive(Debug)]
pub struct Dsl {
    net: ElasticNetwork,
    counters: HashMap<&'static str, usize>,
}

impl Dsl {
    /// Creates an empty builder for a network called `name`.
    pub fn new(name: impl Into<String>) -> Dsl {
        Dsl {
            net: ElasticNetwork::new(name),
            counters: HashMap::new(),
        }
    }

    fn autoname(&mut self, kind: &'static str, name: &str) -> String {
        if name.is_empty() {
            let c = self.counters.entry(kind).or_insert(0);
            let n = *c;
            *c += 1;
            format!("{kind}{n}")
        } else {
            name.to_string()
        }
    }

    fn chan(comp: CompId, port: usize, src: String) -> Chan {
        Chan {
            comp,
            port,
            src,
            label: None,
            passive: false,
        }
    }

    fn wire(&mut self, ch: Chan, to: CompId, port: usize, dst: &str) -> Result<ChanId, CoreError> {
        let name = match ch.label {
            Some(l) => l,
            None => format!("{}->{dst}", ch.src),
        };
        let id = self.net.connect(ch.comp, ch.port, to, port, name)?;
        if ch.passive {
            self.net.set_passive(id)?;
        }
        Ok(id)
    }

    /// Adds an environment source and returns its output channel.
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] on a name clash.
    pub fn source(&mut self, name: &str) -> Result<Chan, CoreError> {
        let name = self.autoname("src", name);
        let id = self.net.add_source(name.clone())?;
        Ok(Self::chan(id, 0, name))
    }

    /// Adds an environment sink consuming `input`; returns the channel id
    /// (the usual throughput observation point).
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] on a name clash.
    pub fn sink(&mut self, name: &str, input: Chan) -> Result<ChanId, CoreError> {
        let name = self.autoname("snk", name);
        let id = self.net.add_sink(name.clone())?;
        self.wire(input, id, 0, &name)
    }

    /// Adds a single elastic buffer behind `input`.
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] on a name clash.
    pub fn eb(&mut self, name: &str, init_token: bool, input: Chan) -> Result<Chan, CoreError> {
        let name = self.autoname("eb", name);
        let id = self.net.add_eb(name.clone(), init_token)?;
        self.wire(input, id, 0, &name)?;
        Ok(Self::chan(id, 0, name))
    }

    /// Adds a chain of `stages` elastic buffers carrying `tokens` initial
    /// tokens behind `input` (see [`ElasticNetwork::add_buffer`]).
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] on a name clash.
    ///
    /// # Panics
    ///
    /// Panics if `stages == 0` or `tokens > stages`.
    pub fn buffer(
        &mut self,
        name: &str,
        stages: usize,
        tokens: usize,
        input: Chan,
    ) -> Result<Chan, CoreError> {
        let name = self.autoname("buf", name);
        let id = self.net.add_buffer(name.clone(), stages, tokens)?;
        self.wire(input, id, 0, &name)?;
        Ok(Self::chan(id, 0, name))
    }

    /// Adds a buffer chain with *both* ends open: returns its output
    /// channel and its undriven input port. This is the token-carrying back
    /// edge of a ring — the output can feed a join before the input's
    /// driver exists.
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] on a name clash.
    ///
    /// # Panics
    ///
    /// Panics if `stages == 0` or `tokens > stages`.
    pub fn open_buffer(
        &mut self,
        name: &str,
        stages: usize,
        tokens: usize,
    ) -> Result<(Chan, Port), CoreError> {
        let name = self.autoname("buf", name);
        let id = self.net.add_buffer(name.clone(), stages, tokens)?;
        Ok((
            Self::chan(id, 0, name.clone()),
            Port {
                comp: id,
                port: 0,
                dst: name,
            },
        ))
    }

    /// Adds a variable-latency (go/done/ack) unit behind `input`.
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] on a name clash.
    pub fn var_latency(&mut self, name: &str, input: Chan) -> Result<Chan, CoreError> {
        let name = self.autoname("vl", name);
        let id = self.net.add_var_latency(name.clone())?;
        self.wire(input, id, 0, &name)?;
        Ok(Self::chan(id, 0, name))
    }

    /// Adds an eager fork of compile-time arity `N` behind `input`.
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] on a name clash.
    pub fn fork<const N: usize>(
        &mut self,
        name: &str,
        input: Chan,
    ) -> Result<[Chan; N], CoreError> {
        let name = self.autoname("fork", name);
        let id = self.net.add_fork(name.clone(), N)?;
        self.wire(input, id, 0, &name)?;
        Ok(std::array::from_fn(|i| Self::chan(id, i, name.clone())))
    }

    /// Adds a lazy join of compile-time arity `N` consuming `inputs` (in
    /// port order).
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] on a name clash.
    pub fn join<const N: usize>(
        &mut self,
        name: &str,
        inputs: [Chan; N],
    ) -> Result<Chan, CoreError> {
        let (out, ports) = self.open_join::<N>(name)?;
        for (p, ch) in ports.into_iter().zip(inputs) {
            self.drive(p, ch)?;
        }
        Ok(out)
    }

    /// Adds an early-evaluation join of arity `N` consuming `inputs`.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadEarlyEval`] if `ee` fails validation against `N`
    /// inputs; [`CoreError::DuplicateName`] on a name clash.
    pub fn early_join<const N: usize>(
        &mut self,
        name: &str,
        ee: EarlyEval,
        inputs: [Chan; N],
    ) -> Result<Chan, CoreError> {
        let (out, ports) = self.open_early_join::<N>(name, ee)?;
        for (p, ch) in ports.into_iter().zip(inputs) {
            self.drive(p, ch)?;
        }
        Ok(out)
    }

    /// Adds a lazy join with all `N` input ports left open — for topologies
    /// where some input is a feedback edge that does not exist yet.
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateName`] on a name clash.
    pub fn open_join<const N: usize>(
        &mut self,
        name: &str,
    ) -> Result<(Chan, [Port; N]), CoreError> {
        let name = self.autoname("join", name);
        let id = self.net.add_join(name.clone(), N)?;
        Ok((
            Self::chan(id, 0, name.clone()),
            std::array::from_fn(|i| Port {
                comp: id,
                port: i,
                dst: name.clone(),
            }),
        ))
    }

    /// [`Dsl::open_join`] with an early-evaluation function (validated
    /// immediately against `N`).
    ///
    /// # Errors
    ///
    /// [`CoreError::BadEarlyEval`] from validation;
    /// [`CoreError::DuplicateName`] on a name clash.
    pub fn open_early_join<const N: usize>(
        &mut self,
        name: &str,
        ee: EarlyEval,
    ) -> Result<(Chan, [Port; N]), CoreError> {
        let name = self.autoname("join", name);
        let id = self.net.add_early_join(name.clone(), N, ee)?;
        Ok((
            Self::chan(id, 0, name.clone()),
            std::array::from_fn(|i| Port {
                comp: id,
                port: i,
                dst: name.clone(),
            }),
        ))
    }

    /// Discharges an open consumer port with a producer channel; returns
    /// the created channel's id.
    ///
    /// # Errors
    ///
    /// Propagates [`ElasticNetwork::connect`] errors (none expected: both
    /// endpoints are typed as unconnected).
    pub fn drive(&mut self, port: Port, ch: Chan) -> Result<ChanId, CoreError> {
        self.wire(ch, port.comp, port.port, &port.dst)
    }

    /// Closes a token-carrying ring around `body`: `input` joins with a
    /// feedback buffer of `back_stages` stages holding `back_tokens`
    /// initial tokens, flows through `body`, and forks into the returned
    /// forward output and the feedback edge.
    ///
    /// Components are named `<name>.j`, `<name>.f`, `<name>.b`.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the body and the ring plumbing.
    ///
    /// # Panics
    ///
    /// Panics if `back_tokens == 0` (the ring would deadlock at power-up —
    /// paper Sect. 2's liveness obligation) or `back_tokens > back_stages`.
    pub fn ring(
        &mut self,
        name: &str,
        input: Chan,
        body: Module<1, 1>,
        back_stages: usize,
        back_tokens: usize,
    ) -> Result<Chan, CoreError> {
        assert!(back_tokens >= 1, "a ring needs an initial token to be live");
        let name = self.autoname("ring", name);
        let (j, [p_in, p_back]) = self.open_join::<2>(&format!("{name}.j"))?;
        self.drive(p_in, input)?;
        let [body_out] = body.apply(self, [j])?;
        let [out, back] = self.fork::<2>(&format!("{name}.f"), body_out)?;
        let back = self.buffer(&format!("{name}.b"), back_stages, back_tokens, back)?;
        self.drive(p_back, back)?;
        Ok(out)
    }

    /// Marks the channel called `name` as a passive anti-token boundary —
    /// for configuration sweeps that toggle passivity on an already-built
    /// design without threading the flag through every combinator.
    ///
    /// # Errors
    ///
    /// [`CoreError::Netlist`] if no channel has that name.
    pub fn set_passive_channel(&mut self, name: &str) -> Result<(), CoreError> {
        let id = self
            .net
            .channel_by_name(name)
            .ok_or_else(|| CoreError::Netlist(format!("no channel named {name}")))?;
        self.net.set_passive(id)
    }

    /// Read access to the network under construction (e.g. to resolve
    /// channel ids by name before finishing).
    pub fn network(&self) -> &ElasticNetwork {
        &self.net
    }

    /// Validates and returns the built network: every port wired
    /// ([`ElasticNetwork::check`] — a dropped [`Chan`] or undriven
    /// [`Port`] surfaces here as a typed error) and every cycle
    /// token-carrying ([`ElasticNetwork::check_token_liveness`]).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnconnectedPort`], [`CoreError::BufferlessCycle`] or
    /// [`CoreError::TokenStarvedCycle`].
    pub fn finish(self) -> Result<ElasticNetwork, CoreError> {
        self.net.check()?;
        self.net.check_token_liveness()?;
        Ok(self.net)
    }
}

/// A reusable sub-circuit with `I` input and `O` output channels, composed
/// with [`Module::then`] / [`seq`] (sequential), [`par`] (parallel) and
/// [`Dsl::ring`] (feedback). Arity mismatches are compile-time type errors.
#[must_use = "a module does nothing until applied"]
pub struct Module<const I: usize, const O: usize> {
    #[allow(clippy::type_complexity)]
    build: Box<dyn FnOnce(&mut Dsl, [Chan; I]) -> Result<[Chan; O], CoreError>>,
}

impl<const I: usize, const O: usize> Module<I, O> {
    /// Wraps a build closure as a module.
    pub fn new(
        f: impl FnOnce(&mut Dsl, [Chan; I]) -> Result<[Chan; O], CoreError> + 'static,
    ) -> Module<I, O> {
        Module { build: Box::new(f) }
    }

    /// Instantiates the module in `d`, consuming `inputs`.
    ///
    /// # Errors
    ///
    /// Whatever the module body returns.
    pub fn apply(self, d: &mut Dsl, inputs: [Chan; I]) -> Result<[Chan; O], CoreError> {
        (self.build)(d, inputs)
    }

    /// Sequential composition: `self`'s outputs feed `next`'s inputs. The
    /// arities must agree — checked by the type system, not at run time.
    pub fn then<const P: usize>(self, next: Module<O, P>) -> Module<I, P> {
        Module::new(move |d, ins| {
            let mid = self.apply(d, ins)?;
            next.apply(d, mid)
        })
    }
}

impl Module<1, 1> {
    /// A single elastic buffer as a module.
    pub fn eb(name: &str, init_token: bool) -> Module<1, 1> {
        let name = name.to_string();
        Module::new(move |d, [x]| Ok([d.eb(&name, init_token, x)?]))
    }

    /// A buffer chain as a module.
    pub fn buffer(name: &str, stages: usize, tokens: usize) -> Module<1, 1> {
        let name = name.to_string();
        Module::new(move |d, [x]| Ok([d.buffer(&name, stages, tokens, x)?]))
    }

    /// A variable-latency unit as a module.
    pub fn var_latency(name: &str) -> Module<1, 1> {
        let name = name.to_string();
        Module::new(move |d, [x]| Ok([d.var_latency(&name, x)?]))
    }
}

/// Sequential composition — free-function spelling of [`Module::then`].
pub fn seq<const I: usize, const M: usize, const O: usize>(
    a: Module<I, M>,
    b: Module<M, O>,
) -> Module<I, O> {
    a.then(b)
}

/// Parallel composition of two single-channel modules: the result consumes
/// two channels and produces two, with no interaction between the lanes.
pub fn par(a: Module<1, 1>, b: Module<1, 1>) -> Module<2, 2> {
    Module::new(move |d, [x, y]| {
        let [xo] = a.apply(d, [x])?;
        let [yo] = b.apply(d, [y])?;
        Ok([xo, yo])
    })
}

/// Checks that two networks are structurally identical up to component and
/// channel *ids*: same component names with the same kinds (including
/// early-evaluation functions and initial tokens), and the same channels
/// keyed by `(name, from component, to component, to port, passivity)`.
/// Fork output-port indices are deliberately ignored — eager fork outputs
/// are symmetric, so two isomorphic builders may hand them out in any
/// order; join input ports are significant (early-evaluation functions
/// index them).
///
/// Returns the first difference as a human-readable message.
///
/// # Errors
///
/// `Err(description)` when the networks differ.
pub fn isomorphic(a: &ElasticNetwork, b: &ElasticNetwork) -> Result<(), String> {
    let comps = |n: &ElasticNetwork| -> BTreeMap<String, String> {
        n.components()
            .map(|c| {
                let comp = n.component(c);
                (comp.name.clone(), format!("{:?}", comp.kind))
            })
            .collect()
    };
    let ca = comps(a);
    let cb = comps(b);
    if ca != cb {
        for (name, kind) in &ca {
            match cb.get(name) {
                None => return Err(format!("component {name:?} only in left network")),
                Some(k) if k != kind => {
                    return Err(format!(
                        "component {name:?} differs: left {kind}, right {k}"
                    ))
                }
                _ => {}
            }
        }
        for name in cb.keys() {
            if !ca.contains_key(name) {
                return Err(format!("component {name:?} only in right network"));
            }
        }
    }
    let chans = |n: &ElasticNetwork| -> BTreeSet<String> {
        n.channels()
            .map(|c| {
                let ch = n.channel(c);
                format!(
                    "{:?}: {} -> {}[{}] passive={}",
                    ch.name,
                    n.component(ch.from.0).name,
                    n.component(ch.to.0).name,
                    ch.to.1,
                    ch.passive
                )
            })
            .collect()
    };
    let la = chans(a);
    let lb = chans(b);
    if let Some(only_left) = la.difference(&lb).next() {
        return Err(format!("channel only in left network: {only_left}"));
    }
    if let Some(only_right) = lb.difference(&la).next() {
        return Err(format!("channel only in right network: {only_right}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ee::EeTerm;

    #[test]
    fn linear_chain_builds_and_checks() {
        let mut d = Dsl::new("lin");
        let s = d.source("src").unwrap();
        let b = d.buffer("b", 2, 1, s).unwrap();
        d.sink("snk", b).unwrap();
        let net = d.finish().unwrap();
        assert_eq!(net.num_components(), 4);
        assert_eq!(net.num_channels(), 3);
        assert!(net.channel_by_name("src->b").is_some());
        assert!(net.channel_by_name("b->snk").is_some());
    }

    #[test]
    fn auto_naming_counts_per_kind() {
        let mut d = Dsl::new("auto");
        let s0 = d.source("").unwrap();
        let s1 = d.source("").unwrap();
        let e0 = d.eb("", false, s0).unwrap();
        let e1 = d.eb("", false, s1).unwrap();
        let j = d.join("", [e0, e1]).unwrap();
        d.sink("", j).unwrap();
        let net = d.finish().unwrap();
        for name in ["src0", "src1", "eb0", "eb1", "join0", "snk0"] {
            assert!(net.component_by_name(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn dropped_chan_is_a_typed_unconnected_port() {
        let mut d = Dsl::new("leak");
        let s = d.source("src").unwrap();
        let [a, b] = d.fork::<2>("f", s).unwrap();
        d.sink("snk", a).unwrap();
        drop(b); // leaked fork leg
        let err = d.finish().unwrap_err();
        assert!(matches!(
            err,
            CoreError::UnconnectedPort { input: false, .. }
        ));
    }

    #[test]
    fn undriven_port_is_a_typed_unconnected_port() {
        let mut d = Dsl::new("open");
        let (out, [p0, p1]) = d.open_join::<2>("j").unwrap();
        let s = d.source("src").unwrap();
        d.drive(p0, s).unwrap();
        d.sink("snk", out).unwrap();
        drop(p1);
        let err = d.finish().unwrap_err();
        assert!(matches!(
            err,
            CoreError::UnconnectedPort { input: true, .. }
        ));
    }

    #[test]
    fn ring_is_live_by_construction() {
        let mut d = Dsl::new("ring");
        let s = d.source("src").unwrap();
        let out = d.ring("r", s, Module::eb("stage", false), 1, 1).unwrap();
        d.sink("snk", out).unwrap();
        let net = d.finish().unwrap();
        net.check_token_liveness().unwrap();
        // join + eb + fork + back buffer + src + snk
        assert_eq!(net.num_components(), 6);
    }

    #[test]
    fn starved_ring_is_rejected_at_finish() {
        // Bypass `ring`'s token assertion by wiring the feedback manually
        // with a token-free buffer: finish() must flag it.
        let mut d = Dsl::new("starved");
        let (j, [p0, p1]) = d.open_join::<2>("j").unwrap();
        let s = d.source("src").unwrap();
        d.drive(p0, s).unwrap();
        let [out, back] = d.fork::<2>("f", j).unwrap();
        let back = d.buffer("b", 1, 0, back).unwrap();
        d.drive(p1, back).unwrap();
        d.sink("snk", out).unwrap();
        let err = d.finish().unwrap_err();
        assert!(matches!(err, CoreError::TokenStarvedCycle(_)));
    }

    #[test]
    fn modules_compose_sequentially_and_in_parallel() {
        let mut d = Dsl::new("mods");
        let a = d.source("a").unwrap();
        let b = d.source("b").unwrap();
        let lanes = par(
            Module::eb("ra", false).then(Module::var_latency("va")),
            Module::buffer("rb", 2, 0),
        );
        let [ao, bo] = lanes.apply(&mut d, [a, b]).unwrap();
        let j = d.join("j", [ao, bo]).unwrap();
        let j = seq(Module::eb("out", false), Module::eb("out2", false))
            .apply(&mut d, [j])
            .unwrap();
        let [j] = j;
        d.sink("snk", j).unwrap();
        let net = d.finish().unwrap();
        assert!(net.component_by_name("va").is_some());
        assert!(net.component_by_name("rb.1").is_some());
        assert!(net.component_by_name("out2").is_some());
    }

    #[test]
    fn labels_and_passivity_stick() {
        let mut d = Dsl::new("lp");
        let s = d.source("src").unwrap();
        let b = d.eb("b", false, s.label("in")).unwrap();
        d.sink("snk", b.label("out").passive()).unwrap();
        let net = d.finish().unwrap();
        let out = net.channel_by_name("out").unwrap();
        assert!(net.channel(out).passive);
        assert!(net.channel_by_name("in").is_some());
    }

    #[test]
    fn early_join_validation_is_immediate() {
        let bad = EarlyEval::new(
            0,
            vec![EeTerm {
                guard_mask: 1,
                guard_value: 0,
                required: vec![9],
                select: 9,
            }],
        );
        let mut d = Dsl::new("bad");
        let err = d.open_early_join::<2>("j", bad).unwrap_err();
        assert!(matches!(err, CoreError::BadEarlyEval(_)));
    }

    #[test]
    fn isomorphic_accepts_reordered_identical_nets() {
        let mut a = ElasticNetwork::new("x");
        let sa = a.add_source("s").unwrap();
        let ka = a.add_sink("k").unwrap();
        let ba = a.add_eb("b", true).unwrap();
        a.connect(sa, 0, ba, 0, "c0").unwrap();
        a.connect(ba, 0, ka, 0, "c1").unwrap();

        let mut b = ElasticNetwork::new("y");
        let bb = b.add_eb("b", true).unwrap();
        let sb = b.add_source("s").unwrap();
        let kb = b.add_sink("k").unwrap();
        b.connect(sb, 0, bb, 0, "c0").unwrap();
        b.connect(bb, 0, kb, 0, "c1").unwrap();

        isomorphic(&a, &b).unwrap();
    }

    #[test]
    fn isomorphic_rejects_kind_channel_and_passivity_drift() {
        let build = |tok: bool, pass: bool, cname: &str| {
            let mut n = ElasticNetwork::new("x");
            let s = n.add_source("s").unwrap();
            let k = n.add_sink("k").unwrap();
            let b = n.add_eb("b", tok).unwrap();
            n.connect(s, 0, b, 0, cname).unwrap();
            let c = n.connect(b, 0, k, 0, "c1").unwrap();
            if pass {
                n.set_passive(c).unwrap();
            }
            n
        };
        let reference = build(true, false, "c0");
        assert!(isomorphic(&reference, &build(false, false, "c0")).is_err());
        assert!(isomorphic(&reference, &build(true, true, "c0")).is_err());
        assert!(isomorphic(&reference, &build(true, false, "weird")).is_err());
        isomorphic(&reference, &build(true, false, "c0")).unwrap();
    }
}
