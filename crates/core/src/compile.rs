//! Compilation of elastic networks into gate-level netlists.
//!
//! Every controller is emitted as the gate equations that the behavioural
//! simulator evaluates, so the two back-ends are cycle-equivalent (checked
//! by the co-simulation harness in [`crate::verify`]). The environment is
//! exposed as primary inputs — source offers, sink stops/kills and
//! variable-latency completions are free variables, which is exactly the
//! nondeterministic closure the paper model-checks (Sect. 5).
//!
//! Channel rails become named nets (`<channel>.vp`, `.sp`, `.vn`, `.sn`,
//! `.d<i>`), so simulation probes and CTL atoms can reference any channel.
//! Passive channels get their `S⁻ = ¬V⁺` treatment here: producers see a
//! constant-zero `V⁻` and consumers a `¬V⁺` stop, which lets the optimizer
//! strip the upstream negative rails — the area savings of Table 1's
//! passive rows.

use elastic_netlist::opt::optimize;
use elastic_netlist::{NetId, Netlist};

use crate::channel::ChanId;
use crate::ee::EarlyEval;
use crate::error::CoreError;
use crate::network::{CompId, ComponentKind, ElasticNetwork};

/// One of the three forward/backward handshake rails a fault can target.
///
/// `S⁻` is deliberately not faultable: on passive channels it is a
/// synthesized boundary inverter rather than a controller output, so a
/// fault there would test the compiler's plumbing, not the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultRail {
    /// Forward valid `V⁺`.
    Vp,
    /// Forward stop `S⁺`.
    Sp,
    /// Backward valid `V⁻` (anti-token).
    Vn,
}

impl FaultRail {
    /// Every faultable rail.
    pub const ALL: [FaultRail; 3] = [FaultRail::Vp, FaultRail::Sp, FaultRail::Vn];

    /// Net-name suffix of the rail (`vp`/`sp`/`vn`).
    pub fn label(self) -> &'static str {
        match self {
            FaultRail::Vp => "vp",
            FaultRail::Sp => "sp",
            FaultRail::Vn => "vn",
        }
    }
}

/// A deliberate controller bug injected at compile time — mutation testing
/// for the verification harnesses. A differential harness that cannot
/// detect these faults is not testing anything; the fuzz campaign's
/// negative mode compiles one lowering with a fault and asserts the
/// divergence is caught (`crate::gen`).
///
/// `DropAntiToken` is a *structural* fault: the sabotaged gates are wrong
/// on every cycle. The other variants are *transient* faults: compilation
/// inserts a corruption gate on the targeted rail, controlled by a new
/// primary input `fault.<channel>.<rail>` that the testbench arms for a
/// chosen cycle window — per lane in the packed wide backends, so each of
/// the 512 trials of a word can carry an independent fault instance. The
/// behavioural simulator applies the same corruption by forcing the rail
/// during signal settlement (`crate::sim::BehavSim::inject_fault`).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultInjection {
    /// Suppress the anti-token generation (G) gates of the named
    /// early-evaluation join: the join still fires early, but the inputs it
    /// fired without are never sent the anti-token that should kill their
    /// late tokens — the canonical EE-join bug of Sect. 4.3.
    DropAntiToken {
        /// Display name of the join component to sabotage.
        join: String,
    },
    /// Invert the chosen rail while the fault input is armed — the
    /// single-event-upset model (a transient bit flip when armed for one
    /// cycle).
    RailFlip {
        /// Display name of the channel whose rail is corrupted.
        channel: String,
        /// Which rail flips.
        rail: FaultRail,
    },
    /// Force the chosen rail to `value` while the fault input is armed —
    /// stuck-at-0/1 over a cycle window.
    StuckAt {
        /// Display name of the channel whose rail is corrupted.
        channel: String,
        /// Which rail sticks.
        rail: FaultRail,
        /// The stuck value.
        value: bool,
    },
    /// Assert `V⁺` while armed even though the producer offers nothing —
    /// a spurious (duplicated) token materializes on the channel.
    DuplicateToken {
        /// Display name of the channel gaining the token.
        channel: String,
    },
    /// Suppress `V⁺` while armed even though the producer offers a token —
    /// the token is lost in flight.
    LoseToken {
        /// Display name of the channel losing the token.
        channel: String,
    },
}

impl FaultInjection {
    /// The channel a rail-level fault targets (`None` for the structural
    /// `DropAntiToken`).
    pub fn channel(&self) -> Option<&str> {
        match self {
            FaultInjection::DropAntiToken { .. } => None,
            FaultInjection::RailFlip { channel, .. }
            | FaultInjection::StuckAt { channel, .. }
            | FaultInjection::DuplicateToken { channel }
            | FaultInjection::LoseToken { channel } => Some(channel),
        }
    }

    /// The rail a rail-level fault corrupts. Duplicated and lost tokens
    /// are `V⁺` faults.
    pub fn rail(&self) -> Option<FaultRail> {
        match self {
            FaultInjection::DropAntiToken { .. } => None,
            FaultInjection::RailFlip { rail, .. } | FaultInjection::StuckAt { rail, .. } => {
                Some(*rail)
            }
            FaultInjection::DuplicateToken { .. } | FaultInjection::LoseToken { .. } => {
                Some(FaultRail::Vp)
            }
        }
    }

    /// Name of the arming primary input the compiled netlist exposes for
    /// this fault (`None` for `DropAntiToken`, which needs no arming).
    pub fn input_name(&self) -> Option<String> {
        let rail = self.rail()?;
        let channel = self.channel()?;
        Some(format!("fault.{}.{}", sanitize(channel), rail.label()))
    }

    /// Corrupted rail value for a raw (fault-free) rail value and an arm
    /// bit — the behavioural-simulator mirror of the injected gate.
    pub fn corrupt(&self, raw: bool, armed: bool) -> bool {
        if !armed {
            return raw;
        }
        match self {
            FaultInjection::DropAntiToken { .. } => raw,
            FaultInjection::RailFlip { .. } => !raw,
            FaultInjection::StuckAt { value, .. } => *value,
            FaultInjection::DuplicateToken { .. } => true,
            FaultInjection::LoseToken { .. } => false,
        }
    }

    /// Short class label for campaign reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultInjection::DropAntiToken { .. } => "drop_anti_token",
            FaultInjection::RailFlip { .. } => "rail_flip",
            FaultInjection::StuckAt { value: false, .. } => "stuck_at_0",
            FaultInjection::StuckAt { value: true, .. } => "stuck_at_1",
            FaultInjection::DuplicateToken { .. } => "duplicate_token",
            FaultInjection::LoseToken { .. } => "lose_token",
        }
    }
}

/// Options controlling compilation.
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// Payload width in bits (0 = control only). Guard-driven early joins
    /// need enough bits to cover their guard masks.
    pub data_width: usize,
    /// Give every lazy join a nondeterministic data merge (an extra primary
    /// input steering a mux), as in the paper's Fig. 8(b) data-correctness
    /// testbenches.
    pub nondet_merge: bool,
    /// Run [`elastic_netlist::opt::optimize`] on the emitted netlist before
    /// returning — the paper's "simple logic synthesis techniques" step
    /// (Sect. 6) applied ahead of simulation instead of only for area
    /// reports. Every channel rail is marked as an output first, so all
    /// [`ChannelNets`] survive and are remapped through the optimizer's
    /// net map (a rail may land on a folded constant, e.g. the upstream
    /// `V⁻` of a passive channel). Defaults to `false`, which preserves
    /// the raw gate-for-gate emission.
    pub optimize: bool,
    /// Optional deliberate bug, for negative tests of the verification
    /// harnesses. `None` (the default) compiles the faithful controllers.
    pub fault: Option<FaultInjection>,
    /// Additional fault sites spliced alongside [`CompileOptions::fault`] —
    /// the multi-site form used by [`crate::fault::FaultProcess`] expansion
    /// (correlated bursts strike several channels, a Byzantine adversary
    /// arms both side rails of one channel). Each rail site gets its own
    /// corruption gate and arm input; two sites on the same channel rail
    /// are rejected with [`CoreError::FaultProcess`].
    pub faults: Vec<FaultInjection>,
    /// Run the static liveness lint before emission:
    /// [`ElasticNetwork::check_token_liveness`] rejects networks with a
    /// token-free cycle, which would deadlock at power-up and waste the
    /// whole downstream compile/simulate budget. Off by default so
    /// deliberately sick networks stay compilable for negative tests; the
    /// full multi-pass analyzer lives in the `elastic_lint` crate.
    pub lint: bool,
}

/// Per-channel rail nets of a compiled network.
#[derive(Debug, Clone)]
pub struct ChannelNets {
    /// Forward valid.
    pub vp: NetId,
    /// Forward stop.
    pub sp: NetId,
    /// Backward valid (anti-token).
    pub vn: NetId,
    /// Backward stop.
    pub sn: NetId,
    /// Payload bits (empty when compiled control-only).
    pub data: Vec<NetId>,
}

/// Result of compiling an [`ElasticNetwork`].
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The gate-level netlist. Raw gate-for-gate emission by default; the
    /// optimized rebuild when [`CompileOptions::optimize`] is set (run
    /// [`elastic_netlist::opt::optimize`] yourself for area reports on the
    /// raw form).
    pub netlist: Netlist,
    /// Rail nets per channel, indexed by [`ChanId`]. Under
    /// [`CompileOptions::optimize`] these are already remapped into the
    /// optimized netlist.
    pub channels: Vec<ChannelNets>,
}

impl Compiled {
    /// Conventional net name of a channel rail, e.g. `"S_M1.vp"`.
    pub fn rail_name(net: &ElasticNetwork, chan: ChanId, rail: &str) -> String {
        format!("{}.{rail}", sanitize(&net.channel(chan).name))
    }
}

/// Sanitizes display names into atom-safe identifiers (alphanumerics and
/// `_`; other characters become `_`).
pub fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// The net a producer binds for a given channel rail: the raw shadow wire
/// on a faulted rail (the corruption gate re-drives the public net), the
/// public rail net everywhere else. Multi-site processes register several
/// sites; at most one can match since duplicates are rejected up front.
fn drive_net(
    channels: &[ChannelNets],
    fault_sites: &[(usize, FaultRail, NetId)],
    chan: ChanId,
    rail: FaultRail,
) -> NetId {
    match fault_sites
        .iter()
        .find(|&&(c, r, _)| c == chan.index() && r == rail)
    {
        Some(&(_, _, raw)) => raw,
        None => {
            let ch = &channels[chan.index()];
            match rail {
                FaultRail::Vp => ch.vp,
                FaultRail::Sp => ch.sp,
                FaultRail::Vn => ch.vn,
            }
        }
    }
}

/// Compiles the network.
///
/// # Errors
///
/// Propagates structural errors from [`ElasticNetwork::check`], netlist
/// errors, [`CoreError::FaultSite`] when [`CompileOptions::fault`] names a
/// nonexistent join or channel, [`CoreError::BadEarlyEval`] when a guard
/// mask does not fit in `opts.data_width` bits, and — under
/// [`CompileOptions::lint`] — [`CoreError::TokenStarvedCycle`].
#[allow(clippy::too_many_lines)]
pub fn compile(net: &ElasticNetwork, opts: &CompileOptions) -> Result<Compiled, CoreError> {
    net.check()?;
    if opts.lint {
        net.check_token_liveness()?;
    }
    let w = opts.data_width;
    let mut n = Netlist::new(net.name());

    // Allocate the four rails (+ data) of every channel as late-bound wires.
    let mut channels: Vec<ChannelNets> = Vec::with_capacity(net.num_channels());
    for chan in net.channels() {
        let base = sanitize(&net.channel(chan).name);
        let mk = |n: &mut Netlist, rail: &str| -> Result<NetId, CoreError> {
            let id = n.wire();
            n.set_name(id, format!("{base}.{rail}"))?;
            Ok(id)
        };
        let vp = mk(&mut n, "vp")?;
        let sp = mk(&mut n, "sp")?;
        let vn = mk(&mut n, "vn")?;
        let sn = mk(&mut n, "sn")?;
        let data = (0..w)
            .map(|i| mk(&mut n, &format!("d{i}")))
            .collect::<Result<Vec<_>, _>>()?;
        channels.push(ChannelNets {
            vp,
            sp,
            vn,
            sn,
            data,
        });
    }

    // Passive channels: the boundary inverter S⁻ = ¬V⁺ replaces whatever the
    // producer would drive, so producers bind a shadow net instead.
    let mut sn_shadow: Vec<NetId> = Vec::with_capacity(net.num_channels());
    for chan in net.channels() {
        let ch = &channels[chan.index()];
        if net.channel(chan).passive {
            let inv = n.not(ch.vp);
            n.bind_wire(ch.sn, inv)?;
            // Producer's computed sn goes to an unnamed scratch wire.
            sn_shadow.push(n.wire());
        } else {
            sn_shadow.push(ch.sn);
        }
    }

    // Fault-site validation and corruption-gate insertion. A rail fault
    // splices `rail = corrupt(raw, arm)` between the producer and every
    // consumer of the targeted rail: the producer is redirected onto a
    // fresh `raw` wire (via [`drive_net`]) while the public rail — the net
    // all consumers, probes and output marks reference — is bound to the
    // corruption gate, controlled by the new primary input
    // `fault.<channel>.<rail>`. Unknown site names are typed errors, not
    // silent no-ops.
    let mut fault_sites: Vec<(usize, FaultRail, NetId)> = Vec::new();
    for fault in opts.fault.iter().chain(&opts.faults) {
        match fault {
            FaultInjection::DropAntiToken { join } => {
                let found = net.components().any(|c| {
                    net.component(c).name == *join
                        && matches!(net.component(c).kind, ComponentKind::Join { .. })
                });
                if !found {
                    return Err(CoreError::FaultSite(format!(
                        "no join component named {join:?} to sabotage"
                    )));
                }
            }
            fault => {
                let site = fault.channel().expect("rail faults name a channel");
                let chan = net
                    .channels()
                    .find(|&c| net.channel(c).name == site)
                    .ok_or_else(|| {
                        CoreError::FaultSite(format!("no channel named {site:?} to corrupt"))
                    })?;
                let rail = fault.rail().expect("rail faults target a rail");
                if fault_sites
                    .iter()
                    .any(|&(c, r, _)| c == chan.index() && r == rail)
                {
                    return Err(CoreError::FaultProcess(format!(
                        "two corruption gates requested on channel {site:?} rail {}: \
                         overlapping windows on one rail must share a single site",
                        rail.label()
                    )));
                }
                let ch = &channels[chan.index()];
                let public = match rail {
                    FaultRail::Vp => ch.vp,
                    FaultRail::Sp => ch.sp,
                    FaultRail::Vn => ch.vn,
                };
                let arm = n.input(fault.input_name().expect("rail faults are armed"));
                let raw = n.wire();
                n.set_name(raw, format!("{}.{}.raw", sanitize(site), rail.label()))?;
                let corrupted = match fault {
                    FaultInjection::RailFlip { .. } => n.xor(raw, arm),
                    FaultInjection::StuckAt { value: true, .. }
                    | FaultInjection::DuplicateToken { .. } => n.or2(raw, arm),
                    FaultInjection::StuckAt { value: false, .. }
                    | FaultInjection::LoseToken { .. } => n.and_not(raw, arm),
                    FaultInjection::DropAntiToken { .. } => unreachable!("handled above"),
                };
                n.bind_wire(public, corrupted)?;
                fault_sites.push((chan.index(), rail, raw));
            }
        }
    }

    let zero = n.constant(false);

    // The V⁻ a producer's backward logic sees: zero on passive channels.
    let backward_vn = |channels: &[ChannelNets], chan: ChanId| -> NetId {
        if net.channel(chan).passive {
            zero
        } else {
            channels[chan.index()].vn
        }
    };

    for comp in net.components() {
        let cname = sanitize(&net.component(comp).name);
        match net.component(comp).kind.clone() {
            ComponentKind::Source => {
                let c = net.output_channel(comp, 0).expect("wired");
                let ch = channels[c.index()].clone();
                let offer = n.input(format!("{cname}.offer"));
                let offering = n.dff(false);
                n.set_name(offering, format!("{cname}.offering"))?;
                let vp = n.or2(offering, offer);
                n.bind_wire(drive_net(&channels, &fault_sites, c, FaultRail::Vp), vp)?;
                let sn = n.not(vp);
                n.bind_wire(sn_shadow[c.index()], sn)?;
                // Hold while retried: vp & sp & !vn.
                let nvn = n.not(ch.vn);
                let hold = n.and([vp, ch.sp, nvn]);
                n.bind_dff(offering, hold)?;
                // Data: captured at the start of an offer, stable during it.
                let start = n.and_not(offer, offering);
                for (i, &dw) in ch.data.iter().enumerate() {
                    let din = n.input(format!("{cname}.din{i}"));
                    let dff = n.dff(false);
                    let dbit = n.mux(start, din, dff);
                    n.bind_dff(dff, dbit)?;
                    n.bind_wire(dw, dbit)?;
                }
            }
            ComponentKind::Sink => {
                let a = net.input_channel(comp, 0).expect("wired");
                let ch = channels[a.index()].clone();
                let stop = n.input(format!("{cname}.stop"));
                let kill = n.input(format!("{cname}.kill"));
                let killing = n.dff(false);
                n.set_name(killing, format!("{cname}.killing"))?;
                let vn = n.or2(killing, kill);
                n.bind_wire(drive_net(&channels, &fault_sites, a, FaultRail::Vn), vn)?;
                let sp = n.and_not(stop, vn);
                n.bind_wire(drive_net(&channels, &fault_sites, a, FaultRail::Sp), sp)?;
                // killing' = vn & !vp & sn (anti-token still unresolved).
                let nvp = n.not(ch.vp);
                let hold = n.and([vn, nvp, ch.sn]);
                n.bind_dff(killing, hold)?;
            }
            ComponentKind::Eb {
                init_token,
                init_data,
            } => {
                // Skid-buffer EB: main/skid token slots (v, vs) and the
                // mirror anti-token slots (nv, nvs). All four rails are
                // driven from flip-flops, so the buffer cuts every
                // combinational path, like the latched V/S of the paper's
                // EHB pair.
                let a = net.input_channel(comp, 0).expect("wired");
                let b = net.output_channel(comp, 0).expect("wired");
                let cha = channels[a.index()].clone();
                let chb = channels[b.index()].clone();
                let v = n.dff(init_token);
                n.set_name(v, format!("{cname}.v"))?;
                let vs = n.dff(false);
                n.set_name(vs, format!("{cname}.vs"))?;
                let nv = n.dff(false);
                n.set_name(nv, format!("{cname}.nv"))?;
                let nvs = n.dff(false);
                n.set_name(nvs, format!("{cname}.nvs"))?;
                let vnb = backward_vn(&channels, b);
                // Rails we produce (all registered).
                n.bind_wire(drive_net(&channels, &fault_sites, b, FaultRail::Vp), v)?;
                n.bind_wire(drive_net(&channels, &fault_sites, a, FaultRail::Sp), vs)?;
                n.bind_wire(drive_net(&channels, &fault_sites, a, FaultRail::Vn), nv)?;
                n.bind_wire(sn_shadow[b.index()], nvs)?;
                // Entries.
                let nvs_not = n.not(vs);
                let nnv = n.not(nv);
                let t_in = n.and([cha.vp, nvs_not, nnv]);
                n.set_name(t_in, format!("{cname}.en"))?;
                n.mark_output(t_in)?;
                let real_sn_b = channels[b.index()].sn;
                let nsn_b = n.not(real_sn_b);
                let not_v = n.not(v);
                let tn_in = n.and([vnb, nsn_b, not_v]);
                let no_tn = n.not(tn_in);
                let t_enter = n.and2(t_in, no_tn);
                let no_t = n.not(t_in);
                let tn_enter = n.and2(tn_in, no_t);
                // Positive slots.
                let nsp_b = n.not(chb.sp);
                let out_gone = n.and2(v, nsp_b);
                let ngone_out = n.not(out_gone);
                let hold_v = n.and2(v, ngone_out);
                let freed = n.or2(not_v, out_gone);
                let from_store = n.or2(vs, t_enter);
                let refill = n.and2(freed, from_store);
                let v_next = n.or2(hold_v, refill);
                n.bind_dff(v, v_next)?;
                let nfreed_not = n.not(freed);
                let vs_owed = n.or2(vs, t_enter);
                let vs_next = n.and2(vs_owed, nfreed_not);
                n.bind_dff(vs, vs_next)?;
                // Negative slots (mirror).
                let nsn_a = n.not(cha.sn);
                let ngone = n.and2(nv, nsn_a);
                let nngone = n.not(ngone);
                let hold_nv = n.and2(nv, nngone);
                let not_nv2 = n.not(nv);
                let nfreed = n.or2(not_nv2, ngone);
                let nfrom = n.or2(nvs, tn_enter);
                let nrefill = n.and2(nfreed, nfrom);
                let nv_next = n.or2(hold_nv, nrefill);
                n.bind_dff(nv, nv_next)?;
                let nnfreed = n.not(nfreed);
                let nvs_owed = n.or2(nvs, tn_enter);
                let nvs_next = n.and2(nvs_owed, nnfreed);
                n.bind_dff(nvs, nvs_next)?;
                // Data registers: main captures from skid or input; skid
                // captures on overflow.
                let take_skid = n.and2(freed, vs);
                let take_in = n.and2(freed, t_enter);
                let skid_cap = n.and2(t_enter, nfreed_not);
                for (i, (&da, &db)) in cha.data.iter().zip(&chb.data).enumerate() {
                    let dmain = n.dff(init_data >> i & 1 == 1);
                    let dskid = n.dff(false);
                    let sk_mux = n.mux(skid_cap, da, dskid);
                    n.bind_dff(dskid, sk_mux)?;
                    let m1 = n.mux(take_in, da, dmain);
                    let m2 = n.mux(take_skid, dskid, m1);
                    n.bind_dff(dmain, m2)?;
                    n.bind_wire(db, dmain)?;
                }
            }
            ComponentKind::Join { inputs, ee } => {
                emit_join(
                    &mut n,
                    net,
                    &channels,
                    &sn_shadow,
                    &fault_sites,
                    comp,
                    inputs,
                    ee.as_ref(),
                    opts,
                )?;
            }
            ComponentKind::Fork { outputs } => {
                let a = net.input_channel(comp, 0).expect("wired");
                let cha = channels[a.index()].clone();
                let outs: Vec<ChanId> = (0..outputs)
                    .map(|i| net.output_channel(comp, i).expect("wired"))
                    .collect();
                let mut dones = Vec::new();
                let mut res = Vec::new();
                let mut vns_gated = Vec::new();
                for (i, &b) in outs.iter().enumerate() {
                    let chb = channels[b.index()].clone();
                    let done = n.dff(false);
                    n.set_name(done, format!("{cname}.done{i}"))?;
                    dones.push(done);
                    let nd = n.not(done);
                    let vp_b = n.and2(cha.vp, nd);
                    n.bind_wire(drive_net(&channels, &fault_sites, b, FaultRail::Vp), vp_b)?;
                    for (&da, &db) in cha.data.iter().zip(&chb.data) {
                        n.bind_wire(db, da)?;
                    }
                    let nsp = n.not(chb.sp);
                    let nvn = n.not(chb.vn);
                    let t = n.and([vp_b, nsp, nvn]);
                    let k = n.and2(vp_b, chb.vn);
                    let r = n.or([done, t, k]);
                    res.push(r);
                    vns_gated.push(backward_vn(&channels, b));
                }
                let all_res = n.and(res.clone());
                let nvp_a = n.not(cha.vp);
                let mut vn_in = vns_gated.clone();
                vn_in.push(nvp_a);
                let vn_a = n.and(vn_in);
                n.bind_wire(drive_net(&channels, &fault_sites, a, FaultRail::Vn), vn_a)?;
                let nall = n.not(all_res);
                let nvn_a = n.not(vn_a);
                let sp_a = n.and2(nall, nvn_a);
                n.bind_wire(drive_net(&channels, &fault_sites, a, FaultRail::Sp), sp_a)?;
                let nsn_a = n.not(cha.sn);
                let consumed_neg = n.and2(vn_a, nsn_a);
                let ncons_neg = n.not(consumed_neg);
                for &b in &outs {
                    let chb = channels[b.index()].clone();
                    let nvp_b = n.not(chb.vp);
                    let sn_b = n.and2(ncons_neg, nvp_b);
                    n.bind_wire(sn_shadow[b.index()], sn_b)?;
                }
                let consumed = n.and2(cha.vp, all_res);
                let ncons = n.not(consumed);
                for (done, r) in dones.iter().zip(&res) {
                    let next = n.and2(*r, ncons);
                    n.bind_dff(*done, next)?;
                }
            }
            ComponentKind::VarLatency => {
                let a = net.input_channel(comp, 0).expect("wired");
                let b = net.output_channel(comp, 0).expect("wired");
                let cha = channels[a.index()].clone();
                let chb = channels[b.index()].clone();
                let finish = n.input(format!("{cname}.finish"));
                let busy = n.dff(false);
                n.set_name(busy, format!("{cname}.busy"))?;
                let done = n.dff(false);
                n.set_name(done, format!("{cname}.done"))?;
                let nbusy = n.not(busy);
                let ndone = n.not(done);
                let idle = n.and2(nbusy, ndone);
                let vnb = backward_vn(&channels, b);
                let vn_a = n.and2(vnb, idle);
                n.bind_wire(drive_net(&channels, &fault_sites, a, FaultRail::Vn), vn_a)?;
                let nsp_b = n.not(chb.sp);
                let out_resolving = n.and2(done, nsp_b);
                let can_accept = n.or2(idle, out_resolving);
                let ncan = n.not(can_accept);
                let nvn_a = n.not(vn_a);
                let sp_a = n.and2(ncan, nvn_a);
                n.bind_wire(drive_net(&channels, &fault_sites, a, FaultRail::Sp), sp_a)?;
                let nsp_a = n.not(sp_a);
                let t_in = n.and([cha.vp, nsp_a, nvn_a]);
                n.set_name(t_in, format!("{cname}.go"))?;
                n.mark_output(t_in)?;
                n.bind_wire(drive_net(&channels, &fault_sites, b, FaultRail::Vp), done)?;
                // sn(b): pass-through resolution when idle, absorb when busy.
                let nsn_a2 = n.not(cha.sn);
                let res_t = n.or2(cha.vp, nsn_a2); // vp_a | !sn_a
                let resolved_a = n.and2(vn_a, res_t);
                let nres = n.not(resolved_a);
                let sn_b = n.and([idle, vnb, nres, ndone]);
                n.bind_wire(sn_shadow[b.index()], sn_b)?;
                // State transitions.
                let nfin = n.not(finish);
                let abort = n.and2(busy, vnb);
                let nabort = n.not(abort);
                let launch_busy = n.and2(t_in, nfin);
                let keep_busy = n.and([busy, nfin, nabort]);
                let busy_next = n.or2(launch_busy, keep_busy);
                n.bind_dff(busy, busy_next)?;
                let launch_done = n.and2(t_in, finish);
                let finish_done = n.and([busy, finish, nabort]);
                let hold_done = n.and2(done, chb.sp);
                let done_next = n.or([launch_done, finish_done, hold_done]);
                n.bind_dff(done, done_next)?;
                // Data pipeline register (identity transform).
                for (&da, &db) in cha.data.iter().zip(&chb.data) {
                    let dff = n.dff(false);
                    let dmux = n.mux(t_in, da, dff);
                    n.bind_dff(dff, dmux)?;
                    n.bind_wire(db, dff)?;
                }
            }
        }
    }

    // Environment interface: mark the rails of channels touching sources and
    // sinks as primary outputs so optimization preserves the interface.
    for comp in net.components() {
        let kind = &net.component(comp).kind;
        let chan = match kind {
            ComponentKind::Source => net.output_channel(comp, 0),
            ComponentKind::Sink => net.input_channel(comp, 0),
            _ => continue,
        }
        .expect("wired");
        let ch = channels[chan.index()].clone();
        for rail in [ch.vp, ch.sp, ch.vn, ch.sn] {
            n.mark_output(rail)?;
        }
        for &d in &ch.data {
            n.mark_output(d)?;
        }
    }

    let compiled = Compiled {
        netlist: n,
        channels,
    };
    if opts.optimize {
        return optimize_compiled(compiled);
    }
    Ok(compiled)
}

/// Optimizes a freshly compiled netlist and remaps every channel rail
/// through the old→new net map. All rails are marked as outputs first so
/// none can be dropped by dead-code elimination — constant folding still
/// strips the logic *behind* a rail that settles to a constant, which is
/// where the lazy/passive configurations shed their counterflow gates.
fn optimize_compiled(compiled: Compiled) -> Result<Compiled, CoreError> {
    let mut nl = compiled.netlist;
    for ch in &compiled.channels {
        for r in [ch.vp, ch.sp, ch.vn, ch.sn] {
            nl.mark_output(r)?;
        }
        for &d in &ch.data {
            nl.mark_output(d)?;
        }
    }
    let (opt, map) = optimize(&nl)?;
    let remap = |id: NetId| -> Result<NetId, CoreError> {
        map[id.index()].ok_or_else(|| {
            CoreError::Netlist(format!("channel rail {id} lost during optimization"))
        })
    };
    let channels = compiled
        .channels
        .iter()
        .map(|ch| {
            Ok(ChannelNets {
                vp: remap(ch.vp)?,
                sp: remap(ch.sp)?,
                vn: remap(ch.vn)?,
                sn: remap(ch.sn)?,
                data: ch
                    .data
                    .iter()
                    .map(|&d| remap(d))
                    .collect::<Result<_, _>>()?,
            })
        })
        .collect::<Result<Vec<_>, CoreError>>()?;
    Ok(Compiled {
        netlist: opt,
        channels,
    })
}

/// Emits a join (lazy or early-evaluation) controller.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn emit_join(
    n: &mut Netlist,
    net: &ElasticNetwork,
    channels: &[ChannelNets],
    sn_shadow: &[NetId],
    fault_sites: &[(usize, FaultRail, NetId)],
    comp: CompId,
    inputs: usize,
    ee: Option<&EarlyEval>,
    opts: &CompileOptions,
) -> Result<(), CoreError> {
    let cname = sanitize(&net.component(comp).name);
    let ins: Vec<ChanId> = (0..inputs)
        .map(|i| net.input_channel(comp, i).expect("wired"))
        .collect();
    let b = net.output_channel(comp, 0).expect("wired");
    let chb = channels[b.index()].clone();
    let vn_b = if net.channel(b).passive {
        None
    } else {
        Some(chb.vn)
    };

    // Pending anti-token flip-flops, one per input (the FFs of Fig. 6).
    let pend: Vec<NetId> = (0..inputs)
        .map(|i| {
            let p = n.dff(false);
            n.set_name(p, format!("{cname}.pend{i}")).map(|()| p)
        })
        .collect::<Result<_, _>>()?;
    let vpeff: Vec<NetId> = ins
        .iter()
        .zip(&pend)
        .map(|(&a, &p)| {
            let np = n.not(p);
            n.and2(channels[a.index()].vp, np)
        })
        .collect();
    let any_pend = n.or(pend.clone());

    // Enabling function: conventional AND or the EE block of Fig. 6(c).
    let enable = match ee {
        None => n.and(vpeff.clone()),
        Some(f) => {
            // Guard bits come from the guard channel's payload.
            let guard_bits = channels[ins[f.guard_input].index()].data.clone();
            let max_bit = f
                .terms
                .iter()
                .map(|t| 64 - t.guard_mask.leading_zeros() as usize)
                .max()
                .unwrap_or(0);
            if max_bit > guard_bits.len() {
                return Err(CoreError::BadEarlyEval(format!(
                    "guard mask needs {max_bit} data bits, compiled width is {}",
                    guard_bits.len()
                )));
            }
            let mut terms = Vec::new();
            for t in &f.terms {
                let mut conj = vec![vpeff[f.guard_input]];
                for (i, &gb) in guard_bits.iter().enumerate() {
                    if t.guard_mask >> i & 1 == 1 {
                        if t.guard_value >> i & 1 == 1 {
                            conj.push(gb);
                        } else {
                            conj.push(n.not(gb));
                        }
                    }
                }
                for &r in &t.required {
                    conj.push(vpeff[r]);
                }
                terms.push(n.and(conj));
            }
            n.or(terms)
        }
    };
    let npend = n.not(any_pend);
    let vp_b = n.and2(enable, npend);
    n.bind_wire(drive_net(channels, fault_sites, b, FaultRail::Vp), vp_b)?;
    let nsp_b = n.not(chb.sp);
    let fire = n.and2(vp_b, nsp_b);
    let nvp_b = n.not(vp_b);
    let vn_b_net = vn_b.unwrap_or_else(|| n.constant(false));
    let absorb = n.and([vn_b_net, nvp_b, npend]);
    let nabsorb = n.not(absorb);
    let sn_b = n.and2(nabsorb, nvp_b);
    n.bind_wire(sn_shadow[b.index()], sn_b)?;

    // Fault injection: a sabotaged join keeps firing early but never
    // raises its G gates, so late inputs are never killed.
    let drop_anti = opts.fault.iter().chain(&opts.faults).any(
        |f| matches!(f, FaultInjection::DropAntiToken { join } if *join == net.component(comp).name),
    );
    let nfire = n.not(fire);
    for (i, &a) in ins.iter().enumerate() {
        let cha = channels[a.index()].clone();
        let nveff = n.not(vpeff[i]);
        let g = if drop_anti {
            n.constant(false)
        } else {
            n.and2(fire, nveff)
        };
        let vn_a = n.or2(pend[i], g);
        n.bind_wire(drive_net(channels, fault_sites, a, FaultRail::Vn), vn_a)?;
        let nvn_a = n.not(vn_a);
        let sp_a = n.and2(nfire, nvn_a);
        n.bind_wire(drive_net(channels, fault_sites, a, FaultRail::Sp), sp_a)?;
        // pend' = (pend | G | absorb) & !resolved.
        let nsn_a = n.not(cha.sn);
        let res_t = n.or2(cha.vp, nsn_a);
        let resolved = n.and2(vn_a, res_t);
        let nres = n.not(resolved);
        let owed = n.or([pend[i], g, absorb]);
        let pnext = n.and2(owed, nres);
        n.bind_dff(pend[i], pnext)?;
    }

    // Output payload: priority mux over the EE terms, or a (possibly
    // nondeterministic) merge for lazy joins.
    if opts.data_width > 0 {
        let datas: Vec<Vec<NetId>> = ins
            .iter()
            .map(|&a| channels[a.index()].data.clone())
            .collect();
        let out_bits: Vec<NetId> = match ee {
            Some(f) => {
                // Term-match signals (guard pattern only) drive a priority
                // data mux; validity is already folded into vp_b.
                let guard_bits = channels[ins[f.guard_input].index()].data.clone();
                let mut bits = Vec::new();
                #[allow(clippy::needless_range_loop)] // bit indexes several parallel vectors
                for bit in 0..opts.data_width {
                    let mut expr = datas[f.terms.last().expect("nonempty").select][bit];
                    for t in f.terms.iter().rev().skip(1) {
                        let mut conj = Vec::new();
                        for (i, &gb) in guard_bits.iter().enumerate() {
                            if t.guard_mask >> i & 1 == 1 {
                                if t.guard_value >> i & 1 == 1 {
                                    conj.push(gb);
                                } else {
                                    conj.push(n.not(gb));
                                }
                            }
                        }
                        let m = n.and(conj);
                        expr = n.mux(m, datas[t.select][bit], expr);
                    }
                    bits.push(expr);
                }
                bits
            }
            None => {
                if opts.nondet_merge && inputs > 1 {
                    // Chain of nondeterministic 2:1 merges (Fig. 8(b)).
                    let mut acc = datas[0].clone();
                    for (i, d) in datas.iter().enumerate().skip(1) {
                        let pick = n.input(format!("{cname}.merge{i}"));
                        acc = acc
                            .iter()
                            .zip(d)
                            .map(|(&x, &y)| n.mux(pick, y, x))
                            .collect();
                    }
                    acc
                } else {
                    datas[0].clone()
                }
            }
        };
        for (&dw, &ob) in chb.data.iter().zip(&out_bits) {
            n.bind_wire(dw, ob)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_netlist::area::AreaReport;
    use elastic_netlist::opt::optimize;
    use elastic_netlist::sim::Simulator;

    fn pipeline() -> (ElasticNetwork, ChanId, ChanId) {
        let mut net = ElasticNetwork::new("lin");
        let src = net.add_source("src").unwrap();
        let eb = net.add_buffer("eb", 2, 0).unwrap();
        let snk = net.add_sink("snk").unwrap();
        let cin = net.connect(src, 0, eb, 0, "cin").unwrap();
        let cout = net.connect(eb, 0, snk, 0, "cout").unwrap();
        (net, cin, cout)
    }

    #[test]
    fn compiles_and_simulates_pipeline() {
        let (net, _cin, _cout) = pipeline();
        let compiled = compile(&net, &CompileOptions::default()).unwrap();
        let nl = &compiled.netlist;
        let mut sim = Simulator::new(nl).unwrap();
        let offer = nl.find("src.offer").unwrap();
        let stop = nl.find("snk.stop").unwrap();
        let kill = nl.find("snk.kill").unwrap();
        let vp_out = nl.find("cout.vp").unwrap();
        // Always offer, never stop: after two cycles tokens stream out.
        let mut seen = 0;
        for _ in 0..10 {
            sim.cycle(&[(offer, true), (stop, false), (kill, false)])
                .unwrap();
            if sim.value(vp_out) {
                seen += 1;
            }
        }
        assert!(seen >= 8, "tokens flow: {seen}");
    }

    #[test]
    fn backpressure_in_gates() {
        let (net, cin, _) = pipeline();
        let compiled = compile(&net, &CompileOptions::default()).unwrap();
        let nl = &compiled.netlist;
        let mut sim = Simulator::new(nl).unwrap();
        let offer = nl.find("src.offer").unwrap();
        let stop = nl.find("snk.stop").unwrap();
        let sp_in = compiled.channels[cin.index()].sp;
        for _ in 0..6 {
            sim.cycle(&[(offer, true), (stop, true)]).unwrap();
        }
        assert!(sim.value(sp_in), "capacity-2 buffer full, input stopped");
    }

    #[test]
    fn optimization_strips_dead_negative_rails() {
        // Making the output channel passive cuts backward propagation, so
        // the nv flip-flops upstream die and area shrinks.
        let (net, _, cout) = pipeline();
        let mut passive_net = net.clone();
        passive_net.set_passive(cout).unwrap();
        let full = compile(&net, &CompileOptions::default()).unwrap();
        let pass = compile(&passive_net, &CompileOptions::default()).unwrap();
        let (full_opt, _) = optimize(&full.netlist).unwrap();
        let (pass_opt, _) = optimize(&pass.netlist).unwrap();
        let a_full = AreaReport::of(&full_opt);
        let a_pass = AreaReport::of(&pass_opt);
        assert!(
            a_pass.flipflops < a_full.flipflops,
            "passive {a_pass} vs active {a_full}"
        );
        assert!(a_pass.literals < a_full.literals);
    }

    #[test]
    fn join_controller_compiles() {
        let mut net = ElasticNetwork::new("join");
        let s1 = net.add_source("s1").unwrap();
        let s2 = net.add_source("s2").unwrap();
        let j = net.add_join("j", 2).unwrap();
        let snk = net.add_sink("snk").unwrap();
        net.connect(s1, 0, j, 0, "a1").unwrap();
        net.connect(s2, 0, j, 1, "a2").unwrap();
        net.connect(j, 0, snk, 0, "out").unwrap();
        let compiled = compile(&net, &CompileOptions::default()).unwrap();
        let nl = &compiled.netlist;
        let mut sim = Simulator::new(nl).unwrap();
        let o1 = nl.find("s1.offer").unwrap();
        let o2 = nl.find("s2.offer").unwrap();
        let vp = nl.find("out.vp").unwrap();
        sim.cycle(&[(o1, true), (o2, false)]).unwrap();
        assert!(!sim.value(vp), "lazy join waits");
        sim.cycle(&[(o1, true), (o2, true)]).unwrap();
        assert!(sim.value(vp), "fires when both valid");
    }

    #[test]
    fn guard_mask_must_fit_data_width() {
        use crate::ee::{EarlyEval, EeTerm};
        let build = || {
            let mut net = ElasticNetwork::new("ej");
            let g = net.add_source("g").unwrap();
            let s = net.add_source("s").unwrap();
            let ee = EarlyEval::new(
                0,
                vec![EeTerm {
                    guard_mask: 0b100,
                    guard_value: 0b100,
                    required: vec![1],
                    select: 1,
                }],
            );
            let j = net.add_early_join("j", 2, ee).unwrap();
            let snk = net.add_sink("snk").unwrap();
            net.connect(g, 0, j, 0, "cg").unwrap();
            net.connect(s, 0, j, 1, "cs").unwrap();
            net.connect(j, 0, snk, 0, "out").unwrap();
            net
        };
        let err = compile(
            &build(),
            &CompileOptions {
                lint: false,
                data_width: 1,
                nondet_merge: false,
                optimize: false,
                fault: None,
                faults: vec![],
            },
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::BadEarlyEval(_)));
        compile(
            &build(),
            &CompileOptions {
                lint: false,
                data_width: 3,
                nondet_merge: false,
                optimize: false,
                fault: None,
                faults: vec![],
            },
        )
        .unwrap();
    }

    #[test]
    fn data_travels_through_compiled_pipeline() {
        let (net, _cin, _cout) = pipeline();
        let compiled = compile(
            &net,
            &CompileOptions {
                lint: false,
                data_width: 1,
                nondet_merge: false,
                optimize: false,
                fault: None,
                faults: vec![],
            },
        )
        .unwrap();
        let nl = &compiled.netlist;
        let mut sim = Simulator::new(nl).unwrap();
        let offer = nl.find("src.offer").unwrap();
        let din = nl.find("src.din0").unwrap();
        let vp = nl.find("cout.vp").unwrap();
        let dout = nl.find("cout.d0").unwrap();
        // Alternate payloads; collect what arrives.
        let mut sent = Vec::new();
        let mut got = Vec::new();
        for t in 0..12u64 {
            let bit = t % 2 == 0;
            sim.cycle(&[(offer, true), (din, bit)]).unwrap();
            sent.push(bit);
            if sim.value(vp) {
                got.push(sim.value(dout));
            }
        }
        assert!(got.len() >= 10);
        for (i, &g) in got.iter().enumerate() {
            assert_eq!(g, sent[i], "payload order preserved at {i}");
        }
    }

    #[test]
    fn exports_work_on_compiled_controllers() {
        let (net, _, _) = pipeline();
        let compiled = compile(&net, &CompileOptions::default()).unwrap();
        let v = elastic_netlist::export::to_verilog(&compiled.netlist).unwrap();
        assert!(v.contains("module lin"));
        let smv = elastic_netlist::export::to_smv(&compiled.netlist).unwrap();
        assert!(smv.contains("MODULE main"));
        let blif = elastic_netlist::export::to_blif(&compiled.netlist).unwrap();
        assert!(blif.contains(".model lin"));
    }
}
