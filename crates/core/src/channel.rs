//! Dual elastic channels and their per-cycle event classification.
//!
//! A channel carries the forward SELF pair `(V⁺,S⁺)` plus the backward
//! anti-token pair `(V⁻,S⁻)`. The producer side drives `V⁺` and `S⁻`; the
//! consumer side drives `S⁺` and `V⁻`. Both sides maintain the channel
//! invariants of the paper's eq. (2):
//!
//! ```text
//! ¬(V⁻ ∧ S⁺)    a token cannot be killed and stopped at once
//! ¬(V⁺ ∧ S⁻)    an anti-token cannot be killed and stopped at once
//! ```

use std::fmt;

/// Identifier of a channel in an
/// [`ElasticNetwork`](crate::network::ElasticNetwork).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChanId(pub(crate) u32);

impl ChanId {
    /// Dense index of this channel.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The four handshake wires of a dual channel, as settled in one cycle,
/// plus the data payload travelling with the token.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelSignals {
    /// Forward valid: the producer offers a token.
    pub vp: bool,
    /// Forward stop: the consumer cannot accept this cycle.
    pub sp: bool,
    /// Backward valid: the consumer sends an anti-token (a *kill*).
    pub vn: bool,
    /// Backward stop: the producer cannot accept the anti-token this cycle.
    pub sn: bool,
    /// Payload carried when `vp` is asserted.
    pub data: u64,
}

/// What happened on a channel during one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelEvent {
    /// `V⁺ ∧ ¬S⁺ ∧ ¬V⁻`: a token moved forward.
    PositiveTransfer,
    /// `V⁻ ∧ ¬S⁻ ∧ ¬V⁺`: an anti-token moved backward.
    NegativeTransfer,
    /// `V⁺ ∧ V⁻`: a token and an anti-token met and annihilated.
    Kill,
    /// `V⁺ ∧ S⁺ ∧ ¬V⁻`: the producer must persist (retry next cycle).
    Retry,
    /// `V⁻ ∧ S⁻ ∧ ¬V⁺`: the anti-token holder must persist.
    NegativeRetry,
    /// Nothing offered in either direction.
    Idle,
}

impl ChannelSignals {
    /// Classifies the cycle according to the counterflow semantics.
    ///
    /// # Example
    ///
    /// ```
    /// use elastic_core::channel::{ChannelEvent, ChannelSignals};
    ///
    /// let sig = ChannelSignals { vp: true, sp: false, vn: true, ..Default::default() };
    /// assert_eq!(sig.event(), ChannelEvent::Kill);
    /// ```
    pub fn event(&self) -> ChannelEvent {
        match (self.vp, self.vn) {
            (true, true) => ChannelEvent::Kill,
            (true, false) => {
                if self.sp {
                    ChannelEvent::Retry
                } else {
                    ChannelEvent::PositiveTransfer
                }
            }
            (false, true) => {
                if self.sn {
                    ChannelEvent::NegativeRetry
                } else {
                    ChannelEvent::NegativeTransfer
                }
            }
            (false, false) => ChannelEvent::Idle,
        }
    }

    /// Checks the channel invariants of eq. (2).
    ///
    /// Returns `Err` with a description of the violated invariant.
    ///
    /// # Errors
    ///
    /// A `&'static str` naming the violated invariant — converted to
    /// [`CoreError::ProtocolViolation`](crate::CoreError::ProtocolViolation)
    /// by the monitors.
    pub fn check_invariants(&self) -> Result<(), &'static str> {
        if self.vn && self.sp {
            return Err("V- and S+ asserted together (kill while stopping)");
        }
        if self.vp && self.sn {
            return Err("V+ and S- asserted together (token against stopped anti-token)");
        }
        Ok(())
    }
}

impl fmt::Display for ChannelSignals {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "V+={} S+={} V-={} S-={}",
            u8::from(self.vp),
            u8::from(self.sp),
            u8::from(self.vn),
            u8::from(self.sn)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(vp: bool, sp: bool, vn: bool, sn: bool) -> ChannelSignals {
        ChannelSignals {
            vp,
            sp,
            vn,
            sn,
            data: 0,
        }
    }

    #[test]
    fn event_classification() {
        assert_eq!(
            sig(true, false, false, false).event(),
            ChannelEvent::PositiveTransfer
        );
        assert_eq!(sig(true, true, false, false).event(), ChannelEvent::Retry);
        assert_eq!(
            sig(false, false, true, false).event(),
            ChannelEvent::NegativeTransfer
        );
        assert_eq!(
            sig(false, false, true, true).event(),
            ChannelEvent::NegativeRetry
        );
        assert_eq!(sig(true, false, true, false).event(), ChannelEvent::Kill);
        assert_eq!(sig(false, false, false, false).event(), ChannelEvent::Idle);
        assert_eq!(
            sig(false, true, false, false).event(),
            ChannelEvent::Idle,
            "S+ without V+ is idle"
        );
    }

    #[test]
    fn kill_wins_over_stop_bits() {
        // With the invariants enforced, S+ cannot be set during a kill, but
        // classification is defined regardless.
        assert_eq!(sig(true, true, true, true).event(), ChannelEvent::Kill);
    }

    #[test]
    fn invariants() {
        assert!(sig(true, true, false, false).check_invariants().is_ok());
        assert!(sig(false, true, true, false).check_invariants().is_err());
        assert!(sig(true, false, false, true).check_invariants().is_err());
        assert!(
            sig(true, false, true, false).check_invariants().is_ok(),
            "kill is legal"
        );
    }

    #[test]
    fn display_shows_all_wires() {
        let s = sig(true, false, true, false).to_string();
        assert_eq!(s, "V+=1 S+=0 V-=1 S-=0");
    }
}
