//! Dual marked graphs (DMGs): the behavioural model behind synchronous
//! elastic circuits with early evaluation and token counterflow.
//!
//! A *marked graph* (MG) is a Petri net without choice: every place has one
//! producer and one consumer, so it can be drawn as a directed graph whose
//! arcs carry tokens. A *dual marked graph* (DMG) extends MGs with
//!
//! * **negative markings** — an arc may hold *anti-tokens* (negative counts),
//! * **negative (N) enabling** — a node fires backwards when all its output
//!   arcs are negatively marked, propagating anti-tokens toward its inputs,
//! * **early (E) enabling** — designated nodes may fire before all their
//!   input arcs are marked, leaving anti-tokens behind on the late inputs.
//!
//! The firing rule itself is unchanged, which is why the classic MG
//! invariants survive: the token sum of every directed cycle is preserved by
//! any firing, live initial markings stay deadlock-free, and firing every
//! node the same number of times returns to the same marking.
//!
//! This crate provides the graph/marking data structures, the three enabling
//! rules, executors, cycle enumeration, liveness and token-preservation
//! checks, bounded reachability, and minimum-cycle-ratio throughput bounds.
//!
//! # Example
//!
//! ```
//! use elastic_dmg::{DmgBuilder, Enabling};
//!
//! # fn main() -> Result<(), elastic_dmg::DmgError> {
//! // A two-node ring: producer -> consumer -> producer, one token.
//! let mut b = DmgBuilder::new();
//! let p = b.node("producer");
//! let c = b.node("consumer");
//! let forward = b.arc(p, c, 1);
//! let backward = b.arc(c, p, 0);
//! let dmg = b.build()?;
//!
//! let mut m = dmg.initial_marking();
//! assert_eq!(dmg.enabling(&m, c), Some(Enabling::Positive));
//! dmg.fire(&mut m, c)?;
//! assert_eq!(m.get(forward), 0);
//! assert_eq!(m.get(backward), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod error;
mod fire;
mod graph;
mod marking;

pub mod analysis;
pub mod examples;
pub mod exec;

pub use error::DmgError;
pub use fire::{Enabling, FiringRecord};
pub use graph::{ArcId, ArcInfo, Dmg, DmgBuilder, NodeId};
pub use marking::Marking;
