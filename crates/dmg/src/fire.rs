use crate::error::DmgError;
use crate::graph::{Dmg, NodeId};
use crate::marking::Marking;

/// The rule under which a node is enabled at a marking (paper Sect. 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Enabling {
    /// Conventional enabling: every input arc is positively marked.
    Positive,
    /// Counterflow enabling: every output arc is negatively marked; firing
    /// moves anti-tokens from the outputs to the inputs.
    Negative,
    /// Early enabling (only for early nodes): the input arcs sum to a
    /// positive count but at least one input arc is unmarked; firing leaves
    /// anti-tokens on the late inputs.
    Early,
}

impl Enabling {
    /// Short tag used in execution traces: `P`, `N` or `E`.
    pub fn tag(self) -> char {
        match self {
            Enabling::Positive => 'P',
            Enabling::Negative => 'N',
            Enabling::Early => 'E',
        }
    }
}

/// One step of an execution: which node fired and under which rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiringRecord {
    /// The node that fired.
    pub node: NodeId,
    /// The enabling rule that justified the firing.
    pub rule: Enabling,
}

impl Dmg {
    /// Determines whether `node` is enabled at `m`, and under which rule.
    ///
    /// Positive enabling is reported in preference to early enabling when
    /// both hold (a P-enabled early node does not need to guess), and
    /// negative enabling is reported only when positive enabling does not
    /// hold, mirroring the priority used by the controllers.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of this graph or `m` has the wrong size.
    pub fn enabling(&self, m: &Marking, node: NodeId) -> Option<Enabling> {
        let ins = self.in_arcs(node);
        let outs = self.out_arcs(node);
        if !ins.is_empty() && ins.iter().all(|&a| m.get(a) > 0) {
            return Some(Enabling::Positive);
        }
        if !outs.is_empty() && outs.iter().all(|&a| m.get(a) < 0) {
            return Some(Enabling::Negative);
        }
        if self.is_early(node) {
            let sum: i64 = ins.iter().map(|&a| m.get(a)).sum();
            let some_empty = ins.iter().any(|&a| m.get(a) == 0);
            if sum > 0 && some_empty {
                return Some(Enabling::Early);
            }
        }
        None
    }

    /// All nodes enabled at `m`, with their rules.
    pub fn enabled_nodes(&self, m: &Marking) -> Vec<FiringRecord> {
        self.nodes()
            .filter_map(|n| {
                self.enabling(m, n)
                    .map(|rule| FiringRecord { node: n, rule })
            })
            .collect()
    }

    /// Fires `node` at `m` using the marked-graph firing rule (paper eq. 1):
    /// each pure input arc loses a token, each pure output arc gains one,
    /// self-loop arcs are untouched. The rule is identical for P, N and E
    /// firings — that identity is what preserves the MG invariants.
    ///
    /// # Errors
    ///
    /// Returns [`DmgError::NotEnabled`] if no enabling rule holds, leaving
    /// `m` untouched, or [`DmgError::MarkingSize`] for a mismatched marking.
    pub fn fire(&self, m: &mut Marking, node: NodeId) -> Result<Enabling, DmgError> {
        self.check_marking(m)?;
        let rule = self.enabling(m, node).ok_or(DmgError::NotEnabled(node))?;
        self.fire_unchecked(m, node);
        Ok(rule)
    }

    /// Applies the firing rule without checking enabledness.
    ///
    /// Useful for analyses that explore hypothetical firings; ordinary
    /// executions should call [`Dmg::fire`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `m` has the wrong size.
    pub fn fire_unchecked(&self, m: &mut Marking, node: NodeId) {
        // Self-loop arcs appear in both presets; the +1 and -1 cancel, which
        // the paper encodes as the "otherwise" branch of eq. (1).
        for &a in self.in_arcs(node) {
            m.add(a, -1);
        }
        for &a in self.out_arcs(node) {
            m.add(a, 1);
        }
    }

    /// Fires a sequence of nodes, returning the rules used.
    ///
    /// # Errors
    ///
    /// Stops at the first node that is not enabled and reports it; `m` keeps
    /// the marking reached so far.
    pub fn fire_sequence<I>(&self, m: &mut Marking, seq: I) -> Result<Vec<Enabling>, DmgError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut rules = Vec::new();
        for node in seq {
            rules.push(self.fire(m, node)?);
        }
        Ok(rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DmgBuilder;

    /// a -> b -> a ring with one token on a->b.
    fn two_ring() -> (Dmg, NodeId, NodeId) {
        let mut b = DmgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.arc(x, y, 1);
        b.arc(y, x, 0);
        (b.build().unwrap(), x, y)
    }

    #[test]
    fn positive_enabling_and_firing() {
        let (g, x, y) = two_ring();
        let mut m = g.initial_marking();
        assert_eq!(g.enabling(&m, y), Some(Enabling::Positive));
        assert_eq!(g.enabling(&m, x), None);
        assert_eq!(g.fire(&mut m, y).unwrap(), Enabling::Positive);
        assert_eq!(m.as_slice(), &[0, 1]);
    }

    #[test]
    fn firing_disabled_node_is_an_error_and_preserves_marking() {
        let (g, x, _) = two_ring();
        let mut m = g.initial_marking();
        let before = m.clone();
        assert_eq!(g.fire(&mut m, x).unwrap_err(), DmgError::NotEnabled(x));
        assert_eq!(m, before);
    }

    #[test]
    fn negative_enabling_propagates_anti_tokens_backwards() {
        let (g, x, _y) = two_ring();
        // Put an anti-token on x's only output arc x->y.
        let mut m = Marking::from_vec(vec![-1, 0]);
        assert_eq!(g.enabling(&m, x), Some(Enabling::Negative));
        g.fire(&mut m, x).unwrap();
        // x->y gains a token (back to 0), y->x loses one (anti-token moved).
        assert_eq!(m.as_slice(), &[0, -1]);
    }

    #[test]
    fn early_enabling_generates_anti_tokens() {
        // join node j with two inputs; early.
        let mut b = DmgBuilder::new();
        let p1 = b.node("p1");
        let p2 = b.node("p2");
        let j = b.early_node("j");
        let a1 = b.arc(p1, j, 1);
        let a2 = b.arc(p2, j, 0);
        let out = b.arc(j, p1, 0); // close enough for the rule test
        let g = b.build().unwrap();
        let mut m = g.initial_marking();
        assert_eq!(g.enabling(&m, j), Some(Enabling::Early));
        g.fire(&mut m, j).unwrap();
        assert_eq!(m.get(a1), 0);
        assert_eq!(m.get(a2), -1, "late input receives an anti-token");
        assert_eq!(m.get(out), 1);
    }

    #[test]
    fn early_node_prefers_positive_when_all_inputs_ready() {
        let mut b = DmgBuilder::new();
        let p = b.node("p");
        let j = b.early_node("j");
        b.arc(p, j, 1);
        b.arc(j, p, 0);
        let g = b.build().unwrap();
        let m = g.initial_marking();
        assert_eq!(g.enabling(&m, j), Some(Enabling::Positive));
    }

    #[test]
    fn early_requires_positive_sum() {
        let mut b = DmgBuilder::new();
        let p1 = b.node("p1");
        let p2 = b.node("p2");
        let j = b.early_node("j");
        let a1 = b.arc(p1, j, 1);
        let a2 = b.arc(p2, j, 0);
        b.arc(j, p1, 0);
        let g = b.build().unwrap();
        let mut m = g.initial_marking();
        m.set(a1, 1);
        m.set(a2, -1);
        // Sum is zero: not early-enabled.
        assert_eq!(g.enabling(&m, j), None);
    }

    #[test]
    fn non_early_node_never_early_enables() {
        let mut b = DmgBuilder::new();
        let p1 = b.node("p1");
        let p2 = b.node("p2");
        let j = b.node("j"); // lazy
        b.arc(p1, j, 5);
        b.arc(p2, j, 0);
        b.arc(j, p1, 0);
        let g = b.build().unwrap();
        let m = g.initial_marking();
        assert_eq!(g.enabling(&m, j), None);
    }

    #[test]
    fn enabled_nodes_lists_all() {
        let (g, _, y) = two_ring();
        let m = g.initial_marking();
        let en = g.enabled_nodes(&m);
        assert_eq!(
            en,
            vec![FiringRecord {
                node: y,
                rule: Enabling::Positive
            }]
        );
    }

    #[test]
    fn fire_sequence_reports_rules() {
        let (g, x, y) = two_ring();
        let mut m = g.initial_marking();
        let rules = g.fire_sequence(&mut m, [y, x]).unwrap();
        assert_eq!(rules, vec![Enabling::Positive, Enabling::Positive]);
        assert_eq!(m, g.initial_marking());
    }

    #[test]
    fn p_firing_annihilates_anti_token_on_output_arc() {
        let (g, x, _y) = two_ring();
        // Anti-token waiting on x->y, token available on y->x: x is
        // P-enabled and fires a token straight into the anti-token.
        let mut m = Marking::from_vec(vec![-1, 1]);
        assert_eq!(g.enabling(&m, x), Some(Enabling::Positive));
        g.fire(&mut m, x).unwrap();
        // Annihilation: both arcs return to zero, and the cycle token sum
        // is unchanged (-1 + 1 = 0 before, 0 + 0 = 0 after).
        assert_eq!(m.as_slice(), &[0, 0]);
    }

    #[test]
    fn n_firing_moves_anti_token_toward_its_victim() {
        // Three-node ring a -> b -> c -> a; anti-token on b's output arc
        // b->c, token far away on c->a. Counterflow sends the anti-token
        // backwards through b onto a->b, where the next forward token will
        // annihilate it.
        let mut bld = DmgBuilder::new();
        let a = bld.node("a");
        let b = bld.node("b");
        let c = bld.node("c");
        let ab = bld.arc(a, b, 0);
        let bc = bld.arc(b, c, 0);
        let ca = bld.arc(c, a, 1);
        let g = bld.build().unwrap();
        let mut m = g.initial_marking();
        m.set(bc, -1);
        let sum: i64 = [ab, bc, ca].iter().map(|&x| m.get(x)).sum();
        assert_eq!(g.enabling(&m, b), Some(Enabling::Negative));
        assert_eq!(g.fire(&mut m, b).unwrap(), Enabling::Negative);
        assert_eq!(m.get(ab), -1, "anti-token moved to b's input");
        assert_eq!(m.get(bc), 0);
        // a is now P-enabled via c->a; its firing annihilates the
        // anti-token on a->b.
        assert_eq!(g.enabling(&m, a), Some(Enabling::Positive));
        g.fire(&mut m, a).unwrap();
        assert_eq!(m.get(ab), 0, "token and anti-token annihilated");
        assert_eq!(m.get(ca), 0);
        let sum_after: i64 = [ab, bc, ca].iter().map(|&x| m.get(x)).sum();
        assert_eq!(sum, sum_after, "cycle token sum is invariant");
    }

    #[test]
    fn early_firing_then_late_arrival_annihilates() {
        // The paper's core counterflow story: an early join fires on its
        // ready input, leaving an anti-token on the late input; when the
        // late token finally arrives (its producer P-fires), the pair
        // annihilates and the late datum is discarded.
        let mut bld = DmgBuilder::new();
        let p1 = bld.node("p1");
        let p2 = bld.node("p2");
        let j = bld.early_node("j");
        let a1 = bld.arc(p1, j, 1);
        let a2 = bld.arc(p2, j, 0);
        let back2 = bld.arc(j, p2, 0); // gives p2 an input so it can fire
        let out = bld.arc(j, p1, 0);
        let g = bld.build().unwrap();
        let mut m = g.initial_marking();
        m.set(back2, 1);
        assert_eq!(g.fire(&mut m, j).unwrap(), Enabling::Early);
        assert_eq!(m.get(a2), -1, "late input owes an anti-token");
        assert_eq!(g.enabling(&m, p2), Some(Enabling::Positive));
        g.fire(&mut m, p2).unwrap();
        assert_eq!(m.get(a2), 0, "late token annihilated on arrival");
        assert_eq!(m.get(a1), 0);
        assert_eq!(m.get(out), 1);
    }

    #[test]
    fn rule_tags() {
        assert_eq!(Enabling::Positive.tag(), 'P');
        assert_eq!(Enabling::Negative.tag(), 'N');
        assert_eq!(Enabling::Early.tag(), 'E');
    }
}
